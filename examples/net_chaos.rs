//! Network chaos over a live server — the CI smoke for `rtft_chaos::net`.
//!
//! Starts a hardened `rtft-serve` server (read deadlines, tenancy,
//! write-ahead log) and drives it with 72 concurrent connections, 14 of
//! them hostile — two of each network-fault kind: replica faults inside
//! flushes, checker faults on sampled-checker streams, slow-loris
//! writers, malformed frames, partial writes, abrupt disconnects with
//! resume, and queue-quota storms. Checks the harness's hard promises:
//!
//! 1. **Zero violations** — per-stream and per-tenant token books
//!    balance (`offered == delivered + undelivered + rejected`), every
//!    permanent fault is detected within its analytic bound, evictions
//!    and fail-closed connections are lossless;
//! 2. **Clean replay** — `replay_verify` over the surviving WAL
//!    reproduces every logged output;
//! 3. **Determinism** — a second run of the same seed serialises to a
//!    byte-identical canonical report.
//!
//! Exits non-zero on any violation, so CI can run it as a smoke test:
//!
//! ```sh
//! cargo run --release -p rtft-examples --bin net_chaos
//! ```

use std::path::PathBuf;

use rtft_chaos::{run_net_chaos, NetChaosConfig, NetOutcome};

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rtft-net-chaos-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn main() {
    let cfg = NetChaosConfig {
        seed: 0xDAC14,
        connections: 72,
        hostile: 14,
        tokens_per_batch: 4,
        batches: 2,
        wal: true,
    };
    println!(
        "net_chaos: seed {:#x}, {} connections ({} hostile), wal on",
        cfg.seed, cfg.connections, cfg.hostile
    );

    let dir_a = scratch("a");
    let dir_b = scratch("b");
    let report = run_net_chaos(&cfg, &dir_a).expect("chaos wave");
    let again = run_net_chaos(&cfg, &dir_b).expect("replay wave");

    let mut failures = report.violations.len() as u64;
    for v in &report.violations {
        println!("FAIL: {v}");
    }
    if !report.replay_clean {
        println!("FAIL: WAL replay diverged from the live run");
        failures += 1;
    }
    if report.to_json() != again.to_json() {
        println!("FAIL: same seed produced a different canonical report");
        failures += 1;
    }
    // Two scenarios of each hostile kind must resolve to their taxonomy
    // class — in particular the replica faults and the sampled-checker
    // faults all detected in bound (two of each).
    for (class, expected) in [
        (NetOutcome::DetectedInBound, 4),
        (NetOutcome::EvictedLossless, 2),
        (NetOutcome::FailedClosed, 2),
        (NetOutcome::Resumed, 2),
        (NetOutcome::Backpressured, 2),
        (NetOutcome::DetectedLate, 0),
        (NetOutcome::Violation, 0),
    ] {
        if report.count(class) != expected {
            println!(
                "FAIL: {} scenarios classified {}, expected {expected}",
                report.count(class),
                class.label()
            );
            failures += 1;
        }
    }

    for class in NetOutcome::ALL {
        println!("  {:>18}: {}", class.label(), report.count(class));
    }
    println!(
        "  tokens: {} accepted, {} delivered, {} rejected (and retried) | {} evictions, {} protocol errors, replay {}",
        report.accepted_tokens(),
        report.delivered_tokens(),
        report.rejected_tokens(),
        report.evictions,
        report.protocol_errors,
        if report.replay_clean { "clean" } else { "DIVERGED" },
    );
    println!("  wall clock: {:?}", report.elapsed);

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    if failures > 0 {
        println!("net_chaos: FAILED with {failures} violation(s)");
        std::process::exit(1);
    }
    println!(
        "net_chaos: OK — books balanced under network chaos, replay clean, report deterministic"
    );
}
