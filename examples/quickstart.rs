//! Quickstart: make a stream-processing network tolerate a timing fault.
//!
//! ```text
//! cargo run --release -p rtft-examples --bin quickstart
//! ```
//!
//! Builds the paper's duplicated network (Fig. 1) around a synthetic
//! 30 fps pipeline, sizes every queue and threshold from the arrival-curve
//! models (§3.4), fail-stops one replica mid-run, and shows that the fault
//! is detected within the analytic bound while the consumer never notices.

use rtft_core::{build_duplicated, DuplicationConfig, FaultPlan, JitterStageReplica};
use rtft_kpn::{Engine, Payload};
use rtft_rtc::sizing::DuplicationModel;
use rtft_rtc::{PjdModel, TimeNs};
use std::sync::Arc;

fn main() {
    // 1. Interface timing models — the paper's Table 1 style tuples.
    let model = DuplicationModel::symmetric(
        PjdModel::from_ms(30.0, 2.0, 0.0), // producer: ~30 fps, 2 ms jitter
        PjdModel::from_ms(30.0, 2.0, 90.0), // consumer: starts 3 periods late
        [
            PjdModel::from_ms(30.0, 5.0, 0.0),  // replica 1: tight jitter
            PjdModel::from_ms(30.0, 30.0, 0.0), // replica 2: design diversity
        ],
    );

    // 2. Offline analysis (eq. (3)–(8)): queue capacities, thresholds,
    //    worst-case detection latency. No runtime timekeeping needed.
    let cfg = DuplicationConfig::from_model(model)
        .expect("rates are balanced")
        .with_token_count(300)
        .with_payload(Arc::new(Payload::U64))
        .with_fault(0, FaultPlan::fail_stop_at(TimeNs::from_secs(3)));
    println!("Sizing report (derived offline from the timing models):");
    println!(
        "  replicator capacities |R1|,|R2| = {:?}",
        cfg.sizing.replicator_capacity
    );
    println!(
        "  selector capacities  |S1|,|S2| = {:?}",
        cfg.sizing.selector_capacity
    );
    println!(
        "  divergence threshold D          = {}",
        cfg.sizing.selector_threshold
    );
    println!(
        "  worst-case detection latency    = {}",
        cfg.sizing.selector_detection_bound
    );

    // 3. Build and run the duplicated network; replica 0 dies at t = 3 s.
    let factory = JitterStageReplica::from_model(&cfg.model).with_seeds([11, 22]);
    let (net, ids) = build_duplicated(&cfg, &factory);
    let mut engine = Engine::new(net);
    engine.run_until(TimeNs::from_secs(20));
    let net = engine.network();

    // 4. The fault was detected at both arbitration channels…
    let fault_at = TimeNs::from_secs(3);
    for (site, at) in [
        ("replicator", ids.replicator_faults(net)[0].map(|f| f.at)),
        ("selector  ", ids.selector_faults(net)[0].map(|f| f.at)),
    ] {
        match at {
            Some(at) => println!(
                "fault detected at {site}: t = {at} (latency {} — bound {})",
                at - fault_at,
                cfg.sizing.selector_detection_bound
            ),
            None => println!("fault NOT detected at {site}"),
        }
    }

    // 5. …and masked: the consumer received every token on schedule.
    let arrivals = ids.consumer_arrivals(net);
    println!(
        "consumer received {}/{} tokens; healthy replica flagged: {}",
        arrivals.len(),
        300,
        ids.selector_faults(net)[1].is_some() || ids.replicator_faults(net)[1].is_some()
    );
    assert_eq!(arrivals.len(), 300, "the single fault must be fully masked");
}
