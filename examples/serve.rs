//! The streaming ingestion server end to end — the CI smoke for
//! `rtft-serve`.
//!
//! Starts a loopback server, connects three concurrent clients each
//! streaming an MJPEG-profile workload into its own duplicated pipeline,
//! and injects one permanent timing fault (fail-stop in replica 1 of
//! client 0's stream). Every client must get all of its tokens back in
//! order with matching digests; client 0 must additionally receive a
//! `Fault` frame whose reported detection latency sits inside the
//! analytic `DetectionBounds` window for the MJPEG profile. The final
//! `ServeReport` must balance (`tokens_in == delivered + undelivered`,
//! with nothing undelivered here).
//!
//! Exits non-zero on any violation, so CI can run it as a smoke test:
//!
//! ```sh
//! cargo run --release --bin serve
//! ```

use rtft_apps::networks::App;
use rtft_rtc::TimeNs;
use rtft_serve::{
    detection_bound, digest_of, kind_label, workload, Client, FaultInjection, Server, ServerConfig,
};

const CLIENTS: usize = 3;
const TOKENS: usize = 16;
const FAULTY_STREAM: u32 = 0;

fn main() {
    let cfg = ServerConfig {
        inject: vec![FaultInjection {
            stream: FAULTY_STREAM,
            replica: 1,
            at: TimeNs::from_ms(150),
        }],
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("bind loopback");
    println!(
        "serve: listening on {}, {CLIENTS} clients x {TOKENS} MJPEG frames, \
         permanent timing fault injected into stream {FAULTY_STREAM} replica 1",
        server.addr()
    );

    // Client 0 opens its stream first so the injection's global stream
    // index is deterministic; all three then flush concurrently.
    let addr = server.addr();
    let mut handles = Vec::new();
    let mut clients: Vec<(Client, u32)> = (0..CLIENTS)
        .map(|i| {
            let mut client = Client::connect(addr, &format!("smoke-{i}")).expect("connect");
            let stream = client
                .open_stream(App::Mjpeg, 2)
                .expect("open")
                .expect_stream();
            (client, stream)
        })
        .collect();
    for (i, (mut client, stream)) in clients.drain(..).enumerate() {
        handles.push(std::thread::spawn(move || {
            let batch = workload(App::Mjpeg, i as u64, TOKENS);
            client.send_tokens(stream, &batch).expect("send");
            let run = client.flush(stream).expect("flush");
            let stats = client.close(stream).expect("close").stats.expect("stats");
            (stream, batch, run, stats)
        }));
    }

    let bound = detection_bound(App::Mjpeg).as_ns();
    let mut failures = 0usize;
    let mut fault_seen = false;
    for handle in handles {
        let (stream, batch, run, stats) = handle.join().expect("client thread");
        let in_order = run
            .outputs
            .iter()
            .enumerate()
            .all(|(i, o)| o.seq == i as u64 && o.digest == digest_of(&batch[i]));
        println!(
            "  stream {stream}: {}/{} outputs, in-order+digests {}, faults {}, busy {}",
            run.outputs.len(),
            TOKENS,
            if in_order { "ok" } else { "MISMATCH" },
            run.faults.len(),
            stats.busy,
        );
        if run.outputs.len() != TOKENS || !in_order {
            eprintln!("SMOKE FAILED: stream {stream} lost or reordered tokens");
            failures += 1;
        }
        for fault in &run.faults {
            println!(
                "    fault: replica {} at site {} ({}), detection latency {:.3} ms (bound {:.3} ms)",
                fault.replica,
                fault.kind,
                kind_label(fault.kind),
                fault.detection_latency_ns as f64 / 1e6,
                bound as f64 / 1e6,
            );
            if stream == FAULTY_STREAM
                && fault.replica == 1
                && fault.detection_latency_ns > 0
                && fault.detection_latency_ns <= bound
            {
                fault_seen = true;
            }
        }
        if stream == FAULTY_STREAM && run.faults.is_empty() {
            eprintln!("SMOKE FAILED: no Fault frame pushed for the injected fault");
            failures += 1;
        }
    }

    let report = server.shutdown();
    println!();
    println!("serve report: {}", report.to_json());

    if !fault_seen {
        eprintln!("SMOKE FAILED: Fault frame missing or detection latency out of bound");
        failures += 1;
    }
    if !report.balanced() {
        eprintln!("SMOKE FAILED: token accounting does not balance");
        failures += 1;
    }
    if report.delivered() != (CLIENTS * TOKENS) as u64 {
        eprintln!(
            "SMOKE FAILED: delivered {} of {} tokens",
            report.delivered(),
            CLIENTS * TOKENS
        );
        failures += 1;
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!(
        "SMOKE OK: {} tokens delivered across {} streams, fault detected within {:.3} ms bound",
        report.delivered(),
        report.streams.len(),
        bound as f64 / 1e6
    );
}
