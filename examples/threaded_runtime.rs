//! The same fault-tolerance framework on real OS threads: the replicator
//! and selector state machines run unchanged under wall-clock time on the
//! host multicore (the "multicore emulation" leg of the reproduction).
//!
//! ```text
//! cargo run --release -p rtft-examples --bin threaded_runtime
//! ```
//!
//! Periods are scaled down (1 ms) so the demo finishes in about a second
//! of wall time.

use rtft_core::{build_duplicated, DuplicationConfig, FaultPlan, JitterStageReplica, Selector};
use rtft_kpn::threaded::run_threaded;
use rtft_kpn::{Payload, PjdSink};
use rtft_rtc::sizing::DuplicationModel;
use rtft_rtc::{PjdModel, TimeNs};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Millisecond-scale periods: 1000 tokens/second streams.
    let model = DuplicationModel::symmetric(
        PjdModel::new(TimeNs::from_ms(1), TimeNs::from_us(100), TimeNs::ZERO),
        PjdModel::new(TimeNs::from_ms(1), TimeNs::from_us(100), TimeNs::from_ms(3)),
        [
            PjdModel::new(TimeNs::from_ms(1), TimeNs::from_us(200), TimeNs::ZERO),
            PjdModel::new(TimeNs::from_ms(1), TimeNs::from_us(800), TimeNs::ZERO),
        ],
    );
    let tokens = 400u64;
    let cfg = DuplicationConfig::from_model(model)
        .expect("bounded")
        .with_token_count(tokens)
        .with_payload(Arc::new(Payload::U64))
        // Replica 0 dies 150 ms in (wall-clock!).
        .with_fault(0, FaultPlan::fail_stop_at(TimeNs::from_ms(150)));
    println!(
        "threaded run: {} tokens @ 1 kHz, D = {}, caps R{:?} S{:?}",
        tokens,
        cfg.sizing.selector_threshold,
        cfg.sizing.replicator_capacity,
        cfg.sizing.selector_capacity
    );

    let factory = JitterStageReplica::from_model(&cfg.model).with_seeds([11, 22]);
    let (net, _ids) = build_duplicated(&cfg, &factory);

    let start = std::time::Instant::now();
    // The producer/consumer halt after `tokens`; the pipeline stages are
    // infinite Kahn processes and always park on their channels, so they
    // are reaped at the deadline — that is expected and reported below.
    let run = run_threaded(net, Duration::from_secs(20));
    println!(
        "wall time: {:?}; reaped infinite stages: {:?}",
        start.elapsed(),
        run.timed_out
    );

    // Channel index 1 is the selector (the builder adds replicator first).
    let (enqueued, discarded, fault0) = run
        .channel_as::<Selector, _>(1, |s: &Selector| (s.enqueued(), s.discarded(), s.fault(0)))
        .expect("selector state");
    println!("selector: enqueued {enqueued}, discarded {discarded}, replica-0 fault: {fault0:?}");

    let sink = run
        .process_as::<PjdSink>("consumer")
        .expect("consumer finished");
    println!(
        "consumer received {} tokens on real threads",
        sink.arrivals().len()
    );
    assert_eq!(
        sink.arrivals().len() as u64,
        tokens,
        "fault masked under wall-clock time"
    );
    assert!(fault0.is_some(), "fault detected under wall-clock time");
}
