//! A deterministic chaos campaign — the CI smoke for `rtft-chaos`.
//!
//! Generates 60 seeded scenarios spanning the full fault palette (fail-stop,
//! slow-down, corruption, transient/intermittent stalls, omission, plus
//! fault-free runs) across both redundancy structures and all three
//! platforms, runs the campaign twice, and checks the chaos harness's two
//! hard promises:
//!
//! 1. **Determinism** — both runs serialise to byte-identical JSON;
//! 2. **No silent permanent faults** — every scenario whose fault
//!    permanently degrades a replica's timing is `detected-in-bound`.
//!
//! Exits non-zero on any violation, so CI can run it as a smoke test:
//!
//! ```sh
//! cargo run --release -p rtft-examples --bin chaos
//! ```

use rtft_chaos::{Campaign, OutcomeClass};

fn main() {
    let seed = 0xDAC14u64;
    let count = 60u64;
    println!("chaos: campaign seed {seed:#x}, {count} scenarios");

    let campaign = Campaign::generate(seed, count);
    let report = campaign.run();
    let replay = Campaign::generate(seed, count).run();

    let mut violations = 0u64;
    if report.to_json() != replay.to_json() {
        println!("FAIL: replay of the same campaign produced a different report");
        violations += 1;
    }

    for class in OutcomeClass::ALL {
        println!("  {:>18}: {}", class.label(), report.count(class));
    }
    let all = report.latency_snapshot("fail-stop");
    if all.count > 0 {
        println!(
            "  fail-stop detection latency: p50 {} ms, p99 {} ms",
            all.p50 / 1_000_000,
            all.p99 / 1_000_000
        );
    }

    for outcome in &report.outcomes {
        let s = &outcome.scenario;
        if let Some(fault) = s.fault {
            if fault.is_permanent_timing() && outcome.class != OutcomeClass::DetectedInBound {
                println!(
                    "FAIL: scenario {} ({} {} on {}, {}) -> {}",
                    s.id,
                    s.app.profile().name,
                    fault.kind_label(),
                    s.platform.label(),
                    s.redundancy.label(),
                    outcome.class.label()
                );
                violations += 1;
            }
        }
        if outcome.class == OutcomeClass::FalsePositive {
            println!("FAIL: scenario {} latched a healthy replica", s.id);
            violations += 1;
        }
    }

    if violations > 0 {
        println!("chaos: {violations} violation(s)");
        std::process::exit(1);
    }
    println!("chaos: deterministic, no silent permanent faults, no false positives");
}
