//! Three-structure campaign sweep — the CI smoke for the sampled-checker
//! redundancy structure riding next to the original two.
//!
//! Runs a seeded chaos campaign over the duplicated + tri-voting
//! structures (the classic generator) and one hetero campaign per
//! sampling stride k ∈ {1, 4, 16}, each sweep **twice per seed**, and
//! checks:
//!
//! 1. **Determinism** — every re-run serialises to byte-identical JSON
//!    (the stacked-campaign replay contract now covers all three
//!    structures);
//! 2. **No false positives anywhere; no silent failures or late
//!    latches under the sampled checker** (the duplicated structure's
//!    timing selector is value-blind by design, so classic campaigns may
//!    legally mask corruption silently — the new structure must not);
//! 3. **The frontier trade** — the sampled checker's compute factor
//!    `1 + 1/k` stays strictly below duplication's `2.0` for `k > 1`
//!    while its closed-form sampled-detection bound grows with `k`.
//!
//! Exits non-zero on any violation, so CI can run it as a smoke test:
//!
//! ```sh
//! cargo run --release -p rtft-examples --bin three_structures
//! ```

use rtft_apps::networks::App;
use rtft_bench::hetero::hetero_bounds_for;
use rtft_chaos::{Campaign, OutcomeClass};
use rtft_rtc::TimeNs;

const SEED: u64 = 0xDAC14;
const CLASSIC_SCENARIOS: u64 = 30;
const HETERO_SCENARIOS: u64 = 16;
const STRIDES: [u64; 3] = [1, 4, 16];

fn main() {
    let mut violations = 0u64;
    println!("three_structures: seed {SEED:#x}");

    // Structures one and two: the classic generator interleaves
    // duplicated and tri-voting scenarios.
    let classic = Campaign::generate(SEED, CLASSIC_SCENARIOS).run();
    if classic.to_json() != Campaign::generate(SEED, CLASSIC_SCENARIOS).run().to_json() {
        println!("FAIL: duplicated/voting campaign report not seed-stable");
        violations += 1;
    }
    println!(
        "  duplicated+voting: {} scenarios, {} in-bound, {} masked",
        classic.outcomes.len(),
        classic.count(OutcomeClass::DetectedInBound),
        classic.count(OutcomeClass::Masked),
    );
    // The classic structures promise in-bound detection of permanent
    // timing faults and zero false positives; value corruption under the
    // duplicated timing selector is legally silent (value-blind), so it
    // is not in this census.
    violations += census_violations("classic", &classic, &[OutcomeClass::FalsePositive]);
    for outcome in &classic.outcomes {
        if let Some(fault) = outcome.scenario.fault {
            if fault.is_permanent_timing() && outcome.class != OutcomeClass::DetectedInBound {
                println!(
                    "FAIL: classic scenario {} permanent timing fault -> {}",
                    outcome.scenario.id,
                    outcome.class.label()
                );
                violations += 1;
            }
        }
    }

    // Structure three: one sweep per sampling stride.
    let mut last_bound = TimeNs::ZERO;
    for k in STRIDES {
        let report = Campaign::generate_hetero(SEED, HETERO_SCENARIOS, k).run();
        let replay = Campaign::generate_hetero(SEED, HETERO_SCENARIOS, k).run();
        if report.to_json() != replay.to_json() {
            println!("FAIL: hetero k={k} campaign report not seed-stable");
            violations += 1;
        }
        let bounds = hetero_bounds_for(App::Mjpeg, k);
        let compute = 1.0 + 1.0 / k as f64;
        println!(
            "  hetero k={k}: {} scenarios, {} in-bound, {} masked, \
             compute {compute:.3}x, sampled bound {:.0} ms",
            report.outcomes.len(),
            report.count(OutcomeClass::DetectedInBound),
            report.count(OutcomeClass::Masked),
            bounds.sampled_divergence.as_ms_f64(),
        );
        violations += census_violations(
            "hetero",
            &report,
            &[
                OutcomeClass::FalsePositive,
                OutcomeClass::SilentFailure,
                OutcomeClass::DetectedLate,
            ],
        );
        if k > 1 && compute >= 2.0 {
            println!("FAIL: hetero k={k} compute factor not below duplication");
            violations += 1;
        }
        if bounds.sampled_divergence <= last_bound {
            println!("FAIL: hetero k={k} sampled bound did not grow with k");
            violations += 1;
        }
        last_bound = bounds.sampled_divergence;
    }

    if violations > 0 {
        println!("three_structures: {violations} violation(s)");
        std::process::exit(1);
    }
    println!(
        "three_structures: all three structures deterministic, \
         no false positives, no silent failures"
    );
}

/// Counts outcomes in classes the given structure must never produce.
fn census_violations(
    label: &str,
    report: &rtft_chaos::CampaignReport,
    forbidden: &[OutcomeClass],
) -> u64 {
    let mut violations = 0;
    for &class in forbidden {
        let n = report.count(class);
        if n > 0 {
            println!("FAIL: {label}: {n} {} outcome(s)", class.label());
            violations += n as u64;
        }
    }
    violations
}
