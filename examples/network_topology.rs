//! Regenerates the paper's structural figures as Graphviz DOT:
//! Figure 1 (reference vs duplicated network) and Figure 2 (the MJPEG and
//! ADPCM application pipelines).
//!
//! ```text
//! cargo run -p rtft-examples --bin network_topology > figures.dot
//! # then: dot -Tpng figures.dot  (one graph per `digraph` block)
//! ```

use rtft_core::dot::{figure1_duplicated, figure1_reference, NetworkSketch, NodeShape};

/// Figure 2 (top): the MJPEG decoder pipeline.
fn figure2_mjpeg() -> NetworkSketch {
    let mut s = NetworkSketch::new("mjpeg_decoder");
    for n in [
        "input",
        "splitstream",
        "decode lane 1",
        "decode lane 2",
        "mergeframe",
        "output",
    ] {
        s.node(n, NodeShape::Process);
    }
    s.edge("input", "splitstream", Some("encoded frame (10 KB)"))
        .edge("splitstream", "decode lane 1", None)
        .edge("splitstream", "decode lane 2", None)
        .edge("decode lane 1", "mergeframe", None)
        .edge("decode lane 2", "mergeframe", None)
        .edge("mergeframe", "output", Some("decoded frame (76.8 KB)"));
    s.cluster(
        "critical subnetwork (duplicated)",
        vec![
            "splitstream".into(),
            "decode lane 1".into(),
            "decode lane 2".into(),
            "mergeframe".into(),
        ],
    );
    s
}

/// Figure 2 (bottom): the ADPCM application pipeline.
fn figure2_adpcm() -> NetworkSketch {
    let mut s = NetworkSketch::new("adpcm_application");
    for n in ["input", "encoder", "decoder", "output"] {
        s.node(n, NodeShape::Process);
    }
    s.edge("input", "encoder", Some("PCM sample (3 KB)"))
        .edge("encoder", "decoder", Some("ADPCM (768 B, 4:1)"))
        .edge("decoder", "output", Some("PCM sample (3 KB)"));
    s.cluster(
        "critical subnetwork (duplicated)",
        vec!["encoder".into(), "decoder".into()],
    );
    s
}

fn main() {
    println!("// Figure 1 (top): reference process network");
    print!("{}", figure1_reference().to_dot());
    println!("// Figure 1 (bottom): duplicated process network");
    print!("{}", figure1_duplicated().to_dot());
    println!("// Figure 2 (top): MJPEG decoder");
    print!("{}", figure2_mjpeg().to_dot());
    println!("// Figure 2 (bottom): ADPCM application");
    print!("{}", figure2_adpcm().to_dot());
}
