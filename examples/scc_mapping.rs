//! Mapping the fault-tolerant ADPCM application onto the emulated Intel
//! SCC (paper §4.1): one process per tile, low router contention, message
//! timing from the MPB model, per-core TSCs synchronised at boot.
//!
//! ```text
//! cargo run --release -p rtft-examples --bin scc_mapping
//! ```

use rtft_apps::networks::App;
use rtft_core::{build_duplicated, FaultPlan};
use rtft_kpn::Engine;
use rtft_rtc::TimeNs;
use rtft_scc::{
    low_contention_pipeline, CoreId, NocModel, SccClocks, SccPlatform, TileId, TscBank,
};

fn main() {
    // The SCC as the paper boots it.
    let clocks = SccClocks::paper_boot();
    println!(
        "SCC boot: tiles @ {} MHz, routers @ {} MHz, DDR3 @ {} MHz, 24 tiles / 48 cores",
        clocks.tile.freq_hz() / 1_000_000,
        clocks.router.freq_hz() / 1_000_000,
        clocks.memory.freq_hz() / 1_000_000
    );

    // Boot-time TSC synchronisation (§4.1: "All clocks are synchronized at
    // application boot time").
    let mut tscs = TscBank::unsynchronized(&clocks, 42);
    let boot = TimeNs::from_ms(50);
    println!("TSC skew before sync: {} cycles", tscs.max_skew(boot));
    tscs.synchronize(boot);
    println!("TSC skew after sync : {} cycles", tscs.max_skew(boot));

    // Low-contention placement: ADPCM duplicated network has 9 processes
    // (producer, 2×(encoder, decoder, shaper), consumer... plus channels);
    // we place the 8 mapped processes one-per-tile along the snake.
    let mapping = low_contention_pipeline(8);
    println!("\nOne-process-per-tile snake placement (Zimmer-style):");
    for i in 0..8 {
        let core = mapping.core(i);
        println!("  process {i} -> {core} on {}", core.tile());
    }
    let flows: Vec<(usize, usize)> = (0..7).map(|i| (i, i + 1)).collect();
    println!(
        "max flows sharing one mesh link: {}",
        mapping.max_link_sharing(&flows)
    );

    // Message timing: the paper's ≤3 KB chunks through the MPBs.
    let noc = NocModel::paper_boot();
    for (bytes, label) in [
        (3 * 1024, "one 3 KB ADPCM sample"),
        (76_800, "one decoded frame"),
    ] {
        let near = noc.message_latency(CoreId::new(0), CoreId::new(2), bytes);
        let far = noc.message_latency(
            TileId::at(0, 0).cores()[0],
            TileId::at(5, 3).cores()[0],
            bytes,
        );
        println!("{label}: 1 hop {near}, 8 hops {far}");
    }

    // Run the fault-tolerant ADPCM network under the SCC timing model:
    // the replicator/selector channels are charged MPB transfer latencies.
    let app = App::Adpcm;
    let tokens = 150u64;
    let cfg = app
        .duplication_config(1, tokens)
        .expect("bounded profile")
        .with_fault(0, FaultPlan::fail_stop_at(TimeNs::from_ms(300)));
    let factory = app.replica_factory([11, 22]);
    let (net, ids) = build_duplicated(&cfg, &factory);

    let mut platform = SccPlatform::paper_boot();
    // Route the arbitration channels across the mesh: producer on tile 0,
    // replicas on tiles 1 and 2, consumer on tile 3 (snake order).
    let (t0, t1, t2, t3) = (
        mapping.core(0),
        mapping.core(1),
        mapping.core(2),
        mapping.core(3),
    );
    platform.route(ids.replicator, t0, t1);
    platform.route(ids.selector, t2, t3);

    let mut engine = Engine::with_platform(net, Box::new(platform));
    engine.run_until(TimeNs::from_secs(10));
    let net = engine.network();
    println!(
        "\nADPCM on the SCC model: {}/{} samples delivered; replica 0 flagged: {}",
        ids.consumer_arrivals(net).len(),
        tokens,
        ids.replicator_faults(net)[0].is_some() || ids.selector_faults(net)[0].is_some()
    );
    assert_eq!(ids.consumer_arrivals(net).len() as u64, tokens);
    println!(
        "(on-chip transfers cost microseconds against 6.3 ms periods — the paper's\n\
         observation that communication does not influence FIFO sizes or detection times)"
    );
}
