//! The fleet executor on a mixed MJPEG tenant population — the CI smoke
//! for `rtft-fleet`.
//!
//! Submits six small MJPEG decoding jobs (duplicated networks from the
//! paper's Table 1 profile, run under the deterministic DES engine) to a
//! two-worker fleet. One tenant has a fail-stop fault injected into
//! replica 0: its first run masks the fault (every frame still arrives),
//! the fleet observes the latched replica and re-spawns the job from a
//! healed template, and the replacement completes cleanly — one recorded
//! recovery.
//!
//! Exits non-zero if any job fails or no recovery is recorded, so CI can
//! run it as a smoke test:
//!
//! ```sh
//! cargo run --release --bin fleet
//! ```

use rtft_apps::networks::App;
use rtft_core::FaultPlan;
use rtft_fleet::{Admission, FleetConfig, FleetExecutor, JobRuntime, JobSpec, JobTemplate};
use rtft_rtc::TimeNs;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let app = App::Mjpeg;
    let tokens = 24u64;
    let jobs = 6usize;
    let faulty_tenant = 2usize;

    let fleet = FleetExecutor::new(FleetConfig {
        workers: 2,
        pending_capacity: 16,
        max_replacements: 1,
    });

    println!(
        "fleet: {jobs} {} jobs of {tokens} frames each, fault injected into tenant-{faulty_tenant}",
        app.label()
    );
    for i in 0..jobs {
        let mut cfg = app
            .duplication_config(i as u64, tokens)
            .expect("bounded profile");
        if i == faulty_tenant {
            cfg = cfg.with_fault(0, FaultPlan::fail_stop_at(TimeNs::from_ms(300)));
        }
        let factory = Arc::new(app.replica_factory([11 + i as u64, 22 + i as u64]));
        let admission = fleet.submit(JobSpec {
            name: format!("tenant-{i}"),
            template: JobTemplate::Duplicated { cfg, factory },
            relative_deadline: Duration::from_secs(60),
            runtime: JobRuntime::DiscreteEvent {
                horizon: TimeNs::from_secs(10),
            },
        });
        assert!(matches!(admission, Admission::Admitted(_)), "admission");
    }

    let report = fleet.join();

    println!();
    println!("  id  tenant     attempts  arrivals  faulty  recovered  deadline");
    for job in &report.runs {
        println!(
            "  {:>2}  {:<9}  {:>8}  {:>8}  {:>6}  {:>9}  {:>8}",
            job.id.0,
            job.name,
            job.attempts,
            format!("{}/{}", job.arrivals, job.expected),
            format!("{:?}", job.faulty_replicas),
            job.recovered,
            if job.deadline_met { "met" } else { "MISSED" },
        );
    }
    println!();
    println!("fleet status: {}", report.status.to_json());

    let failed = report.runs.iter().filter(|r| r.failed).count();
    if failed > 0 || report.status.recovered < 1 {
        eprintln!(
            "SMOKE FAILED: {failed} failed jobs, {} recoveries (expected 0 / >=1)",
            report.status.recovered
        );
        std::process::exit(1);
    }
    println!(
        "SMOKE OK: {} jobs completed, {} replacement(s), {} recovery(ies)",
        report.status.completed, report.status.replaced, report.status.recovered
    );
}
