//! The paper's headline experiment end-to-end: a fault-tolerant MJPEG
//! decoder (Fig. 2 top) decoding real bitstreams, with one replica
//! fail-stopping mid-stream.
//!
//! ```text
//! cargo run --release -p rtft-examples --bin mjpeg_fault_tolerance
//! ```

use rtft_apps::networks::App;
use rtft_apps::{mjpeg, video::VideoSource};
use rtft_core::equivalence::{compare_streams, TimingStats};
use rtft_core::{build_duplicated, build_reference, FaultPlan};
use rtft_kpn::Engine;
use rtft_rtc::TimeNs;

fn main() {
    let app = App::Mjpeg;
    let tokens = 120u64;
    let fault_at = TimeNs::from_secs(2);

    // Show the real codec at work on one frame first.
    let frame = VideoSource::new(1).frame(0);
    let encoded = mjpeg::encode(&frame, mjpeg::DEFAULT_QUALITY);
    let decoded = mjpeg::decode(&encoded).expect("own bitstream decodes");
    println!(
        "MJPEG-lite codec: {} px frame -> {} B encoded -> decoded MAE {:.2}",
        frame.pixels.len(),
        encoded.len(),
        frame.mae(&decoded)
    );

    // Reference network (no replication) as the ground truth.
    let cfg = app.duplication_config(1, tokens).expect("bounded profile");
    let factory = app.replica_factory([11, 22]);
    let (ref_net, ref_ids) = build_reference(&cfg, &factory);
    let mut reference = Engine::new(ref_net);
    reference.run_until(TimeNs::from_secs(60));
    let ref_arrivals = ref_ids.consumer_arrivals(reference.network()).to_vec();

    // Duplicated network with a fail-stop in replica 1 (the slow one).
    let cfg = cfg.with_fault(1, FaultPlan::fail_stop_at(fault_at));
    let (dup_net, dup_ids) = build_duplicated(&cfg, &factory);
    let mut dup = Engine::new(dup_net);
    dup.run_until(TimeNs::from_secs(60));
    let net = dup.network();

    // Theorem 2: identical decoded-frame sequence, token for token.
    let cmp = compare_streams(&ref_arrivals, dup_ids.consumer_arrivals(net));
    println!(
        "Theorem 2 check: lengths {:?}, first value mismatch {:?}, max lag {}, values equal: {}",
        cmp.lengths,
        cmp.first_value_mismatch,
        cmp.max_lag,
        cmp.values_equal()
    );
    assert!(cmp.values_equal());

    // Detection at both sites, within the computed bounds.
    println!(
        "analytic bounds: selector {}, replicator {}",
        cfg.sizing.selector_detection_bound, cfg.sizing.replicator_detection_bound
    );
    if let Some(f) = dup_ids.selector_faults(net)[1] {
        println!(
            "selector   flagged replica 1 after {} ({:?})",
            f.at - fault_at,
            f.cause
        );
        assert!(f.at - fault_at <= cfg.sizing.selector_detection_bound);
    }
    if let Some(f) = dup_ids.replicator_faults(net)[1] {
        println!(
            "replicator flagged replica 1 after {} ({:?})",
            f.at - fault_at,
            f.cause
        );
    }

    // Decoded inter-frame timing (Table 2's last block).
    let stats = TimingStats::from_arrivals(dup_ids.consumer_arrivals(net)).expect("gaps");
    println!("decoded inter-frame timings (duplicated, across the fault): {stats}");
}
