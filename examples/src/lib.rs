//! Shared nothing: this crate exists to host the runnable example binaries
//! in the repository's `examples/` directory (see `[[bin]]` entries in its
//! `Cargo.toml`). Run them with e.g.
//! `cargo run --release -p rtft-examples --bin quickstart`.
