//! The tenant lifecycle layer end to end — the CI smoke for
//! `rtft-tenant` under `rtft-serve`.
//!
//! Thirty-two tenants stream into one tenancy-enabled server. Tenant 0
//! carries an injected permanent timing fault (fail-stop in replica 1 of
//! its duplicated pipeline); while the second round of flushes is in
//! flight, the operator detaches four healthy tenants. The smoke then
//! holds the directory to the subsystem's two contracts:
//!
//! * **Isolation** — the injected fault latches in tenant 0's books and
//!   nowhere else, and every surviving tenant gets all of its tokens
//!   back in order with matching digests.
//! * **Lossless detach** — each detached tenant drains to a zero
//!   in-flight, zero buffered balance with `tokens_in == delivered`,
//!   and its refused second round is counted under `rejected_draining`
//!   (the client still holds those tokens; nothing is silently dropped).
//!
//! Exits non-zero on a leaked fault, an unbalanced book, or a lost
//! token, so CI can run it as a smoke test:
//!
//! ```sh
//! cargo run --release --bin tenant
//! ```

use rtft_apps::networks::App;
use rtft_rtc::TimeNs;
use rtft_serve::{
    detection_bound, digest_of, workload, Client, FaultInjection, Server, ServerConfig,
    TenancyConfig, TenantState,
};

const TENANTS: usize = 32;
const DETACHED: [usize; 4] = [8, 16, 24, 31];
const BATCH: usize = 6;
const FAULTY_TOKENS: usize = 16;

fn app_of(i: usize) -> App {
    if i == 0 {
        App::Mjpeg
    } else {
        App::Adpcm
    }
}

fn tokens_of(i: usize) -> usize {
    if i == 0 {
        FAULTY_TOKENS
    } else {
        BATCH
    }
}

/// One synchronous send + flush; returns delivered count, digest-order
/// correctness, and whether an in-bound replica-1 fault latched.
fn stream_round(client: &mut Client, stream: u32, i: usize, seed: u64) -> (usize, bool, bool) {
    let batch = workload(app_of(i), seed, tokens_of(i));
    client.send_tokens(stream, &batch).expect("send");
    let run = client.flush(stream).expect("flush");
    let in_order = run
        .outputs
        .iter()
        .enumerate()
        .all(|(k, o)| o.seq == k as u64 && o.digest == digest_of(&batch[k]));
    let bound = detection_bound(app_of(i)).as_ns();
    let fault_in_bound = run
        .faults
        .iter()
        .any(|f| f.replica == 1 && f.detection_latency_ns > 0 && f.detection_latency_ns <= bound);
    (run.outputs.len(), in_order, fault_in_bound)
}

fn main() {
    let cfg = ServerConfig {
        tenancy: Some(TenancyConfig::default()),
        inject: vec![FaultInjection {
            stream: 0,
            replica: 1,
            at: TimeNs::from_ms(150),
        }],
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("bind loopback");
    println!(
        "tenant: listening on {}, {TENANTS} tenants, fault injected into tenant 0, \
         detaching {:?} under load",
        server.addr(),
        DETACHED
    );

    // Sequential opens: stream i belongs to tenant-i, so the injection's
    // global stream index 0 is tenant 0's pipeline.
    let mut clients: Vec<Option<(Client, u32)>> = (0..TENANTS)
        .map(|i| {
            let mut c = Client::connect(server.addr(), &format!("tenant-{i}")).expect("connect");
            let s = c.open_stream(app_of(i), 2).expect("open").expect_stream();
            Some((c, s))
        })
        .collect();

    let mut failures = 0usize;
    let mut fault_in_bound = false;

    // Round 1: every tenant delivers one batch.
    for (i, slot) in clients.iter_mut().enumerate() {
        let (client, stream) = slot.as_mut().expect("open client");
        let (delivered, in_order, fault) = stream_round(client, *stream, i, i as u64);
        fault_in_bound |= i == 0 && fault;
        if delivered != tokens_of(i) || !in_order {
            eprintln!("SMOKE FAILED: tenant {i} lost or reordered tokens in round 1");
            failures += 1;
        }
    }

    // Round 2 for the survivors runs in threads; the four detaches land
    // while those flushes are in flight.
    let mut handles = Vec::new();
    for (i, slot) in clients.iter_mut().enumerate() {
        if DETACHED.contains(&i) {
            continue;
        }
        let (mut client, stream) = slot.take().expect("open client");
        handles.push(std::thread::spawn(move || {
            let (delivered, in_order, fault) = stream_round(&mut client, stream, i, 100 + i as u64);
            client.close(stream).expect("close");
            (i, delivered, in_order, fault)
        }));
    }

    let mgr = server.tenants().expect("tenancy enabled");
    for &i in &DETACHED {
        let id = mgr.resolve(&format!("tenant-{i}")).expect("attached");
        let report = server.detach_tenant(id).expect("drain and detach");
        println!(
            "  detached tenant {i}: state {:?}, inflight {}, buffered {}, \
             {} of {} tokens delivered",
            report.state, report.inflight, report.buffered, report.delivered, report.tokens_in
        );
        if report.state != TenantState::Detached
            || report.inflight != 0
            || report.buffered != 0
            || report.tokens_in != report.delivered
        {
            eprintln!("SMOKE FAILED: tenant {i} did not drain to a clean balance");
            failures += 1;
        }
    }

    // The detached tenants' second round must be refused — not lost.
    for &i in &DETACHED {
        let (client, stream) = clients[i].as_mut().expect("detached client");
        client
            .send_tokens(*stream, &workload(App::Adpcm, 200 + i as u64, BATCH))
            .expect("send");
        let busy = client.recv_busy(*stream).expect("refusal");
        println!("  tenant {i} round 2 refused: {:?}", busy.reason);
    }

    for handle in handles {
        let (i, delivered, in_order, fault) = handle.join().expect("client thread");
        fault_in_bound |= i == 0 && fault;
        if delivered != tokens_of(i) || !in_order {
            eprintln!("SMOKE FAILED: tenant {i} lost or reordered tokens in round 2");
            failures += 1;
        }
    }
    for &i in &DETACHED {
        let (mut client, stream) = clients[i].take().expect("detached client");
        client.close(stream).expect("close");
    }

    let report = server.shutdown();
    let directory = report.tenants.as_ref().expect("tenant directory");
    println!();
    let (jobs, delivered) = directory
        .tenants
        .iter()
        .fold((0u64, 0u64), |(j, d), t| (j + t.jobs, d + t.delivered));
    println!(
        "  directory: {} tenants attached, {jobs} jobs settled, {delivered} tokens delivered",
        directory.tenants.len(),
    );

    if !fault_in_bound {
        eprintln!("SMOKE FAILED: tenant 0's fault missing or detected out of bound");
        failures += 1;
    }
    for t in &directory.tenants {
        if t.name == "tenant-0" {
            if t.faults == 0 {
                eprintln!("SMOKE FAILED: injected fault absent from tenant 0's books");
                failures += 1;
            }
        } else if t.faults != 0 {
            eprintln!("SMOKE FAILED: fault leaked into {}'s books", t.name);
            failures += 1;
        }
        if DETACHED.iter().any(|&i| t.name == format!("tenant-{i}")) {
            if t.rejected_draining != BATCH as u64 {
                eprintln!(
                    "SMOKE FAILED: {} refused {} tokens, expected {BATCH}",
                    t.name, t.rejected_draining
                );
                failures += 1;
            }
        } else if t.delivered != 2 * tokens_of_name(&t.name) as u64 {
            eprintln!(
                "SMOKE FAILED: {} delivered {} of {}",
                t.name,
                t.delivered,
                2 * tokens_of_name(&t.name)
            );
            failures += 1;
        }
    }
    if !report.balanced() {
        eprintln!("SMOKE FAILED: token accounting does not balance");
        failures += 1;
    }

    if failures > 0 {
        std::process::exit(1);
    }
    println!(
        "SMOKE OK: {} tokens delivered across {TENANTS} tenants, fault confined to tenant 0, \
         {} detached losslessly under load",
        report.delivered(),
        DETACHED.len()
    );
}

fn tokens_of_name(name: &str) -> usize {
    if name == "tenant-0" {
        FAULTY_TOKENS
    } else {
        BATCH
    }
}
