//! The write-ahead log end to end — the CI smoke for `rtft-wal`.
//!
//! Three acts:
//!
//! 1. **Ingest durably, then crash.** A WAL-enabled server acknowledges
//!    every batch `Durable`; one batch is flushed (outputs logged), a
//!    second is left undelivered; the server is then killed with
//!    `hard_drop` — no drain, no goodbye, exactly what a power cut
//!    leaves behind.
//! 2. **Recover.** A fresh server on the same log directory rebuilds the
//!    stream, resumes at its last delivered sequence number, and replays
//!    the undelivered tail through the fleet. Zero token loss across the
//!    crash, and `replay_verify` certifies both lives of the server.
//! 3. **Detect.** A log whose recorded output digest was corrupted (a
//!    bit flip in the result path) is replayed: the divergence is pinned
//!    to the exact position and classified `replay-divergence` by the
//!    chaos taxonomy — the WAL doubling as an offline fault detector.
//!
//! Exits non-zero on token loss, missed recovery, a dirty verify of the
//! honest log, or a missed detection of the corrupted one:
//!
//! ```sh
//! cargo run --release --bin wal
//! ```

use rtft_apps::networks::App;
use rtft_chaos::{classify_replay, OutcomeClass, ReplayVerdict};
use rtft_serve::{digest_of, replay_verify, workload, Client, Server, ServerConfig, WalConfig};
use rtft_wal::{Wal, WalRecord};

const FLUSHED: usize = 8;
const TAIL: usize = 5;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rtft-wal-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn main() {
    let mut failures = 0usize;
    let dir = scratch("log");
    let cfg = ServerConfig {
        wal: Some(WalConfig::new(&dir)),
        ..ServerConfig::default()
    };

    // Act 1: durable ingestion, then a crash with no drain.
    let server = Server::start("127.0.0.1:0", cfg.clone()).expect("bind loopback");
    println!(
        "wal: listening on {}, logging to {}",
        server.addr(),
        dir.display()
    );
    let mut client = Client::connect(server.addr(), "wal-smoke").expect("connect");
    let stream = client
        .open_stream(App::Mjpeg, 2)
        .expect("open")
        .expect_stream();
    let batch = workload(App::Mjpeg, 42, FLUSHED);
    let ack = client
        .send_tokens_durable(stream, &batch)
        .expect("durable send");
    let run = client.flush(stream).expect("flush");
    println!(
        "  ingested {} tokens durable (log seq {}), flushed {} outputs",
        ack.tokens,
        ack.seq,
        run.outputs.len()
    );
    let tail_ack = client
        .send_tokens_durable(stream, &workload(App::Mjpeg, 43, TAIL))
        .expect("durable send");
    println!(
        "  ingested {} more durable (log seq {}), then hard-dropping the server",
        tail_ack.tokens, tail_ack.seq
    );
    server.hard_drop();

    // Act 2: recover on the same log; the tail must replay losslessly.
    let server = Server::start("127.0.0.1:0", cfg.clone()).expect("restart");
    let report = server.shutdown();
    println!(
        "  recovered {} stream(s), replayed {} token(s), truncated {} torn record(s)",
        report.recovered_streams, report.replayed_tokens, report.wal_truncated_records
    );
    let want = (FLUSHED + TAIL) as u64;
    if report.recovered_streams != 1 || report.replayed_tokens != TAIL as u64 {
        eprintln!("SMOKE FAILED: restart did not recover the logged stream");
        failures += 1;
    }
    if !report.balanced() || report.delivered() != want {
        eprintln!(
            "SMOKE FAILED: {} of {want} tokens delivered across the crash",
            report.delivered()
        );
        failures += 1;
    }
    let verify = replay_verify(&dir, &cfg).expect("replay verify");
    println!("  replay verify: {}", verify.to_json());
    if !verify.clean() || verify.streams[0].recorded != want {
        eprintln!("SMOKE FAILED: honest log did not verify clean");
        failures += 1;
    }

    // Act 3: a corrupted recorded digest must be detected and classified.
    let bad_dir = scratch("corrupt");
    let payloads: Vec<rtft_kpn::Bytes> = workload(App::Adpcm, 9, 4)
        .into_iter()
        .map(rtft_kpn::Bytes::from)
        .collect();
    let mut digests: Vec<u64> = payloads.iter().map(|p| digest_of(p)).collect();
    digests[2] ^= 1 << 40; // the bit flip replay verification exists to catch
    {
        let (wal, _) = Wal::open(WalConfig::new(&bad_dir)).expect("open corrupt log");
        let app = App::ALL.iter().position(|a| *a == App::Adpcm).unwrap() as u8;
        wal.append(&WalRecord::StreamOpen {
            stream: 0,
            tenant: 0,
            app,
            redundancy: 2,
        })
        .expect("append");
        wal.append(&WalRecord::Tokens {
            stream: 0,
            payloads,
        })
        .expect("append");
        wal.append(&WalRecord::Outputs {
            stream: 0,
            first_seq: 0,
            digests,
        })
        .expect("append");
        wal.sync().expect("sync");
    }
    let suspect = replay_verify(&bad_dir, &ServerConfig::default()).expect("replay verify");
    let verdict = ReplayVerdict {
        recorded: suspect.streams[0].recorded,
        divergent: suspect.divergent(),
        known_faulty: false,
    };
    let class = classify_replay(verdict);
    println!(
        "  corrupted log: {} divergent at {:?}, classified {}",
        suspect.divergent(),
        suspect.streams[0].first_divergence,
        class.label()
    );
    if suspect.divergent() != 1 || class != OutcomeClass::ReplayDivergence {
        eprintln!("SMOKE FAILED: corrupted digest not detected as replay divergence");
        failures += 1;
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&bad_dir);
    if failures > 0 {
        std::process::exit(1);
    }
    println!(
        "SMOKE OK: {want} tokens survived a hard crash, honest log verified clean, \
         corrupted log detected"
    );
}
