//! End-to-end tour of the observability subsystem (`rtft-obs`) on the
//! MJPEG fault-tolerance experiment.
//!
//! Runs the duplicated MJPEG network with a fail-stop fault injected into
//! replica 0, with every observability layer attached:
//!
//! * engine metrics (`Engine::with_metrics`) — token/event counters and
//!   per-channel fill gauges with high-water marks;
//! * detection instrumentation (`instrument_duplicated`) — the replicator
//!   and selector report latches into a `HealthModel`, which folds them
//!   into per-replica status and a detection-latency histogram;
//! * the bounded execution trace (`Engine::with_trace`), exported as JSONL
//!   through an `rtft_obs::EventSink`.
//!
//! Everything runs on deterministic virtual time: the subsystem records
//! *which* virtual instant things happened at but never reads a host
//! clock on the observed path — the same zero-timekeeping discipline as
//! the paper's counter-based detection.
//!
//! ```sh
//! cargo run --bin observability
//! ```

use rtft_core::{build_duplicated, instrument_duplicated, FaultPlan};
use rtft_kpn::{Engine, TraceEvent};
use rtft_obs::{
    events_to_jsonl, registry_to_json, summary_report, ClockDomain, EventRecord, EventSink,
    MetricsRegistry, ReplicaStatus,
};
use rtft_rtc::TimeNs;

use rtft_apps::networks::App;

fn main() {
    let app = App::Mjpeg;
    let tokens = 200u64;
    let fault_at = TimeNs::from_secs(2);
    let cfg = app
        .duplication_config(7, tokens)
        .expect("bounded profile")
        .with_seeds(1, 2)
        .with_fault(0, FaultPlan::fail_stop_at(fault_at));
    let period = cfg.model.producer.period;
    let factory = app.replica_factory([11, 22]);

    println!("== observability demo: MJPEG duplicated network ==");
    println!(
        "{} tokens at {} period, replica 0 fail-stops at {}\n",
        tokens, period, fault_at
    );

    // Attach every layer, then run to completion on virtual time.
    let registry = MetricsRegistry::new();
    let (mut net, ids) = build_duplicated(&cfg, &factory);
    let health = instrument_duplicated(&mut net, &ids, &cfg, &registry);
    let mut engine = Engine::new(net).with_metrics(&registry).with_trace();
    engine.run_until(period * (tokens + 40) + TimeNs::from_secs(2));

    // 1. The human-readable summary: counters, watermarks, health.
    print!("{}", summary_report(&registry, Some(&health)));

    assert_eq!(
        health.status(0),
        ReplicaStatus::Faulty,
        "fault must be detected"
    );
    assert_eq!(
        health.status(1),
        ReplicaStatus::Healthy,
        "peer must stay clean"
    );
    assert_eq!(
        ids.consumer_arrivals(engine.network()).len() as u64,
        tokens,
        "fault must be masked: the consumer sees every token"
    );

    // 2. The trace ring, exported as JSONL (tail only — the ring already
    //    bounded memory during the run and counted what it evicted).
    let trace = engine.trace();
    let sink = EventSink::new(8);
    for (at, ev) in trace.events() {
        let (name, node, channel, value) = match ev {
            TraceEvent::TokenWritten {
                node,
                port,
                seq,
                dropped,
            } => (
                if dropped {
                    "token.discarded"
                } else {
                    "token.written"
                },
                Some(node.0),
                Some(port.channel.0),
                seq,
            ),
            TraceEvent::TokenRead { node, port, seq } => {
                ("token.read", Some(node.0), Some(port.channel.0), seq)
            }
            TraceEvent::ReadBlocked { node, port } => {
                ("read.blocked", Some(node.0), Some(port.channel.0), 0)
            }
            TraceEvent::WriteBlocked { node, port } => {
                ("write.blocked", Some(node.0), Some(port.channel.0), 0)
            }
            TraceEvent::Halted { node } => ("process.halted", Some(node.0), None, 0),
        };
        sink.push(EventRecord {
            at_ns: at.as_ns(),
            clock: ClockDomain::Virtual,
            name,
            node,
            channel,
            value,
        });
    }
    println!(
        "\n== last {} of {} trace events (+{} evicted by the ring), as JSONL ==",
        sink.len(),
        trace.len(),
        trace.dropped()
    );
    print!("{}", events_to_jsonl(&sink));

    // 3. The machine-readable registry dump a campaign would archive next
    //    to its result tables.
    println!("\n== registry JSON ==");
    println!("{}", registry_to_json(&registry));
}
