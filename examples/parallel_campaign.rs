//! Worker-count independence smoke for the parallel campaign drivers.
//!
//! Runs a small chaos campaign and a small Table 2 fault campaign twice —
//! once on the sequential inline path (workers = 1) and once scattered
//! across two workers — and exits non-zero if any emitted report diverges
//! by a single byte. This is the CI-enforced form of the scatter/ordered-
//! gather determinism contract (DESIGN.md, "Parallel campaign execution"):
//!
//! ```sh
//! cargo run --release -p rtft-examples --bin parallel_campaign
//! ```

use rtft_apps::networks::App;
use rtft_bench::campaign::fault_campaign_observed_with_workers;
use rtft_chaos::Campaign;
use rtft_rtc::TimeNs;

fn main() {
    let mut violations = 0u64;

    let seed = 0xDAC14u64;
    let count = 30u64;
    println!("parallel_campaign: chaos seed {seed:#x}, {count} scenarios, workers 1 vs 2");
    let campaign = Campaign::generate(seed, count);
    let sequential = campaign.run_with_workers(1);
    let parallel = campaign.run_with_workers(2);
    if sequential.to_json() != parallel.to_json() {
        println!("FAIL: chaos CampaignReport JSON diverges between workers 1 and 2");
        violations += 1;
    }
    if sequential.bench_line() != parallel.bench_line() {
        println!("FAIL: chaos bench line diverges between workers 1 and 2");
        violations += 1;
    }

    let fault_at = TimeNs::from_ms(189);
    println!("parallel_campaign: Table 2 fault campaign (adpcm, 6 runs), workers 1 vs 2");
    let (seq_campaign, seq_metrics) =
        fault_campaign_observed_with_workers(App::Adpcm, 6, 80, fault_at, 1);
    let (par_campaign, par_metrics) =
        fault_campaign_observed_with_workers(App::Adpcm, 6, 80, fault_at, 2);
    if seq_metrics.to_json() != par_metrics.to_json() {
        println!("FAIL: BenchMetrics JSON diverges between workers 1 and 2");
        violations += 1;
    }
    if format!("{seq_campaign:?}") != format!("{par_campaign:?}") {
        println!("FAIL: FaultCampaign aggregates diverge between workers 1 and 2");
        violations += 1;
    }
    if !seq_campaign.all_masked {
        println!("FAIL: fault campaign did not mask every run");
        violations += 1;
    }

    if violations > 0 {
        println!("parallel_campaign: {violations} violation(s)");
        std::process::exit(1);
    }
    println!("parallel_campaign: reports byte-identical across worker counts");
}
