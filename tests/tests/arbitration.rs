//! Arbitration-refactor regression matrix: compare-policy × replica-count.
//!
//! The `crates/core` arbitration decoupling (shared `ArbiterLedger` +
//! `ComparePolicy` implementations behind the `NSelector` / friends
//! `VotingSelector` type aliases) must be *unobservable* from every
//! existing structure. These tests pin that down two ways:
//!
//! 1. **Pinned digests**: full chaos campaign reports (which exercise the
//!    duplicated timing selector and the tri-replica voting selector across
//!    the whole fault palette) hash to the exact FNV-1a value captured
//!    *before* the refactor. A single byte of drift in any outcome,
//!    latch time, or metric fails the test.
//! 2. **Policy × replica-count matrix**: both compare policies at every
//!    supported replica count deliver identical complete streams and latch
//!    exactly the injected replica, run-to-run deterministically.

use rtft_chaos::Campaign;
use rtft_core::{
    build_n_modular, build_n_modular_voting, FaultPlan, NJitterStageReplica, NModularModel,
    NReplicator, NSelector, NSizingReport, VotingSelector,
};
use rtft_kpn::{Engine, Payload};
use rtft_rtc::{PjdModel, TimeNs};
use std::sync::Arc;

/// FNV-1a 64 over the report bytes — dependency-free content digest.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Campaign reports pinned to their pre-refactor digests. The campaigns
/// mix duplicated and tri-voting scenarios over all platforms and fault
/// kinds, so any behavioral drift in either selector (or the replicator)
/// shows up here.
#[test]
fn campaign_reports_match_pre_refactor_digests() {
    for (seed, count, expected) in [
        (0xDAC14u64, 40u64, 0x5296_4028_F260_5C5Eu64),
        (99, 25, 0xE6BD_0AB2_74A9_87CF),
    ] {
        let json = Campaign::generate(seed, count).run().to_json();
        assert_eq!(
            fnv1a(json.as_bytes()),
            expected,
            "campaign (seed={seed:#x}, count={count}) report drifted from its pre-refactor bytes"
        );
    }
}

fn n_model(n: usize) -> NModularModel {
    let jitters = [5.0, 15.0, 30.0, 10.0, 20.0];
    NModularModel {
        producer: PjdModel::from_ms(30.0, 2.0, 0.0),
        consumer: PjdModel::from_ms(30.0, 2.0, 150.0),
        replicas: (0..n)
            .map(|i| PjdModel::from_ms(30.0, jitters[i], 0.0))
            .collect(),
    }
}

/// Runs one (policy, replica-count) cell: fail-stop replica 1 mid-stream,
/// expect a complete stream and exactly replica 1 latched.
fn run_cell(voting: bool, n: usize) -> (usize, Vec<usize>, String) {
    let model = n_model(n);
    let sizing = NSizingReport::analyze(&model).expect("bounded");
    let factory = NJitterStageReplica::from_model(&model).with_seed_base(7);
    let tokens = 120u64;
    let mut faults = vec![FaultPlan::healthy(); n];
    faults[1] = FaultPlan::fail_stop_at(TimeNs::from_secs(2));
    let payload: rtft_core::PayloadGenerator =
        Arc::new(|seq| Payload::U64(seq.wrapping_mul(0x9e37_79b9)));
    let (net, ids) = if voting {
        build_n_modular_voting(&model, &sizing, tokens, (1, 2), payload, &factory, &faults)
    } else {
        build_n_modular(&model, &sizing, tokens, (1, 2), payload, &factory, &faults)
    };
    let mut engine = Engine::new(net);
    engine.run_until(TimeNs::from_secs(60));
    let net = engine.network();
    let rep = net
        .channel_as::<NReplicator>(ids.replicator)
        .expect("n-replicator");
    let mut latched: Vec<usize> = if voting {
        let sel = net
            .channel_as::<VotingSelector>(ids.selector)
            .expect("voting selector");
        rep.faulty_indices().chain(sel.faulty_indices()).collect()
    } else {
        let sel = net
            .channel_as::<NSelector>(ids.selector)
            .expect("n-selector");
        rep.faulty_indices().chain(sel.faulty_indices()).collect()
    };
    latched.sort_unstable();
    latched.dedup();
    let arrivals = ids.consumer_arrivals(net);
    let transcript = format!("{arrivals:?}");
    (arrivals.len(), latched, transcript)
}

#[test]
fn policy_by_replica_count_matrix_is_deterministic_and_correct() {
    // Timing policy at n ∈ {2, 3, 4}; voting policy at n ∈ {3, 4, 5}
    // (majority voting needs a tie-breaker).
    let cells: Vec<(bool, usize)> = vec![
        (false, 2),
        (false, 3),
        (false, 4),
        (true, 3),
        (true, 4),
        (true, 5),
    ];
    for (voting, n) in cells {
        let (arrivals, latched, transcript) = run_cell(voting, n);
        assert_eq!(
            arrivals,
            120,
            "policy={} n={n}: survivors must keep the stream complete",
            if voting { "voting" } else { "timing" }
        );
        assert_eq!(
            latched,
            vec![1],
            "policy={} n={n}: exactly the injected replica latches",
            if voting { "voting" } else { "timing" }
        );
        // Run-to-run determinism of the full arrival transcript.
        let (_, _, again) = run_cell(voting, n);
        assert_eq!(transcript, again, "policy={voting} n={n} not deterministic");
    }
}
