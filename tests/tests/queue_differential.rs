//! Differential acceptance: the calendar-queue scheduler is
//! observationally identical to the legacy binary heap.
//!
//! The calendar queue is a pure performance substitution — same events,
//! same timestamps, same deterministic same-timestamp order (stable
//! sequence tiebreak). These tests prove it at the system level by
//! running the *same seeded campaigns* under both schedulers and
//! asserting the canonical JSON reports are **byte-identical**, at every
//! supported worker count. Any divergence — one reordered delivery, one
//! shifted detection latency — fails the diff.
//!
//! [`rtft_kpn::set_default_queue`] is process-wide, so every test in
//! this binary serializes on one lock and restores the calendar default
//! before releasing it.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use rtft_chaos::{run_net_chaos, Campaign, NetChaosConfig};
use rtft_kpn::{set_default_queue, QueueKind};

/// Serializes queue-switching tests (the default queue is a process
/// global) and guarantees the calendar default is restored on exit.
struct QueueGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl QueueGuard {
    fn lock() -> QueueGuard {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = LOCK
            .get_or_init(Mutex::default)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        QueueGuard(guard)
    }
}

impl Drop for QueueGuard {
    fn drop(&mut self) {
        set_default_queue(QueueKind::Calendar);
    }
}

/// Self-cleaning scratch directory (no external tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("rtft-qdiff-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One fault-injection campaign, every queue × worker-count combination:
/// six byte-identical reports.
#[test]
fn campaign_reports_identical_across_queues_and_workers() {
    let _guard = QueueGuard::lock();
    let campaign = Campaign::generate(0xD1FF, 48);

    set_default_queue(QueueKind::Heap);
    let reference = campaign.run_with_workers(1).to_json();

    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        set_default_queue(kind);
        for workers in [1usize, 2, 4] {
            let report = campaign.run_with_workers(workers).to_json();
            assert_eq!(
                report, reference,
                "campaign report diverged: queue={kind:?} workers={workers}"
            );
        }
    }
}

/// The heterogeneous-lockstep campaign through the same diff.
#[test]
fn hetero_campaign_reports_identical_across_queues_and_workers() {
    let _guard = QueueGuard::lock();
    let campaign = Campaign::generate_hetero(0xD1FF, 32, 3);

    set_default_queue(QueueKind::Heap);
    let reference = campaign.run_with_workers(1).to_json();

    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        set_default_queue(kind);
        for workers in [1usize, 2, 4] {
            let report = campaign.run_with_workers(workers).to_json();
            assert_eq!(
                report, reference,
                "hetero campaign report diverged: queue={kind:?} workers={workers}"
            );
        }
    }
}

/// The network-chaos harness — live server, hostile clients, WAL replay
/// verification — produces the same canonical report under both queues.
#[test]
fn net_chaos_reports_identical_across_queues() {
    let _guard = QueueGuard::lock();
    let cfg = NetChaosConfig {
        seed: 0xD1FF,
        connections: 12,
        hostile: 6,
        ..NetChaosConfig::default()
    };

    set_default_queue(QueueKind::Heap);
    let dir = TempDir::new("heap");
    let heap = run_net_chaos(&cfg, &dir.0).expect("net chaos under heap queue");

    set_default_queue(QueueKind::Calendar);
    let dir = TempDir::new("calendar");
    let calendar = run_net_chaos(&cfg, &dir.0).expect("net chaos under calendar queue");

    assert_eq!(
        heap.to_json(),
        calendar.to_json(),
        "net-chaos report diverged between heap and calendar queues"
    );
}
