//! Integration tests of `rtft-wal`: a kill-point sweep that truncates
//! the log at *every byte offset* of its final record and asserts clean
//! truncate-at-tail recovery, and the replay-as-fault-detection path — a
//! log whose recorded output digests were corrupted in flight is flagged
//! divergent and classified as a detected transient fault by the chaos
//! taxonomy.

use rtft_apps::networks::App;
use rtft_chaos::{classify_replay, OutcomeClass, ReplayVerdict};
use rtft_kpn::Bytes;
use rtft_serve::{digest_of, replay_verify, workload, ServerConfig};
use rtft_wal::{read_log, segment_file_name, Wal, WalConfig, WalRecord};

/// A self-cleaning scratch directory (no tempfile crate in a
/// zero-dependency workspace).
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("rtft-waltest-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn app_index(app: App) -> u8 {
    App::ALL
        .iter()
        .position(|a| *a == app)
        .expect("App::ALL contains every variant") as u8
}

/// The kill-point sweep: write a log, then for every byte offset inside
/// its final record simulate a crash that left exactly that prefix on
/// disk. Recovery must always come back with every record *before* the
/// torn one, truncate the tail physically, and leave a log that accepts
/// new appends — no panic, no half-read record, at any cut.
#[test]
fn recovery_survives_truncation_at_every_byte_of_the_final_record() {
    let master = TempDir::new("killpoint-master");
    let records: Vec<WalRecord> = vec![
        WalRecord::StreamOpen {
            stream: 0,
            tenant: 0,
            app: app_index(App::Adpcm),
            redundancy: 2,
        },
        WalRecord::Tokens {
            stream: 0,
            payloads: vec![
                Bytes::from(vec![1, 2, 3]),
                Bytes::from(vec![]),
                Bytes::from(vec![4; 17]),
            ],
        },
        WalRecord::Outputs {
            stream: 0,
            first_seq: 0,
            digests: vec![11, 22, 33],
        },
        WalRecord::Tokens {
            stream: 0,
            payloads: vec![Bytes::from(vec![9; 5]), Bytes::from(vec![8; 9])],
        },
    ];
    {
        let (wal, _) = Wal::open(WalConfig::new(master.path()).with_fsync(false)).expect("open");
        for rec in &records {
            wal.append(rec).expect("append");
        }
        wal.sync().expect("sync");
    }
    let seg = master.path().join(segment_file_name(0));
    let bytes = std::fs::read(&seg).expect("read segment");
    let final_frame = records.last().unwrap().encode_frame().len();
    let final_start = bytes.len() - final_frame;

    // Every cut inside the final record, plus the clean full-length file.
    for cut in final_start..=bytes.len() {
        let dir = TempDir::new(&format!("killpoint-{cut}"));
        std::fs::write(dir.path().join(segment_file_name(0)), &bytes[..cut]).expect("write cut");

        let (wal, recovery) =
            Wal::open(WalConfig::new(dir.path()).with_fsync(false)).expect("recover at cut {cut}");
        let survivors = if cut == bytes.len() { 4 } else { 3 };
        assert_eq!(
            recovery.records.len(),
            survivors,
            "cut at byte {cut}: every record before the torn one survives"
        );
        for ((_, got), want) in recovery.records.iter().zip(&records) {
            assert_eq!(got, want, "cut at byte {cut}: surviving records intact");
        }
        // A partial frame on disk counts as one torn record; a cut right
        // on the record boundary leaves nothing to truncate.
        let torn = cut != final_start && cut != bytes.len();
        assert_eq!(recovery.truncated_records, u64::from(torn));
        assert_eq!(
            recovery.truncated_bytes,
            if torn { (cut - final_start) as u64 } else { 0 }
        );

        // The truncation is physical and the log is appendable again.
        let len_after = std::fs::metadata(dir.path().join(segment_file_name(0)))
            .expect("metadata")
            .len() as usize;
        assert_eq!(
            len_after,
            if cut == bytes.len() { cut } else { final_start }
        );
        let seq = wal
            .append(&WalRecord::StreamClose { stream: 0 })
            .expect("append after recovery");
        drop(wal);
        let (reread, summary) = read_log(dir.path()).expect("reread");
        assert_eq!(summary.records, survivors as u64 + 1);
        assert_eq!(
            reread.last().unwrap(),
            &(seq, WalRecord::StreamClose { stream: 0 })
        );
    }
}

/// Replay as fault detection: a log whose `Outputs` digests do not match
/// what the deterministic pipeline reproduces marks the *original* run
/// as having diverged — a transient fault the in-band detectors missed.
/// One recorded digest is corrupted (a bit flip in the result path);
/// `replay_verify` pins the exact position and the chaos taxonomy
/// classifies the run as `replay-divergence`.
#[test]
fn corrupted_log_digest_is_detected_and_classified_as_divergence() {
    let dir = TempDir::new("divergence");
    let cfg = ServerConfig::default();
    let payloads: Vec<Bytes> = workload(App::Adpcm, 9, 4)
        .into_iter()
        .map(Bytes::from)
        .collect();
    let digests: Vec<u64> = payloads.iter().map(|p| digest_of(p)).collect();

    // An honest log, except one recorded output digest had a bit flipped
    // before it reached the disk.
    let mut corrupted = digests.clone();
    corrupted[2] ^= 1 << 40;
    {
        let (wal, _) = Wal::open(WalConfig::new(dir.path()).with_fsync(false)).expect("open");
        wal.append(&WalRecord::StreamOpen {
            stream: 0,
            tenant: 0,
            app: app_index(App::Adpcm),
            redundancy: 2,
        })
        .expect("append");
        wal.append(&WalRecord::Tokens {
            stream: 0,
            payloads: payloads.clone(),
        })
        .expect("append");
        wal.append(&WalRecord::Outputs {
            stream: 0,
            first_seq: 0,
            digests: corrupted.clone(),
        })
        .expect("append");
        wal.sync().expect("sync");
    }

    let report = replay_verify(dir.path(), &cfg).expect("replay");
    assert_eq!(report.log_records, 3);
    assert_eq!(report.divergent(), 1, "exactly the flipped digest diverges");
    assert!(!report.clean());
    let stream = &report.streams[0];
    assert_eq!(stream.recorded, 4);
    assert_eq!(stream.replayed, 4);
    assert_eq!(
        stream.first_divergence,
        Some((2, corrupted[2], digests[2])),
        "the divergence is pinned to the corrupted position"
    );

    // The chaos taxonomy folds the verdict in as a detected fault class.
    let verdict = ReplayVerdict {
        recorded: stream.recorded,
        divergent: stream.divergent,
        known_faulty: false,
    };
    assert_eq!(classify_replay(verdict), OutcomeClass::ReplayDivergence);

    // The same log with the honest digest replays clean.
    let clean_dir = TempDir::new("divergence-clean");
    {
        let (wal, _) = Wal::open(WalConfig::new(clean_dir.path()).with_fsync(false)).expect("open");
        wal.append(&WalRecord::StreamOpen {
            stream: 0,
            tenant: 0,
            app: app_index(App::Adpcm),
            redundancy: 2,
        })
        .expect("append");
        wal.append(&WalRecord::Tokens {
            stream: 0,
            payloads,
        })
        .expect("append");
        wal.append(&WalRecord::Outputs {
            stream: 0,
            first_seq: 0,
            digests,
        })
        .expect("append");
        wal.sync().expect("sync");
    }
    let report = replay_verify(clean_dir.path(), &cfg).expect("replay");
    assert!(report.clean(), "an honest log certifies the original run");
}
