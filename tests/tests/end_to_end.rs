//! Cross-crate integration: the three real applications running through
//! the full fault-tolerance stack, checked against the analytic model.

use rtft_apps::networks::App;
use rtft_core::equivalence::{compare_streams, first_timing_violation, TimingStats};
use rtft_core::{build_duplicated, build_reference, FaultPlan};
use rtft_kpn::Engine;
use rtft_rtc::TimeNs;

const APPS: [App; 3] = [App::Mjpeg, App::Adpcm, App::H264];

fn horizon(app: App, tokens: u64) -> TimeNs {
    app.profile().model.producer.period * (tokens + 40) + TimeNs::from_secs(2)
}

/// Fault-free: duplicated ≡ reference in values, no detections, fills
/// within capacity — for every application.
#[test]
fn all_apps_fault_free_equivalence() {
    for app in APPS {
        let tokens = 40u64;
        let cfg = app.duplication_config(7, tokens).expect("bounded profile");
        let factory = app.replica_factory([1, 2]);
        let (dup_net, dup_ids) = build_duplicated(&cfg, &factory);
        let (ref_net, ref_ids) = build_reference(&cfg, &factory);
        let mut dup = Engine::new(dup_net);
        dup.run_until(horizon(app, tokens));
        let mut reference = Engine::new(ref_net);
        reference.run_until(horizon(app, tokens));

        let cmp = compare_streams(
            ref_ids.consumer_arrivals(reference.network()),
            dup_ids.consumer_arrivals(dup.network()),
        );
        assert!(cmp.values_equal(), "{app:?}: {cmp:?}");

        let dnet = dup.network();
        assert_eq!(dup_ids.replicator_faults(dnet), [None, None], "{app:?}");
        assert_eq!(dup_ids.selector_faults(dnet), [None, None], "{app:?}");
        for i in 0..2 {
            assert!(
                dnet.channel(dup_ids.replicator).max_fill(i)
                    <= cfg.sizing.replicator_capacity[i] as usize,
                "{app:?}: replicator fill exceeds analytic capacity"
            );
        }
        assert!(
            dnet.channel(dup_ids.selector).max_fill(0) <= cfg.sizing.selector_queue_size() as usize,
            "{app:?}: selector fill exceeds analytic capacity"
        );
    }
}

/// Fail-stop in either replica: detection within the analytic bound at
/// the selector, full masking, healthy replica untouched — every app.
#[test]
fn all_apps_fault_detected_within_bounds() {
    for app in APPS {
        for faulty in 0..2usize {
            let tokens = 50u64;
            let period = app.profile().model.producer.period;
            let fault_at = period * 20;
            let cfg = app
                .duplication_config(3, tokens)
                .expect("bounded profile")
                .with_fault(faulty, FaultPlan::fail_stop_at(fault_at));
            let factory = app.replica_factory([5, 6]);
            let (net, ids) = build_duplicated(&cfg, &factory);
            let mut engine = Engine::new(net);
            engine.run_until(horizon(app, tokens));
            let net = engine.network();

            assert_eq!(
                ids.consumer_arrivals(net).len() as u64,
                tokens,
                "{app:?} replica {faulty}: tokens lost"
            );
            let sel = ids.selector_faults(net)[faulty];
            let rep = ids.replicator_faults(net)[faulty];
            assert!(
                sel.is_some() || rep.is_some(),
                "{app:?} replica {faulty}: undetected"
            );
            if let Some(f) = sel {
                let latency = f.at.saturating_sub(fault_at);
                assert!(
                    latency <= cfg.sizing.selector_detection_bound,
                    "{app:?} replica {faulty}: selector latency {} > bound {}",
                    latency,
                    cfg.sizing.selector_detection_bound
                );
            }
            assert!(
                ids.selector_faults(net)[1 - faulty].is_none()
                    && ids.replicator_faults(net)[1 - faulty].is_none(),
                "{app:?}: healthy replica flagged"
            );
        }
    }
}

/// The consumer's delivery timing satisfies its own PJD requirement even
/// across the fault (the timing half of Theorem 2).
#[test]
fn consumer_timing_requirement_holds_across_fault() {
    let app = App::Adpcm;
    let tokens = 60u64;
    let cfg = app
        .duplication_config(9, tokens)
        .expect("bounded")
        .with_fault(1, FaultPlan::fail_stop_at(TimeNs::from_ms(120)));
    let factory = app.replica_factory([3, 4]);
    let (net, ids) = build_duplicated(&cfg, &factory);
    let mut engine = Engine::new(net);
    engine.run_until(horizon(app, tokens));
    let arrivals = ids.consumer_arrivals(engine.network());
    assert_eq!(arrivals.len() as u64, tokens);
    // Reads complete within jitter+slack of the consumer's nominal
    // schedule; slack covers blocking on not-yet-produced tokens.
    let violation = first_timing_violation(
        arrivals,
        &cfg.model.consumer,
        cfg.model.producer.jitter + cfg.model.producer.period,
    );
    assert_eq!(violation, None, "consumer schedule violated");
}

/// Degraded (slow) replicas are detected too, not just fail-stop.
#[test]
fn degraded_replica_detected() {
    let app = App::Adpcm;
    let tokens = 200u64;
    let cfg = app
        .duplication_config(4, tokens)
        .expect("bounded")
        // Replica 1 slows all compute by 20x from 300 ms on: the shaper
        // starves and its output rate collapses.
        .with_fault(1, FaultPlan::slow_by_at(20.0, TimeNs::from_ms(300)));
    let factory = app.replica_factory([8, 9]);
    let (net, ids) = build_duplicated(&cfg, &factory);
    let mut engine = Engine::new(net);
    engine.run_until(horizon(app, tokens) + TimeNs::from_secs(5));
    let net = engine.network();
    assert_eq!(
        ids.consumer_arrivals(net).len() as u64,
        tokens,
        "degradation masked"
    );
    assert!(
        ids.selector_faults(net)[1].is_some() || ids.replicator_faults(net)[1].is_some(),
        "slow replica never flagged"
    );
    assert!(
        ids.selector_faults(net)[0].is_none() && ids.replicator_faults(net)[0].is_none(),
        "healthy replica flagged"
    );
}

/// Determinism across the whole stack: identical seeds give identical
/// arrival logs, including under faults.
#[test]
fn full_stack_is_deterministic() {
    let run = || {
        let app = App::Mjpeg;
        let cfg = app
            .duplication_config(5, 30)
            .expect("bounded")
            .with_fault(0, FaultPlan::fail_stop_at(TimeNs::from_ms(400)));
        let factory = app.replica_factory([7, 8]);
        let (net, ids) = build_duplicated(&cfg, &factory);
        let mut engine = Engine::new(net);
        engine.run_until(horizon(App::Mjpeg, 30));
        ids.consumer_arrivals(engine.network()).to_vec()
    };
    assert_eq!(run(), run());
}

/// Inter-arrival statistics stay at the application's period with or
/// without the framework (Table 2's "similar runtime performance").
#[test]
fn framework_does_not_change_delivery_rate() {
    let app = App::Adpcm;
    let tokens = 80u64;
    let cfg = app.duplication_config(2, tokens).expect("bounded");
    let factory = app.replica_factory([1, 2]);

    let (dup_net, dup_ids) = build_duplicated(&cfg, &factory);
    let mut dup = Engine::new(dup_net);
    dup.run_until(horizon(app, tokens));
    let (ref_net, ref_ids) = build_reference(&cfg, &factory);
    let mut reference = Engine::new(ref_net);
    reference.run_until(horizon(app, tokens));

    let d = TimingStats::from_arrivals(dup_ids.consumer_arrivals(dup.network())).expect("gaps");
    let r =
        TimingStats::from_arrivals(ref_ids.consumer_arrivals(reference.network())).expect("gaps");
    let period_ns = cfg.model.producer.period.as_ns() as f64;
    let d_mean = d.mean.as_ns() as f64;
    let r_mean = r.mean.as_ns() as f64;
    assert!(
        (d_mean - period_ns).abs() / period_ns < 0.05,
        "duplicated mean {d_mean}"
    );
    assert!(
        (d_mean - r_mean).abs() / period_ns < 0.02,
        "reference vs duplicated rates differ"
    );
}
