//! Integration tests for the observability subsystem (`rtft-obs`): the
//! log₂-bucket histogram's quantile accuracy guarantee, and the
//! [`HealthModel`] folding real detection events from the duplicated
//! network under injected fail-stop and rate-degradation faults.

use rtft_apps::networks::App;
use rtft_core::{build_duplicated, instrument_duplicated, FaultPlan};
use rtft_kpn::Engine;
use rtft_obs::{registry_to_json, summary_report, Histogram, MetricsRegistry, ReplicaStatus};
use rtft_rtc::TimeNs;

// ---------------------------------------------------------------------------
// Histogram quantile accuracy. The documented guarantee: an estimate is the
// upper bound of the log₂ bucket holding the rank-q observation (clamped to
// the exact max), so for any value v the estimate lies in [v, 2v).
// ---------------------------------------------------------------------------

#[test]
fn histogram_quantiles_on_uniform_distribution() {
    let h = Histogram::new();
    for v in 1..=1000u64 {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 1000);
    assert_eq!(s.sum, 500_500);
    assert_eq!(s.max, 1000, "max is exact, not bucketed");
    // True quantiles: p50 = 500, p90 = 900, p99 = 990. Estimates must sit
    // within one power of two above the true value, never below it.
    for (est, truth) in [(s.p50, 500u64), (s.p90, 900), (s.p99, 990)] {
        assert!(est >= truth, "estimate {est} below true quantile {truth}");
        assert!(
            est < 2 * truth,
            "estimate {est} beyond 2x true quantile {truth}"
        );
    }
    // Quantiles are monotone in q.
    assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
}

#[test]
fn histogram_quantiles_on_bimodal_distribution() {
    // Two far-apart modes: the median must land near the low mode and the
    // tail quantiles near the high one — a mean-based summary would report
    // 505 everywhere and see neither.
    let h = Histogram::new();
    for _ in 0..500 {
        h.record(10);
    }
    for _ in 0..500 {
        h.record(1000);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 1000);
    assert!(
        (10..20).contains(&s.p50),
        "median {} must sit at the low mode",
        s.p50
    );
    assert_eq!(s.p90, 1000, "tail clamps to the exact max of the high mode");
    assert_eq!(s.p99, 1000);
    let mean = s.mean();
    assert!(
        (504.0..506.0).contains(&mean),
        "mean {mean} sees neither mode"
    );
}

#[test]
fn histogram_quantiles_on_single_bucket_distribution() {
    // All observations identical: every quantile is exact (the bucket upper
    // bound clamps to the true max), including the degenerate zero bucket.
    let h = Histogram::new();
    for _ in 0..100 {
        h.record(42);
    }
    let s = h.snapshot();
    assert_eq!((s.p50, s.p90, s.p99, s.max), (42, 42, 42, 42));
    assert_eq!(s.mean(), 42.0);

    let zeros = Histogram::new();
    zeros.record(0);
    zeros.record(0);
    let z = zeros.snapshot();
    assert_eq!((z.p50, z.p99, z.max, z.sum), (0, 0, 0, 0));
    assert_eq!(z.count, 2);
}

// ---------------------------------------------------------------------------
// HealthModel transitions driven by the real detection machinery.
// ---------------------------------------------------------------------------

struct FaultRun {
    registry: MetricsRegistry,
    health: rtft_obs::HealthModel,
    bound_ns: u64,
}

/// Runs one MJPEG-profile duplicated network with `plan` injected into
/// replica 0, fully instrumented, and returns the observability state.
fn run_with_fault(plan: FaultPlan) -> FaultRun {
    let app = App::Mjpeg;
    let tokens = 120u64;
    let cfg = app
        .duplication_config(1, tokens)
        .expect("bounded profile")
        .with_seeds(1, 2)
        .with_fault(0, plan);
    let period = cfg.model.producer.period;
    let bound_ns = cfg
        .sizing
        .replicator_detection_bound
        .max(cfg.sizing.selector_detection_bound)
        .as_ns();
    let factory = app.replica_factory([11, 22]);
    let registry = MetricsRegistry::new();
    let (mut net, ids) = build_duplicated(&cfg, &factory);
    let health = instrument_duplicated(&mut net, &ids, &cfg, &registry);
    let mut engine = Engine::new(net).with_metrics(&registry);
    engine.run_until(period * (tokens + 40) + TimeNs::from_secs(2));
    FaultRun {
        registry,
        health,
        bound_ns,
    }
}

#[test]
fn health_model_flags_fail_stop_replica() {
    let fault_at = TimeNs::from_secs(1);
    let run = run_with_fault(FaultPlan::fail_stop_at(fault_at));

    assert_eq!(run.health.status(0), ReplicaStatus::Faulty);
    assert_eq!(
        run.health.status(1),
        ReplicaStatus::Healthy,
        "peer must stay clean"
    );
    let r0 = run.health.replica(0).expect("tracked");
    assert!(r0.detections >= 1);
    assert!(r0.first_site.is_some());
    assert_eq!(
        r0.fault_injected_at_ns,
        Some(fault_at.as_ns()),
        "plan pre-registered"
    );

    // Detection latency was derived from the injected instant and respects
    // the analytic worst-case bound.
    let lat = run.health.detection_latency_snapshot();
    assert_eq!(lat.count, 1, "latency recorded once, at first detection");
    assert!(lat.max > 0);
    assert!(
        lat.max <= run.bound_ns,
        "latency {} ns vs bound {} ns",
        lat.max,
        run.bound_ns
    );

    // The exporters agree with the model.
    let report = summary_report(&run.registry, Some(&run.health));
    assert!(report.contains("replica 0: faulty"), "{report}");
    assert!(report.contains("replica 1: healthy"), "{report}");
    assert!(report.contains("detection latency: n=1"), "{report}");
    let json = registry_to_json(&run.registry);
    assert!(json.contains("\"core.detections\""), "{json}");
    assert!(json.contains("\"kpn.engine.events\""), "{json}");
}

#[test]
fn health_model_flags_rate_degraded_replica() {
    // Rate degradation is the paper's "slowed" timing fault. The MJPEG
    // splitstream stage has a 1 ms service time, so a 100x stretch (from
    // t = 1 s) pushes per-token service to over 3x the 30 ms producer
    // period: the replica limps at under a third of the rate, the
    // replicator queue backs up, and detection must fire. The replica must
    // leave `Healthy`; the peer must not.
    let run = run_with_fault(FaultPlan::slow_by_at(100.0, TimeNs::from_secs(1)));

    assert_ne!(
        run.health.status(0),
        ReplicaStatus::Healthy,
        "slow replica undetected"
    );
    assert_eq!(
        run.health.status(1),
        ReplicaStatus::Healthy,
        "peer must stay clean"
    );
    let r0 = run.health.replica(0).expect("tracked");
    assert!(r0.detections >= 1);
    assert!(r0.first_detected_at_ns.expect("detected") >= TimeNs::from_secs(1).as_ns());
    assert_eq!(run.registry.counter("core.detections").get(), r0.detections);
}

#[test]
fn health_model_stays_clean_without_faults() {
    let run = run_with_fault(FaultPlan::healthy());
    assert_eq!(run.health.status(0), ReplicaStatus::Healthy);
    assert_eq!(run.health.status(1), ReplicaStatus::Healthy);
    assert_eq!(run.registry.counter("core.detections").get(), 0);
    assert_eq!(run.health.detection_latency_snapshot().count, 0);
    // The engine metrics still saw the whole run.
    assert!(run.registry.counter("kpn.engine.events").get() > 0);
    assert!(run.registry.counter("kpn.tokens.written").get() > 0);
}
