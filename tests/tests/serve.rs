//! Integration tests of `rtft-serve`: the `RTFT/1` wire protocol under a
//! seeded fuzz of frame shapes, the loopback client/server path through a
//! duplicated pipeline (in-order delivery, fault push within the analytic
//! detection bound), `Busy` backpressure under saturated admission, and
//! graceful shutdown under load with full token accounting.

use rtft_apps::networks::App;
use rtft_fleet::FleetConfig;
use rtft_kpn::Bytes;
use rtft_rtc::TimeNs;
use rtft_serve::wire::{read_frame, write_frame};
use rtft_serve::{
    detection_bound, digest_of, replay_verify, workload, BusyReason, Client, FaultInjection, Frame,
    OpenOutcome, ProtocolError, ServeError, ServeRuntime, Server, ServerConfig, WalConfig,
    DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serialises the wall-clock-sensitive tests (threaded-runtime servers):
/// the harness runs tests on parallel threads, and overlapping sleep-bound
/// fleets stretch scheduler gaps past the quiescence grace.
fn timing_lock() -> MutexGuard<'static, ()> {
    static TIMING: Mutex<()> = Mutex::new(());
    TIMING.lock().unwrap_or_else(|e| e.into_inner())
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded sweep over every frame type with randomised field values and
/// payload shapes — including zero-length and near-max payloads — each
/// encoded and decoded through the real reader path.
#[test]
fn seeded_wire_round_trip_over_all_frame_types() {
    let mut rng = 0x5EED_u64;
    let mut frames = Vec::new();
    for round in 0..64 {
        let r = |rng: &mut u64| splitmix64(rng);
        frames.push(match round % 11 {
            0 => Frame::Hello {
                version: r(&mut rng) as u32,
                client: format!("client-{}", r(&mut rng) % 1000),
            },
            1 => Frame::OpenStream {
                app: (r(&mut rng) % 3) as u8,
                redundancy: 2 + (r(&mut rng) % 2) as u8,
            },
            2 => {
                let count = r(&mut rng) % 5;
                let payloads = (0..count)
                    .map(|_| {
                        let len = match r(&mut rng) % 3 {
                            0 => 0, // zero-length payload
                            1 => (r(&mut rng) % 64) as usize,
                            _ => 4096,
                        };
                        (0..len).map(|_| r(&mut rng) as u8).collect()
                    })
                    .collect();
                Frame::Tokens {
                    stream: r(&mut rng) as u32,
                    payloads,
                }
            }
            3 => Frame::Flush {
                stream: r(&mut rng) as u32,
            },
            4 => Frame::Close {
                stream: r(&mut rng) as u32,
            },
            5 => Frame::Accepted {
                id: r(&mut rng) as u32,
            },
            6 => Frame::Busy {
                stream: r(&mut rng) as u32,
                reason: if r(&mut rng) % 2 == 0 {
                    BusyReason::QueueFull
                } else {
                    BusyReason::ShuttingDown
                },
                pending: r(&mut rng) as u32,
                capacity: r(&mut rng) as u32,
            },
            7 => Frame::Output {
                stream: r(&mut rng) as u32,
                seq: r(&mut rng),
                at_ns: r(&mut rng),
                digest: r(&mut rng),
            },
            8 => Frame::Fault {
                stream: r(&mut rng) as u32,
                replica: r(&mut rng) as u32,
                kind: (r(&mut rng) % 4) as u8,
                detection_latency_ns: r(&mut rng),
            },
            9 => Frame::Durable {
                stream: r(&mut rng) as u32,
                tokens: r(&mut rng) as u32,
                seq: r(&mut rng),
            },
            _ => Frame::Stats {
                stream: r(&mut rng) as u32,
                tokens_in: r(&mut rng),
                delivered: r(&mut rng),
                faults: r(&mut rng),
                busy: r(&mut rng),
                queued: r(&mut rng) as u32,
                inflight: r(&mut rng) as u32,
                outstanding: r(&mut rng) as u32,
            },
        });
    }
    // One near-max-frame Tokens payload on top of the seeded sweep.
    frames.push(Frame::Tokens {
        stream: 1,
        payloads: vec![Bytes::from(vec![0xAB; DEFAULT_MAX_FRAME as usize - 64])],
    });

    // All frames through one contiguous byte stream, as on a socket.
    let mut stream = Vec::new();
    for f in &frames {
        write_frame(&mut stream, f).expect("encode");
    }
    let mut cursor = stream.as_slice();
    for expected in &frames {
        let (decoded, _) = read_frame(&mut cursor, DEFAULT_MAX_FRAME).expect("decode");
        assert_eq!(&decoded, expected);
    }
    assert!(cursor.is_empty(), "no residual bytes after all frames");
}

/// Malformed input is a clean error at every layer — truncated header,
/// truncated body, oversized length, unknown tag — never a panic.
#[test]
fn malformed_wire_input_is_a_clean_connection_error() {
    // Truncated length header: the peer vanished mid-frame.
    let err = read_frame(&mut [0x01u8, 0x02].as_slice(), DEFAULT_MAX_FRAME).unwrap_err();
    assert!(matches!(err, ServeError::ConnectionClosed), "{err}");

    // Length promises more body than the stream carries.
    let mut wire = Vec::new();
    wire.extend_from_slice(&100u32.to_le_bytes());
    wire.push(0x04);
    let err = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap_err();
    assert!(matches!(err, ServeError::ConnectionClosed), "{err}");

    // Oversized length is refused before any allocation.
    let mut wire = Vec::new();
    wire.extend_from_slice(&(1u32 << 30).to_le_bytes());
    let err = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap_err();
    assert!(
        matches!(err, ServeError::Protocol(ProtocolError::Oversized { .. })),
        "{err}"
    );

    // Unknown tag drops the connection with a typed error.
    let wire = [1u8, 0, 0, 0, 0x42];
    let err = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap_err();
    assert!(
        matches!(err, ServeError::Protocol(ProtocolError::UnknownTag(0x42))),
        "{err}"
    );
}

/// The acceptance path: a client streams real MJPEG tokens into a
/// duplicated pipeline over TCP, receives every selector output in order
/// with verifiable digests, and — with a permanent timing fault injected
/// into replica 1 — receives a `Fault` frame whose reported detection
/// latency is within the analytic `DetectionBounds` window.
#[test]
fn loopback_duplicated_stream_delivers_in_order_and_detects_fault_in_bound() {
    let cfg = ServerConfig {
        inject: vec![FaultInjection {
            stream: 0,
            replica: 1,
            at: TimeNs::from_ms(120),
        }],
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("bind");
    let mut client = Client::connect(server.addr(), "acceptance").expect("connect");

    let stream = client
        .open_stream(App::Mjpeg, 2)
        .expect("open")
        .expect_stream();
    let batch = workload(App::Mjpeg, 42, 12);
    client.send_tokens(stream, &batch).expect("send");
    let run = client.flush(stream).expect("flush");
    assert!(run.admitted(), "no backpressure expected on an idle server");

    // Every token came back, in order, with the digest of the exact bytes
    // this client streamed in.
    assert_eq!(run.outputs.len(), batch.len());
    let mut last_at = 0;
    for (i, out) in run.outputs.iter().enumerate() {
        assert_eq!(out.seq, i as u64, "outputs must arrive in order");
        assert_eq!(
            out.digest,
            digest_of(&batch[i]),
            "output {i} must carry the digest of the client's token {i}"
        );
        assert!(out.at_ns >= last_at, "delivery timestamps must not regress");
        last_at = out.at_ns;
    }

    // The injected permanent timing fault was pushed, and its latency sits
    // inside the analytic detection window for the MJPEG profile.
    assert_eq!(run.faults.len(), 1, "exactly one replica was faulted");
    let fault = &run.faults[0];
    assert_eq!(fault.replica, 1);
    assert!(fault.kind <= 3, "latched at a real detection site");
    let bound = detection_bound(App::Mjpeg).as_ns();
    assert!(
        fault.detection_latency_ns > 0 && fault.detection_latency_ns <= bound,
        "detection latency {} ns must be within the analytic bound {} ns",
        fault.detection_latency_ns,
        bound
    );

    let stats = client.close(stream).expect("close").stats.expect("stats");
    assert_eq!(stats.tokens_in, 12);
    assert_eq!(stats.delivered, 12);
    assert_eq!(stats.faults, 1);

    let report = server.shutdown();
    assert!(report.balanced());
    assert_eq!(report.streams.len(), 1);
    assert_eq!(report.streams[0].undelivered, 0);
    assert!(report.streams[0].closed);
}

/// Tri-modular voting streams work over the same wire: redundancy 3 routes
/// the batch through the value-voting selector and still delivers every
/// token in order.
#[test]
fn voting_stream_delivers_every_token() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr(), "voting").expect("connect");
    let stream = client
        .open_stream(App::Adpcm, 3)
        .expect("open")
        .expect_stream();
    let batch = workload(App::Adpcm, 7, 6);
    client.send_tokens(stream, &batch).expect("send");
    let run = client.flush(stream).expect("flush");
    assert_eq!(run.outputs.len(), 6);
    for (i, out) in run.outputs.iter().enumerate() {
        assert_eq!(out.seq, i as u64);
        assert_eq!(out.digest, digest_of(&batch[i]));
    }
    client.close(stream).expect("close");
    let report = server.shutdown();
    assert!(report.balanced());
    assert_eq!(report.streams[0].redundancy, 3);
}

/// The ingest pool actually recycles: steady-state token flow re-reads
/// frames into buffers reclaimed from settled flushes instead of fresh
/// allocations. The `kpn.pool.*` counters on the server registry are the
/// witness — after repeated identical send/flush rounds the settled
/// batches must have been parked, reclaimed (`recycled`), and re-issued
/// (`hits`).
#[test]
fn steady_state_ingest_recycles_pooled_buffers() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr(), "pool").expect("connect");
    let stream = client
        .open_stream(App::Adpcm, 2)
        .expect("open")
        .expect_stream();
    // Same seed every round: identical payload lengths, so the
    // exact-length shelves built from round N serve round N+1.
    let batch = workload(App::Adpcm, 11, 8);
    for _ in 0..6 {
        client.send_tokens(stream, &batch).expect("send");
        let run = client.flush(stream).expect("flush");
        assert_eq!(run.outputs.len(), batch.len());
    }
    client.close(stream).expect("close");
    let hits = server.registry().counter("kpn.pool.hits").get();
    let recycled = server.registry().counter("kpn.pool.recycled").get();
    let misses = server.registry().counter("kpn.pool.misses").get();
    let report = server.shutdown();
    assert!(report.balanced());
    assert!(
        recycled > 0,
        "no settled batch was reclaimed into the pool (recycled=0, misses={misses})"
    );
    assert!(
        hits > 0,
        "no frame read reused a pooled buffer (hits=0, recycled={recycled}, misses={misses})"
    );
}

/// Saturated admission answers `Busy{queue-full}` — and the refused batch
/// stays buffered server-side, so retrying the flush (no re-send of the
/// tokens) eventually delivers everything. Backpressure, not loss.
#[test]
fn saturated_admission_answers_busy_then_retry_delivers_everything() {
    let _guard = timing_lock();
    let cfg = ServerConfig {
        fleet: FleetConfig {
            workers: 1,
            pending_capacity: 1,
            max_replacements: 0,
        },
        // Threaded runtime: wall-clock duration tracks the 30 ms MJPEG
        // period, so the first stream reliably occupies the fleet while
        // the second probes admission.
        runtime: ServeRuntime::Threaded {
            deadline: Duration::from_secs(30),
            quiescence_grace: Duration::from_millis(150),
        },
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("bind");

    let mut hog = Client::connect(server.addr(), "hog").expect("connect");
    let hog_stream = hog
        .open_stream(App::Mjpeg, 2)
        .expect("open")
        .expect_stream();
    hog.send_tokens(hog_stream, &workload(App::Mjpeg, 1, 20))
        .expect("send");
    let hog_thread = std::thread::spawn(move || hog.flush(hog_stream).expect("hog flush"));

    // Wait until the hog's Flush frame has reached the server (its 4th
    // frame: Hello, OpenStream, Tokens, Flush) so it holds the only
    // admission slot before the probe asks. A fixed sleep is not enough
    // on a loaded single-core box.
    let frames_in = server.registry().counter("serve.frames.in");
    let armed = Instant::now();
    while frames_in.get() < 4 {
        assert!(
            armed.elapsed() < Duration::from_secs(10),
            "hog flush never reached the server"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(50));

    let mut probe = Client::connect(server.addr(), "probe").expect("connect");
    let probe_stream = probe
        .open_stream(App::Mjpeg, 2)
        .expect("open")
        .expect_stream();
    probe
        .send_tokens(probe_stream, &workload(App::Mjpeg, 2, 4))
        .expect("send");

    let mut busy_seen = 0;
    let delivered = loop {
        let run = probe.flush(probe_stream).expect("probe flush");
        match run.busy {
            Some(info) => {
                assert_eq!(info.reason, BusyReason::QueueFull);
                assert!(info.pending >= info.capacity);
                busy_seen += 1;
                std::thread::sleep(Duration::from_millis(50));
            }
            None => break run.outputs.len(),
        }
    };
    assert!(
        busy_seen >= 1,
        "the probe must observe explicit backpressure while the hog runs"
    );
    assert_eq!(delivered, 4, "the refused batch was retained and delivered");

    let hog_run = hog_thread.join().expect("hog thread");
    assert_eq!(hog_run.outputs.len(), 20);

    let report = server.shutdown();
    assert!(report.balanced());
    let probe_account = report
        .streams
        .iter()
        .find(|s| s.id == probe_stream)
        .expect("probe stream accounted");
    assert_eq!(probe_account.tokens_in, 4);
    assert_eq!(probe_account.delivered, 4);
    assert_eq!(probe_account.busy, busy_seen);
}

/// Shutdown under load: active streams drain via the cancel path (their
/// in-flight outputs still arrive), new streams are refused with
/// `Busy{shutting-down}`, and every accepted token is either delivered or
/// reported undelivered — no silent loss.
#[test]
fn shutdown_under_load_drains_refuses_and_accounts_every_token() {
    let _guard = timing_lock();
    let cfg = ServerConfig {
        runtime: ServeRuntime::Threaded {
            deadline: Duration::from_secs(30),
            quiescence_grace: Duration::from_millis(150),
        },
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("bind");

    let mut active = Client::connect(server.addr(), "active").expect("connect");
    let stream = active
        .open_stream(App::Mjpeg, 2)
        .expect("open")
        .expect_stream();
    active
        .send_tokens(stream, &workload(App::Mjpeg, 3, 10))
        .expect("send");
    let flush_thread = std::thread::spawn(move || {
        let run = active.flush(stream).expect("flush");
        (active, run)
    });

    // Begin shutdown while the flush is mid-run (~300 ms of wall time).
    std::thread::sleep(Duration::from_millis(150));
    server.begin_shutdown();

    // New streams are refused with an explicit shutting-down Busy.
    let mut late = Client::connect(server.addr(), "late").expect("connect");
    match late.open_stream(App::Adpcm, 2).expect("open") {
        OpenOutcome::Busy(info) => assert_eq!(info.reason, BusyReason::ShuttingDown),
        OpenOutcome::Stream(_) => panic!("a draining server must refuse new streams"),
    }

    // The in-flight flush still drains completely.
    let (mut active, run) = flush_thread.join().expect("flush thread");
    assert!(run.admitted());
    assert_eq!(
        run.outputs.len(),
        10,
        "admitted work drains during shutdown"
    );

    // Tokens accepted after shutdown began are refused at flush — and
    // accounted as undelivered, not dropped.
    active
        .send_tokens(stream, &workload(App::Mjpeg, 4, 3))
        .expect("send");
    let refused = active.flush(stream).expect("flush");
    let busy = refused.busy.expect("flush during drain must be refused");
    assert_eq!(busy.reason, BusyReason::ShuttingDown);

    let report = server.shutdown();
    assert!(report.balanced(), "tokens_in == delivered + undelivered");
    assert_eq!(report.streams.len(), 1);
    let account = &report.streams[0];
    assert_eq!(account.tokens_in, 13);
    assert_eq!(account.delivered, 10);
    assert_eq!(account.undelivered, 3);
}

/// A self-cleaning scratch directory for the WAL tests (no tempfile
/// crate in a zero-dependency workspace).
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("rtft-serve-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The crash-recovery acceptance path: a WAL-enabled server acknowledges
/// every batch `Durable`, is then killed without any drain
/// (`hard_drop`), and a fresh server on the same log directory rebuilds
/// the stream, resumes at its last delivered sequence number, and
/// replays the undelivered tail through the fleet — zero token loss
/// across the crash. A replay-verify pass over the final log certifies
/// both lives of the server byte-for-byte.
#[test]
fn restart_resumes_at_last_delivered_seq_with_zero_token_loss() {
    let dir = TempDir::new("restart");
    let cfg = ServerConfig {
        wal: Some(WalConfig::new(dir.path())),
        ..ServerConfig::default()
    };

    // First life: one flushed batch (delivered + outputs logged) and one
    // durable-but-unflushed tail, then a crash with no goodbye.
    let server = Server::start("127.0.0.1:0", cfg.clone()).expect("bind");
    let mut client = Client::connect(server.addr(), "durable").expect("connect");
    let stream = client
        .open_stream(App::Mjpeg, 2)
        .expect("open")
        .expect_stream();

    let flushed = workload(App::Mjpeg, 42, 8);
    let ack = client
        .send_tokens_durable(stream, &flushed)
        .expect("durable send");
    assert_eq!(ack.tokens, 8, "the ack covers the whole batch");
    let run = client.flush(stream).expect("flush");
    assert_eq!(run.outputs.len(), 8);

    let tail = workload(App::Mjpeg, 43, 5);
    let tail_ack = client
        .send_tokens_durable(stream, &tail)
        .expect("durable send");
    assert!(
        tail_ack.seq > ack.seq,
        "log sequence numbers advance monotonically"
    );
    server.hard_drop();

    // Second life, same log: the stream is rebuilt, resumed at 8
    // delivered, and its 5-token tail is resubmitted; the shutdown drain
    // finishes it like any other admitted job.
    let server = Server::start("127.0.0.1:0", cfg.clone()).expect("restart");
    let report = server.shutdown();
    assert_eq!(report.recovered_streams, 1);
    assert_eq!(
        report.replayed_tokens, 5,
        "only the undelivered tail replays"
    );
    assert_eq!(report.wal_truncated_records, 0, "the log was not torn");
    assert!(report.balanced());
    assert_eq!(report.streams.len(), 1);
    let account = &report.streams[0];
    assert_eq!(account.tokens_in, 13, "accounting spans the crash");
    assert_eq!(account.delivered, 13, "zero token loss across the crash");
    assert_eq!(account.undelivered, 0);

    // Offline replay verification: both lives of the server produced
    // exactly the outputs the deterministic pipeline reproduces.
    let verify = replay_verify(dir.path(), &cfg).expect("replay");
    assert_eq!(verify.streams.len(), 1);
    assert_eq!(verify.streams[0].recorded, 13);
    assert_eq!(verify.streams[0].replayed, 13);
    assert!(verify.clean(), "no divergence in an unfaulted log");
}

/// The protocol version is negotiated: a mismatched `Hello` ends the
/// connection instead of silently proceeding.
#[test]
fn version_mismatch_ends_the_connection() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut sock = std::net::TcpStream::connect(server.addr()).expect("connect");
    write_frame(
        &mut sock,
        &Frame::Hello {
            version: PROTOCOL_VERSION + 1,
            client: "future".into(),
        },
    )
    .expect("send hello");
    // The server drops the connection without an Accepted frame.
    let err = read_frame(&mut sock, DEFAULT_MAX_FRAME).unwrap_err();
    assert!(matches!(err, ServeError::ConnectionClosed), "{err}");
    server.shutdown();
}

/// Every client frame type, damaged at every byte: single-bit flips at
/// every offset and truncations at every length. The decoder must never
/// panic; whatever still decodes must re-encode cleanly.
#[test]
fn adversarial_wire_sweep_never_panics() {
    let frames = [
        Frame::Hello {
            version: PROTOCOL_VERSION,
            client: "sweep".into(),
        },
        Frame::OpenStream {
            app: 0,
            redundancy: 2,
        },
        Frame::Tokens {
            stream: 3,
            payloads: vec![
                Bytes::from(vec![0xAB; 9]),
                Bytes::from(vec![]),
                Bytes::from(vec![0x01, 0x02]),
            ],
        },
        Frame::Flush { stream: 3 },
        Frame::Close { stream: 3 },
    ];
    for frame in &frames {
        let wire = frame.encode();
        // Truncation at every length short of the full frame must fail
        // (closed), never hang or panic.
        for cut in 0..wire.len() {
            let mut cursor = std::io::Cursor::new(&wire[..cut]);
            assert!(
                read_frame(&mut cursor, DEFAULT_MAX_FRAME).is_err(),
                "{}: truncation at {cut} must be rejected",
                frame.name()
            );
        }
        // Every single-bit corruption either fails closed or decodes to
        // a frame that is itself well-formed (re-encodable and
        // round-trippable) — no middle ground, no panic.
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut damaged = wire.clone();
                damaged[byte] ^= 1 << bit;
                let mut cursor = std::io::Cursor::new(damaged.as_slice());
                if let Ok((decoded, _)) = read_frame(&mut cursor, DEFAULT_MAX_FRAME) {
                    let rewire = decoded.encode();
                    let mut recursor = std::io::Cursor::new(rewire.as_slice());
                    let (again, _) =
                        read_frame(&mut recursor, DEFAULT_MAX_FRAME).expect("re-encode decodes");
                    assert_eq!(
                        again.encode(),
                        rewire,
                        "{}: unstable re-encode",
                        frame.name()
                    );
                }
            }
        }
    }
}

/// A live server fails a damaged connection *closed*: the corrupt frame
/// ends the connection, the protocol-error counter ticks, and every
/// token accepted before the damage stays in the books as undelivered.
#[test]
fn corrupt_frame_fails_connection_closed_with_accounting_intact() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut sock = std::net::TcpStream::connect(server.addr()).expect("connect");
    write_frame(
        &mut sock,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            client: "hostile".into(),
        },
    )
    .expect("hello");
    let Frame::Accepted { .. } = read_frame(&mut sock, DEFAULT_MAX_FRAME).expect("accept").0 else {
        panic!("expected Accepted");
    };
    write_frame(
        &mut sock,
        &Frame::OpenStream {
            app: 0,
            redundancy: 2,
        },
    )
    .expect("open");
    let Frame::Accepted { id } = read_frame(&mut sock, DEFAULT_MAX_FRAME).expect("accept").0 else {
        panic!("expected stream id");
    };
    write_frame(
        &mut sock,
        &Frame::Tokens {
            stream: id,
            payloads: workload(App::Mjpeg, 9, 4)
                .into_iter()
                .map(Bytes::from)
                .collect(),
        },
    )
    .expect("tokens");

    // A Flush frame with its tag bit-flipped to an unknown value.
    let mut damaged = Frame::Flush { stream: id }.encode();
    damaged[4] ^= 0x40;
    use std::io::Write as _;
    sock.write_all(&damaged).expect("send damage");
    sock.flush().expect("flush socket");
    let err = read_frame(&mut sock, DEFAULT_MAX_FRAME).unwrap_err();
    assert!(matches!(err, ServeError::ConnectionClosed), "{err}");

    assert_eq!(server.registry().counter("serve.protocol.errors").get(), 1);
    let report = server.shutdown();
    assert!(report.balanced());
    assert_eq!(report.streams.len(), 1);
    assert_eq!(report.streams[0].tokens_in, 4);
    assert_eq!(report.streams[0].delivered, 0);
    assert_eq!(report.streams[0].undelivered, 4, "nothing silently lost");
    assert!(!report.streams[0].closed);
}

/// The retry policy's wait computation: a `RateLimited` retry-after hint
/// is always honored (even past the exponential cap), jitter is bounded
/// to +50%, waits are deterministic per seed, and the exponential term
/// actually grows.
#[test]
fn retry_policy_honors_hint_cap_and_determinism() {
    use rtft_serve::RetryPolicy;
    let policy = RetryPolicy::default();

    // Hint beyond the cap: the wait must still cover the server's ask.
    let hinted = policy.wait_before(7, 0, 500);
    assert!(hinted >= Duration::from_millis(500), "{hinted:?}");
    assert!(
        hinted <= Duration::from_millis(750),
        "jitter is at most +50%"
    );

    // No hint: first retry waits the base (plus bounded jitter).
    let first = policy.wait_before(7, 0, 0);
    assert!(
        first >= policy.base && first <= policy.base * 3 / 2,
        "{first:?}"
    );

    // The exponential term grows with the retry index and respects the cap.
    let late = policy.wait_before(7, 20, 0);
    assert!(late >= policy.cap, "{late:?}");
    assert!(late <= policy.cap * 3 / 2, "{late:?}");

    // Deterministic per (seed, stream, retry); decorrelated across streams.
    assert_eq!(policy.wait_before(7, 3, 0), policy.wait_before(7, 3, 0));
    assert_ne!(policy.wait_before(7, 3, 0), policy.wait_before(8, 3, 0));
}

/// Under a saturated fleet, `send_flush_with_retry` turns `QueueFull`
/// refusals into backoff-and-retry until admission — and because a
/// refused batch stays buffered server-side, the tokens cross the wire
/// exactly once: the server's book shows them accepted once, delivered
/// once, no duplicates.
#[test]
fn flush_retry_is_lossless_and_never_resends_tokens() {
    use rtft_serve::RetryPolicy;
    let _guard = timing_lock();
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            fleet: FleetConfig {
                workers: 2,
                pending_capacity: 1,
                max_replacements: 0,
            },
            runtime: ServeRuntime::Threaded {
                deadline: Duration::from_secs(30),
                quiescence_grace: Duration::from_millis(150),
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    // Occupy the single admission slot with a long sleep-bound flush,
    // driven over a raw socket so this thread controls the ordering: the
    // frames-in counter reaching 4 (Hello, Open, Tokens, Flush) proves
    // the server has processed the Flush — and, with no competitor yet,
    // admitted it into the only slot.
    let addr = server.addr();
    let mut slow = std::net::TcpStream::connect(addr).expect("connect slow");
    write_frame(
        &mut slow,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            client: "slow".into(),
        },
    )
    .expect("hello");
    read_frame(&mut slow, DEFAULT_MAX_FRAME).expect("accepted");
    write_frame(
        &mut slow,
        &Frame::OpenStream {
            app: 0,
            redundancy: 2,
        },
    )
    .expect("open");
    read_frame(&mut slow, DEFAULT_MAX_FRAME).expect("stream id");
    write_frame(
        &mut slow,
        &Frame::Tokens {
            stream: 0,
            payloads: workload(App::Mjpeg, 1, 12)
                .into_iter()
                .map(Bytes::from)
                .collect(),
        },
    )
    .expect("tokens");
    write_frame(&mut slow, &Frame::Flush { stream: 0 }).expect("flush");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.registry().counter("serve.frames.in").get() < 4 {
        assert!(
            std::time::Instant::now() < deadline,
            "server never processed the slow flush"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut client = Client::connect(addr, "retrier").expect("connect");
    let stream = client
        .open_stream(App::Adpcm, 2)
        .expect("open")
        .expect_stream();
    let batch = workload(App::Adpcm, 2, 6);
    client.send_tokens(stream, &batch).expect("send");
    let rf = client
        .send_flush_with_retry(
            stream,
            &RetryPolicy {
                max_attempts: 200,
                seed: 42,
                ..RetryPolicy::default()
            },
        )
        .expect("retry");
    assert!(rf.outcome.admitted(), "retries must end in admission");
    assert_eq!(rf.outcome.outputs.len(), batch.len());
    assert_eq!(rf.attempts, rf.retries + 1);
    client.close(stream).expect("close");

    // Drain the slow stream: its outputs and flush Stats, then Close.
    loop {
        if let Frame::Stats { .. } = read_frame(&mut slow, DEFAULT_MAX_FRAME).expect("drain").0 {
            break;
        }
    }
    write_frame(&mut slow, &Frame::Close { stream: 0 }).expect("close slow");
    loop {
        if let Frame::Stats { .. } = read_frame(&mut slow, DEFAULT_MAX_FRAME).expect("drain").0 {
            break;
        }
    }

    let report = server.shutdown();
    assert!(report.balanced());
    let account = report
        .streams
        .iter()
        .find(|s| s.app == "adpcm")
        .expect("retrier stream");
    // The proof of single transmission: had the client re-sent the batch
    // on any retry, tokens_in would be a multiple of the batch size > 1.
    assert_eq!(account.tokens_in, batch.len() as u64);
    assert_eq!(account.delivered, batch.len() as u64);
    assert!(account.busy >= 1, "at least one refusal was retried");
}

/// An idle connection (no frame, nothing in flight) past `max_idle` is
/// evicted: the socket closes, the eviction is counted, and the stream's
/// buffered tokens land in `undelivered` — lossless books.
#[test]
fn idle_connection_is_evicted_losslessly() {
    let _guard = timing_lock();
    // Payloads up front: generating them between protocol exchanges
    // would eat into the idle window on slow (debug) builds.
    let batch = workload(App::Mjpeg, 3, 5);
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            max_idle: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(server.addr(), "idler").expect("connect");
    let stream = client
        .open_stream(App::Mjpeg, 2)
        .expect("open")
        .expect_stream();
    client.send_tokens(stream, &batch).expect("send");

    // Stay silent past the idle deadline; the server must close on us,
    // so the next exchange fails instead of flushing.
    std::thread::sleep(Duration::from_millis(800));
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    assert!(
        client.flush(stream).is_err(),
        "server should have closed the idle connection"
    );

    let report = server.shutdown();
    assert_eq!(report.evictions, 1);
    assert!(report.balanced());
    assert_eq!(report.streams.len(), 1);
    let account = &report.streams[0];
    assert!(account.evicted, "stream row records the eviction");
    assert_eq!(account.tokens_in, 5);
    assert_eq!(account.undelivered, 5, "buffered tokens stay in the books");
    assert!(!account.closed);
}

/// A slow-loris writer — a frame started but trickled too slowly to ever
/// complete — trips the whole-frame `read_timeout` even though every
/// inter-byte gap is short, and is evicted losslessly.
#[test]
fn stalled_writer_is_evicted_by_the_frame_deadline() {
    let _guard = timing_lock();
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Some(Duration::from_millis(120)),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut sock = std::net::TcpStream::connect(server.addr()).expect("connect");
    write_frame(
        &mut sock,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            client: "loris".into(),
        },
    )
    .expect("hello");
    read_frame(&mut sock, DEFAULT_MAX_FRAME).expect("accepted");
    write_frame(
        &mut sock,
        &Frame::OpenStream {
            app: 0,
            redundancy: 2,
        },
    )
    .expect("open");
    read_frame(&mut sock, DEFAULT_MAX_FRAME).expect("stream id");

    // Trickle a Tokens frame one byte every 40ms: each gap is under the
    // deadline, but the frame as a whole can never finish in 120ms.
    use std::io::Write as _;
    let wire = Frame::Tokens {
        stream: 0,
        payloads: workload(App::Mjpeg, 4, 3)
            .into_iter()
            .map(Bytes::from)
            .collect(),
    }
    .encode();
    for byte in &wire[..6] {
        if sock.write_all(std::slice::from_ref(byte)).is_err() {
            break; // evicted mid-trickle — also a pass
        }
        let _ = sock.flush();
        std::thread::sleep(Duration::from_millis(40));
    }
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    assert!(
        read_frame(&mut sock, DEFAULT_MAX_FRAME).is_err(),
        "server must close the stalled connection"
    );

    assert_eq!(
        server
            .registry()
            .counter_named("serve.evictions.stalled")
            .get(),
        1
    );
    let report = server.shutdown();
    assert_eq!(report.evictions, 1);
    assert!(report.balanced());
    assert!(report.streams[0].evicted);
    assert_eq!(
        report.streams[0].tokens_in, 0,
        "the trickled frame never landed"
    );
}
