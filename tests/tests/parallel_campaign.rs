//! Worker-count independence of the parallel campaign drivers.
//!
//! The scatter/ordered-gather contract (`rtft_kpn::parallel`, DESIGN.md
//! "Parallel campaign execution"): a campaign's emitted report is
//! **byte-identical** for workers = 1, 2, 4 — the sequential inline path
//! is the reference, and every parallel schedule must reproduce it.

use rtft_apps::networks::App;
use rtft_bench::campaign::fault_campaign_observed_with_workers;
use rtft_chaos::{Campaign, OutcomeClass};
use rtft_rtc::TimeNs;

#[test]
fn chaos_report_is_byte_identical_across_worker_counts() {
    let campaign = Campaign::generate(0xD15EA5E, 24);
    let reference = campaign.run_with_workers(1);
    let ref_json = reference.to_json();
    let ref_bench = reference.bench_line();
    for workers in [2, 4] {
        let report = campaign.run_with_workers(workers);
        assert_eq!(
            report.to_json(),
            ref_json,
            "chaos CampaignReport diverged at workers={workers}"
        );
        assert_eq!(
            report.bench_line(),
            ref_bench,
            "chaos bench line diverged at workers={workers}"
        );
    }
}

#[test]
fn chaos_outcomes_arrive_in_scenario_index_order() {
    let campaign = Campaign::generate(0xBADCAB, 16);
    for workers in [1, 2, 4] {
        let report = campaign.run_with_workers(workers);
        let ids: Vec<u64> = report.outcomes.iter().map(|o| o.scenario.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "out of order at workers={workers}");
        assert_eq!(report.outcomes.len(), 16);
        // Sanity: the campaign actually classified everything.
        let total: usize = OutcomeClass::ALL.iter().map(|c| report.count(*c)).sum();
        assert_eq!(total, 16);
    }
}

#[test]
fn table2_fault_campaign_is_byte_identical_across_worker_counts() {
    let fault_at = TimeNs::from_ms(189);
    let (ref_campaign, ref_metrics) =
        fault_campaign_observed_with_workers(App::Adpcm, 6, 80, fault_at, 1);
    let ref_json = ref_metrics.to_json();
    // Debug formatting covers every aggregate field (latency stats, bounds,
    // detection counts, masking) byte-for-byte.
    let ref_debug = format!("{ref_campaign:?}");
    for workers in [2, 4] {
        let (campaign, metrics) =
            fault_campaign_observed_with_workers(App::Adpcm, 6, 80, fault_at, workers);
        assert_eq!(
            metrics.to_json(),
            ref_json,
            "BenchMetrics JSON diverged at workers={workers}"
        );
        assert_eq!(
            format!("{campaign:?}"),
            ref_debug,
            "FaultCampaign aggregate diverged at workers={workers}"
        );
    }
    assert!(ref_campaign.all_masked);
    assert_eq!(ref_campaign.replicator.detections, 6);
}
