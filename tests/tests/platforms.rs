//! Integration across execution platforms: the SCC timing model and the
//! real-thread runtime, driving the same fault-tolerant networks.

use rtft_apps::networks::App;
use rtft_core::{
    build_duplicated, DuplicationConfig, FaultPlan, JitterStageReplica, Replicator, Selector,
};
use rtft_kpn::threaded::run_threaded;
use rtft_kpn::{Engine, Payload, PjdSink};
use rtft_rtc::sizing::DuplicationModel;
use rtft_rtc::{PjdModel, TimeNs};
use rtft_scc::{low_contention_pipeline, NocModel, SccPlatform};
use std::sync::Arc;
use std::time::Duration;

/// The ADPCM network under SCC communication costs behaves like the ideal
/// platform at token granularity: same delivery count, fault detected,
/// fill bounds hold — the paper's "fast on-chip communication does not
/// significantly influence FIFO sizes or fault detection timings".
#[test]
fn scc_platform_preserves_framework_behaviour() {
    let app = App::Adpcm;
    let tokens = 60u64;
    let fault_at = TimeNs::from_ms(189);
    let build = || {
        let cfg = app
            .duplication_config(1, tokens)
            .expect("bounded")
            .with_fault(0, FaultPlan::fail_stop_at(fault_at));
        let factory = app.replica_factory([11, 22]);
        build_duplicated(&cfg, &factory)
    };

    // Ideal platform.
    let (net, ids) = build();
    let mut ideal = Engine::new(net);
    ideal.run_until(TimeNs::from_secs(10));
    let ideal_detect = ids.replicator_faults(ideal.network())[0]
        .expect("detected")
        .at;
    assert_eq!(ids.consumer_arrivals(ideal.network()).len() as u64, tokens);

    // SCC platform: replicator and selector channels routed across the
    // mesh with the snake mapping.
    let (net, ids) = build();
    let mapping = low_contention_pipeline(4);
    let mut platform = SccPlatform::paper_boot();
    platform.route(ids.replicator, mapping.core(0), mapping.core(1));
    platform.route(ids.selector, mapping.core(2), mapping.core(3));
    let mut scc = Engine::with_platform(net, Box::new(platform));
    scc.run_until(TimeNs::from_secs(10));
    let scc_detect = ids.replicator_faults(scc.network())[0]
        .expect("detected")
        .at;
    assert_eq!(ids.consumer_arrivals(scc.network()).len() as u64, tokens);

    // Transfer costs shift events by microseconds, not periods.
    let skew = scc_detect
        .saturating_sub(ideal_detect)
        .max(ideal_detect.saturating_sub(scc_detect));
    assert!(
        skew < TimeNs::from_ms(7),
        "SCC communication changed detection by more than one period: {skew}"
    );
}

/// MPB chunking keeps every experiment token within the ≤3 KB rule's
/// latency envelope across the full mesh.
#[test]
fn scc_transfers_are_fast_relative_to_periods() {
    let noc = NocModel::paper_boot();
    for app in [App::Mjpeg, App::Adpcm, App::H264] {
        let p = app.profile();
        let worst = noc.message_latency(
            rtft_scc::CoreId::new(0),
            rtft_scc::CoreId::new(47),
            p.input_token_bytes.max(p.output_token_bytes),
        );
        let period = p.model.producer.period;
        assert!(
            worst.as_ns() * 20 < period.as_ns(),
            "{}: transfer {} not ≪ period {}",
            p.name,
            worst,
            period
        );
    }
}

/// The framework masks a fault under real threads and wall-clock time —
/// same channel state machines, no simulation involved.
///
/// The jitter terms here are deliberately much larger than the shapers'
/// own randomness: on a shared (possibly single-core) host, OS scheduling
/// can stall any process thread for tens of milliseconds, and the
/// no-false-positive guarantee only holds if the PJD models bound the
/// *actual* platform jitter — exactly the modelling obligation the paper
/// states for the SCC. Token count is sized so the post-fault traffic
/// still overflows the (correspondingly larger) queues and detection
/// provably fires.
#[test]
fn threaded_runtime_masks_fault() {
    let model = DuplicationModel::symmetric(
        PjdModel::new(TimeNs::from_ms(1), TimeNs::from_ms(40), TimeNs::ZERO),
        PjdModel::new(TimeNs::from_ms(1), TimeNs::from_ms(40), TimeNs::from_ms(3)),
        [
            PjdModel::new(TimeNs::from_ms(1), TimeNs::from_ms(40), TimeNs::ZERO),
            PjdModel::new(TimeNs::from_ms(1), TimeNs::from_ms(45), TimeNs::ZERO),
        ],
    );
    let tokens = 400u64;
    let cfg = DuplicationConfig::from_model(model)
        .expect("bounded")
        .with_token_count(tokens)
        .with_payload(Arc::new(Payload::U64))
        .with_fault(1, FaultPlan::fail_stop_at(TimeNs::from_ms(60)));
    let factory = JitterStageReplica::from_model(&cfg.model).with_seeds([11, 22]);
    let (net, _ids) = build_duplicated(&cfg, &factory);

    let run = run_threaded(net, Duration::from_secs(20));
    let sink = run
        .process_as::<PjdSink>("consumer")
        .expect("consumer finished");
    assert_eq!(
        sink.arrivals().len() as u64,
        tokens,
        "tokens lost on real threads"
    );

    // Replicator is channel 0, selector channel 1 (builder order).
    let rep_fault = run
        .channel_as::<Replicator, _>(0, |r| r.fault(1))
        .expect("replicator state");
    let sel_fault = run
        .channel_as::<Selector, _>(1, |s| s.fault(1))
        .expect("selector state");
    assert!(
        rep_fault.is_some() || sel_fault.is_some(),
        "fault undetected on real threads"
    );
    let healthy_rep = run
        .channel_as::<Replicator, _>(0, |r| r.fault(0))
        .expect("state");
    let healthy_sel = run
        .channel_as::<Selector, _>(1, |s| s.fault(0))
        .expect("state");
    assert!(
        healthy_rep.is_none() && healthy_sel.is_none(),
        "healthy replica flagged"
    );
}

/// Wall-clock detection latency on threads lands in the same order of
/// magnitude as the virtual-time prediction (loose factor: host jitter).
#[test]
fn threaded_detection_latency_matches_simulation_scale() {
    // Jitter budgets cover OS scheduling stalls; see
    // `threaded_runtime_masks_fault` for the rationale.
    let model = DuplicationModel::symmetric(
        PjdModel::new(TimeNs::from_ms(2), TimeNs::from_ms(40), TimeNs::ZERO),
        PjdModel::new(TimeNs::from_ms(2), TimeNs::from_ms(40), TimeNs::from_ms(6)),
        [
            PjdModel::new(TimeNs::from_ms(2), TimeNs::from_ms(40), TimeNs::ZERO),
            PjdModel::new(TimeNs::from_ms(2), TimeNs::from_ms(45), TimeNs::ZERO),
        ],
    );
    let fault_at = TimeNs::from_ms(100);
    let cfg = DuplicationConfig::from_model(model)
        .expect("bounded")
        .with_token_count(400)
        .with_payload(Arc::new(Payload::U64))
        .with_fault(0, FaultPlan::fail_stop_at(fault_at));
    let bound = cfg.sizing.selector_detection_bound;
    let factory = JitterStageReplica::from_model(&cfg.model).with_seeds([1, 2]);
    let (net, _ids) = build_duplicated(&cfg, &factory);
    let run = run_threaded(net, Duration::from_secs(20));
    let sel_fault = run
        .channel_as::<Selector, _>(1, |s| s.fault(0))
        .expect("selector state");
    let f = sel_fault.expect("detected");
    let latency = f.at.saturating_sub(fault_at);
    // Host scheduling adds noise; require the right order of magnitude.
    assert!(
        latency <= bound * 3,
        "wall-clock latency {latency} vastly exceeds analytic bound {bound}"
    );
}
