//! Network-chaos acceptance: the seeded fault-injecting load harness
//! over a live server (`rtft_chaos::net`).
//!
//! The headline soak drives 200+ concurrent connections with every
//! network-fault kind injected and proves the framework's guarantees
//! held: per-stream and per-tenant token balance, in-bound detection of
//! every permanent replica fault (on duplicated pairs and on
//! sampled-checker streams alike), lossless eviction of stalled writers,
//! fail-closed handling of malformed frames, zero silent failures, and a
//! clean `replay_verify` over the surviving write-ahead log. A second
//! test pins the canonical report byte-identical across runs of the same
//! seed.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use rtft_chaos::{
    generate_net_scenarios, run_net_chaos, soak_net_chaos, NetChaosConfig, NetFaultKind, NetOutcome,
};

/// Serializes the wall-clock-sensitive harness runs within this binary
/// so read-deadline timing is not distorted by a sibling test's load.
fn harness_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Self-cleaning scratch directory (no external tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("rtft-net-chaos-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn scenario_schedule_is_deterministic_and_covers_every_kind() {
    let cfg = NetChaosConfig {
        connections: 40,
        hostile: 14,
        ..NetChaosConfig::default()
    };
    let a = generate_net_scenarios(&cfg);
    let b = generate_net_scenarios(&cfg);
    assert_eq!(a.len(), 40);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.conn, y.conn);
        assert_eq!(x.kind, y.kind);
        assert_eq!(x.app, y.app);
        assert_eq!(x.tenant, y.tenant);
    }
    for kind in NetFaultKind::ALL {
        assert_eq!(
            a.iter().filter(|s| s.kind == Some(kind)).count(),
            2,
            "14 hostile over 7 kinds = 2 each ({})",
            kind.label()
        );
    }
    assert_eq!(a.iter().filter(|s| s.kind.is_none()).count(), 26);
    // Sampled-checker scenarios open with the hetero redundancy byte;
    // everyone else stays on the duplicated pair.
    for s in &a {
        if s.kind == Some(NetFaultKind::HeteroFault) {
            assert_eq!(s.redundancy(), 0x12, "k=4 encodes as 0x10 | log2(4)");
        } else {
            assert_eq!(s.redundancy(), 2);
        }
    }
}

/// The acceptance soak: 208 concurrent connections, 28 hostile (four of
/// each fault kind), write-ahead log on. Every invariant the issue
/// names must hold with zero violations.
#[test]
fn soak_two_hundred_connections_all_fault_kinds() {
    let _guard = harness_lock();
    let dir = TempDir::new("soak");
    let cfg = NetChaosConfig {
        seed: 0xDAC14,
        connections: 208,
        hostile: 28,
        tokens_per_batch: 4,
        batches: 2,
        wal: true,
    };
    let soak = soak_net_chaos(&cfg, Duration::ZERO, dir.path()).expect("soak infrastructure");
    assert_eq!(soak.waves.len(), 1, "zero budget = exactly one wave");
    let wave = &soak.waves[0];

    assert!(
        wave.violations.is_empty(),
        "soak violations:\n{}",
        wave.violations.join("\n")
    );
    assert!(wave.replay_clean, "WAL replay diverged");
    assert!(wave.serve.balanced(), "serve books unbalanced");

    // Four scenarios of each hostile kind, each classified exactly as
    // the taxonomy demands — no late detections, no violations. The
    // in-bound detections split 4 duplicated replica faults + 4
    // sampled-checker (hetero) faults.
    assert_eq!(wave.count(NetOutcome::DetectedInBound), 8);
    assert_eq!(wave.count(NetOutcome::DetectedLate), 0);
    assert_eq!(wave.count(NetOutcome::EvictedLossless), 4);
    assert_eq!(wave.count(NetOutcome::FailedClosed), 4);
    assert_eq!(wave.count(NetOutcome::Resumed), 4);
    assert_eq!(wave.count(NetOutcome::Backpressured), 4);
    assert_eq!(wave.count(NetOutcome::Violation), 0);
    // 180 load clients + 4 partial-write scenarios end clean.
    assert_eq!(wave.count(NetOutcome::Clean), 184);

    assert_eq!(wave.evictions, 4, "one eviction per slow-loris");
    assert_eq!(wave.protocol_errors, 4, "one per malformed frame");
    assert_eq!(wave.rejected_tokens(), 4 * 4, "one refused batch per storm");
    assert!(wave.detection_latencies().iter().all(|&l| l > 0));
}

/// Two runs of the same seed produce byte-identical canonical JSON
/// (the PR 3 report discipline, extended to the network harness).
#[test]
fn report_json_is_byte_identical_per_seed() {
    let _guard = harness_lock();
    let cfg = NetChaosConfig {
        seed: 77,
        connections: 48,
        hostile: 12,
        tokens_per_batch: 4,
        batches: 2,
        wal: true,
    };
    let dir_a = TempDir::new("json-a");
    let dir_b = TempDir::new("json-b");
    let a = run_net_chaos(&cfg, dir_a.path()).expect("run a");
    let b = run_net_chaos(&cfg, dir_b.path()).expect("run b");
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert!(b.violations.is_empty(), "{:?}", b.violations);
    let ja = a.to_json();
    let jb = b.to_json();
    assert_eq!(ja, jb, "canonical chaos-net report must be seed-stable");
    assert!(ja.contains("\"schema\":\"rtft-chaos-net-v1\""), "{ja}");
    assert!(ja.contains("\"slow-loris\""), "{ja}");
    assert!(ja.contains("\"replay_clean\":true"), "{ja}");
}

/// The soak loop derives a distinct seed per wave, keeps every wave in
/// its own WAL directory, and aggregates violations across waves.
#[test]
fn soak_waves_are_independently_seeded() {
    let _guard = harness_lock();
    let dir = TempDir::new("waves");
    let cfg = NetChaosConfig {
        seed: 900,
        connections: 12,
        hostile: 6,
        tokens_per_batch: 2,
        batches: 1,
        wal: true,
    };
    // A budget of one wave's length usually yields 2 waves; all that is
    // guaranteed (and asserted) is >= 1, per-wave seeds, and cleanliness.
    let soak = soak_net_chaos(&cfg, Duration::from_millis(500), dir.path()).expect("soak");
    assert!(!soak.waves.is_empty());
    for (i, wave) in soak.waves.iter().enumerate() {
        assert_eq!(wave.config.seed, 900 + i as u64);
        assert!(dir.path().join(format!("wave-{i}")).is_dir());
    }
    assert!(soak.clean(), "{:?}", soak.violations());
    assert!(soak.elapsed >= Duration::from_millis(500));
}
