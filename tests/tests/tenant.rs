//! Integration tests of the tenant layer under `rtft-serve`: eight
//! tenants over real TCP with one detached mid-stream (full
//! offered = delivered + undelivered + rejected accounting, and
//! byte-identical outcomes for the seven untouched tenants), the
//! structured quota / rate rejection paths, Hello-time tenant
//! resolution policy, and shard-count invariance of the directory
//! report.

use rtft_apps::networks::App;
use rtft_serve::{
    digest_of, workload, BusyReason, Client, Server, ServerConfig, TenancyConfig, TenantConfig,
    TokenRate,
};
use rtft_tenant::TenantState;

const TENANTS: usize = 8;
const DETACHED: usize = 3;
const BATCH: usize = 6;

/// One tenant's observable outcome: the digests its stream delivered.
type Digests = Vec<u64>;

/// Drives eight single-stream tenants through a tenancy-enabled server.
/// Every tenant flushes one batch; then, when `detach` is set, tenant
/// [`DETACHED`] buffers a second batch, is detached, and has a flush and
/// a further batch refused; every other tenant flushes a second batch.
/// Returns each tenant's delivered digests plus the final report.
fn eight_tenant_run(detach: bool, shards: usize) -> (Vec<Digests>, rtft_serve::ServeReport) {
    let cfg = ServerConfig {
        tenancy: Some(TenancyConfig {
            shards,
            ..TenancyConfig::default()
        }),
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("bind");

    // Sequential connects and opens: stream i belongs to tenant-i, so
    // per-stream job seeds are identical across runs and shard counts.
    let mut clients: Vec<(Client, u32)> = (0..TENANTS)
        .map(|i| {
            let mut c = Client::connect(server.addr(), &format!("tenant-{i}")).expect("connect");
            let s = c.open_stream(App::Adpcm, 2).expect("open").expect_stream();
            (c, s)
        })
        .collect();

    let mut digests: Vec<Digests> = vec![Vec::new(); TENANTS];

    // Round 1: everyone delivers one batch.
    for (i, (client, stream)) in clients.iter_mut().enumerate() {
        client
            .send_tokens(*stream, &workload(App::Adpcm, i as u64, BATCH))
            .expect("send");
        let run = client.flush(*stream).expect("flush");
        assert!(run.admitted(), "tenant {i} refused on an idle server");
        digests[i].extend(run.outputs.iter().map(|o| o.digest));
    }

    if detach {
        let (client, stream) = &mut clients[DETACHED];
        // A second batch is accepted while the tenant is still active...
        client
            .send_tokens(*stream, &workload(App::Adpcm, 100, BATCH))
            .expect("send");
        // ...then the operator detaches the tenant mid-stream. `Tokens`
        // carries no acknowledgement, so wait for the server to have
        // actually accepted the batch before pulling the trigger.
        let mgr = server.tenants().expect("tenancy enabled");
        let id = mgr
            .resolve(&format!("tenant-{DETACHED}"))
            .expect("tenant attached");
        while mgr.tenant_report(id).expect("attached").buffered < BATCH as u64 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let report = server.detach_tenant(id).expect("drain and detach");
        assert_eq!(report.state, TenantState::Detached);
        assert_eq!(report.inflight, 0, "detach completes only when drained");
        assert_eq!(report.buffered, BATCH as u64, "{report:?}");

        // The buffered batch can no longer flush — refused, not lost.
        let refused = client.flush(*stream).expect("flush");
        let busy = refused.busy.expect("draining tenant must refuse");
        assert_eq!(busy.reason, BusyReason::TenantDraining);

        // A third batch is refused at the door and never accepted.
        client
            .send_tokens(*stream, &workload(App::Adpcm, 101, BATCH))
            .expect("send");
        let busy = client.recv_busy(*stream).expect("tokens refusal");
        assert_eq!(busy.reason, BusyReason::TenantDraining);
    }

    // Round 2: the surviving tenants deliver a second batch.
    for (i, (client, stream)) in clients.iter_mut().enumerate() {
        if detach && i == DETACHED {
            continue;
        }
        client
            .send_tokens(*stream, &workload(App::Adpcm, 1000 + i as u64, BATCH))
            .expect("send");
        let run = client.flush(*stream).expect("flush");
        assert!(run.admitted(), "tenant {i} refused in round 2");
        digests[i].extend(run.outputs.iter().map(|o| o.digest));
    }

    for (client, stream) in clients.iter_mut() {
        client.close(*stream).expect("close");
    }
    (digests, server.shutdown())
}

/// The tentpole acceptance path: detaching one of eight tenants under
/// load drains it losslessly — every token it offered is delivered,
/// undelivered, or rejected — while the other seven tenants' delivered
/// streams are byte-for-byte identical to a run where nobody detached.
#[test]
fn detach_one_of_eight_tenants_accounts_fully_and_perturbs_nobody() {
    let (without, base) = eight_tenant_run(false, 2);
    let (with, report) = eight_tenant_run(true, 2);

    assert!(report.balanced(), "tokens_in == delivered + undelivered");
    let tenants = report.tenants.as_ref().expect("tenancy report");
    assert_eq!(tenants.tenants.len(), TENANTS);

    // The detached tenant's books: batch 1 delivered, batch 2 accepted
    // but refused at flush (undelivered), batch 3 rejected at the door.
    let account = report
        .streams
        .iter()
        .find(|s| {
            s.tenant
                == tenants
                    .tenants
                    .iter()
                    .find(|t| t.name == format!("tenant-{DETACHED}"))
                    .expect("detached tenant in directory")
                    .id
        })
        .expect("detached tenant's stream");
    assert_eq!(account.tokens_in, 2 * BATCH as u64);
    assert_eq!(account.delivered, BATCH as u64);
    assert_eq!(account.undelivered, BATCH as u64);
    assert_eq!(account.rejected, BATCH as u64);
    let offered = 3 * BATCH as u64;
    assert_eq!(
        account.delivered + account.undelivered + account.rejected,
        offered,
        "every offered token is accounted: {account:?}"
    );
    assert_eq!(account.busy, 2, "one flush refusal, one tokens refusal");

    // Fault isolation of the lifecycle event: the other seven tenants
    // delivered exactly the bytes they would have without the detach.
    for i in 0..TENANTS {
        if i == DETACHED {
            continue;
        }
        assert_eq!(
            with[i], without[i],
            "tenant {i} perturbed by another tenant's detach"
        );
        assert!(!with[i].is_empty());
    }
    // And the baseline run itself delivered everything it offered.
    assert!(base.balanced());
    assert_eq!(base.streams.iter().map(|s| s.rejected).sum::<u64>(), 0);
}

/// Queue quota and token rate answer structured, lossless `Busy` frames:
/// `quota-exceeded` carries (used, quota), `rate-limited` carries the
/// retry window, and in both cases nothing the client already streamed
/// is lost.
#[test]
fn quota_and_rate_refusals_are_structured_and_lossless() {
    let cfg = ServerConfig {
        tenancy: Some(TenancyConfig::default()),
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("bind");
    server
        .attach_tenant(
            "quota",
            TenantConfig {
                queue_quota: 10,
                ..TenantConfig::default()
            },
        )
        .expect("attach");
    server
        .attach_tenant(
            "rate",
            TenantConfig {
                rate: Some(TokenRate {
                    tokens_per_sec: 1,
                    burst: 4,
                }),
                ..TenantConfig::default()
            },
        )
        .expect("attach");

    // Quota: 8 of 10 accepted, the next 4 refused with (used, quota).
    let mut q = Client::connect(server.addr(), "quota").expect("connect");
    let qs = q.open_stream(App::Adpcm, 2).expect("open").expect_stream();
    let batch = workload(App::Adpcm, 1, 8);
    q.send_tokens(qs, &batch).expect("send");
    q.send_tokens(qs, &workload(App::Adpcm, 2, 4))
        .expect("send");
    let busy = q.recv_busy(qs).expect("quota refusal");
    assert_eq!(busy.reason, BusyReason::QuotaExceeded);
    assert_eq!(busy.pending, 8, "tokens in use");
    assert_eq!(busy.capacity, 10, "the quota");
    // The first 8 tokens were untouched by the refusal.
    let run = q.flush(qs).expect("flush");
    assert_eq!(run.outputs.len(), 8);
    for (i, out) in run.outputs.iter().enumerate() {
        assert_eq!(out.digest, digest_of(&batch[i]));
    }

    // Rate: the primed burst admits 4, the next flush is rate-limited
    // with a positive retry hint; the batch stays buffered server-side.
    let mut r = Client::connect(server.addr(), "rate").expect("connect");
    let rs = r.open_stream(App::Adpcm, 2).expect("open").expect_stream();
    r.send_tokens(rs, &workload(App::Adpcm, 3, 4))
        .expect("send");
    let run = r.flush(rs).expect("flush");
    assert!(run.admitted(), "burst capacity admits the first flush");
    r.send_tokens(rs, &workload(App::Adpcm, 4, 4))
        .expect("send");
    let refused = r.flush(rs).expect("flush");
    let busy = refused.busy.expect("drained bucket must refuse");
    assert_eq!(busy.reason, BusyReason::RateLimited);
    assert!(busy.pending > 0, "retry-after milliseconds: {busy:?}");

    q.close(qs).expect("close");
    r.close(rs).expect("close");
    let report = server.shutdown();
    assert!(report.balanced());
    let tenants = report.tenants.expect("tenancy report");
    let quota = tenants
        .tenants
        .iter()
        .find(|t| t.name == "quota")
        .expect("quota tenant");
    assert_eq!(quota.rejected_quota, 4);
    assert_eq!(quota.delivered, 8);
    let rate = tenants
        .tenants
        .iter()
        .find(|t| t.name == "rate")
        .expect("rate tenant");
    assert_eq!(rate.rejected_rate, 4);
    assert_eq!(rate.delivered, 4);
}

/// With auto-attach off, a connection naming an unattached tenant is a
/// protocol error; pre-attached names connect fine, and two connections
/// under one name share the tenant.
#[test]
fn hello_resolution_enforces_the_attach_policy() {
    let cfg = ServerConfig {
        tenancy: Some(TenancyConfig {
            auto_attach: false,
            ..TenancyConfig::default()
        }),
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("bind");
    server
        .attach_tenant("known", TenantConfig::default())
        .expect("attach");

    assert!(
        Client::connect(server.addr(), "unknown").is_err(),
        "an unattached name must be refused at Hello"
    );

    let mut a = Client::connect(server.addr(), "known").expect("connect");
    let mut b = Client::connect(server.addr(), "known").expect("connect");
    let sa = a.open_stream(App::Adpcm, 2).expect("open").expect_stream();
    let sb = b.open_stream(App::Mjpeg, 2).expect("open").expect_stream();
    a.close(sa).expect("close");
    b.close(sb).expect("close");

    let report = server.shutdown();
    let tenants = report.tenants.expect("tenancy report");
    assert_eq!(tenants.tenants.len(), 1, "one shared tenant");
    let known = &tenants.tenants[0];
    assert!(
        report.streams.iter().all(|s| s.tenant == known.id),
        "both connections' streams share the tenant"
    );
}

/// The tenants section of the shutdown report is byte-identical at any
/// supervisor shard count — sharding is an internal scaling knob, never
/// an observable.
#[test]
fn tenant_directory_json_is_shard_count_invariant() {
    let run = |shards: usize| {
        let (_, report) = eight_tenant_run(false, shards);
        report.tenants.expect("tenancy report").to_json()
    };
    let one = run(1);
    assert_eq!(one, run(2));
    assert_eq!(one, run(4));
}
