//! Campaign-level acceptance tests for `rtft-chaos` (ISSUE 3).
//!
//! These pin the chaos harness's contract at the scale the issue demands:
//! a ≥200-scenario campaign whose report is byte-identical across runs,
//! in which every single permanent timing fault is caught inside its
//! analytic bound, every value-corruption under the voting selector is
//! caught or masked, and no healthy replica is ever latched.

use rtft_chaos::{Campaign, OutcomeClass, Redundancy};

const CAMPAIGN_SEED: u64 = 0xDAC1_4FA7;
const CAMPAIGN_SIZE: u64 = 200;

#[test]
fn campaign_is_deterministic_across_runs() {
    let a = Campaign::generate(CAMPAIGN_SEED, CAMPAIGN_SIZE).run();
    let b = Campaign::generate(CAMPAIGN_SEED, CAMPAIGN_SIZE).run();
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "same campaign seed must serialise byte-identically"
    );
}

#[test]
fn campaign_respects_the_analytic_guarantees() {
    let report = Campaign::generate(CAMPAIGN_SEED, CAMPAIGN_SIZE).run();
    assert_eq!(report.outcomes.len(), CAMPAIGN_SIZE as usize);

    let mut permanent = 0u64;
    let mut corrupt_voting = 0u64;
    let mut healthy = 0u64;
    for outcome in &report.outcomes {
        let s = &outcome.scenario;
        match s.fault {
            // The paper's guarantee: a permanent timing fault (fail-stop,
            // or a slow-down the shaper cannot hide) is detected within
            // the closed-form bound — on every platform.
            Some(f) if f.is_permanent_timing() => {
                permanent += 1;
                assert_eq!(
                    outcome.class,
                    OutcomeClass::DetectedInBound,
                    "scenario {}: permanent timing fault escaped its bound: {outcome:?}",
                    s.id
                );
                let bound = outcome.bound.expect("permanent faults carry a bound");
                let latency = outcome.detection_latency.expect("latched");
                assert!(latency.as_ns() > 0, "scenario {}: zero latency", s.id);
                // `DetectedInBound` already includes the activation grace;
                // sanity-check the raw relation too.
                assert!(
                    latency.as_ns() <= bound.as_ns() + 10 * bound.as_ns(),
                    "scenario {}: latency {latency} wildly above bound {bound}",
                    s.id
                );
            }
            // The voting selector's guarantee: silent data corruption in a
            // replica minority is latched (or outvoted) — never silent.
            Some(f) if f.is_value() && s.redundancy == Redundancy::TriVoting => {
                corrupt_voting += 1;
                assert_ne!(
                    outcome.class,
                    OutcomeClass::SilentFailure,
                    "scenario {}: corruption slipped through the voting selector: {outcome:?}",
                    s.id
                );
                assert_ne!(outcome.class, OutcomeClass::FalsePositive, "{outcome:?}");
                assert_eq!(
                    outcome.value_errors, 0,
                    "scenario {}: voting delivered corrupted values: {outcome:?}",
                    s.id
                );
            }
            // Fault-free surveillance runs: any latch is a false positive,
            // any loss is a silent failure; both are forbidden.
            None => {
                healthy += 1;
                assert_eq!(
                    outcome.class,
                    OutcomeClass::Masked,
                    "scenario {}: fault-free run misbehaved: {outcome:?}",
                    s.id
                );
            }
            _ => {}
        }
        // Universally: healthy replicas are never latched.
        assert_ne!(
            outcome.class,
            OutcomeClass::FalsePositive,
            "scenario {}: healthy replica latched: {outcome:?}",
            s.id
        );
    }
    // The palette must actually exercise each guarantee at this size.
    assert!(
        permanent >= 30,
        "only {permanent} permanent-fault scenarios"
    );
    assert!(
        corrupt_voting >= 10,
        "only {corrupt_voting} corrupt-voting scenarios"
    );
    assert!(healthy >= 10, "only {healthy} fault-free scenarios");
}

#[test]
fn report_json_carries_the_campaign_structure() {
    let report = Campaign::generate(7, 30).run();
    let json = report.to_json();
    // Header, per-class table, outcome rows, embedded metrics registry.
    assert!(json.contains("\"schema\":\"rtft-chaos-campaign-v1\""));
    assert!(json.contains("\"campaign_seed\":7"));
    assert!(json.contains("\"classes\":{"));
    assert!(json.contains("\"detected-in-bound\":"));
    assert!(json.contains("\"outcomes\":["));
    assert!(json.contains("\"metrics\":{\"counters\":{"));
    assert!(json.contains("\"chaos.scenarios\":30"));
    // The bench line is a one-object summary of the same run.
    let bench = report.bench_line();
    assert!(bench.contains("\"bench\":\"chaos_campaign\""));
    assert!(bench.contains("\"scenarios\":30"));
}
