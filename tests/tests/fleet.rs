//! Integration tests of the `rtft-fleet` executor: admission backpressure,
//! EDF ordering, health-aware replacement, and throughput scaling.

use rtft_core::{DuplicationConfig, FaultPlan, JitterStageReplica, NJitterStageReplica};
use rtft_core::{NModularModel, NSizingReport};
use rtft_fleet::{
    Admission, FleetConfig, FleetExecutor, JobRuntime, JobSpec, JobTemplate, RejectReason,
};
use rtft_kpn::Payload;
use rtft_rtc::sizing::DuplicationModel;
use rtft_rtc::{PjdModel, TimeNs};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serialises the wall-clock-sensitive tests: the harness runs tests on
/// parallel threads, and on a small host two fleets of sleep-bound jobs
/// running at once stretch scheduler gaps past the quiescence grace.
fn timing_lock() -> MutexGuard<'static, ()> {
    static TIMING: Mutex<()> = Mutex::new(());
    TIMING.lock().unwrap_or_else(|e| e.into_inner())
}

/// A small synthetic duplicated job under the DES runtime. ~33 tokens at
/// 30 ms simulate in a few wall milliseconds.
fn des_job(name: &str, fault: Option<TimeNs>) -> JobSpec {
    let model = DuplicationModel::symmetric(
        PjdModel::from_ms(30.0, 2.0, 0.0),
        PjdModel::from_ms(30.0, 2.0, 90.0),
        [
            PjdModel::from_ms(30.0, 5.0, 0.0),
            PjdModel::from_ms(30.0, 30.0, 0.0),
        ],
    );
    let mut cfg = DuplicationConfig::from_model(model)
        .expect("bounded model")
        .with_token_count(50)
        .with_payload(Arc::new(Payload::U64));
    if let Some(at) = fault {
        cfg = cfg.with_fault(0, FaultPlan::fail_stop_at(at));
    }
    let factory = Arc::new(JitterStageReplica::from_model(&cfg.model));
    JobSpec {
        name: name.into(),
        template: JobTemplate::Duplicated { cfg, factory },
        relative_deadline: Duration::from_secs(60),
        runtime: JobRuntime::DiscreteEvent {
            horizon: TimeNs::from_secs(20),
        },
    }
}

/// A sleep-bound threaded job: wall-clock duration is dominated by the
/// token period and the quiescence window (≈ `tokens × 2 ms + 40 ms`), so
/// concurrent jobs overlap their waiting.
fn threaded_job(name: &str, tokens: u64) -> JobSpec {
    let model = DuplicationModel::symmetric(
        PjdModel::from_ms(2.0, 0.2, 0.0),
        PjdModel::from_ms(2.0, 0.2, 8.0),
        [
            PjdModel::from_ms(2.0, 0.3, 0.0),
            PjdModel::from_ms(2.0, 0.5, 0.0),
        ],
    );
    let cfg = DuplicationConfig::from_model(model)
        .expect("bounded model")
        .with_token_count(tokens)
        .with_payload(Arc::new(Payload::U64));
    let factory = Arc::new(JitterStageReplica::from_model(&cfg.model));
    JobSpec {
        name: name.into(),
        template: JobTemplate::Duplicated { cfg, factory },
        relative_deadline: Duration::from_secs(60),
        runtime: JobRuntime::Threaded {
            deadline: Duration::from_secs(30),
            // Healthy runs end by halting, so the grace window is never
            // waited out; it only needs to exceed scheduling gaps under
            // oversubscription so quiescence never fires spuriously.
            quiescence_grace: Duration::from_millis(150),
        },
    }
}

#[test]
fn injected_fault_triggers_replacement_and_recovery() {
    let fleet = FleetExecutor::new(FleetConfig {
        workers: 2,
        pending_capacity: 8,
        max_replacements: 1,
    });
    let admission = fleet.submit(des_job("faulty-tenant", Some(TimeNs::from_secs(1))));
    assert!(matches!(admission, Admission::Admitted(_)));

    let report = fleet.join();
    assert_eq!(report.runs.len(), 1);
    let job = &report.runs[0];
    // The fault was masked (the faulty run still delivered every token),
    // observed (replica 0 latched), and repaired by a healed replacement.
    assert_eq!(job.faulty_replicas, vec![0]);
    assert_eq!(job.attempts, 1, "one replacement run");
    assert!(job.recovered, "replacement came back healthy");
    assert!(!job.failed);
    assert_eq!(job.arrivals, job.expected);
    assert_eq!(report.status.replaced, 1);
    assert_eq!(report.status.recovered, 1);
    assert_eq!(report.status.completed, 2, "original + replacement runs");
    assert_eq!(report.status.recovery_ns.count, 1);
    // The job's detection latency was folded into the fleet registry.
    assert!(report.status.detection_latency_ns.count >= 1);
}

#[test]
fn n_modular_job_reports_faulty_indices_through_the_fleet() {
    let model = NModularModel {
        producer: PjdModel::from_ms(30.0, 2.0, 0.0),
        consumer: PjdModel::from_ms(30.0, 2.0, 120.0),
        replicas: vec![
            PjdModel::from_ms(30.0, 5.0, 0.0),
            PjdModel::from_ms(30.0, 15.0, 0.0),
            PjdModel::from_ms(30.0, 30.0, 0.0),
        ],
    };
    let sizing = NSizingReport::analyze(&model).expect("bounded");
    let factory = Arc::new(NJitterStageReplica::from_model(&model));
    let spec = JobSpec {
        name: "triplicated".into(),
        template: JobTemplate::NModular {
            model,
            sizing,
            token_count: 100,
            seeds: (1, 2),
            payload: Arc::new(Payload::U64),
            factory,
            faults: vec![
                FaultPlan::fail_stop_at(TimeNs::from_secs(1)),
                FaultPlan::healthy(),
                FaultPlan::healthy(),
            ],
        },
        relative_deadline: Duration::from_secs(60),
        runtime: JobRuntime::DiscreteEvent {
            horizon: TimeNs::from_secs(30),
        },
    };

    let fleet = FleetExecutor::new(FleetConfig::default());
    assert!(matches!(fleet.submit(spec), Admission::Admitted(_)));
    let report = fleet.join();
    let job = &report.runs[0];
    assert_eq!(
        job.faulty_replicas,
        vec![0],
        "detectors name the dead replica"
    );
    assert!(job.recovered);
    assert!(!job.failed);
    assert_eq!(report.status.recovered, 1);
}

#[test]
fn full_fleet_rejects_with_queue_full() {
    let _serial = timing_lock();
    // One worker, capacity two: the first job occupies the worker for at
    // least its quiescence window, so the third submission must bounce.
    let fleet = FleetExecutor::new(FleetConfig {
        workers: 1,
        pending_capacity: 2,
        max_replacements: 0,
    });
    assert!(matches!(
        fleet.submit(threaded_job("a", 4)),
        Admission::Admitted(_)
    ));
    assert!(matches!(
        fleet.submit(threaded_job("b", 4)),
        Admission::Admitted(_)
    ));
    match fleet.submit(threaded_job("c", 4)) {
        Admission::Rejected(RejectReason::QueueFull { pending, capacity }) => {
            assert_eq!(pending, 2);
            assert_eq!(capacity, 2);
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    let report = fleet.join();
    assert_eq!(report.status.submitted, 2);
    assert_eq!(report.status.rejected, 1);
    assert_eq!(report.runs.len(), 2);
    assert!(report.runs.iter().all(|r| !r.failed));
}

#[test]
fn shutdown_rejects_further_submissions() {
    let fleet = FleetExecutor::new(FleetConfig::default());
    fleet.shutdown();
    assert_eq!(
        fleet.submit(des_job("late", None)),
        Admission::Rejected(RejectReason::ShuttingDown)
    );
    let report = fleet.join();
    assert_eq!(report.status.submitted, 0);
    assert_eq!(report.status.rejected, 1);
}

#[test]
fn single_worker_completes_in_deadline_order() {
    let _serial = timing_lock();
    // Block the lone worker with a sleep-bound job, queue three DES jobs
    // with *reversed* deadlines, and check the pool drained them EDF.
    let fleet = FleetExecutor::new(FleetConfig {
        workers: 1,
        pending_capacity: 8,
        max_replacements: 0,
    });
    assert!(matches!(
        fleet.submit(threaded_job("blocker", 8)),
        Admission::Admitted(_)
    ));
    for (name, deadline_secs) in [("slack", 300u64), ("soon", 200), ("urgent", 100)] {
        let mut spec = des_job(name, None);
        spec.relative_deadline = Duration::from_secs(deadline_secs);
        assert!(matches!(fleet.submit(spec), Admission::Admitted(_)));
    }
    let report = fleet.join();
    let order: Vec<&str> = report.runs.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(order, vec!["blocker", "urgent", "soon", "slack"]);
    assert!(report.runs.iter().all(|r| r.deadline_met));
}

#[test]
fn two_workers_overlap_sleep_bound_jobs() {
    let _serial = timing_lock();
    // Six ≈50 ms sleep-bound jobs: two workers overlap the waiting, so
    // wall time must drop clearly below the serial run. The 1.2× floor is
    // deliberately loose for noisy CI machines.
    let run = |workers: usize| {
        let fleet = FleetExecutor::new(FleetConfig {
            workers,
            pending_capacity: 16,
            max_replacements: 0,
        });
        let start = Instant::now();
        for i in 0..6 {
            assert!(matches!(
                fleet.submit(threaded_job(&format!("job-{i}"), 6)),
                Admission::Admitted(_)
            ));
        }
        let report = fleet.join();
        assert_eq!(report.status.completed, 6);
        start.elapsed()
    };
    let serial = run(1);
    let overlapped = run(2);
    let ratio = serial.as_secs_f64() / overlapped.as_secs_f64();
    assert!(
        ratio >= 1.2,
        "2 workers should overlap sleep-bound jobs: serial {serial:?}, overlapped {overlapped:?} (ratio {ratio:.2})"
    );
}
