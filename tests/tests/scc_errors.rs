//! Error-path and property tests for the SCC model (`rtft-scc`).
//!
//! The happy paths are covered by the crate's own unit tests; these pin
//! the failure modes — MPB share exhaustion — and the latency model's
//! ordering properties, with and without an active NoC fault plan.

use rtft_rtc::TimeNs;
use rtft_scc::{CoreId, MpbAllocator, MpbExhausted, NocFaultPlan, NocModel};

const MPB_SHARE: usize = 8 * 1024;

#[test]
fn mpb_allocator_reports_exhaustion_with_the_remaining_budget() {
    let mut alloc = MpbAllocator::new();
    let core = CoreId::new(5);
    alloc.alloc(core, 6 * 1024).expect("first fits");
    assert_eq!(alloc.free(core), MPB_SHARE - 6 * 1024);

    let err = alloc.alloc(core, 3 * 1024).expect_err("must exhaust");
    assert_eq!(
        err,
        MpbExhausted {
            core,
            requested: 3 * 1024,
            available: 2 * 1024,
        }
    );
    // The display string names the core and both byte counts.
    let msg = err.to_string();
    assert!(msg.contains("3072"), "{msg}");
    assert!(msg.contains("2048"), "{msg}");

    // A failed allocation must not consume budget …
    assert_eq!(alloc.used(core), 6 * 1024);
    // … and the exact remainder still fits.
    alloc.alloc(core, 2 * 1024).expect("remainder fits");
    assert_eq!(alloc.free(core), 0);
    // Other cores' shares are independent.
    assert_eq!(alloc.free(CoreId::new(6)), MPB_SHARE);
    let err = alloc.alloc(core, 1).expect_err("share is full");
    assert_eq!(err.available, 0);
}

/// Cores along the mesh's bottom row, in increasing hop distance from
/// core 0 (even core ids 0, 2, 4, … sit on tiles x = 0, 1, 2, … of row 0).
fn row_cores() -> Vec<CoreId> {
    (0..6).map(|x| CoreId::new(2 * x)).collect()
}

#[test]
fn message_latency_is_monotone_in_bytes_and_hops() {
    let noc = NocModel::paper_boot();
    let sizes = [0usize, 1, 512, 3 * 1024, 4 * 1024, 10 * 1024, 64 * 1024];
    let cores = row_cores();

    // Monotone in message size, for near and far destinations alike.
    for to in [CoreId::new(2), CoreId::new(47)] {
        let mut last = TimeNs::ZERO;
        for bytes in sizes {
            let lat = noc.message_latency(CoreId::new(0), to, bytes);
            assert!(
                lat >= last,
                "latency to {to} shrank: {bytes} bytes -> {lat} (was {last})"
            );
            last = lat;
        }
    }

    // Monotone in hop distance, for every chunk count.
    for bytes in [1usize, 3 * 1024, 10 * 1024] {
        let mut last = TimeNs::ZERO;
        for to in &cores {
            let lat = noc.message_latency(CoreId::new(0), *to, bytes);
            assert!(
                lat >= last,
                "{bytes} bytes: latency shrank moving further out to {to}"
            );
            last = lat;
        }
    }
}

#[test]
fn uniform_noc_faults_preserve_monotonicity_and_only_add_latency() {
    let noc = NocModel::paper_boot();
    // Per-link extras can break hop monotonicity by construction (one bad
    // link makes a *shorter* route through it dearer), so the property is
    // stated for the uniform plan.
    let plan = NocFaultPlan::uniform(TimeNs::from_us(10), TimeNs::from_us(5));
    let cores = row_cores();

    for bytes in [1usize, 3 * 1024, 10 * 1024] {
        let mut last = TimeNs::ZERO;
        for to in &cores {
            let base = noc.message_latency(CoreId::new(0), *to, bytes);
            let under = noc.message_latency_under(&plan, CoreId::new(0), *to, bytes, TimeNs::ZERO);
            assert!(under >= base, "a fault plan must never speed the NoC up");
            assert!(
                under >= last,
                "{bytes} bytes: degraded latency shrank at {to}"
            );
            last = under;
        }
    }

    // And in bytes, under the same plan.
    let mut last = TimeNs::ZERO;
    for bytes in [0usize, 1, 3 * 1024, 10 * 1024, 64 * 1024] {
        let under =
            noc.message_latency_under(&plan, CoreId::new(0), CoreId::new(47), bytes, TimeNs::ZERO);
        assert!(under >= last, "degraded latency shrank at {bytes} bytes");
        last = under;
    }
}
