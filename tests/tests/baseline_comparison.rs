//! Integration of the distance-function baseline with the framework: both
//! detectors watching the same fault (the Table 3 scenario).

use rtft_apps::networks::App;
use rtft_core::{build_duplicated, FaultPlan, ReplicaFactory};
use rtft_distfn::{tap_stage, DistanceMonitor, LRepetitive, StreamTap};
use rtft_kpn::{Engine, Fifo, Network, NodeId, PortId};
use rtft_rtc::{PjdModel, TimeNs};
use std::sync::Arc;

struct Tapped<'a> {
    inner: &'a dyn ReplicaFactory,
    tap: Arc<StreamTap>,
}

impl ReplicaFactory for Tapped<'_> {
    fn build(
        &self,
        net: &mut Network,
        input: PortId,
        output: PortId,
        replica: usize,
        fault: FaultPlan,
    ) -> Vec<NodeId> {
        if replica != 0 {
            return self.inner.build(net, input, output, replica, fault);
        }
        let mid = net.add_channel(Fifo::new("tap0", 1));
        let tap = net.add_process(tap_stage(
            "tapstage0",
            input,
            PortId::of(mid),
            Arc::clone(&self.tap),
        ));
        let mut nodes = vec![tap];
        nodes.extend(
            self.inner
                .build(net, PortId::of(mid), output, replica, fault),
        );
        nodes
    }
}

/// Both the framework and the distance-function monitor flag the same
/// fail-stop; the framework needs no tap, no timestamps and no timer.
#[test]
fn both_detectors_flag_the_same_fault() {
    let app = App::Adpcm;
    let period = app.profile().model.producer.period;
    let fault_at = period * 30;
    let tokens = 90u64;
    let cfg = app
        .duplication_config(1, tokens)
        .expect("bounded")
        .with_fault(0, FaultPlan::fail_stop_at(fault_at));
    let inner = app.replica_factory([11, 22]);
    let tap = StreamTap::new();
    let factory = Tapped {
        inner: &inner,
        tap: Arc::clone(&tap),
    };

    let (mut net, ids) = build_duplicated(&cfg, &factory);
    let bounds = LRepetitive::from_pjd(&PjdModel::new(period, period / 2, TimeNs::ZERO), 1);
    let monitor = net.add_process(DistanceMonitor::new(
        "distfn",
        Arc::clone(&tap),
        bounds,
        TimeNs::from_ms(1),
        Some(period * 200),
    ));
    let mut engine = Engine::new(net);
    engine.run_until(period * 250);
    let net = engine.network();

    // Framework detection (counter-based, no observation machinery).
    let framework = ids.replicator_faults(net)[0]
        .map(|f| f.at)
        .or(ids.selector_faults(net)[0].map(|f| f.at))
        .expect("framework missed the fault");
    assert!(framework >= fault_at);

    // Baseline detection (timestamped tap + 1 ms polling).
    let verdict = net
        .process_as::<DistanceMonitor>(monitor)
        .expect("monitor present")
        .verdict()
        .expect("distance-function monitor missed the fault");
    assert!(verdict.overdue, "fail-stop manifests as an overdue event");
    assert!(verdict.detected_at >= fault_at);

    // And the fault is still masked end to end.
    assert_eq!(ids.consumer_arrivals(net).len() as u64, tokens);
}

/// The baseline needs its event history sized to the stream; the
/// framework's state is constant. Quantify the asymmetry.
#[test]
fn observation_state_asymmetry() {
    let model = PjdModel::from_ms(6.3, 1.0, 0.0);
    let l8 = LRepetitive::from_pjd(&model, 8);
    // Distance functions alone (before any event history!) already cost
    // more than the selector's whole counter block.
    assert!(l8.state_bytes() > 128);
    assert!(rtft_core::Selector::state_bytes() < 512);
    assert!(rtft_core::Replicator::state_bytes() < 512);
}
