//! Host crate for the workspace integration tests (see this crate's
//! `tests/` directory). The tests exercise every `rtft` crate together:
//! applications over the fault-tolerance framework over both runtimes,
//! with the SCC platform model and the distance-function baseline.
