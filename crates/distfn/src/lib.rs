//! # rtft-distfn — the distance-function monitoring baseline
//!
//! The state-of-the-art comparison point of the paper's §4.3: timing-fault
//! detection by monitoring stream conformance against *distance functions*
//! (Neukirchner et al., "Monitoring arbitrary activation patterns in
//! real-time systems", RTSS 2012), with the `l`-repetitive approximation
//! and a polling monitor adapted to the fail-silent fault model exactly as
//! the paper describes (`l = 1` at the replicator, 1 ms polling).
//!
//! The baseline detects the same faults as the paper's framework but needs
//! **timestamped observation and a timer**, which is the resource cost the
//! replicator/selector counters avoid — Table 3 quantifies the resulting
//! ~1 poll-period latency penalty.
//!
//! # Example
//!
//! ```
//! use rtft_distfn::{DistanceMonitor, LRepetitive, StreamTap};
//! use rtft_rtc::{PjdModel, TimeNs};
//!
//! let model = PjdModel::from_ms(30.0, 2.0, 0.0);
//! let bounds = LRepetitive::from_pjd(&model, 1);
//! // 5 consecutive events must span at least 4·30 − 2 = 118 ms …
//! assert_eq!(bounds.dmin(5), TimeNs::from_ms(112)); // l = 1 under-approximates
//! // … and the exact l = 4 functions are tighter:
//! assert_eq!(LRepetitive::from_pjd(&model, 4).dmin(5), TimeNs::from_ms(118));
//! ```

#![warn(missing_docs)]

mod distance;
mod monitor;

pub use distance::LRepetitive;
pub use monitor::{tap_stage, DistanceMonitor, MonitorVerdict, StreamTap, TapStage};
