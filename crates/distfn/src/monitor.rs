//! The polling fault monitor.
//!
//! The comparison baseline of paper §4.3: a runtime monitor that keeps a
//! timestamped event history and polls it on a timer (1 ms in the paper),
//! flagging a replica faulty when the stream violates its distance
//! functions — including the *fail-silent adaptation*: an overdue next
//! event (now − last > d⁺(2)) is a violation even though no event has
//! arrived, which is what detects a fail-stopped replica.
//!
//! Unlike the paper's framework, this approach needs (a) timestamped
//! observation of the stream and (b) a timer — the resource costs the
//! paper's counters-only channels avoid. The monitor observes the stream
//! through a [`StreamTap`] closure installed in a pass-through stage.

use crate::distance::LRepetitive;
use rtft_kpn::{PortId, Process, Syscall, Transform, Wakeup};
use rtft_rtc::TimeNs;
use std::sync::{Arc, Mutex};

/// A shared, timestamped event log: the tap writes, the monitor reads.
#[derive(Debug, Default)]
pub struct StreamTap {
    events: Mutex<Vec<TimeNs>>,
}

impl StreamTap {
    /// An empty tap.
    pub fn new() -> Arc<Self> {
        Arc::new(StreamTap::default())
    }

    /// Records an event at `at`.
    pub fn record(&self, at: TimeNs) {
        self.events.lock().expect("tap mutex poisoned").push(at);
    }

    /// Number of events observed so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("tap mutex poisoned").len()
    }

    /// `true` if nothing was observed yet.
    pub fn is_empty(&self) -> bool {
        self.events.lock().expect("tap mutex poisoned").is_empty()
    }

    /// Snapshot of the recorded event times.
    pub fn snapshot(&self) -> Vec<TimeNs> {
        self.events.lock().expect("tap mutex poisoned").clone()
    }

    /// The most recent event, if any.
    pub fn last(&self) -> Option<TimeNs> {
        self.events
            .lock()
            .expect("tap mutex poisoned")
            .last()
            .copied()
    }
}

/// Builds a pass-through stage that records every forwarded token into
/// `tap`. Insert it on the channel to be monitored.
///
/// Note the tap records the time the *stage* forwards the token, i.e. the
/// same instants a bus-snooping monitor would see.
pub fn tap_stage(
    name: impl Into<String>,
    input: PortId,
    output: PortId,
    tap: Arc<StreamTap>,
) -> TapStage {
    TapStage {
        inner: Transform::new(name, input, output, TimeNs::ZERO, TimeNs::ZERO, 0, |p| p),
        tap,
    }
}

/// A pass-through stage recording forwarded-token times (see
/// [`tap_stage`]).
#[derive(Debug)]
pub struct TapStage {
    inner: Transform,
    tap: Arc<StreamTap>,
}

impl Process for TapStage {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn resume(&mut self, wake: Wakeup, now: TimeNs) -> Syscall {
        if matches!(wake, Wakeup::ReadDone(_)) {
            self.tap.record(now);
        }
        self.inner.resume(wake, now)
    }
}

/// The detection verdict of a [`DistanceMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorVerdict {
    /// Poll instant at which the violation was flagged.
    pub detected_at: TimeNs,
    /// `true` if flagged by the fail-silent (overdue event) rule rather
    /// than an explicit distance violation between recorded events.
    pub overdue: bool,
}

/// A polling distance-function monitor, run as a network process.
///
/// Every `poll_period` it checks the tapped stream against its distance
/// functions; on the first violation it records the verdict and halts.
/// After the run, read the verdict via
/// [`Network::process_as`](rtft_kpn::Network::process_as).
#[derive(Debug)]
pub struct DistanceMonitor {
    name: String,
    tap: Arc<StreamTap>,
    bounds: LRepetitive,
    poll_period: TimeNs,
    /// Grace: monitoring starts after the first observed event.
    verdict: Option<MonitorVerdict>,
    deadline: Option<TimeNs>,
}

impl DistanceMonitor {
    /// Creates a monitor polling `tap` against `bounds` every
    /// `poll_period` (the paper's baseline uses 1 ms). `deadline` bounds
    /// the monitor's lifetime so finite simulations terminate.
    ///
    /// # Panics
    ///
    /// Panics if `poll_period` is zero.
    pub fn new(
        name: impl Into<String>,
        tap: Arc<StreamTap>,
        bounds: LRepetitive,
        poll_period: TimeNs,
        deadline: Option<TimeNs>,
    ) -> Self {
        assert!(poll_period > TimeNs::ZERO, "poll period must be positive");
        DistanceMonitor {
            name: name.into(),
            tap,
            bounds,
            poll_period,
            verdict: None,
            deadline,
        }
    }

    /// The verdict, if a violation was detected.
    pub fn verdict(&self) -> Option<MonitorVerdict> {
        self.verdict
    }

    fn check(&mut self, now: TimeNs) {
        if self.verdict.is_some() {
            return;
        }
        let events = self.tap.snapshot();
        if events.is_empty() {
            return; // grace period until the stream starts
        }
        // Explicit violations between recorded events.
        if self.bounds.first_violation(&events).is_some() {
            self.verdict = Some(MonitorVerdict {
                detected_at: now,
                overdue: false,
            });
            return;
        }
        // Fail-silent rule: the next event is overdue.
        let last = *events.last().expect("non-empty");
        if now > last + self.bounds.dmax(2) {
            self.verdict = Some(MonitorVerdict {
                detected_at: now,
                overdue: true,
            });
        }
    }
}

impl Process for DistanceMonitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn resume(&mut self, _wake: Wakeup, now: TimeNs) -> Syscall {
        self.check(now);
        if self.verdict.is_some() {
            return Syscall::Halt;
        }
        if matches!(self.deadline, Some(d) if now >= d) {
            return Syscall::Halt;
        }
        Syscall::Compute(self.poll_period)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_kpn::{Collector, Engine, Fifo, Network, Payload, PjdSource, RunOutcome};
    use rtft_rtc::PjdModel;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_ms(v)
    }

    /// A healthy periodic stream through a tap: the monitor stays quiet
    /// until its deadline.
    #[test]
    fn healthy_stream_no_verdict() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 4));
        let b = net.add_channel(Fifo::new("b", 4));
        let model = PjdModel::from_ms(30.0, 2.0, 0.0);
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            model,
            1,
            Some(30),
            Payload::U64,
        ));
        let tap = StreamTap::new();
        net.add_process(tap_stage(
            "tap",
            PortId::of(a),
            PortId::of(b),
            Arc::clone(&tap),
        ));
        net.add_process(Collector::new("col", PortId::of(b), Some(30)));
        let bounds = LRepetitive::from_pjd(&model, 1);
        // Deadline before the finite source runs dry (30·30 ms = 900 ms):
        // a monitor cannot distinguish a completed stream from a stall.
        let monitor = net.add_process(DistanceMonitor::new(
            "mon",
            Arc::clone(&tap),
            bounds,
            ms(1),
            Some(ms(800)),
        ));
        let mut engine = Engine::new(net);
        let out = engine.run_until(TimeNs::from_secs(5));
        assert!(matches!(
            out,
            RunOutcome::Completed { .. } | RunOutcome::Quiescent { .. }
        ));
        let mon = engine
            .network()
            .process_as::<DistanceMonitor>(monitor)
            .unwrap();
        assert_eq!(mon.verdict(), None);
        assert_eq!(tap.len(), 30);
    }

    /// A stream that stops: the fail-silent rule flags it within
    /// d⁺(2) + one poll period.
    #[test]
    fn fail_stop_detected_with_polling_quantization() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 4));
        let b = net.add_channel(Fifo::new("b", 4));
        let model = PjdModel::from_ms(30.0, 2.0, 0.0);
        // Source emits 10 tokens and stops: a fail-stop at t ≈ 270 ms.
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            model,
            0,
            Some(10),
            Payload::U64,
        ));
        let tap = StreamTap::new();
        net.add_process(tap_stage(
            "tap",
            PortId::of(a),
            PortId::of(b),
            Arc::clone(&tap),
        ));
        net.add_process(Collector::new("col", PortId::of(b), Some(10)));
        let bounds = LRepetitive::from_pjd(&model, 1);
        let monitor = net.add_process(DistanceMonitor::new(
            "mon",
            Arc::clone(&tap),
            bounds,
            ms(1),
            Some(TimeNs::from_secs(5)),
        ));
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(10));
        let mon = engine
            .network()
            .process_as::<DistanceMonitor>(monitor)
            .unwrap();
        let verdict = mon.verdict().expect("stall must be flagged");
        assert!(verdict.overdue);
        // Last event at 270 ms (zero-jitter seed path may displace by ≤2ms);
        // flag after d⁺(2) = 32 ms, quantised to the next 1 ms poll.
        let last = tap.last().unwrap();
        let latency = verdict.detected_at - last;
        assert!(latency > ms(32), "must exceed dmax(2): {latency}");
        assert!(
            latency <= ms(32) + ms(2),
            "within polling quantisation: {latency}"
        );
    }

    /// A burst violates d⁻ between recorded events (value-domain check).
    #[test]
    fn burst_detected_as_explicit_violation() {
        let tap = StreamTap::new();
        tap.record(ms(0));
        tap.record(ms(30));
        tap.record(ms(31)); // far below d⁻(2) = 28 ms
        let model = PjdModel::from_ms(30.0, 2.0, 0.0);
        let mut mon = DistanceMonitor::new(
            "m",
            Arc::clone(&tap),
            LRepetitive::from_pjd(&model, 1),
            ms(1),
            None,
        );
        mon.check(ms(32));
        let v = mon.verdict().expect("burst flagged");
        assert!(!v.overdue);
    }

    /// Monitor memory cost scales with l — the trade-off the paper calls
    /// out versus its constant-size counters.
    #[test]
    fn monitor_state_exceeds_framework_counters() {
        let model = PjdModel::from_ms(30.0, 2.0, 0.0);
        let bounds = LRepetitive::from_pjd(&model, 8);
        // The framework's per-channel state is a handful of u64 counters;
        // the monitor additionally stores distance vectors and an event
        // history.
        assert!(bounds.state_bytes() > 64);
    }
}
