//! l-repetitive distance functions (Neukirchner et al., RTSS 2012).
//!
//! A *distance function* bounds the time spanned by `N` consecutive events
//! of a stream: `d⁻(N)` is the minimum and `d⁺(N)` the maximum admissible
//! distance between an event and the `(N−1)`-th event after it. General
//! distance functions need unbounded memory; the *l-repetitive*
//! approximation stores only the first `l` values and extrapolates larger
//! spans from decompositions:
//!
//! ```text
//! d⁻(N) ≥ max_{2 ≤ j ≤ l+1} d⁻(j) + d⁻(N − j + 1)
//! d⁺(N) ≤ min_{2 ≤ j ≤ l+1} d⁺(j) + d⁺(N − j + 1)
//! ```
//!
//! This trades precision for O(l) memory — the approximation the paper
//! cites as the technique's efficiency/accuracy trade-off (§1, [11]).

use rtft_rtc::{PjdModel, TimeNs};

/// An l-repetitive pair of distance functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LRepetitive {
    /// `dmin[k]` = `d⁻(k + 2)`: min span of `k + 2` consecutive events.
    dmin: Vec<TimeNs>,
    /// `dmax[k]` = `d⁺(k + 2)`.
    dmax: Vec<TimeNs>,
}

impl LRepetitive {
    /// Builds from explicit base values `d(2) .. d(l+1)`.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty, have different lengths, or violate
    /// `d⁻ ≤ d⁺` pointwise.
    pub fn new(dmin: Vec<TimeNs>, dmax: Vec<TimeNs>) -> Self {
        assert!(!dmin.is_empty(), "need at least d(2)");
        assert_eq!(dmin.len(), dmax.len(), "dmin/dmax length mismatch");
        for (lo, hi) in dmin.iter().zip(dmax.iter()) {
            assert!(lo <= hi, "d⁻ must not exceed d⁺");
        }
        LRepetitive { dmin, dmax }
    }

    /// The conformance distance functions of a PJD stream:
    /// `d⁻(N) = max(0, (N−1)·P − J)`, `d⁺(N) = (N−1)·P + J`, truncated to
    /// repetitiveness level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l == 0`.
    pub fn from_pjd(model: &PjdModel, l: usize) -> Self {
        assert!(l > 0, "repetitiveness level must be positive");
        let mut dmin = Vec::with_capacity(l);
        let mut dmax = Vec::with_capacity(l);
        for n in 2..=(l + 1) as u64 {
            let span = model.period * (n - 1);
            dmin.push(span.saturating_sub(model.jitter));
            dmax.push(span + model.jitter);
        }
        LRepetitive { dmin, dmax }
    }

    /// Repetitiveness level `l`.
    pub fn level(&self) -> usize {
        self.dmin.len()
    }

    /// Minimum admissible span of `n ≥ 2` consecutive events
    /// (extrapolated beyond `l + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn dmin(&self, n: usize) -> TimeNs {
        assert!(n >= 2, "distance functions start at N = 2");
        if n - 2 < self.dmin.len() {
            return self.dmin[n - 2];
        }
        // Superadditive extrapolation: take the largest stored block
        // repeatedly (optimal for conformance-shaped d⁻).
        let mut best = TimeNs::ZERO;
        for (k, base) in self.dmin.iter().enumerate() {
            // A block of (k + 2) events advances k + 1 inter-event steps;
            // consecutive blocks share one event.
            let step = k + 1;
            let full = (n - 1) / step;
            let rem = (n - 1) % step;
            let mut total = *base * full as u64;
            if rem > 0 {
                total += self.dmin[rem - 1];
            }
            best = best.max(total);
        }
        best
    }

    /// Maximum admissible span of `n ≥ 2` consecutive events
    /// (extrapolated beyond `l + 1` by subadditive composition).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn dmax(&self, n: usize) -> TimeNs {
        assert!(n >= 2, "distance functions start at N = 2");
        if n - 2 < self.dmax.len() {
            return self.dmax[n - 2];
        }
        let mut best = TimeNs::MAX;
        for (k, base) in self.dmax.iter().enumerate() {
            let step = k + 1; // events advanced per block of (k+2) events
            let full = (n - 1) / step;
            let rem = (n - 1) % step;
            let mut total = *base * full as u64;
            if rem > 0 {
                total = total.saturating_add(self.dmax[rem - 1]);
            }
            best = best.min(total);
        }
        best
    }

    /// Checks a recorded event trace for conformance; returns the index of
    /// the first event that violates a distance bound against any earlier
    /// event within the repetitiveness window, or `None`.
    pub fn first_violation(&self, trace: &[TimeNs]) -> Option<usize> {
        for i in 1..trace.len() {
            let max_back = self.level().min(i);
            for back in 1..=max_back {
                let span = trace[i] - trace[i - back];
                let n = back + 1;
                if span < self.dmin(n) || span > self.dmax(n) {
                    return Some(i);
                }
            }
        }
        None
    }

    /// Bytes of monitor state for this approximation level (the memory
    /// cost the paper contrasts with its own counters-only approach).
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + 2 * self.dmin.capacity() * std::mem::size_of::<TimeNs>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_ms(v)
    }

    #[test]
    fn pjd_conformance_distances() {
        let m = PjdModel::from_ms(30.0, 5.0, 0.0);
        let d = LRepetitive::from_pjd(&m, 3);
        assert_eq!(d.level(), 3);
        assert_eq!(d.dmin(2), ms(25));
        assert_eq!(d.dmax(2), ms(35));
        assert_eq!(d.dmin(3), ms(55));
        assert_eq!(d.dmax(4), ms(95));
    }

    #[test]
    fn extrapolation_is_conservative() {
        // l = 1 extrapolation must bracket the true PJD distances.
        let m = PjdModel::from_ms(30.0, 5.0, 0.0);
        let l1 = LRepetitive::from_pjd(&m, 1);
        let l8 = LRepetitive::from_pjd(&m, 8);
        for n in 2..=9 {
            assert!(
                l1.dmin(n) <= l8.dmin(n),
                "n={n}: l=1 d⁻ must under-approximate"
            );
            assert!(
                l1.dmax(n) >= l8.dmax(n),
                "n={n}: l=1 d⁺ must over-approximate"
            );
        }
        // And the gap is real for n > 2 when jitter > 0 (the paper's
        // false-positive/negative trade-off).
        assert!(l1.dmax(5) > l8.dmax(5));
    }

    #[test]
    fn zero_jitter_extrapolation_is_exact() {
        let m = PjdModel::periodic(ms(10));
        let d = LRepetitive::from_pjd(&m, 1);
        for n in 2..=12 {
            assert_eq!(d.dmin(n), ms(10) * (n as u64 - 1));
            assert_eq!(d.dmax(n), ms(10) * (n as u64 - 1));
        }
    }

    #[test]
    fn conforming_trace_passes() {
        let m = PjdModel::from_ms(30.0, 5.0, 0.0);
        let d = LRepetitive::from_pjd(&m, 2);
        // Events at n·30 + small displacement ≤ 5ms.
        let trace: Vec<TimeNs> = (0..20u64)
            .map(|n| ms(n * 30) + TimeNs::from_us((n % 3) * 1000))
            .collect();
        assert_eq!(d.first_violation(&trace), None);
    }

    #[test]
    fn stalled_trace_is_flagged() {
        let m = PjdModel::from_ms(30.0, 5.0, 0.0);
        let d = LRepetitive::from_pjd(&m, 2);
        let mut trace: Vec<TimeNs> = (0..5u64).map(|n| ms(n * 30)).collect();
        trace.push(ms(4 * 30 + 200)); // 200 ms gap
        assert_eq!(d.first_violation(&trace), Some(5));
    }

    #[test]
    fn burst_trace_is_flagged() {
        let m = PjdModel::from_ms(30.0, 2.0, 0.0);
        let d = LRepetitive::from_pjd(&m, 2);
        let trace = vec![ms(0), ms(1)]; // two events 1 ms apart
        assert_eq!(d.first_violation(&trace), Some(1));
    }

    #[test]
    fn state_grows_with_level() {
        let m = PjdModel::from_ms(30.0, 5.0, 0.0);
        assert!(
            LRepetitive::from_pjd(&m, 8).state_bytes() > LRepetitive::from_pjd(&m, 1).state_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "start at N = 2")]
    fn n1_rejected() {
        let m = PjdModel::periodic(ms(10));
        let _ = LRepetitive::from_pjd(&m, 1).dmin(1);
    }

    #[test]
    #[should_panic(expected = "d⁻ must not exceed")]
    fn inverted_bounds_rejected() {
        let _ = LRepetitive::new(vec![ms(10)], vec![ms(5)]);
    }
}
