//! Property-style tests for the KPN runtime: conservation, ordering,
//! determinism, and curve conformance of the PJD source/shaper.
//!
//! Originally `proptest`-based; rewritten as deterministic seeded sweeps
//! driven by [`SplitMix64`] so the workspace builds offline with no
//! external dependencies. Every case set is a pure function of the seed
//! constants below, so failures reproduce exactly.

use rtft_kpn::{
    Collector, Engine, Fifo, Network, Payload, PjdShaper, PjdSource, PortId, SplitMix64, Transform,
};
use rtft_rtc::{Curve, PjdModel, TimeNs};

fn check_conformance(events: &[TimeNs], model: &PjdModel) -> Result<(), String> {
    let upper = model.upper();
    let lower = model.lower();
    // Check windows anchored just before each event (worst placements for
    // the upper curve) and spanning every pair of events.
    for (i, s) in events.iter().enumerate() {
        for (j, t) in events.iter().enumerate().skip(i) {
            // Window [s, t + 1ns): contains events i..=j → j - i + 1.
            let delta = *t + TimeNs::from_ns(1) - *s;
            let count = (j - i + 1) as u64;
            if count > upper.eval(delta) {
                return Err(format!(
                    "upper violated: {count} events in {delta} (events {i}..={j})"
                ));
            }
        }
    }
    // Lower curve: between consecutive events the gap must not starve the
    // guaranteed minimum (events i and i+k span at least dmin).
    for w in events.windows(2) {
        let gap = w[1] - w[0];
        if lower.eval(gap) > 1 {
            return Err(format!(
                "lower violated: gap {gap} should contain more events"
            ));
        }
    }
    Ok(())
}

/// A PJD source's emissions conform to the curves of its own model.
#[test]
fn source_output_conforms_to_model() {
    let mut rng = SplitMix64::seed_from_u64(0x6b70_6e01);
    for _case in 0..24 {
        let period_ms = 2 + rng.next_inclusive(37);
        let jitter_ms = rng.next_inclusive(59);
        let seed = rng.next_inclusive(999);
        let model = PjdModel::new(
            TimeNs::from_ms(period_ms),
            TimeNs::from_ms(jitter_ms),
            TimeNs::ZERO,
        );
        let mut net = Network::new();
        let ch = net.add_channel(Fifo::new("out", 256));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(ch),
            model,
            seed,
            Some(60),
            Payload::U64,
        ));
        let col = net.add_process(Collector::new("col", PortId::of(ch), Some(60)));
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(30));
        let events: Vec<TimeNs> = engine
            .network()
            .process_as::<Collector>(col)
            .unwrap()
            .tokens()
            .iter()
            .map(|t| t.produced_at)
            .collect();
        assert_eq!(events.len(), 60);
        if let Err(e) = check_conformance(&events, &model) {
            panic!("{e} (period={period_ms}ms jitter={jitter_ms}ms seed={seed})");
        }
    }
}

/// The PjdShaper really imposes its model: even when fed by a much
/// faster upstream, the shaped stream conforms — the invariant whose
/// violation produced divergence false positives during development.
#[test]
fn shaper_output_conforms_to_model() {
    let mut rng = SplitMix64::seed_from_u64(0x6b70_6e02);
    for _case in 0..24 {
        let period_ms = 4 + rng.next_inclusive(35);
        let jitter_ms = rng.next_inclusive(79);
        let seed = rng.next_inclusive(999);
        let model = PjdModel::new(
            TimeNs::from_ms(period_ms),
            TimeNs::from_ms(jitter_ms),
            TimeNs::from_ms(1),
        );
        // Upstream floods at 4x the shaped rate.
        let fast = PjdModel::periodic(TimeNs::from_ms(period_ms) / 4);
        let mut net = Network::new();
        let raw = net.add_channel(Fifo::new("raw", 512));
        let out = net.add_channel(Fifo::new("out", 512));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(raw),
            fast,
            seed,
            Some(50),
            Payload::U64,
        ));
        net.add_process(PjdShaper::new(
            "shape",
            PortId::of(raw),
            PortId::of(out),
            model,
            seed + 1,
        ));
        let col = net.add_process(Collector::new("col", PortId::of(out), Some(50)));
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(60));
        let events: Vec<TimeNs> = engine
            .network()
            .process_as::<Collector>(col)
            .unwrap()
            .tokens()
            .iter()
            .map(|t| t.produced_at)
            .collect();
        assert_eq!(events.len(), 50);
        if let Err(e) = check_conformance(&events, &model) {
            panic!("{e} (period={period_ms}ms jitter={jitter_ms}ms seed={seed})");
        }
    }
}

/// Token conservation and order through a random-length transform
/// chain with random capacities and service times.
#[test]
fn pipeline_conserves_and_orders_tokens() {
    let mut rng = SplitMix64::seed_from_u64(0x6b70_6e03);
    for _case in 0..24 {
        let stages = (1 + rng.next_inclusive(4)) as usize;
        let caps: Vec<usize> = (0..6)
            .map(|_| (1 + rng.next_inclusive(3)) as usize)
            .collect();
        let service_us: Vec<u64> = (0..6).map(|_| rng.next_inclusive(1_999)).collect();
        let seed = rng.next_inclusive(499);

        let tokens = 40u64;
        let mut net = Network::new();
        let mut prev = net.add_channel(Fifo::new("c0", caps[0]));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(prev),
            PjdModel::from_ms(2.0, 1.0, 0.0),
            seed,
            Some(tokens),
            Payload::U64,
        ));
        for i in 0..stages {
            let next = net.add_channel(Fifo::new(format!("c{}", i + 1), caps[i + 1]));
            net.add_process(Transform::new(
                format!("t{i}"),
                PortId::of(prev),
                PortId::of(next),
                TimeNs::from_us(service_us[i]),
                TimeNs::from_us(service_us[i + 1] / 2),
                seed + i as u64,
                |p| p,
            ));
            prev = next;
        }
        let col = net.add_process(Collector::new(
            "col",
            PortId::of(prev),
            Some(tokens as usize),
        ));
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(120));
        let got: Vec<u64> = engine
            .network()
            .process_as::<Collector>(col)
            .unwrap()
            .tokens()
            .iter()
            .map(|t| t.payload.as_u64().unwrap())
            .collect();
        let expected: Vec<u64> = (0..tokens).collect();
        assert_eq!(
            got, expected,
            "tokens lost, duplicated or reordered (seed={seed})"
        );
    }
}

/// Virtual time never runs backwards at any observation point.
#[test]
fn completion_times_are_monotone() {
    let mut rng = SplitMix64::seed_from_u64(0x6b70_6e04);
    for _case in 0..24 {
        let seed = rng.next_inclusive(499);
        let mut net = Network::new();
        let ch = net.add_channel(Fifo::new("c", 3));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(ch),
            PjdModel::from_ms(3.0, 2.0, 0.0),
            seed,
            Some(50),
            Payload::U64,
        ));
        let col = net.add_process(Collector::new("col", PortId::of(ch), Some(50)));
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(10));
        let times: Vec<TimeNs> = engine
            .network()
            .process_as::<Collector>(col)
            .unwrap()
            .tokens()
            .iter()
            .map(|t| t.produced_at)
            .collect();
        for w in times.windows(2) {
            assert!(w[0] <= w[1], "time ran backwards: {} then {}", w[0], w[1]);
        }
    }
}
