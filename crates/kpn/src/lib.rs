//! # rtft-kpn — Kahn-process-network runtime
//!
//! The execution substrate of the `rtft` reproduction of *"An Efficient
//! Real Time Fault Detection and Tolerance Framework Validated on the Intel
//! SCC Processor"* (Rai et al., DAC 2014).
//!
//! The paper's applications are dataflow process networks with FIFO
//! channels and blocking semantics (Kahn process networks, §2 of the
//! paper). This crate provides two runtimes over a single network
//! description:
//!
//! * [`Engine`] — a deterministic discrete-event simulator under virtual
//!   nanosecond time. All experiment tables are produced here: seeded
//!   jitter makes the paper's 20-run campaigns exactly reproducible.
//! * [`threaded::run_threaded`] — the same networks on real OS threads and
//!   wall-clock time, demonstrating the framework on an actual multicore.
//!
//! Channel semantics are pluggable through [`ChannelBehavior`]; the paper's
//! replicator and selector channels (in `rtft-core`) implement that trait
//! and therefore run unchanged under both runtimes.
//!
//! # Example
//!
//! ```
//! use rtft_kpn::{Engine, Fifo, Network, Payload, PjdSink, PjdSource, PortId, RunOutcome};
//! use rtft_rtc::{PjdModel, TimeNs};
//!
//! // producer --[fifo]--> consumer at 30 fps.
//! let mut net = Network::new();
//! let link = net.add_channel(Fifo::new("link", 4));
//! let rate = PjdModel::from_ms(30.0, 2.0, 0.0);
//! net.add_process(PjdSource::new("camera", PortId::of(link), rate, 1, Some(100), Payload::U64));
//! let sink = net.add_process(PjdSink::new("display", PortId::of(link), rate, 2, Some(100)));
//!
//! let mut engine = Engine::new(net);
//! assert!(matches!(engine.run_until(TimeNs::from_secs(10)), RunOutcome::Completed { .. }));
//! let display = engine.network().process_as::<PjdSink>(sink).expect("sink");
//! assert_eq!(display.arrivals().len(), 100);
//! ```

#![warn(missing_docs)]

mod calendar;
mod channel;
mod digest;
mod engine;
mod fault_link;
mod network;
pub mod parallel;
mod platform;
pub mod pool;
mod process;
pub mod rng;
pub mod threaded;
mod token;
mod trace;

pub use calendar::{default_queue, set_default_queue, QueueKind};
pub use channel::{
    ChannelBehavior, ChannelId, Fifo, PortId, ReadOutcome, UnboundedFifo, WriteOutcome,
};
pub use digest::{digest_bytes, Digest};
pub use engine::{Engine, RunOutcome};
pub use fault_link::{FaultyLink, LinkFaultPlan};
pub use network::{port, ChannelSlot, Network, ProcessSlot};
pub use parallel::{campaign_workers, parallel_map_ordered};
pub use platform::{IdealPlatform, Platform, UniformBusPlatform};
pub use pool::{PayloadPool, PayloadPoolStats, PoolBuf, PoolLoad, PoolStats, WorkerPool};
pub use process::{
    Collector, JitterSampler, NodeId, PjdShaper, PjdSink, PjdSource, Process, Syscall, Transform,
    Wakeup,
};
pub use rng::SplitMix64;
pub use token::{Bytes, Payload, Token};
pub use trace::{Trace, TraceEvent, DEFAULT_TRACE_CAPACITY};
