//! Execution-platform hooks: communication latency and compute scaling.
//!
//! The simulation engine is platform-agnostic; a [`Platform`] implementation
//! injects the timing properties of the hardware the network is "mapped"
//! onto. `rtft-scc` provides the Intel SCC model; [`IdealPlatform`] is the
//! zero-cost default (infinite-bandwidth shared memory).

use crate::channel::ChannelId;
use crate::process::NodeId;
use rtft_rtc::TimeNs;
use std::fmt;

/// Platform timing model consulted by the runtime.
pub trait Platform: fmt::Debug + Send {
    /// Time the writing process spends transferring `bytes` into `channel`.
    ///
    /// Charged to the writer *before* the write attempt (the send occupies
    /// the producing core, as iRCCE-style MPB messaging does on the SCC).
    fn transfer_latency(&self, writer: NodeId, channel: ChannelId, bytes: usize) -> TimeNs;

    /// Scales a process's nominal compute duration (e.g. for cores clocked
    /// differently from the calibration platform). `1.0` is neutral.
    ///
    /// Must be a pure function of `node`: the engine caches it per process
    /// at construction and never consults the platform again mid-run.
    fn compute_scale(&self, node: NodeId) -> f64 {
        let _ = node;
        1.0
    }

    /// `true` when [`Platform::transfer_latency`] is identically zero, so
    /// the engine can skip the per-write latency query entirely.
    fn zero_transfer(&self) -> bool {
        false
    }
}

/// Zero-latency, unit-speed platform: pure Kahn semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealPlatform;

impl Platform for IdealPlatform {
    fn transfer_latency(&self, _writer: NodeId, _channel: ChannelId, _bytes: usize) -> TimeNs {
        TimeNs::ZERO
    }

    fn zero_transfer(&self) -> bool {
        true
    }
}

/// A platform with a fixed per-byte cost and per-message overhead on every
/// channel — a simple bus model, useful in tests and ablations.
#[derive(Debug, Clone, Copy)]
pub struct UniformBusPlatform {
    /// Fixed cost per message.
    pub per_message: TimeNs,
    /// Cost per payload byte, in picoseconds (sub-nanosecond rates are
    /// common: 1 GB/s ≈ 931 ps per byte).
    pub per_byte_ps: u64,
}

impl Platform for UniformBusPlatform {
    fn transfer_latency(&self, _writer: NodeId, _channel: ChannelId, bytes: usize) -> TimeNs {
        self.per_message + TimeNs::from_ns((bytes as u64 * self.per_byte_ps) / 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_platform_is_free() {
        let p = IdealPlatform;
        assert_eq!(
            p.transfer_latency(NodeId(0), ChannelId(0), 1 << 20),
            TimeNs::ZERO
        );
        assert_eq!(p.compute_scale(NodeId(0)), 1.0);
    }

    #[test]
    fn uniform_bus_charges_linear_cost() {
        let p = UniformBusPlatform {
            per_message: TimeNs::from_us(1),
            per_byte_ps: 1000,
        };
        // 1 µs + 3000 B × 1 ns.
        assert_eq!(
            p.transfer_latency(NodeId(0), ChannelId(0), 3000),
            TimeNs::from_us(1) + TimeNs::from_us(3)
        );
    }
}
