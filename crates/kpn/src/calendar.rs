//! Event schedulers for the DES engine: the calendar queue and the legacy
//! binary heap it replaced.
//!
//! Both implement the same total order — events pop by `(at, seq)`, where
//! `seq` is the engine's monotone schedule counter — so a run is
//! byte-identical under either. The heap stays available behind
//! [`QueueKind::Heap`] (`RTFT_ENGINE_QUEUE=heap` or
//! [`set_default_queue`]) purely for differential testing.
//!
//! # Calendar queue
//!
//! The calendar queue is a bucketed timing wheel with three tiers:
//!
//! * **`due_now` FIFO** — events scheduled *at the current virtual time*
//!   (the channel-waiter `Attempt` storm after every successful read or
//!   write, and the t=0 `Start` fan-out). These never touch the wheel:
//!   push/pop is a `VecDeque` op. FIFO order *is* `seq` order because
//!   `seq` increments per schedule call.
//! * **wheel** — events within the bucket window. A bucket holds one
//!   "day" (`at >> shift` ns) of events; the cursor walks days with a
//!   256-bit occupancy bitmap skipping empties word-at-a-time. Buckets
//!   are unsorted (they hold a handful of events at most); the pop scans
//!   for the `(at, seq)` minimum.
//! * **overflow heap** — events beyond the window (`cursor_day + 256`
//!   days out). Whenever the cursor advances, overflow events that fell
//!   inside the new window migrate to their buckets, restoring the
//!   invariant that everything in overflow is later than everything in
//!   the wheel.
//!
//! The bucket width is tuned once per engine from the first 32 scheduling
//! horizons (`at - now`): width ≈ half the median horizon, so a typical
//! wake lands a couple of buckets ahead of the cursor and each pop
//! advances O(1) buckets. Until tuned, the overflow heap serves as a
//! plain heap — correct, just not yet O(1).
//!
//! # Determinism argument (why pop order equals the heap's)
//!
//! 1. Nothing schedules in the past: every push has `at >= now`, and
//!    `now` only advances to popped event times.
//! 2. A wheel/overflow event with `at == now` was necessarily pushed
//!    *before* virtual time reached `now` (pushes at the current time go
//!    to `due_now` instead), so its `seq` is smaller than any `due_now`
//!    entry, which was pushed *while processing* `now`. Hence the pop
//!    rule: current-bucket events with `at == now` first (min-`seq`
//!    scan), then the `due_now` FIFO, then the rest of the wheel.
//! 3. Day partitioning preserves `at` order across buckets (a bucket's
//!    events are all earlier than any later day's), the in-bucket scan
//!    orders within a day, and the overflow invariant keeps everything
//!    in overflow later than the whole wheel.

use crate::process::NodeId;
use rtft_rtc::TimeNs;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};

/// Which event-queue implementation an [`crate::Engine`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Bucketed timing wheel with O(1) amortized push/pop (default).
    Calendar,
    /// The legacy `BinaryHeap` scheduler, kept for differential testing.
    Heap,
}

/// Process-wide default: 0 = unresolved, 1 = calendar, 2 = heap.
static DEFAULT_QUEUE: AtomicU8 = AtomicU8::new(0);

/// Overrides the process-wide default queue for engines built after this
/// call (engines already constructed keep their queue). Differential
/// tests use this to re-run a whole campaign on the heap scheduler.
pub fn set_default_queue(kind: QueueKind) {
    let v = match kind {
        QueueKind::Calendar => 1,
        QueueKind::Heap => 2,
    };
    DEFAULT_QUEUE.store(v, Ordering::Relaxed);
}

/// The default queue kind: an explicit [`set_default_queue`] override,
/// else `RTFT_ENGINE_QUEUE` (`heap` / `calendar`), else the calendar.
pub fn default_queue() -> QueueKind {
    match DEFAULT_QUEUE.load(Ordering::Relaxed) {
        1 => QueueKind::Calendar,
        2 => QueueKind::Heap,
        _ => {
            let kind = match std::env::var("RTFT_ENGINE_QUEUE") {
                Ok(v) if v.eq_ignore_ascii_case("heap") => QueueKind::Heap,
                _ => QueueKind::Calendar,
            };
            set_default_queue(kind);
            kind
        }
    }
}

/// Internal wakeup kinds; tokens for `ReadDone` are produced at delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WakeKind {
    Start,
    ComputeDone,
    /// Re-attempt the stored pending syscall (after a park or a transfer
    /// latency charge).
    Attempt,
}

#[derive(Debug, PartialEq, Eq)]
pub(crate) struct QueuedEvent {
    pub at: TimeNs,
    pub seq: u64,
    pub node: NodeId,
    pub wake: WakeKind,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a combined peek-and-pop against a time limit.
#[derive(Debug)]
pub(crate) enum Popped {
    /// The next event, removed from the queue.
    Event {
        at: TimeNs,
        node: NodeId,
        wake: WakeKind,
    },
    /// The next event is beyond the limit; it was left in the queue.
    NotDue,
    /// No events scheduled.
    Empty,
}

const NBUCKETS: usize = 256;
const BUCKET_MASK: u64 = (NBUCKETS - 1) as u64;
const WORDS: usize = NBUCKETS / 64;
const TUNE_SAMPLES: usize = 32;
/// Bucket width bounds: 64 ns .. ~4.2 ms per day.
const MIN_SHIFT: u32 = 6;
const MAX_SHIFT: u32 = 22;

#[derive(Debug)]
pub(crate) struct CalendarQueue {
    /// Bucket width is `1 << shift` ns; a "day" is `at >> shift`.
    shift: u32,
    tuned: bool,
    samples: Vec<u64>,
    /// Register caching the earliest wheel/overflow event. Filled only
    /// when the rest of the wheel is empty (the steady one-future-event
    /// pattern of a paced pipeline) or by displacement, so it is always
    /// the `(at, seq)` minimum of the future tiers; pops and pushes then
    /// skip the bucket machinery entirely.
    single: Option<QueuedEvent>,
    due_now: VecDeque<(NodeId, WakeKind)>,
    buckets: Vec<Vec<QueuedEvent>>,
    occupied: [u64; WORDS],
    cursor_day: u64,
    wheel_len: usize,
    overflow: BinaryHeap<Reverse<QueuedEvent>>,
}

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue {
            shift: 12,
            tuned: false,
            samples: Vec::with_capacity(TUNE_SAMPLES),
            single: None,
            due_now: VecDeque::with_capacity(64),
            buckets: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            cursor_day: 0,
            wheel_len: 0,
            overflow: BinaryHeap::with_capacity(64),
        }
    }

    fn len(&self) -> usize {
        self.due_now.len()
            + usize::from(self.single.is_some())
            + self.wheel_len
            + self.overflow.len()
    }

    #[inline]
    fn push(&mut self, now: TimeNs, ev: QueuedEvent) {
        if ev.at == now {
            self.due_now.push_back((ev.node, ev.wake));
            return;
        }
        debug_assert!(ev.at > now, "scheduled into the past");
        if !self.tuned {
            self.push_untuned(now, ev);
            return;
        }
        match &self.single {
            // Strict `at` compare: an equal-time event has a larger seq
            // and must stay behind the register's occupant.
            Some(s) if ev.at < s.at => {
                let displaced = self.single.replace(ev).expect("checked");
                self.insert_wheel(displaced);
            }
            Some(_) => self.insert_wheel(ev),
            None if self.wheel_len == 0 && self.overflow.is_empty() => self.single = Some(ev),
            None => self.insert_wheel(ev),
        }
    }

    fn push_untuned(&mut self, now: TimeNs, ev: QueuedEvent) {
        self.samples.push(ev.at.as_ns() - now.as_ns());
        self.overflow.push(Reverse(ev));
        if self.samples.len() >= TUNE_SAMPLES {
            self.tune(now);
        }
    }

    #[inline]
    fn insert_wheel(&mut self, ev: QueuedEvent) {
        let day = ev.at.as_ns() >> self.shift;
        debug_assert!(day >= self.cursor_day, "event behind the cursor");
        if day >= self.cursor_day + NBUCKETS as u64 {
            self.overflow.push(Reverse(ev));
        } else {
            let idx = (day & BUCKET_MASK) as usize;
            self.buckets[idx].push(ev);
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.wheel_len += 1;
        }
    }

    /// One-shot width tuning from the first [`TUNE_SAMPLES`] scheduling
    /// horizons: width ≈ half the median horizon, clamped. Deterministic —
    /// the samples are a pure function of the simulated network.
    fn tune(&mut self, now: TimeNs) {
        let mut samples = std::mem::take(&mut self.samples);
        samples.sort_unstable();
        let median = samples[samples.len() / 2].max(1);
        let target = (median / 2).max(1);
        self.shift = (64 - target.leading_zeros()).clamp(MIN_SHIFT, MAX_SHIFT);
        self.cursor_day = now.as_ns() >> self.shift;
        self.tuned = true;
        self.drain_overflow_into_window();
    }

    /// Moves overflow events that now fall inside the bucket window into
    /// their buckets. Called after every cursor advance, so the overflow
    /// heap's minimum is always beyond the whole wheel.
    fn drain_overflow_into_window(&mut self) {
        let window_end = self.cursor_day + NBUCKETS as u64;
        while let Some(Reverse(ev)) = self.overflow.peek() {
            if ev.at.as_ns() >> self.shift >= window_end {
                break;
            }
            let Reverse(ev) = self.overflow.pop().expect("peeked");
            let day = ev.at.as_ns() >> self.shift;
            let idx = (day & BUCKET_MASK) as usize;
            self.buckets[idx].push(ev);
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.wheel_len += 1;
        }
    }

    /// Cyclic distance from bucket `idx` to the next occupied bucket,
    /// word-at-a-time over the occupancy bitmap.
    fn next_occupied_delta(&self, idx: usize) -> usize {
        let start = (idx + 1) % NBUCKETS;
        let (sw, sb) = (start / 64, start % 64);
        let first = self.occupied[sw] >> sb;
        if first != 0 {
            let found = start + first.trailing_zeros() as usize;
            return (found + NBUCKETS - idx) % NBUCKETS;
        }
        for k in 1..=WORDS {
            let w = (sw + k) % WORDS;
            let word = self.occupied[w];
            if word != 0 {
                let found = w * 64 + word.trailing_zeros() as usize;
                return (found + NBUCKETS - idx) % NBUCKETS;
            }
        }
        unreachable!("wheel_len > 0 with an empty bitmap")
    }

    /// Earliest scheduled time without mutating the queue (slow path —
    /// only consulted when the event budget is exhausted).
    fn next_at(&self, now: TimeNs) -> Option<TimeNs> {
        if !self.due_now.is_empty() {
            return Some(now);
        }
        if let Some(s) = &self.single {
            return Some(s.at);
        }
        if self.wheel_len > 0 {
            let cursor_idx = (self.cursor_day & BUCKET_MASK) as usize;
            let idx = if self.occupied[cursor_idx / 64] & (1 << (cursor_idx % 64)) != 0 {
                cursor_idx
            } else {
                (cursor_idx + self.next_occupied_delta(cursor_idx)) % NBUCKETS
            };
            return self.buckets[idx].iter().map(|e| e.at).min();
        }
        self.overflow.peek().map(|Reverse(ev)| ev.at)
    }

    /// Pop fast path, kept small so it inlines into the engine loop: the
    /// register and due-now tiers cover the steady state of a paced
    /// pipeline (one future wake, a burst of same-time attempts). Only
    /// multi-event wheels fall through to the outlined bucket walk.
    #[inline]
    fn pop_due(&mut self, now: TimeNs, limit: TimeNs) -> Popped {
        if !self.tuned {
            return self.pop_due_untuned(now, limit);
        }
        // Register fast path. The register holds the (at, seq) minimum of
        // all future events, so only the due-now rule can precede it.
        match &self.single {
            Some(s) => {
                if s.at != now {
                    if let Some((node, wake)) = self.due_now.pop_front() {
                        return Popped::Event {
                            at: now,
                            node,
                            wake,
                        };
                    }
                    if s.at > limit {
                        return Popped::NotDue;
                    }
                }
                let ev = self.single.take().expect("checked");
                // Re-sync the cursor so later bucket inserts land in-window.
                let day = ev.at.as_ns() >> self.shift;
                if day > self.cursor_day {
                    self.cursor_day = day;
                    if !self.overflow.is_empty() {
                        self.drain_overflow_into_window();
                    }
                }
                Popped::Event {
                    at: ev.at,
                    node: ev.node,
                    wake: ev.wake,
                }
            }
            None if self.wheel_len == 0 && self.overflow.is_empty() => {
                match self.due_now.pop_front() {
                    Some((node, wake)) => Popped::Event {
                        at: now,
                        node,
                        wake,
                    },
                    None => Popped::Empty,
                }
            }
            None => self.pop_due_wheel(now, limit),
        }
    }

    /// The outlined multi-event path: walk the bucket wheel (and overflow)
    /// for the `(at, seq)` minimum, interleaving the due-now FIFO per the
    /// determinism rule.
    fn pop_due_wheel(&mut self, now: TimeNs, limit: TimeNs) -> Popped {
        loop {
            let idx = (self.cursor_day & BUCKET_MASK) as usize;
            if self.occupied[idx / 64] & (1 << (idx % 64)) != 0 {
                let bucket = &self.buckets[idx];
                let mut best = 0;
                for i in 1..bucket.len() {
                    if (bucket[i].at, bucket[i].seq) < (bucket[best].at, bucket[best].seq) {
                        best = i;
                    }
                }
                let at = bucket[best].at;
                if at != now {
                    debug_assert!(at > now, "stale event behind virtual time");
                    // Anything due exactly now was pushed while processing
                    // `now` and lives in the FIFO; it precedes this event.
                    if let Some((node, wake)) = self.due_now.pop_front() {
                        return Popped::Event {
                            at: now,
                            node,
                            wake,
                        };
                    }
                    if at > limit {
                        return Popped::NotDue;
                    }
                }
                let ev = self.buckets[idx].swap_remove(best);
                self.wheel_len -= 1;
                if self.buckets[idx].is_empty() {
                    self.occupied[idx / 64] &= !(1 << (idx % 64));
                }
                return Popped::Event {
                    at: ev.at,
                    node: ev.node,
                    wake: ev.wake,
                };
            }
            if let Some((node, wake)) = self.due_now.pop_front() {
                return Popped::Event {
                    at: now,
                    node,
                    wake,
                };
            }
            if self.wheel_len > 0 {
                self.cursor_day += self.next_occupied_delta(idx) as u64;
            } else if let Some(Reverse(ev)) = self.overflow.peek() {
                self.cursor_day = ev.at.as_ns() >> self.shift;
            } else {
                return Popped::Empty;
            }
            self.drain_overflow_into_window();
        }
    }

    /// Pre-tune path: the overflow heap serves as a plain binary heap,
    /// with the same `due_now` two-tier rule.
    fn pop_due_untuned(&mut self, now: TimeNs, limit: TimeNs) -> Popped {
        if let Some(Reverse(ev)) = self.overflow.peek() {
            if ev.at == now {
                let Reverse(ev) = self.overflow.pop().expect("peeked");
                return Popped::Event {
                    at: ev.at,
                    node: ev.node,
                    wake: ev.wake,
                };
            }
        }
        if let Some((node, wake)) = self.due_now.pop_front() {
            return Popped::Event {
                at: now,
                node,
                wake,
            };
        }
        match self.overflow.peek() {
            None => Popped::Empty,
            Some(Reverse(ev)) if ev.at > limit => Popped::NotDue,
            _ => {
                let Reverse(ev) = self.overflow.pop().expect("peeked");
                Popped::Event {
                    at: ev.at,
                    node: ev.node,
                    wake: ev.wake,
                }
            }
        }
    }
}

/// The engine's event queue: calendar or legacy heap, one total order.
#[derive(Debug)]
pub(crate) enum EventQueue {
    Calendar(Box<CalendarQueue>),
    Heap(BinaryHeap<Reverse<QueuedEvent>>),
}

impl EventQueue {
    pub fn new(kind: QueueKind, capacity: usize) -> Self {
        match kind {
            QueueKind::Calendar => EventQueue::Calendar(Box::new(CalendarQueue::new())),
            QueueKind::Heap => EventQueue::Heap(BinaryHeap::with_capacity(capacity)),
        }
    }

    pub fn kind(&self) -> QueueKind {
        match self {
            EventQueue::Calendar(_) => QueueKind::Calendar,
            EventQueue::Heap(_) => QueueKind::Heap,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            EventQueue::Calendar(c) => c.len(),
            EventQueue::Heap(h) => h.len(),
        }
    }

    #[inline]
    pub fn push(&mut self, now: TimeNs, ev: QueuedEvent) {
        match self {
            EventQueue::Calendar(c) => c.push(now, ev),
            EventQueue::Heap(h) => h.push(Reverse(ev)),
        }
    }

    pub fn next_at(&self, now: TimeNs) -> Option<TimeNs> {
        match self {
            EventQueue::Calendar(c) => c.next_at(now),
            EventQueue::Heap(h) => h.peek().map(|Reverse(ev)| ev.at),
        }
    }

    #[inline]
    pub fn pop_due(&mut self, now: TimeNs, limit: TimeNs) -> Popped {
        match self {
            EventQueue::Calendar(c) => c.pop_due(now, limit),
            EventQueue::Heap(h) => match h.peek() {
                None => Popped::Empty,
                Some(Reverse(ev)) if ev.at > limit => Popped::NotDue,
                _ => {
                    let Reverse(ev) = h.pop().expect("peeked");
                    Popped::Event {
                        at: ev.at,
                        node: ev.node,
                        wake: ev.wake,
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays a seeded reactive workload — pops trigger pushes the way
    /// engine events schedule wakeups — and returns the pop order.
    /// Horizons span all three tiers: due-now, in-window, and overflow.
    fn reactive_run(kind: QueueKind, seed: u64) -> Vec<(u64, usize)> {
        let mut q = EventQueue::new(kind, 64);
        let mut seq = 0u64;
        let mut now = TimeNs::ZERO;
        let mut x = seed | 1;
        let mut order = Vec::new();
        // t=0 fan-out, like the engine's Start events.
        for _ in 0..8 {
            seq += 1;
            q.push(
                now,
                QueuedEvent {
                    at: now,
                    seq,
                    node: NodeId(seq as usize),
                    wake: WakeKind::Start,
                },
            );
        }
        let mut pops = 0u32;
        while pops < 30_000 {
            match q.pop_due(now, TimeNs::from_secs(3600)) {
                Popped::Event { at, node, .. } => {
                    pops += 1;
                    assert!(at >= now, "time ran backwards");
                    now = at;
                    order.push((at.as_ns(), node.0));
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let fanout = u32::from(x.is_multiple_of(4)) + u32::from(q.len() < 16);
                    for _ in 0..fanout {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let horizon = match x % 8 {
                            0 | 1 => 0,
                            2 => x % 500,
                            3 => x % 9_000,
                            4 => x % 120_000,
                            5 => x % 3_000_000,
                            6 => x % 80_000_000,
                            _ => 10_000,
                        };
                        seq += 1;
                        q.push(
                            now,
                            QueuedEvent {
                                at: TimeNs::from_ns(now.as_ns() + horizon),
                                seq,
                                node: NodeId(seq as usize),
                                wake: WakeKind::Attempt,
                            },
                        );
                    }
                }
                Popped::Empty => break,
                Popped::NotDue => unreachable!("limit is far beyond the workload"),
            }
        }
        order
    }

    #[test]
    fn calendar_matches_heap_under_reactive_load() {
        for seed in [1u64, 0xDAC14, 0x5CC] {
            let cal = reactive_run(QueueKind::Calendar, seed);
            let heap = reactive_run(QueueKind::Heap, seed);
            assert_eq!(cal.len(), heap.len(), "seed {seed}: different pop counts");
            for (i, (c, h)) in cal.iter().zip(heap.iter()).enumerate() {
                assert_eq!(c, h, "seed {seed}: first divergence at pop {i}");
            }
        }
    }

    #[test]
    fn pop_order_is_at_then_seq_within_a_bucket() {
        // Three events land in one bucket out of order; pops must sort by
        // (at, seq) regardless of push order.
        let mut q = EventQueue::new(QueueKind::Calendar, 64);
        let now = TimeNs::ZERO;
        // Burn through tuning with uniform 1 µs horizons.
        for seq in 1..=TUNE_SAMPLES as u64 {
            q.push(
                now,
                QueuedEvent {
                    at: TimeNs::from_ns(1_000),
                    seq,
                    node: NodeId(0),
                    wake: WakeKind::Attempt,
                },
            );
        }
        for (at, seq, node) in [(1_200u64, 40u64, 2usize), (1_100, 41, 1), (1_200, 39, 3)] {
            q.push(
                now,
                QueuedEvent {
                    at: TimeNs::from_ns(at),
                    seq,
                    node: NodeId(node),
                    wake: WakeKind::Attempt,
                },
            );
        }
        let mut order = Vec::new();
        let mut t = now;
        while let Popped::Event { at, node, .. } = q.pop_due(t, TimeNs::from_secs(1)) {
            t = at;
            if node.0 != 0 {
                order.push((at.as_ns(), node.0));
            }
        }
        assert_eq!(order, vec![(1_100, 1), (1_200, 3), (1_200, 2)]);
    }

    #[test]
    fn not_due_leaves_event_in_place() {
        let mut q = EventQueue::new(QueueKind::Calendar, 64);
        let now = TimeNs::ZERO;
        q.push(
            now,
            QueuedEvent {
                at: TimeNs::from_ms(5),
                seq: 1,
                node: NodeId(7),
                wake: WakeKind::ComputeDone,
            },
        );
        assert!(matches!(q.pop_due(now, TimeNs::from_ms(1)), Popped::NotDue));
        assert_eq!(q.next_at(now), Some(TimeNs::from_ms(5)));
        match q.pop_due(now, TimeNs::from_ms(10)) {
            Popped::Event { at, node, .. } => {
                assert_eq!(at, TimeNs::from_ms(5));
                assert_eq!(node, NodeId(7));
            }
            other => panic!("expected the event, got {other:?}"),
        }
        assert!(matches!(
            q.pop_due(TimeNs::from_ms(5), TimeNs::from_ms(10)),
            Popped::Empty
        ));
    }
}
