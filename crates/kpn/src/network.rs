//! Network assembly: processes + channels + wiring.

use crate::channel::{ChannelBehavior, ChannelId, PortId};
use crate::process::{NodeId, Process};
use std::fmt;

/// A named channel slot in the network.
pub struct ChannelSlot {
    /// Diagnostic name.
    pub name: String,
    /// The channel state machine.
    pub behavior: Box<dyn ChannelBehavior>,
}

impl fmt::Debug for ChannelSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelSlot")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// A named process slot in the network.
pub struct ProcessSlot {
    /// Diagnostic name (copied from the process at insertion).
    pub name: String,
    /// The process itself.
    pub process: Box<dyn Process>,
}

impl fmt::Debug for ProcessSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessSlot")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// A complete process network: the unit both runtimes execute.
///
/// Build one with [`Network::new`] by adding channels first (so their
/// [`PortId`]s can be passed to process constructors), then processes.
///
/// # Examples
///
/// ```
/// use rtft_kpn::{Fifo, Network, Payload, PjdSink, PjdSource, PortId};
/// use rtft_rtc::{PjdModel, TimeNs};
///
/// let mut net = Network::new();
/// let link = net.add_channel(Fifo::new("link", 4));
/// let model = PjdModel::periodic(TimeNs::from_ms(10));
/// net.add_process(PjdSource::new("src", PortId::of(link), model, 0, Some(100), Payload::U64));
/// net.add_process(PjdSink::new("sink", PortId::of(link), model, 1, Some(100)));
/// assert_eq!(net.channel_count(), 1);
/// assert_eq!(net.process_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct Network {
    channels: Vec<ChannelSlot>,
    processes: Vec<ProcessSlot>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a channel, returning its id.
    pub fn add_channel(&mut self, behavior: impl ChannelBehavior + 'static) -> ChannelId {
        self.add_channel_boxed(Box::new(behavior))
    }

    /// Adds an already-boxed channel, returning its id.
    pub fn add_channel_boxed(&mut self, behavior: Box<dyn ChannelBehavior>) -> ChannelId {
        let id = ChannelId(self.channels.len());
        let name = behavior
            .debug_name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("ch{}", id.0));
        self.channels.push(ChannelSlot { name, behavior });
        id
    }

    /// Diagnostic name of a channel (the behavior's own name, or `ch<N>`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn channel_name(&self, id: ChannelId) -> &str {
        &self.channels[id.0].name
    }

    /// Adds a process, returning its id.
    pub fn add_process(&mut self, process: impl Process + 'static) -> NodeId {
        self.add_process_boxed(Box::new(process))
    }

    /// Adds an already-boxed process, returning its id.
    pub fn add_process_boxed(&mut self, process: Box<dyn Process>) -> NodeId {
        let id = NodeId(self.processes.len());
        let name = process.name().to_owned();
        self.processes.push(ProcessSlot { name, process });
        id
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Borrows a channel's behavior.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn channel(&self, id: ChannelId) -> &dyn ChannelBehavior {
        self.channels[id.0].behavior.as_ref()
    }

    /// Mutably borrows a channel's behavior.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn channel_mut(&mut self, id: ChannelId) -> &mut dyn ChannelBehavior {
        self.channels[id.0].behavior.as_mut()
    }

    /// Downcasts a channel to a concrete type (e.g. to read a replicator's
    /// fault latches after a run).
    pub fn channel_as<T: 'static>(&self, id: ChannelId) -> Option<&T> {
        self.channels
            .get(id.0)
            .and_then(|c| c.behavior.as_any().downcast_ref::<T>())
    }

    /// Borrows a process.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn process(&self, id: NodeId) -> &dyn Process {
        self.processes[id.0].process.as_ref()
    }

    /// Downcasts a process to a concrete type (e.g. to read a sink's
    /// recorded arrivals after a run). Returns `None` if the process does
    /// not opt into inspection via [`Process::as_any`] or the type differs.
    pub fn process_as<T: 'static + Process>(&self, id: NodeId) -> Option<&T> {
        self.processes
            .get(id.0)
            .and_then(|p| p.process.as_any())
            .and_then(|a| a.downcast_ref::<T>())
    }

    /// Names of all processes, in id order (diagnostics).
    pub fn process_names(&self) -> Vec<&str> {
        self.processes.iter().map(|p| p.name.as_str()).collect()
    }

    /// Validates the wiring reachable from the processes: every referenced
    /// port must exist. Returns a human-readable description of the first
    /// problem found.
    ///
    /// Port references live inside process state, so this can only check
    /// channel-side invariants; it is called by the runtimes before
    /// execution.
    pub fn validate(&self) -> Result<(), String> {
        for (i, c) in self.channels.iter().enumerate() {
            let b = &c.behavior;
            if b.write_ifaces() == 0 || b.read_ifaces() == 0 {
                return Err(format!(
                    "channel {i} ({}) has a side with no interfaces",
                    c.name
                ));
            }
        }
        Ok(())
    }

    /// Splits the network into its parts (used by the threaded runtime,
    /// which moves processes into threads).
    pub fn into_parts(self) -> (Vec<ChannelSlot>, Vec<ProcessSlot>) {
        (self.channels, self.processes)
    }

    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<ChannelSlot>, &mut Vec<ProcessSlot>) {
        (&mut self.channels, &mut self.processes)
    }
}

/// Convenience: a `PortId` for interface 0 of a channel.
pub fn port(channel: ChannelId) -> PortId {
    PortId::of(channel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Fifo;
    use crate::process::{Collector, Wakeup};
    use rtft_rtc::TimeNs;

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut net = Network::new();
        let c0 = net.add_channel(Fifo::new("a", 1));
        let c1 = net.add_channel(Fifo::new("b", 1));
        assert_eq!((c0, c1), (ChannelId(0), ChannelId(1)));
        let p0 = net.add_process(Collector::new("c", PortId::of(c0), None));
        assert_eq!(p0, NodeId(0));
        assert_eq!(net.process_names(), vec!["c"]);
    }

    #[test]
    fn channel_downcast() {
        let mut net = Network::new();
        let c = net.add_channel(Fifo::new("fifo", 2));
        assert!(net.channel_as::<Fifo>(c).is_some());
        assert_eq!(net.channel_as::<Fifo>(c).unwrap().name(), "fifo");
    }

    #[test]
    fn validate_accepts_simple_network() {
        let mut net = Network::new();
        net.add_channel(Fifo::new("a", 1));
        assert!(net.validate().is_ok());
    }

    #[test]
    fn process_resume_via_network() {
        let mut net = Network::new();
        let c = net.add_channel(Fifo::new("a", 1));
        let p = net.add_process(Collector::new("c", PortId::of(c), None));
        let (_, procs) = net.parts_mut();
        let syscall = procs[p.0].process.resume(Wakeup::Start, TimeNs::ZERO);
        assert!(matches!(syscall, crate::Syscall::Read(_)));
    }
}
