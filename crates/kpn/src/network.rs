//! Network assembly: processes + channels + wiring.

use crate::channel::{ChannelBehavior, ChannelId, Fifo, PortId, ReadOutcome, WriteOutcome};
use crate::process::{Collector, NodeId, PjdSource, Process, Syscall, Wakeup};
use crate::token::Token;
use rtft_rtc::TimeNs;
use std::any::Any;
use std::fmt;

/// Channel storage. [`Fifo`] — the channel on every hot data path — is
/// stored inline so the engine's `try_write`/`try_read` dispatch is a
/// direct, inlineable call; every other behavior rides the usual trait
/// object. Dispatch order and semantics are identical either way.
pub enum ChanBody {
    /// An inline [`Fifo`].
    Fifo(Fifo),
    /// Any other channel behavior.
    Dyn(Box<dyn ChannelBehavior>),
}

impl ChanBody {
    fn from_behavior<C: ChannelBehavior + 'static>(c: C) -> Self {
        let mut holder = Some(c);
        let any: &mut dyn Any = &mut holder;
        if let Some(f) = any.downcast_mut::<Option<Fifo>>() {
            return ChanBody::Fifo(f.take().expect("fresh holder"));
        }
        ChanBody::Dyn(Box::new(holder.take().expect("fresh holder")))
    }
}

impl fmt::Debug for ChanBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChanBody::Fifo(c) => c.fmt(f),
            ChanBody::Dyn(c) => c.fmt(f),
        }
    }
}

impl ChannelBehavior for ChanBody {
    #[inline]
    fn try_write(&mut self, iface: usize, token: Token, now: TimeNs) -> WriteOutcome {
        match self {
            ChanBody::Fifo(c) => c.try_write(iface, token, now),
            ChanBody::Dyn(c) => c.try_write(iface, token, now),
        }
    }

    #[inline]
    fn try_read(&mut self, iface: usize, now: TimeNs) -> ReadOutcome {
        match self {
            ChanBody::Fifo(c) => c.try_read(iface, now),
            ChanBody::Dyn(c) => c.try_read(iface, now),
        }
    }

    fn write_ifaces(&self) -> usize {
        match self {
            ChanBody::Fifo(c) => c.write_ifaces(),
            ChanBody::Dyn(c) => c.write_ifaces(),
        }
    }

    fn read_ifaces(&self) -> usize {
        match self {
            ChanBody::Fifo(c) => c.read_ifaces(),
            ChanBody::Dyn(c) => c.read_ifaces(),
        }
    }

    #[inline]
    fn fill(&self, iface: usize) -> usize {
        match self {
            ChanBody::Fifo(c) => c.fill(iface),
            ChanBody::Dyn(c) => c.fill(iface),
        }
    }

    fn capacity(&self, iface: usize) -> usize {
        match self {
            ChanBody::Fifo(c) => c.capacity(iface),
            ChanBody::Dyn(c) => c.capacity(iface),
        }
    }

    fn max_fill(&self, iface: usize) -> usize {
        match self {
            ChanBody::Fifo(c) => c.max_fill(iface),
            ChanBody::Dyn(c) => c.max_fill(iface),
        }
    }

    fn debug_name(&self) -> Option<&str> {
        match self {
            ChanBody::Fifo(c) => c.debug_name(),
            ChanBody::Dyn(c) => c.debug_name(),
        }
    }

    fn as_any(&self) -> &dyn Any {
        match self {
            ChanBody::Fifo(c) => c.as_any(),
            ChanBody::Dyn(c) => c.as_any(),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        match self {
            ChanBody::Fifo(c) => c.as_any_mut(),
            ChanBody::Dyn(c) => c.as_any_mut(),
        }
    }
}

/// Process storage, mirroring [`ChanBody`]: the two helper processes on
/// the benchmark hot paths are inline, the rest are trait objects.
pub enum ProcBody {
    /// An inline [`PjdSource`].
    Source(PjdSource),
    /// An inline [`Collector`].
    Collector(Collector),
    /// Any other process.
    Dyn(Box<dyn Process>),
}

impl ProcBody {
    fn from_process<P: Process + 'static>(p: P) -> Self {
        let mut holder = Some(p);
        let any: &mut dyn Any = &mut holder;
        if let Some(s) = any.downcast_mut::<Option<PjdSource>>() {
            return ProcBody::Source(s.take().expect("fresh holder"));
        }
        if let Some(c) = any.downcast_mut::<Option<Collector>>() {
            return ProcBody::Collector(c.take().expect("fresh holder"));
        }
        ProcBody::Dyn(Box::new(holder.take().expect("fresh holder")))
    }
}

impl Process for ProcBody {
    fn name(&self) -> &str {
        match self {
            ProcBody::Source(p) => p.name(),
            ProcBody::Collector(p) => p.name(),
            ProcBody::Dyn(p) => p.name(),
        }
    }

    #[inline]
    fn resume(&mut self, wake: Wakeup, now: TimeNs) -> Syscall {
        match self {
            ProcBody::Source(p) => p.resume(wake, now),
            ProcBody::Collector(p) => p.resume(wake, now),
            ProcBody::Dyn(p) => p.resume(wake, now),
        }
    }

    fn as_any(&self) -> Option<&dyn Any> {
        match self {
            ProcBody::Source(p) => p.as_any(),
            ProcBody::Collector(p) => p.as_any(),
            ProcBody::Dyn(p) => p.as_any(),
        }
    }
}

impl fmt::Debug for ProcBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Process({})", self.name())
    }
}

/// A named channel slot in the network.
pub struct ChannelSlot {
    /// Diagnostic name.
    pub name: String,
    /// The channel state machine.
    pub behavior: ChanBody,
}

impl fmt::Debug for ChannelSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelSlot")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// A named process slot in the network.
pub struct ProcessSlot {
    /// Diagnostic name (copied from the process at insertion).
    pub name: String,
    /// The process itself.
    pub process: ProcBody,
}

impl fmt::Debug for ProcessSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessSlot")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// A complete process network: the unit both runtimes execute.
///
/// Build one with [`Network::new`] by adding channels first (so their
/// [`PortId`]s can be passed to process constructors), then processes.
///
/// # Examples
///
/// ```
/// use rtft_kpn::{Fifo, Network, Payload, PjdSink, PjdSource, PortId};
/// use rtft_rtc::{PjdModel, TimeNs};
///
/// let mut net = Network::new();
/// let link = net.add_channel(Fifo::new("link", 4));
/// let model = PjdModel::periodic(TimeNs::from_ms(10));
/// net.add_process(PjdSource::new("src", PortId::of(link), model, 0, Some(100), Payload::U64));
/// net.add_process(PjdSink::new("sink", PortId::of(link), model, 1, Some(100)));
/// assert_eq!(net.channel_count(), 1);
/// assert_eq!(net.process_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct Network {
    channels: Vec<ChannelSlot>,
    processes: Vec<ProcessSlot>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a channel, returning its id.
    pub fn add_channel(&mut self, behavior: impl ChannelBehavior + 'static) -> ChannelId {
        self.add_channel_body(ChanBody::from_behavior(behavior))
    }

    /// Adds an already-boxed channel, returning its id.
    pub fn add_channel_boxed(&mut self, behavior: Box<dyn ChannelBehavior>) -> ChannelId {
        self.add_channel_body(ChanBody::Dyn(behavior))
    }

    fn add_channel_body(&mut self, behavior: ChanBody) -> ChannelId {
        let id = ChannelId(self.channels.len());
        let name = behavior
            .debug_name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("ch{}", id.0));
        self.channels.push(ChannelSlot { name, behavior });
        id
    }

    /// Diagnostic name of a channel (the behavior's own name, or `ch<N>`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn channel_name(&self, id: ChannelId) -> &str {
        &self.channels[id.0].name
    }

    /// Adds a process, returning its id.
    pub fn add_process(&mut self, process: impl Process + 'static) -> NodeId {
        self.add_process_body(ProcBody::from_process(process))
    }

    /// Adds an already-boxed process, returning its id.
    pub fn add_process_boxed(&mut self, process: Box<dyn Process>) -> NodeId {
        self.add_process_body(ProcBody::Dyn(process))
    }

    fn add_process_body(&mut self, process: ProcBody) -> NodeId {
        let id = NodeId(self.processes.len());
        let name = process.name().to_owned();
        self.processes.push(ProcessSlot { name, process });
        id
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Borrows a channel's behavior.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn channel(&self, id: ChannelId) -> &dyn ChannelBehavior {
        &self.channels[id.0].behavior
    }

    /// Mutably borrows a channel's behavior.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn channel_mut(&mut self, id: ChannelId) -> &mut dyn ChannelBehavior {
        &mut self.channels[id.0].behavior
    }

    /// Concrete-typed channel access for the engine's hot path: dispatch
    /// through [`ChanBody`]'s match instead of a vtable, so `Fifo` ops
    /// inline into the step loop.
    #[inline]
    pub(crate) fn chan_body_mut(&mut self, id: ChannelId) -> &mut ChanBody {
        &mut self.channels[id.0].behavior
    }

    /// Downcasts a channel to a concrete type (e.g. to read a replicator's
    /// fault latches after a run).
    pub fn channel_as<T: 'static>(&self, id: ChannelId) -> Option<&T> {
        self.channels
            .get(id.0)
            .and_then(|c| c.behavior.as_any().downcast_ref::<T>())
    }

    /// Borrows a process.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn process(&self, id: NodeId) -> &dyn Process {
        &self.processes[id.0].process
    }

    /// Downcasts a process to a concrete type (e.g. to read a sink's
    /// recorded arrivals after a run). Returns `None` if the process does
    /// not opt into inspection via [`Process::as_any`] or the type differs.
    pub fn process_as<T: 'static + Process>(&self, id: NodeId) -> Option<&T> {
        self.processes
            .get(id.0)
            .and_then(|p| p.process.as_any())
            .and_then(|a| a.downcast_ref::<T>())
    }

    /// Names of all processes, in id order (diagnostics).
    pub fn process_names(&self) -> Vec<&str> {
        self.processes.iter().map(|p| p.name.as_str()).collect()
    }

    /// Validates the wiring reachable from the processes: every referenced
    /// port must exist. Returns a human-readable description of the first
    /// problem found.
    ///
    /// Port references live inside process state, so this can only check
    /// channel-side invariants; it is called by the runtimes before
    /// execution.
    pub fn validate(&self) -> Result<(), String> {
        for (i, c) in self.channels.iter().enumerate() {
            let b = &c.behavior;
            if b.write_ifaces() == 0 || b.read_ifaces() == 0 {
                return Err(format!(
                    "channel {i} ({}) has a side with no interfaces",
                    c.name
                ));
            }
        }
        Ok(())
    }

    /// Splits the network into its parts (used by the threaded runtime,
    /// which moves processes into threads).
    pub fn into_parts(self) -> (Vec<ChannelSlot>, Vec<ProcessSlot>) {
        (self.channels, self.processes)
    }

    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<ChannelSlot>, &mut Vec<ProcessSlot>) {
        (&mut self.channels, &mut self.processes)
    }
}

/// Convenience: a `PortId` for interface 0 of a channel.
pub fn port(channel: ChannelId) -> PortId {
    PortId::of(channel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Fifo;
    use crate::process::{Collector, Wakeup};
    use rtft_rtc::TimeNs;

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut net = Network::new();
        let c0 = net.add_channel(Fifo::new("a", 1));
        let c1 = net.add_channel(Fifo::new("b", 1));
        assert_eq!((c0, c1), (ChannelId(0), ChannelId(1)));
        let p0 = net.add_process(Collector::new("c", PortId::of(c0), None));
        assert_eq!(p0, NodeId(0));
        assert_eq!(net.process_names(), vec!["c"]);
    }

    #[test]
    fn channel_downcast() {
        let mut net = Network::new();
        let c = net.add_channel(Fifo::new("fifo", 2));
        assert!(net.channel_as::<Fifo>(c).is_some());
        assert_eq!(net.channel_as::<Fifo>(c).unwrap().name(), "fifo");
    }

    #[test]
    fn validate_accepts_simple_network() {
        let mut net = Network::new();
        net.add_channel(Fifo::new("a", 1));
        assert!(net.validate().is_ok());
    }

    #[test]
    fn process_resume_via_network() {
        let mut net = Network::new();
        let c = net.add_channel(Fifo::new("a", 1));
        let p = net.add_process(Collector::new("c", PortId::of(c), None));
        let (_, procs) = net.parts_mut();
        let syscall = procs[p.0].process.resume(Wakeup::Start, TimeNs::ZERO);
        assert!(matches!(syscall, crate::Syscall::Read(_)));
    }
}
