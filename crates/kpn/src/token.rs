//! Data tokens flowing through the process network.

use crate::digest::Digest;
use rtft_rtc::TimeNs;
use std::fmt;

/// Reference-counted immutable byte buffer.
///
/// `Arc<[u8]>` gives the two properties token payloads need — cheap clone
/// (pointer copy) and contents-based equality/hashing — without an external
/// buffer crate. Build one with `Bytes::from(vec)`.
pub type Bytes = std::sync::Arc<[u8]>;

/// Payload carried by a [`Token`].
///
/// Payload clones are cheap: the `Bytes` variant is reference-counted, so a
/// replicator duplicating a 76.8 KB decoded frame copies a pointer, not the
/// pixels — mirroring the paper's note that more efficient shared-buffer
/// replicator implementations are possible.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum Payload {
    /// A pure control token with no data.
    #[default]
    Empty,
    /// A small scalar value (test workloads, sequence checks).
    U64(u64),
    /// An arbitrary byte buffer (frames, audio samples, bitstreams).
    Bytes(Bytes),
}

impl Payload {
    /// Payload size in bytes, as the communication substrate sees it.
    pub fn len(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::U64(_) => 8,
            Payload::Bytes(b) => b.len(),
        }
    }

    /// `true` if the payload carries zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the byte content, if this is a `Bytes` payload.
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            Payload::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// The scalar value, if this is a `U64` payload.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Payload::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// A stable 64-bit content digest (FNV-1a over 64-bit words), used by
    /// equivalence checks to compare output streams without storing full
    /// payloads.
    ///
    /// Byte buffers are folded eight bytes at a time (little-endian words),
    /// tail bytes last, then the length — one multiply per word instead of
    /// per byte, which matters because this runs for every output token in
    /// equivalence checks and every serve `Output` frame. The trailing
    /// length word keeps zero-padded buffers of different sizes distinct.
    ///
    /// This is the one-shot form of the streaming [`Digest`](crate::Digest)
    /// hasher: `Payload::from(v).digest()` equals
    /// `Digest::new().update(&v).finish()` for any byte vector, and the
    /// fixed vectors below pin both to the same values.
    pub fn digest(&self) -> u64 {
        match self {
            // An empty stream hashes identically to the historical
            // `eat_byte(OFFSET, 0)` form: `finish` on zero bytes folds in
            // the length word 0, and `h ^ 0` is `h` either way.
            Payload::Empty => Digest::new().finish(),
            Payload::U64(v) => {
                let mut d = Digest::new();
                d.update(&v.to_le_bytes());
                d.finish()
            }
            Payload::Bytes(b) => {
                let mut d = Digest::new();
                d.update(b);
                d.finish()
            }
        }
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Self {
        Payload::Bytes(b)
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::Bytes(Bytes::from(v))
    }
}

impl From<u64> for Payload {
    fn from(v: u64) -> Self {
        Payload::U64(v)
    }
}

/// A data token: the unit of communication in the process network.
///
/// Tokens carry a monotonically increasing per-stream sequence number `seq`
/// (the paper's `j` in `T_k[j]`) and the timestamp `produced_at` at which
/// the producing process emitted them (the paper's `t(k, j)`). The
/// fault-tolerance framework itself never reads `produced_at` — that is the
/// "no runtime timekeeping" claim — but the experiment harness and the
/// distance-function baseline do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Monotonically increasing sequence number within the stream.
    pub seq: u64,
    /// Instant the token was produced.
    pub produced_at: TimeNs,
    /// The data carried.
    pub payload: Payload,
}

impl Token {
    /// Creates a token.
    pub fn new(seq: u64, produced_at: TimeNs, payload: Payload) -> Self {
        Token {
            seq,
            produced_at,
            payload,
        }
    }

    /// Size of the token's payload in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// `true` if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T[{}]@{} ({}B)", self.seq, self.produced_at, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes() {
        assert_eq!(Payload::Empty.len(), 0);
        assert!(Payload::Empty.is_empty());
        assert_eq!(Payload::U64(7).len(), 8);
        assert_eq!(Payload::from(vec![1u8, 2, 3]).len(), 3);
    }

    #[test]
    fn digest_distinguishes_content() {
        let a = Payload::from(vec![1u8, 2, 3]);
        let b = Payload::from(vec![1u8, 2, 4]);
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), Payload::from(vec![1u8, 2, 3]).digest());
        assert_ne!(Payload::U64(0).digest(), Payload::Empty.digest());
    }

    #[test]
    fn digest_fixed_vectors() {
        // Pinned so the digest stays stable across future edits: equivalence
        // verdicts and serve Output frames embed these values.
        assert_eq!(Payload::Empty.digest(), 0xaf63_bd4c_8601_b7df);
        assert_eq!(
            Payload::U64(0xdead_beef_cafe_f00d).digest(),
            0x811d_0077_16ea_3bd0
        );
        let bytes: Vec<u8> = (0u8..13).collect();
        assert_eq!(Payload::from(bytes).digest(), 0xf0f1_c00c_fdb0_4010);
        // Zero-padded buffers of different lengths stay distinct (the
        // trailing length word).
        assert_ne!(
            Payload::from(vec![0u8; 8]).digest(),
            Payload::from(vec![0u8; 1]).digest()
        );
    }

    #[test]
    fn token_display() {
        let t = Token::new(3, TimeNs::from_ms(30), Payload::from(vec![0u8; 100]));
        assert_eq!(format!("{t}"), "T[3]@30ms (100B)");
    }

    #[test]
    fn cheap_payload_clone_shares_buffer() {
        let data = Bytes::from(vec![0u8; 1024]);
        let p1 = Payload::Bytes(data);
        let p2 = p1.clone();
        // Same underlying allocation.
        if let (Payload::Bytes(a), Payload::Bytes(b)) = (&p1, &p2) {
            assert_eq!(a.as_ptr(), b.as_ptr());
        } else {
            unreachable!();
        }
    }
}
