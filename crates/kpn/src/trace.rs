//! Execution tracing for debugging and experiment post-processing.
//!
//! Backed by a bounded [`rtft_obs::Ring`]: long campaign runs used to grow
//! the old `Vec`-based log without bound; the ring retains the most recent
//! events (64 Ki by default) and counts what it evicts, so memory stays
//! flat no matter how long the run. The public API is a compatibility shim
//! over the ring — existing trace-based tests run unchanged.

use crate::channel::PortId;
use crate::process::NodeId;
use rtft_obs::Ring;
use rtft_rtc::TimeNs;

/// Default number of retained events when tracing is enabled.
pub const DEFAULT_TRACE_CAPACITY: usize = 64 * 1024;

/// One traced occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A token was accepted by a channel write interface.
    TokenWritten {
        /// Writing process.
        node: NodeId,
        /// Destination port.
        port: PortId,
        /// Token sequence number.
        seq: u64,
        /// `true` if the channel accepted-but-discarded it (selector
        /// duplicate suppression / replicator fault latch).
        dropped: bool,
    },
    /// A token was destructively read.
    TokenRead {
        /// Reading process.
        node: NodeId,
        /// Source port.
        port: PortId,
        /// Token sequence number.
        seq: u64,
    },
    /// A read attempt blocked.
    ReadBlocked {
        /// Blocked process.
        node: NodeId,
        /// Port it blocked on.
        port: PortId,
    },
    /// A write attempt blocked.
    WriteBlocked {
        /// Blocked process.
        node: NodeId,
        /// Port it blocked on.
        port: PortId,
    },
    /// A process halted.
    Halted {
        /// The process.
        node: NodeId,
    },
}

/// A bounded event log. Disabled traces drop events with no allocation;
/// enabled traces keep the most recent [`DEFAULT_TRACE_CAPACITY`] events
/// (configurable via [`Trace::with_capacity`]) and count evictions.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    ring: Ring<(TimeNs, TraceEvent)>,
    seed: Option<u64>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

impl Trace {
    /// A trace that records nothing.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            ring: Ring::new(1),
            seed: None,
        }
    }

    /// A trace that records the most recent [`DEFAULT_TRACE_CAPACITY`]
    /// events.
    pub fn enabled() -> Self {
        Trace::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled trace retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            enabled: true,
            ring: Ring::new(capacity),
            seed: None,
        }
    }

    /// Tags the trace with the campaign seed that drove the run it records.
    /// The seed travels in every exported header, so a trace can always be
    /// traced back to the exact scenario that produced it.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the campaign seed on an existing trace (the runtimes call this
    /// when a harness supplies the seed after construction).
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = Some(seed);
    }

    /// The campaign seed this trace is tagged with, if any.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Exports the trace as a JSON object whose header carries the seed
    /// (`null` when untagged), retention stats, and the retained events —
    /// the format every trace-consuming report embeds.
    pub fn export_json(&self) -> String {
        let events = self.events().into_iter().map(|(at, ev)| {
            let o = rtft_obs::json::JsonObject::new().u64_field("t_ns", at.as_ns());
            match ev {
                TraceEvent::TokenWritten {
                    node,
                    port,
                    seq,
                    dropped,
                } => o
                    .str_field("ev", "write")
                    .u64_field("node", node.0 as u64)
                    .u64_field("ch", port.channel.0 as u64)
                    .u64_field("iface", port.iface as u64)
                    .u64_field("seq", seq)
                    .bool_field("dropped", dropped),
                TraceEvent::TokenRead { node, port, seq } => o
                    .str_field("ev", "read")
                    .u64_field("node", node.0 as u64)
                    .u64_field("ch", port.channel.0 as u64)
                    .u64_field("iface", port.iface as u64)
                    .u64_field("seq", seq),
                TraceEvent::ReadBlocked { node, port } => o
                    .str_field("ev", "read_blocked")
                    .u64_field("node", node.0 as u64)
                    .u64_field("ch", port.channel.0 as u64),
                TraceEvent::WriteBlocked { node, port } => o
                    .str_field("ev", "write_blocked")
                    .u64_field("node", node.0 as u64)
                    .u64_field("ch", port.channel.0 as u64),
                TraceEvent::Halted { node } => {
                    o.str_field("ev", "halted").u64_field("node", node.0 as u64)
                }
            }
            .finish()
        });
        rtft_obs::json::JsonObject::new()
            .opt_u64_field("seed", self.seed)
            .u64_field("events", self.len() as u64)
            .u64_field("evicted", self.dropped())
            .raw_field("log", &rtft_obs::json::array(events))
            .finish()
    }

    /// Records `event` at `at` if tracing is enabled.
    #[inline]
    pub fn push(&mut self, at: TimeNs, event: TraceEvent) {
        if self.enabled {
            self.ring.push((at, event));
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<(TimeNs, TraceEvent)> {
        self.ring.to_vec()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted because the ring filled up.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelId;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(TimeNs::ZERO, TraceEvent::Halted { node: NodeId(0) });
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        let port = PortId::of(ChannelId(0));
        t.push(
            TimeNs::ZERO,
            TraceEvent::ReadBlocked {
                node: NodeId(1),
                port,
            },
        );
        t.push(TimeNs::from_ms(1), TraceEvent::Halted { node: NodeId(1) });
        assert_eq!(t.events().len(), 2);
        assert!(t.events()[0].0 <= t.events()[1].0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn exported_header_carries_the_seed() {
        let mut t = Trace::enabled().with_seed(0xC0FFEE);
        t.push(
            TimeNs::from_ms(1),
            TraceEvent::TokenRead {
                node: NodeId(2),
                port: PortId::of(ChannelId(3)),
                seq: 7,
            },
        );
        assert_eq!(t.seed(), Some(0xC0FFEE));
        let json = t.export_json();
        assert!(json.starts_with("{\"seed\":12648430,"), "{json}");
        assert!(json.contains("\"ev\":\"read\""));
        // An untagged trace exports an explicit null seed.
        let bare = Trace::enabled();
        assert!(bare.export_json().starts_with("{\"seed\":null,"));
        // set_seed after construction is equivalent.
        let mut late = Trace::enabled();
        late.set_seed(5);
        assert_eq!(late.seed(), Some(5));
    }

    #[test]
    fn trace_is_bounded_and_counts_drops() {
        let mut t = Trace::with_capacity(4);
        for i in 0..10u64 {
            t.push(
                TimeNs::from_ms(i),
                TraceEvent::Halted {
                    node: NodeId(i as usize),
                },
            );
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        // Most recent events survive.
        assert_eq!(t.events()[3].0, TimeNs::from_ms(9));
        assert_eq!(t.events()[0].0, TimeNs::from_ms(6));
    }
}
