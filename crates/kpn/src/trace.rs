//! Execution tracing for debugging and experiment post-processing.

use crate::channel::PortId;
use crate::process::NodeId;
use rtft_rtc::TimeNs;

/// One traced occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A token was accepted by a channel write interface.
    TokenWritten {
        /// Writing process.
        node: NodeId,
        /// Destination port.
        port: PortId,
        /// Token sequence number.
        seq: u64,
        /// `true` if the channel accepted-but-discarded it (selector
        /// duplicate suppression / replicator fault latch).
        dropped: bool,
    },
    /// A token was destructively read.
    TokenRead {
        /// Reading process.
        node: NodeId,
        /// Source port.
        port: PortId,
        /// Token sequence number.
        seq: u64,
    },
    /// A read attempt blocked.
    ReadBlocked {
        /// Blocked process.
        node: NodeId,
        /// Port it blocked on.
        port: PortId,
    },
    /// A write attempt blocked.
    WriteBlocked {
        /// Blocked process.
        node: NodeId,
        /// Port it blocked on.
        port: PortId,
    },
    /// A process halted.
    Halted {
        /// The process.
        node: NodeId,
    },
}

/// An append-only event log. Disabled traces drop events with no
/// allocation, so the hot path stays cheap when tracing is off.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<(TimeNs, TraceEvent)>,
}

impl Trace {
    /// A trace that records nothing.
    pub fn disabled() -> Self {
        Trace { enabled: false, events: Vec::new() }
    }

    /// A trace that records everything.
    pub fn enabled() -> Self {
        Trace { enabled: true, events: Vec::new() }
    }

    /// Records `event` at `at` if tracing is enabled.
    pub fn push(&mut self, at: TimeNs, event: TraceEvent) {
        if self.enabled {
            self.events.push((at, event));
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[(TimeNs, TraceEvent)] {
        &self.events
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelId;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(TimeNs::ZERO, TraceEvent::Halted { node: NodeId(0) });
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        let port = PortId::of(ChannelId(0));
        t.push(TimeNs::ZERO, TraceEvent::ReadBlocked { node: NodeId(1), port });
        t.push(TimeNs::from_ms(1), TraceEvent::Halted { node: NodeId(1) });
        assert_eq!(t.events().len(), 2);
        assert!(t.events()[0].0 <= t.events()[1].0);
    }
}
