//! Streaming FNV-1a digest — the incremental form of [`Payload::digest`].
//!
//! [`Payload::digest`](crate::Payload::digest) folds a payload's bytes
//! eight at a time (little-endian words, tail bytes last, then the total
//! length) into a 64-bit FNV-1a hash. [`Digest`] computes the *same*
//! value incrementally: feed bytes in arbitrarily sized slices with
//! [`Digest::update`] and close with [`Digest::finish`]. The word
//! boundaries are anchored to the start of the stream (an internal
//! partial-word buffer carries tail bytes across `update` calls), so the
//! result is independent of how the input was split:
//!
//! ```
//! use rtft_kpn::{Digest, Payload};
//!
//! let bytes: Vec<u8> = (0u8..13).collect();
//! let mut d = Digest::new();
//! d.update(&bytes[..5]);
//! d.update(&bytes[5..]);
//! assert_eq!(d.finish(), Payload::from(bytes).digest());
//! ```
//!
//! This is what lets the WAL checksum a record while serialising it — no
//! second pass over the buffer, no intermediate copy — and still produce
//! a value comparable with the one-shot digests recorded elsewhere.

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn eat_word(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(PRIME)
}

#[inline]
fn eat_byte(h: u64, byte: u8) -> u64 {
    (h ^ byte as u64).wrapping_mul(PRIME)
}

/// Incremental FNV-1a word-at-a-time hasher.
///
/// `Digest::new().update(bytes).finish()` equals
/// `Payload::from(bytes.to_vec()).digest()` for any byte buffer, however
/// the calls to `update` slice it.
#[derive(Debug, Clone)]
pub struct Digest {
    h: u64,
    /// Bytes of the current (incomplete) 8-byte word, in stream order.
    partial: [u8; 8],
    partial_len: usize,
    /// Total bytes consumed (the trailing length word).
    len: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

impl Digest {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Digest {
            h: OFFSET,
            partial: [0; 8],
            partial_len: 0,
            len: 0,
        }
    }

    /// Folds `bytes` into the digest. Word boundaries stay anchored to
    /// the start of the stream, so splitting the input across calls does
    /// not change the final value.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.len += bytes.len() as u64;
        // Top up a pending partial word first.
        if self.partial_len > 0 {
            let take = (8 - self.partial_len).min(bytes.len());
            self.partial[self.partial_len..self.partial_len + take].copy_from_slice(&bytes[..take]);
            self.partial_len += take;
            bytes = &bytes[take..];
            if self.partial_len == 8 {
                self.h = eat_word(self.h, u64::from_le_bytes(self.partial));
                self.partial_len = 0;
            } else {
                return; // `bytes` exhausted before the word filled.
            }
        }
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.h = eat_word(
                self.h,
                u64::from_le_bytes(chunk.try_into().expect("8 bytes")),
            );
        }
        let rem = chunks.remainder();
        self.partial[..rem.len()].copy_from_slice(rem);
        self.partial_len = rem.len();
    }

    /// Total bytes folded in so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if no bytes have been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Closes the stream: folds the tail bytes (byte-wise, as the
    /// one-shot digest does) and the total length word, and returns the
    /// digest.
    pub fn finish(self) -> u64 {
        let mut h = self.h;
        for &b in &self.partial[..self.partial_len] {
            h = eat_byte(h, b);
        }
        eat_word(h, self.len)
    }
}

/// One-shot convenience: the digest of a whole byte slice.
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.update(bytes);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Payload;

    /// The pinned vectors from `Payload::digest` — the streamed form must
    /// reproduce them exactly.
    #[test]
    fn fixed_vectors_match_one_shot() {
        // Empty stream == Payload::Empty.
        assert_eq!(Digest::new().finish(), 0xaf63_bd4c_8601_b7df);
        assert_eq!(Digest::new().finish(), Payload::Empty.digest());

        // A u64's LE bytes == Payload::U64.
        let mut d = Digest::new();
        d.update(&0xdead_beef_cafe_f00du64.to_le_bytes());
        assert_eq!(d.finish(), 0x811d_0077_16ea_3bd0);

        // A byte buffer == Payload::Bytes.
        let bytes: Vec<u8> = (0u8..13).collect();
        assert_eq!(digest_bytes(&bytes), 0xf0f1_c00c_fdb0_4010);
        assert_eq!(digest_bytes(&bytes), Payload::from(bytes).digest());
    }

    /// Streaming in every possible two-way split (and some pathological
    /// many-way splits) gives the same digest as one shot.
    #[test]
    fn split_invariance() {
        let bytes: Vec<u8> = (0u16..257).map(|b| (b % 251) as u8).collect();
        let expected = digest_bytes(&bytes);
        assert_eq!(expected, Payload::from(bytes.clone()).digest());
        for split in 0..=bytes.len() {
            let mut d = Digest::new();
            d.update(&bytes[..split]);
            d.update(&bytes[split..]);
            assert_eq!(d.finish(), expected, "split at {split}");
        }
        // Byte-at-a-time.
        let mut d = Digest::new();
        for b in &bytes {
            d.update(std::slice::from_ref(b));
        }
        assert_eq!(d.finish(), expected);
        // Empty updates are no-ops.
        let mut d = Digest::new();
        d.update(&[]);
        d.update(&bytes);
        d.update(&[]);
        assert_eq!(d.finish(), expected);
    }

    #[test]
    fn length_is_tracked() {
        let mut d = Digest::new();
        assert!(d.is_empty());
        d.update(&[1, 2, 3]);
        d.update(&[4]);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
    }

    /// Zero-padded buffers of different lengths stay distinct (the
    /// trailing length word survives the refactor).
    #[test]
    fn length_word_keeps_padded_buffers_distinct() {
        assert_ne!(digest_bytes(&[0u8; 8]), digest_bytes(&[0u8; 1]));
    }
}
