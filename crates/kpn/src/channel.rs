//! Channel semantics: the pluggable state machines processes communicate
//! through.
//!
//! A channel is a passive state machine owned by the runtime (simulation
//! engine or threaded runtime). Processes interact with it only via
//! non-destructive *attempts* — [`ChannelBehavior::try_write`] /
//! [`ChannelBehavior::try_read`] — and the runtime implements blocking by
//! parking the process and retrying after the channel changes state. This
//! split lets the exact same channel implementation (including the paper's
//! replicator and selector in `rtft-core`) run unchanged under virtual time
//! and under real threads.

use crate::token::Token;
use rtft_rtc::TimeNs;
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;

/// Identifies a channel within a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub usize);

/// Identifies one interface (reader or writer side) of a channel.
///
/// Plain FIFOs have a single interface on each side (`iface == 0`); the
/// replicator has two read interfaces, the selector two write interfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId {
    /// The channel.
    pub channel: ChannelId,
    /// Interface index on the relevant side.
    pub iface: usize,
}

impl PortId {
    /// Interface 0 of `channel` — the common single-interface case.
    pub fn of(channel: ChannelId) -> Self {
        PortId { channel, iface: 0 }
    }

    /// A specific interface of `channel`.
    pub fn iface(channel: ChannelId, iface: usize) -> Self {
        PortId { channel, iface }
    }
}

/// Result of a write attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Token enqueued; the write completed.
    Accepted,
    /// The write completed but the token was *not* enqueued — the selector
    /// discards the late token of a duplicate pair (§3.1 selector rule 3),
    /// and a replicator drops tokens destined for a latched-faulty replica
    /// queue (§3.3).
    AcceptedDropped,
    /// No space on this interface; the writer must block and retry. The
    /// token is handed back so the runtime can re-attempt the same write
    /// later without ever cloning the payload — the accepted path moves
    /// the token straight into the channel, and the blocked path moves it
    /// straight back out.
    Blocked(Token),
}

/// Result of a read attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// A token was dequeued.
    Token(Token),
    /// Nothing available; the reader must block and retry.
    Blocked,
}

/// Object-safe channel state machine.
///
/// Implementations must be pure state machines: `try_write`/`try_read`
/// either complete immediately or report `Blocked` without side effects
/// beyond their own bookkeeping. The runtime guarantees mutual exclusion
/// (it owns the channel), calls ops with the current time `now`, and
/// retries blocked parties after every successful op on the channel.
pub trait ChannelBehavior: fmt::Debug + Send {
    /// Attempts to write `token` through write-interface `iface`.
    fn try_write(&mut self, iface: usize, token: Token, now: TimeNs) -> WriteOutcome;

    /// Attempts a destructive read from read-interface `iface`.
    fn try_read(&mut self, iface: usize, now: TimeNs) -> ReadOutcome;

    /// Number of write interfaces.
    fn write_ifaces(&self) -> usize {
        1
    }

    /// Number of read interfaces.
    fn read_ifaces(&self) -> usize {
        1
    }

    /// Tokens currently queued for read-interface `iface`.
    fn fill(&self, iface: usize) -> usize;

    /// Capacity of the queue behind read-interface `iface`.
    fn capacity(&self, iface: usize) -> usize;

    /// High-water mark of `fill(iface)` since construction — the paper's
    /// "Max. Observed fill" row in Table 2.
    fn max_fill(&self, iface: usize) -> usize;

    /// Diagnostic name, if the implementation carries one; the network
    /// falls back to `ch<N>` for metric labels otherwise.
    fn debug_name(&self) -> Option<&str> {
        None
    }

    /// Downcast support so harnesses can reach implementation-specific
    /// state (e.g. the replicator's fault-latch timestamps).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A bounded FIFO with blocking semantics: the basic Kahn channel.
///
/// One write interface, one read interface. A write blocks when the queue
/// holds `capacity` tokens; a read blocks when it is empty.
///
/// # Examples
///
/// ```
/// use rtft_kpn::{ChannelBehavior, Fifo, Payload, ReadOutcome, Token, WriteOutcome};
/// use rtft_rtc::TimeNs;
///
/// let mut f = Fifo::new("link", 1);
/// let t0 = TimeNs::ZERO;
/// let tok = Token::new(1, t0, Payload::U64(42));
/// assert_eq!(f.try_write(0, tok.clone(), t0), WriteOutcome::Accepted);
/// // A blocked write hands the token back for a later retry.
/// assert!(matches!(f.try_write(0, tok.clone(), t0), WriteOutcome::Blocked(_)));
/// assert_eq!(f.try_read(0, t0), ReadOutcome::Token(tok));
/// assert_eq!(f.try_read(0, t0), ReadOutcome::Blocked);
/// ```
#[derive(Debug)]
pub struct Fifo {
    name: String,
    queue: VecDeque<Token>,
    capacity: usize,
    max_fill: usize,
    writes: u64,
    reads: u64,
}

impl Fifo {
    /// Creates a bounded FIFO named `name` with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity Kahn channel can
    /// never transport a token.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Fifo {
            name: name.into(),
            queue: VecDeque::with_capacity(capacity),
            capacity,
            max_fill: 0,
            writes: 0,
            reads: 0,
        }
    }

    /// Creates a FIFO pre-filled with `initial` tokens (the paper's
    /// `F_{C,0}` initial-fill condition, eq. (4)). The pre-filled tokens
    /// carry `Payload::Empty`, timestamp zero and sequence numbers counting
    /// down from zero semantics-wise; they use sequence numbers
    /// `0 .. initial` and real tokens should continue from there.
    ///
    /// # Panics
    ///
    /// Panics if `initial > capacity` or capacity is zero.
    pub fn with_initial_tokens(name: impl Into<String>, capacity: usize, initial: usize) -> Self {
        assert!(initial <= capacity, "initial fill exceeds capacity");
        let mut f = Fifo::new(name, capacity);
        for seq in 0..initial {
            f.queue
                .push_back(Token::new(seq as u64, TimeNs::ZERO, crate::Payload::Empty));
        }
        f.max_fill = initial;
        f
    }

    /// The FIFO's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total successful writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total successful reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }
}

impl ChannelBehavior for Fifo {
    #[inline]
    fn try_write(&mut self, iface: usize, token: Token, _now: TimeNs) -> WriteOutcome {
        assert_eq!(iface, 0, "FIFO has a single write interface");
        if self.queue.len() >= self.capacity {
            return WriteOutcome::Blocked(token);
        }
        self.queue.push_back(token);
        self.writes += 1;
        self.max_fill = self.max_fill.max(self.queue.len());
        WriteOutcome::Accepted
    }

    #[inline]
    fn try_read(&mut self, iface: usize, _now: TimeNs) -> ReadOutcome {
        assert_eq!(iface, 0, "FIFO has a single read interface");
        match self.queue.pop_front() {
            Some(t) => {
                self.reads += 1;
                ReadOutcome::Token(t)
            }
            None => ReadOutcome::Blocked,
        }
    }

    fn fill(&self, _iface: usize) -> usize {
        self.queue.len()
    }

    fn capacity(&self, _iface: usize) -> usize {
        self.capacity
    }

    fn max_fill(&self, _iface: usize) -> usize {
        self.max_fill
    }

    fn debug_name(&self) -> Option<&str> {
        Some(&self.name)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An *unbounded* FIFO — used by the equivalence experiments that model the
/// idealised replicator of Theorem 2 (unbounded replicator queues) and by
/// measurement taps that must never exert backpressure.
#[derive(Debug, Default)]
pub struct UnboundedFifo {
    name: String,
    queue: VecDeque<Token>,
    max_fill: usize,
    writes: u64,
    reads: u64,
}

impl UnboundedFifo {
    /// Creates an unbounded FIFO.
    pub fn new(name: impl Into<String>) -> Self {
        UnboundedFifo {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The FIFO's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl ChannelBehavior for UnboundedFifo {
    fn try_write(&mut self, iface: usize, token: Token, _now: TimeNs) -> WriteOutcome {
        assert_eq!(iface, 0);
        self.queue.push_back(token);
        self.writes += 1;
        self.max_fill = self.max_fill.max(self.queue.len());
        WriteOutcome::Accepted
    }

    fn try_read(&mut self, iface: usize, _now: TimeNs) -> ReadOutcome {
        assert_eq!(iface, 0);
        match self.queue.pop_front() {
            Some(t) => {
                self.reads += 1;
                ReadOutcome::Token(t)
            }
            None => ReadOutcome::Blocked,
        }
    }

    fn fill(&self, _iface: usize) -> usize {
        self.queue.len()
    }

    fn capacity(&self, _iface: usize) -> usize {
        usize::MAX
    }

    fn max_fill(&self, _iface: usize) -> usize {
        self.max_fill
    }

    fn debug_name(&self) -> Option<&str> {
        Some(&self.name)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Payload;

    fn tok(seq: u64) -> Token {
        Token::new(seq, TimeNs::ZERO, Payload::U64(seq))
    }

    #[test]
    fn fifo_is_first_in_first_out() {
        let mut f = Fifo::new("f", 3);
        for s in 0..3 {
            assert_eq!(f.try_write(0, tok(s), TimeNs::ZERO), WriteOutcome::Accepted);
        }
        match f.try_write(0, tok(3), TimeNs::ZERO) {
            WriteOutcome::Blocked(t) => assert_eq!(t.seq, 3, "token handed back intact"),
            other => panic!("expected blocked write, got {other:?}"),
        }
        for s in 0..3 {
            match f.try_read(0, TimeNs::ZERO) {
                ReadOutcome::Token(t) => assert_eq!(t.seq, s),
                ReadOutcome::Blocked => panic!("expected token {s}"),
            }
        }
        assert_eq!(f.try_read(0, TimeNs::ZERO), ReadOutcome::Blocked);
    }

    #[test]
    fn fifo_tracks_max_fill() {
        let mut f = Fifo::new("f", 5);
        f.try_write(0, tok(0), TimeNs::ZERO);
        f.try_write(0, tok(1), TimeNs::ZERO);
        f.try_read(0, TimeNs::ZERO);
        f.try_write(0, tok(2), TimeNs::ZERO);
        assert_eq!(f.fill(0), 2);
        assert_eq!(f.max_fill(0), 2);
        assert_eq!(f.writes(), 3);
        assert_eq!(f.reads(), 1);
    }

    #[test]
    fn initial_tokens_count_toward_fill() {
        let f = Fifo::with_initial_tokens("f", 4, 2);
        assert_eq!(f.fill(0), 2);
        assert_eq!(f.max_fill(0), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Fifo::new("f", 0);
    }

    #[test]
    #[should_panic(expected = "initial fill exceeds capacity")]
    fn overfull_initial_rejected() {
        let _ = Fifo::with_initial_tokens("f", 2, 3);
    }

    #[test]
    fn unbounded_never_blocks_writes() {
        let mut f = UnboundedFifo::new("u");
        for s in 0..10_000u64 {
            assert_eq!(f.try_write(0, tok(s), TimeNs::ZERO), WriteOutcome::Accepted);
        }
        assert_eq!(f.fill(0), 10_000);
        assert_eq!(f.capacity(0), usize::MAX);
    }

    #[test]
    fn downcast_through_as_any() {
        let mut f: Box<dyn ChannelBehavior> = Box::new(Fifo::new("f", 2));
        f.try_write(0, tok(0), TimeNs::ZERO);
        let concrete = f.as_any().downcast_ref::<Fifo>().expect("is a Fifo");
        assert_eq!(concrete.name(), "f");
    }
}
