//! Scatter/ordered-gather driver for independent seeded runs.
//!
//! Every campaign in the workspace — the Table 2 fault campaigns, the
//! Table 3 distance-function comparison, the chaos sweeps — is a set of
//! *independent, seeded, deterministic* simulations. This module scatters
//! those runs across OS threads and gathers the results **in input-index
//! order**, so any reduction the caller performs over the gathered vector
//! is exactly the reduction the old sequential loop performed.
//!
//! # Determinism argument
//!
//! Each run owns all of its mutable state (engine, network, per-run
//! metrics registry); the only sharing is the closure's immutable
//! environment. Threads race over *which* run executes *when*, but never
//! over a run's inputs or outputs. [`parallel_map_ordered`] writes result
//! `i` into slot `i` and hands back `Vec<R>` indexed like the input, so
//! folds over it (report rows, `MetricsRegistry::absorb`,
//! `Histogram::merge_from`) see results in the same order — and therefore
//! produce the same bytes — as `workers = 1`, which runs inline on the
//! calling thread with no threads spawned at all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count for campaign execution.
///
/// Reads `RTFT_CAMPAIGN_WORKERS` (minimum 1); when unset or unparsable,
/// defaults to [`std::thread::available_parallelism`]. Set
/// `RTFT_CAMPAIGN_WORKERS=1` to force the sequential inline path.
pub fn campaign_workers() -> usize {
    if let Ok(raw) = std::env::var("RTFT_CAMPAIGN_WORKERS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(index, item)` for every item, at most `workers` at a time, and
/// returns the results in input-index order.
///
/// `workers <= 1` (or a single item) executes inline on the calling thread
/// — byte-for-byte the sequential baseline, no threads spawned. Larger
/// worker counts scatter over scoped threads pulling indices from a shared
/// atomic counter (work-stealing by index), then gather into a slot vector
/// so position `i` of the output always corresponds to item `i`. A panic
/// in any run propagates to the caller once the scope joins.
pub fn parallel_map_ordered<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each index is claimed exactly once");
                let out = f(i, item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("every slot is filled before the scope joins")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for workers in [1, 2, 4, 8] {
            let out = parallel_map_ordered(items.clone(), workers, |i, v| {
                assert_eq!(i as u64, v);
                v * 3 + 1
            });
            let expect: Vec<u64> = items.iter().map(|v| v * 3 + 1).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map_ordered(empty, 4, |_, v: u64| v).is_empty());
        assert_eq!(parallel_map_ordered(vec![9u64], 4, |_, v| v + 1), vec![10]);
    }

    #[test]
    fn workers_env_override_wins() {
        // Serialized via the env var name being unique to this test.
        std::env::set_var("RTFT_CAMPAIGN_WORKERS", "3");
        assert_eq!(campaign_workers(), 3);
        std::env::set_var("RTFT_CAMPAIGN_WORKERS", "0");
        assert_eq!(campaign_workers(), 1, "clamped to at least one");
        std::env::remove_var("RTFT_CAMPAIGN_WORKERS");
        assert!(campaign_workers() >= 1);
    }
}
