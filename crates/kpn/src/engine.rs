//! The deterministic discrete-event simulation engine.
//!
//! Executes a [`Network`] under virtual time with exact Kahn semantics:
//! blocking reads on empty channels, blocking writes per the channel's own
//! admission rule, and deterministic tie-breaking (equal-time events run in
//! schedule order). Determinism is what lets the experiment harness re-run
//! the paper's 20-trial campaigns reproducibly with seeded jitter.
//!
//! # Execution model
//!
//! Each process is driven through its [`Syscall`] protocol:
//!
//! * `Compute(d)` — schedule a wakeup at `now + d` (scaled by the
//!   platform's [`Platform::compute_scale`]).
//! * `Read(port)` — attempt immediately; on `Blocked`, park the process on
//!   the channel's read wait-list.
//! * `Write(port, token)` — charge the platform's transfer latency to the
//!   writer, then attempt; on `Blocked`, park on the write wait-list.
//! * `Halt` — retire the process.
//!
//! After every successful channel operation the engine wakes all parked
//! processes of that channel (they re-attempt and may re-park) — simple,
//! and with the paper's process counts (≤ a few dozen) far from being a
//! bottleneck.

use crate::calendar::{EventQueue, Popped, QueueKind, QueuedEvent, WakeKind};
use crate::channel::{ChannelBehavior as _, ChannelId, ReadOutcome, WriteOutcome};
use crate::network::Network;
use crate::platform::{IdealPlatform, Platform};
use crate::process::Process as _;
use crate::process::{NodeId, Syscall, Wakeup};
use crate::trace::{Trace, TraceEvent};
use rtft_obs::{Counter, Gauge, MetricsRegistry};
use rtft_rtc::TimeNs;

/// Pre-resolved metric handles for the engine's hot loop.
///
/// Resolved once in [`Engine::with_metrics`]. The loop itself never
/// touches these: it bumps the plain-integer [`ObsTally`] shadow and the
/// engine flushes the tally into the atomics when `run_until` returns.
/// (Each engine owns its registry in practice — fleet workers build one
/// per engine — so a concurrent reader only ever loses the tail of the
/// slice currently executing, never committed counts.)
#[derive(Debug, Clone)]
struct EngineObs {
    events: Counter,
    tokens_written: Counter,
    tokens_read: Counter,
    tokens_dropped: Counter,
    read_blocked: Counter,
    write_blocked: Counter,
    halts: Counter,
    /// Occupancy gauge per channel (value = fill after the last op on the
    /// touched interface; `max` = high-water mark).
    channel_fill: Vec<Gauge>,
}

/// Plain-integer shadow of [`EngineObs`], accumulated on the hot path
/// (one predictable branch + an increment per touch, no atomic RMW) and
/// flushed into the shared counters at every `run_until` exit.
#[derive(Debug, Default)]
struct ObsTally {
    events: u64,
    tokens_written: u64,
    tokens_read: u64,
    tokens_dropped: u64,
    read_blocked: u64,
    write_blocked: u64,
    halts: u64,
    /// Per-channel (last fill, high-water, touched-this-slice).
    fill: Vec<(u64, u64, bool)>,
}

impl ObsTally {
    fn new(channels: usize) -> Self {
        ObsTally {
            fill: vec![(0, 0, false); channels],
            ..ObsTally::default()
        }
    }

    #[inline]
    fn record_fill(&mut self, channel: usize, fill: u64) {
        let slot = &mut self.fill[channel];
        slot.0 = fill;
        slot.1 = slot.1.max(fill);
        slot.2 = true;
    }
}

impl EngineObs {
    fn new(registry: &MetricsRegistry, network: &Network) -> Self {
        let channel_fill = (0..network.channel_count())
            .map(|i| {
                let name = network.channel_name(ChannelId(i));
                registry.gauge_named(format!("kpn.channel.{name}.fill"))
            })
            .collect();
        EngineObs {
            events: registry.counter("kpn.engine.events"),
            tokens_written: registry.counter("kpn.tokens.written"),
            tokens_read: registry.counter("kpn.tokens.read"),
            tokens_dropped: registry.counter("kpn.tokens.dropped"),
            read_blocked: registry.counter("kpn.blocked.reads"),
            write_blocked: registry.counter("kpn.blocked.writes"),
            halts: registry.counter("kpn.halts"),
            channel_fill,
        }
    }
}

/// Why a simulation run returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Virtual time reached the requested limit with work still pending.
    TimeLimit,
    /// Every process halted.
    Completed {
        /// Virtual time of the last event.
        at: TimeNs,
    },
    /// No events are scheduled but some processes remain parked on
    /// channels: no further progress is possible. This covers both true
    /// deadlock (the §1.1 motivational example produces exactly this) and
    /// benign input starvation (an infinite pipeline stage whose finite
    /// source has halted).
    Quiescent {
        /// Virtual time at which progress stopped.
        at: TimeNs,
        /// The parked processes.
        blocked: Vec<NodeId>,
    },
    /// The event budget was exhausted (zero-delay livelock guard).
    EventBudgetExhausted {
        /// Virtual time at which the budget ran out.
        at: TimeNs,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Waiting for a scheduled wakeup (start, compute, or attempt).
    Scheduled,
    /// Parked on a channel wait list.
    Parked,
    /// Finished.
    Halted,
}

/// The discrete-event simulator.
///
/// # Examples
///
/// ```
/// use rtft_kpn::{Engine, Fifo, Network, Payload, PjdSink, PjdSource, PortId, RunOutcome};
/// use rtft_rtc::{PjdModel, TimeNs};
///
/// let mut net = Network::new();
/// let link = net.add_channel(Fifo::new("link", 2));
/// let model = PjdModel::periodic(TimeNs::from_ms(10));
/// net.add_process(PjdSource::new("src", PortId::of(link), model, 0, Some(5), Payload::U64));
/// let sink = net.add_process(PjdSink::new("sink", PortId::of(link), model, 1, Some(5)));
///
/// let mut engine = Engine::new(net);
/// let outcome = engine.run_until(TimeNs::from_secs(1));
/// assert!(matches!(outcome, RunOutcome::Completed { .. }));
/// let sink = engine.network().process_as::<PjdSink>(sink).expect("sink");
/// assert_eq!(sink.arrivals().len(), 5);
/// ```
#[derive(Debug)]
pub struct Engine {
    network: Network,
    platform: Box<dyn Platform>,
    /// Per-node [`Platform::compute_scale`], cached at construction so the
    /// Compute path never makes the dyn call.
    compute_scales: Vec<f64>,
    /// Cached [`Platform::zero_transfer`]: skips the per-write latency
    /// query on zero-latency platforms.
    zero_transfer: bool,
    now: TimeNs,
    queue: EventQueue,
    seq: u64,
    states: Vec<ProcState>,
    /// Pending syscall per process (the one being attempted/parked).
    pending: Vec<Option<Syscall>>,
    /// Whether the transfer latency for the pending write was already paid.
    transfer_paid: Vec<bool>,
    /// Per-channel wait lists.
    read_waiters: Vec<Vec<NodeId>>,
    write_waiters: Vec<Vec<NodeId>>,
    trace: Trace,
    obs: Option<EngineObs>,
    /// Mirrors `obs.is_some()`: one bool load on the hot path instead of
    /// an `Option` discriminant.
    metrics_on: bool,
    tally: ObsTally,
    event_budget: u64,
    started: bool,
}

impl Engine {
    /// Creates an engine over `network` with the zero-latency
    /// [`IdealPlatform`].
    ///
    /// # Panics
    ///
    /// Panics if the network fails validation.
    pub fn new(network: Network) -> Self {
        Engine::with_platform(network, Box::new(IdealPlatform))
    }

    /// Creates an engine with an explicit platform model.
    ///
    /// # Panics
    ///
    /// Panics if the network fails validation.
    pub fn with_platform(network: Network, platform: Box<dyn Platform>) -> Self {
        if let Err(e) = network.validate() {
            panic!("invalid network: {e}");
        }
        let n_proc = network.process_count();
        let n_chan = network.channel_count();
        let compute_scales = (0..n_proc)
            .map(|i| platform.compute_scale(NodeId(i)))
            .collect();
        let zero_transfer = platform.zero_transfer();
        Engine {
            network,
            platform,
            compute_scales,
            zero_transfer,
            now: TimeNs::ZERO,
            // Pre-sized so the steady-state event mix (one wake per process
            // plus channel-waiter retries) never reallocates mid-run.
            queue: EventQueue::new(crate::calendar::default_queue(), (n_proc * 4).max(64)),
            seq: 0,
            states: vec![ProcState::Scheduled; n_proc],
            pending: (0..n_proc).map(|_| None).collect(),
            transfer_paid: vec![false; n_proc],
            read_waiters: vec![Vec::new(); n_chan],
            write_waiters: vec![Vec::new(); n_chan],
            trace: Trace::disabled(),
            obs: None,
            metrics_on: false,
            tally: ObsTally::new(n_chan),
            event_budget: u64::MAX,
            started: false,
        }
    }

    /// Enables event tracing (disabled by default; tracing a long run can
    /// allocate heavily).
    pub fn with_trace(mut self) -> Self {
        self.trace = Trace::enabled();
        self
    }

    /// Caps the total number of processed events — a guard against
    /// zero-delay livelock in experimental process implementations.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Selects the event-queue implementation (default: the process-wide
    /// [`crate::default_queue`], normally the calendar queue). Both
    /// produce identical event orders; the heap exists for differential
    /// testing. Must be called before the first `run_until`.
    pub fn with_queue(mut self, kind: QueueKind) -> Self {
        assert!(!self.started, "queue selected after the run started");
        self.queue = EventQueue::new(kind, 64);
        self
    }

    /// Which event-queue implementation this engine runs on.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Number of scheduled events not yet delivered (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Attaches metrics: engine step/token/block counters plus one
    /// occupancy gauge per channel (named
    /// `kpn.channel.<name>.fill`), all registered in `registry`. Handles
    /// are resolved here, once; the step loop itself never locks.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.obs = Some(EngineObs::new(registry, &self.network));
        self.metrics_on = true;
        self
    }

    /// Whether metric recording is attached.
    pub fn metrics_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Current virtual time.
    pub fn now(&self) -> TimeNs {
        self.now
    }

    /// The executed network (inspect channels/processes after a run).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the network (e.g. to trigger a fault latch by
    /// hand in tests).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The recorded trace (empty unless [`Engine::with_trace`] was used).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the engine, returning the network.
    pub fn into_network(self) -> Network {
        self.network
    }

    #[inline]
    fn schedule(&mut self, at: TimeNs, node: NodeId, wake: WakeKind) {
        // No `states` write: a process is Parked or Halted only while its
        // last drive ended that way, and both sites store the state
        // themselves. Termination (the only reader of `states` besides
        // the halted-skip) is unreachable while this event is queued.
        self.seq += 1;
        self.queue.push(
            self.now,
            QueuedEvent {
                at,
                seq: self.seq,
                node,
                wake,
            },
        );
    }

    fn wake_channel_waiters(&mut self, channel: ChannelId) {
        // Indexed loops instead of `mem::take`: taking the Vec dropped its
        // allocation and the next park re-allocated it — a malloc/free
        // pair per blocked token on the hot path. `clear()` keeps the
        // capacity. Safe because `schedule` never touches the wait lists.
        let readers = self.read_waiters[channel.0].len();
        for i in 0..readers {
            let node = self.read_waiters[channel.0][i];
            self.schedule(self.now, node, WakeKind::Attempt);
        }
        if readers > 0 {
            self.read_waiters[channel.0].clear();
        }
        let writers = self.write_waiters[channel.0].len();
        for i in 0..writers {
            let node = self.write_waiters[channel.0][i];
            self.schedule(self.now, node, WakeKind::Attempt);
        }
        if writers > 0 {
            self.write_waiters[channel.0].clear();
        }
    }

    /// Dispatches the process's next syscall, parking or scheduling as
    /// required. `wake` is what the process is resumed with; `None` means
    /// re-attempt the stored pending syscall without resuming. Iterative:
    /// a chain of successful zero-time operations loops rather than
    /// recursing, so a process draining a deep queue cannot overflow the
    /// stack.
    fn drive(&mut self, node: NodeId, mut wake: Option<Wakeup>) {
        loop {
            let syscall = match wake.take() {
                Some(w) => {
                    let (_, procs) = self.network.parts_mut();
                    let s = procs[node.0].process.resume(w, self.now);
                    if !self.zero_transfer {
                        self.transfer_paid[node.0] = false;
                    }
                    s
                }
                None => self.pending[node.0]
                    .take()
                    .expect("parked process has a pending syscall"),
            };

            match syscall {
                Syscall::Halt => {
                    self.states[node.0] = ProcState::Halted;
                    self.pending[node.0] = None;
                    self.trace.push(self.now, TraceEvent::Halted { node });
                    if self.metrics_on {
                        self.tally.halts += 1;
                    }
                    return;
                }
                Syscall::Compute(d) => {
                    let scale = self.compute_scales[node.0];
                    let scaled = if scale == 1.0 {
                        d
                    } else {
                        TimeNs::from_ns((d.as_ns() as f64 * scale).round() as u64)
                    };
                    self.pending[node.0] = None;
                    self.schedule(self.now + scaled, node, WakeKind::ComputeDone);
                    return;
                }
                Syscall::Read(port) => {
                    let outcome = self
                        .network
                        .chan_body_mut(port.channel)
                        .try_read(port.iface, self.now);
                    match outcome {
                        ReadOutcome::Token(token) => {
                            self.trace.push(
                                self.now,
                                TraceEvent::TokenRead {
                                    node,
                                    port,
                                    seq: token.seq,
                                },
                            );
                            if self.metrics_on {
                                self.tally.tokens_read += 1;
                                let fill = self.network.channel(port.channel).fill(port.iface);
                                self.tally.record_fill(port.channel.0, fill as u64);
                            }
                            self.pending[node.0] = None;
                            self.wake_channel_waiters(port.channel);
                            wake = Some(Wakeup::ReadDone(token));
                        }
                        ReadOutcome::Blocked => {
                            self.trace
                                .push(self.now, TraceEvent::ReadBlocked { node, port });
                            if self.metrics_on {
                                self.tally.read_blocked += 1;
                            }
                            self.pending[node.0] = Some(Syscall::Read(port));
                            self.states[node.0] = ProcState::Parked;
                            self.read_waiters[port.channel.0].push(node);
                            return;
                        }
                    }
                }
                Syscall::Write(port, token) => {
                    // Charge the transfer latency once per write, before
                    // admission.
                    if !self.zero_transfer && !self.transfer_paid[node.0] {
                        let latency =
                            self.platform
                                .transfer_latency(node, port.channel, token.payload.len());
                        self.transfer_paid[node.0] = true;
                        if latency > TimeNs::ZERO {
                            self.pending[node.0] = Some(Syscall::Write(port, token));
                            self.schedule(self.now + latency, node, WakeKind::Attempt);
                            return;
                        }
                    }
                    // Capture what the bookkeeping needs, then *move* the
                    // token into the channel: the accepted path never
                    // clones a payload (a blocked write hands it back).
                    let seq = token.seq;
                    let outcome = self
                        .network
                        .chan_body_mut(port.channel)
                        .try_write(port.iface, token, self.now);
                    match outcome {
                        WriteOutcome::Accepted | WriteOutcome::AcceptedDropped => {
                            let was_dropped = outcome == WriteOutcome::AcceptedDropped;
                            self.trace.push(
                                self.now,
                                TraceEvent::TokenWritten {
                                    node,
                                    port,
                                    seq,
                                    dropped: was_dropped,
                                },
                            );
                            if self.metrics_on {
                                self.tally.tokens_written += 1;
                                self.tally.tokens_dropped += u64::from(was_dropped);
                                let fill = self.network.channel(port.channel).fill(0);
                                self.tally.record_fill(port.channel.0, fill as u64);
                            }
                            self.pending[node.0] = None;
                            self.wake_channel_waiters(port.channel);
                            wake = Some(Wakeup::WriteDone);
                        }
                        WriteOutcome::Blocked(token) => {
                            self.trace
                                .push(self.now, TraceEvent::WriteBlocked { node, port });
                            if self.metrics_on {
                                self.tally.write_blocked += 1;
                            }
                            self.pending[node.0] = Some(Syscall::Write(port, token));
                            self.states[node.0] = ProcState::Parked;
                            self.write_waiters[port.channel.0].push(node);
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Runs until virtual time `limit`, all processes halt, or the network
    /// goes quiescent (deadlock / starvation).
    pub fn run_until(&mut self, limit: TimeNs) -> RunOutcome {
        let outcome = self.run_loop(limit);
        self.flush_tally();
        outcome
    }

    /// Publishes the slice's [`ObsTally`] into the shared metric handles.
    fn flush_tally(&mut self) {
        let Some(obs) = &self.obs else { return };
        let t = &mut self.tally;
        obs.events.add(t.events);
        obs.tokens_written.add(t.tokens_written);
        obs.tokens_read.add(t.tokens_read);
        obs.tokens_dropped.add(t.tokens_dropped);
        obs.read_blocked.add(t.read_blocked);
        obs.write_blocked.add(t.write_blocked);
        obs.halts.add(t.halts);
        t.events = 0;
        t.tokens_written = 0;
        t.tokens_read = 0;
        t.tokens_dropped = 0;
        t.read_blocked = 0;
        t.write_blocked = 0;
        t.halts = 0;
        for (i, (cur, max, touched)) in t.fill.iter_mut().enumerate() {
            if *touched {
                // First set raises the high-water mark, second restores
                // the live value (Gauge::set folds both into `max`).
                obs.channel_fill[i].set(*max);
                obs.channel_fill[i].set(*cur);
                *max = *cur;
                *touched = false;
            }
        }
    }

    fn run_loop(&mut self, limit: TimeNs) -> RunOutcome {
        if !self.started {
            self.started = true;
            for i in 0..self.network.process_count() {
                self.schedule(TimeNs::ZERO, NodeId(i), WakeKind::Start);
            }
        }

        // Local accumulators keep the per-event bookkeeping in registers;
        // they are folded back into the engine on every exit path.
        let mut events = 0u64;
        let mut budget = self.event_budget;
        let outcome = loop {
            if budget == 0 {
                // Rare path: peek without popping so the time-limit check
                // keeps priority over budget exhaustion.
                break match self.queue.next_at(self.now) {
                    None => self.termination_outcome(),
                    Some(at) if at > limit => {
                        self.now = limit;
                        RunOutcome::TimeLimit
                    }
                    Some(_) => RunOutcome::EventBudgetExhausted { at: self.now },
                };
            }
            match self.queue.pop_due(self.now, limit) {
                Popped::Empty => break self.termination_outcome(),
                Popped::NotDue => {
                    self.now = limit;
                    break RunOutcome::TimeLimit;
                }
                Popped::Event { at, node, wake } => {
                    budget -= 1;
                    events += 1;
                    self.now = at;
                    if self.states[node.0] == ProcState::Halted {
                        continue;
                    }
                    // Resolve the wakeup first so `drive` has a single call
                    // site — it is a large function, and duplicating it per
                    // match arm costs inlining budget and icache.
                    let wakeup = match wake {
                        WakeKind::Start => Some(Wakeup::Start),
                        WakeKind::ComputeDone => Some(Wakeup::ComputeDone),
                        WakeKind::Attempt => {
                            if self.pending[node.0].is_none() {
                                // Spurious wake: the process already
                                // re-attempted (and succeeded) under an
                                // earlier wake at this timestamp.
                                continue;
                            }
                            None
                        }
                    };
                    self.drive(node, wakeup);
                }
            }
        };
        if self.metrics_on {
            self.tally.events += events;
        }
        outcome
    }

    /// Outcome when no events remain: finished or deadlocked.
    fn termination_outcome(&self) -> RunOutcome {
        let blocked: Vec<NodeId> = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ProcState::Parked)
            .map(|(i, _)| NodeId(i))
            .collect();
        if blocked.is_empty() {
            RunOutcome::Completed { at: self.now }
        } else {
            RunOutcome::Quiescent {
                at: self.now,
                blocked,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Fifo, PortId};
    use crate::platform::UniformBusPlatform;
    use crate::process::{Collector, PjdSink, PjdSource, Transform};
    use crate::token::Payload;
    use rtft_rtc::PjdModel;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_ms(v)
    }

    #[test]
    fn pipeline_delivers_all_tokens_in_order() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 2));
        let b = net.add_channel(Fifo::new("b", 2));
        let model = PjdModel::periodic(ms(10));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            model,
            0,
            Some(20),
            Payload::U64,
        ));
        net.add_process(Transform::new(
            "inc",
            PortId::of(a),
            PortId::of(b),
            TimeNs::from_us(100),
            TimeNs::ZERO,
            0,
            |p| Payload::U64(p.as_u64().unwrap() + 1),
        ));
        let col = net.add_process(Collector::new("col", PortId::of(b), Some(20)));

        let mut engine = Engine::new(net);
        // The transform stage never halts; once the finite source drains the
        // network goes quiescent with exactly that stage starved.
        let outcome = engine.run_until(TimeNs::from_secs(10));
        assert!(
            matches!(outcome, RunOutcome::Quiescent { ref blocked, .. } if blocked.len() == 1),
            "{outcome:?}"
        );
        let col = engine.network().process_as::<Collector>(col).unwrap();
        let values: Vec<u64> = col
            .tokens()
            .iter()
            .map(|t| t.payload.as_u64().unwrap())
            .collect();
        assert_eq!(values, (1..=20).collect::<Vec<_>>());
    }

    #[test]
    fn source_timing_is_periodic() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 64));
        let model = PjdModel::periodic(ms(10));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            model,
            0,
            Some(5),
            Payload::U64,
        ));
        let col = net.add_process(Collector::new("col", PortId::of(a), Some(5)));
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(1));
        let col = engine.network().process_as::<Collector>(col).unwrap();
        let times: Vec<TimeNs> = col.tokens().iter().map(|t| t.produced_at).collect();
        assert_eq!(times, vec![ms(0), ms(10), ms(20), ms(30), ms(40)]);
    }

    #[test]
    fn accepted_write_preserves_payload_buffer_identity() {
        // The write hot path must move the token into the channel, not
        // clone it: the same `Arc<[u8]>` allocation travels source →
        // channel → collector, and the refcount stays at exactly the three
        // live handles (test local, generator capture, collected token).
        use crate::token::Bytes;
        let data = Bytes::from(vec![7u8; 4096]);
        let ptr = data.as_ptr();
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 2));
        let model = PjdModel::periodic(ms(10));
        let captured = data;
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            model,
            0,
            Some(1),
            move |_| Payload::Bytes(captured.clone()),
        ));
        let col = net.add_process(Collector::new("col", PortId::of(a), Some(1)));
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(1));
        let col = engine.network().process_as::<Collector>(col).unwrap();
        let received = col.tokens()[0]
            .payload
            .as_bytes()
            .expect("bytes payload survives the pipeline");
        assert_eq!(received.as_ptr(), ptr, "same allocation end-to-end");
        assert_eq!(
            Bytes::strong_count(received),
            2,
            "no hidden clone on the accepted-write path"
        );
    }

    #[test]
    fn backpressure_blocks_producer() {
        // Fast producer into capacity-1 FIFO, slow consumer: the producer's
        // emissions are throttled to the consumer's pace.
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 1));
        let fast = PjdModel::periodic(ms(1));
        let slow = PjdModel::periodic(ms(10));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            fast,
            0,
            Some(10),
            Payload::U64,
        ));
        let sink = net.add_process(PjdSink::new("sink", PortId::of(a), slow, 0, Some(10)));
        let mut engine = Engine::new(net);
        let outcome = engine.run_until(TimeNs::from_secs(10));
        assert!(matches!(outcome, RunOutcome::Completed { .. }));
        let sink = engine.network().process_as::<PjdSink>(sink).unwrap();
        // Reads complete at the sink's pace, not the producer's.
        let inter = sink.inter_arrivals();
        assert!(inter.iter().all(|d| *d == ms(10)), "{inter:?}");
    }

    #[test]
    fn empty_channel_blocks_consumer_until_data() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 4));
        let late = PjdModel::new(ms(10), TimeNs::ZERO, ms(50)); // first token at 50ms
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            late,
            0,
            Some(1),
            Payload::U64,
        ));
        let col = net.add_process(Collector::new("col", PortId::of(a), Some(1)));
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(1));
        let col = engine.network().process_as::<Collector>(col).unwrap();
        assert_eq!(col.tokens()[0].produced_at, ms(50));
    }

    #[test]
    fn deadlock_is_detected() {
        // Two collectors waiting on channels nobody writes.
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 1));
        let b = net.add_channel(Fifo::new("b", 1));
        net.add_process(Collector::new("c1", PortId::of(a), None));
        net.add_process(Collector::new("c2", PortId::of(b), None));
        let mut engine = Engine::new(net);
        match engine.run_until(TimeNs::from_secs(1)) {
            RunOutcome::Quiescent { blocked, .. } => {
                assert_eq!(blocked.len(), 2);
            }
            other => panic!("expected quiescence, got {other:?}"),
        }
    }

    #[test]
    fn time_limit_pauses_and_resumes() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 64));
        let model = PjdModel::periodic(ms(10));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            model,
            0,
            Some(100),
            Payload::U64,
        ));
        let col = net.add_process(Collector::new("col", PortId::of(a), Some(100)));
        let mut engine = Engine::new(net);
        assert_eq!(engine.run_until(ms(45)), RunOutcome::TimeLimit);
        {
            let col_ref = engine.network().process_as::<Collector>(col).unwrap();
            assert_eq!(col_ref.tokens().len(), 5); // t = 0,10,20,30,40
        }
        assert!(matches!(
            engine.run_until(TimeNs::from_secs(10)),
            RunOutcome::Completed { .. }
        ));
        let col_ref = engine.network().process_as::<Collector>(col).unwrap();
        assert_eq!(col_ref.tokens().len(), 100);
    }

    #[test]
    fn transfer_latency_delays_delivery() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 4));
        let model = PjdModel::periodic(ms(10));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            model,
            0,
            Some(1),
            |_| Payload::from(vec![0u8; 1000]),
        ));
        let col = net.add_process(Collector::new("col", PortId::of(a), Some(1)));
        // 1 ms per message + 1 ns/B → 1000 B costs 1 µs, total 1.001 ms.
        let platform = UniformBusPlatform {
            per_message: ms(1),
            per_byte_ps: 1000,
        };
        let mut engine = Engine::with_platform(net, Box::new(platform));
        let outcome = engine.run_until(TimeNs::from_secs(1));
        assert!(matches!(outcome, RunOutcome::Completed { .. }));
        let _ = engine.network().process_as::<Collector>(col).unwrap();
        // The collector read blocked until the transfer completed at
        // 1.001 ms; engine time advanced at least that far.
        assert!(engine.now() >= ms(1));
    }

    #[test]
    fn event_budget_guards_livelock() {
        /// A process that spins on zero-length computes forever.
        struct Spinner;
        impl crate::process::Process for Spinner {
            fn name(&self) -> &str {
                "spinner"
            }
            fn resume(&mut self, _w: Wakeup, _now: TimeNs) -> Syscall {
                Syscall::Compute(TimeNs::ZERO)
            }
        }
        let mut net = Network::new();
        net.add_channel(Fifo::new("unused", 1));
        net.add_process(Spinner);
        let mut engine = Engine::new(net).with_event_budget(1000);
        assert!(matches!(
            engine.run_until(TimeNs::from_secs(1)),
            RunOutcome::EventBudgetExhausted { .. }
        ));
    }

    #[test]
    fn trace_records_token_flow() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 4));
        let model = PjdModel::periodic(ms(10));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            model,
            0,
            Some(3),
            Payload::U64,
        ));
        net.add_process(Collector::new("col", PortId::of(a), Some(3)));
        let mut engine = Engine::new(net).with_trace();
        engine.run_until(TimeNs::from_secs(1));
        let writes = engine
            .trace()
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::TokenWritten { .. }))
            .count();
        assert_eq!(writes, 3);
    }

    #[test]
    fn metrics_count_token_flow_and_fill_watermark() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 4));
        let model = PjdModel::periodic(ms(10));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            model,
            0,
            Some(5),
            Payload::U64,
        ));
        net.add_process(PjdSink::new("sink", PortId::of(a), model, 0, Some(5)));
        let registry = rtft_obs::MetricsRegistry::new();
        let mut engine = Engine::new(net).with_metrics(&registry);
        assert!(engine.metrics_enabled());
        engine.run_until(TimeNs::from_secs(1));
        assert_eq!(registry.counter("kpn.tokens.written").get(), 5);
        assert_eq!(registry.counter("kpn.tokens.read").get(), 5);
        assert_eq!(registry.counter("kpn.halts").get(), 2);
        let events = registry.counter("kpn.engine.events").get();
        assert!(events >= 10, "engine processed only {events} events");
        let fills = registry.gauge_values();
        let (name, cur, max) = &fills[0];
        assert_eq!(name, "kpn.channel.a.fill");
        assert_eq!(*cur, 0, "drained at end");
        assert!(*max >= 1, "at least one token was queued");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let build = || {
            let mut net = Network::new();
            let a = net.add_channel(Fifo::new("a", 4));
            let model = PjdModel::from_ms(10.0, 3.0, 0.0);
            net.add_process(PjdSource::new(
                "src",
                PortId::of(a),
                model,
                7,
                Some(50),
                Payload::U64,
            ));
            let sink = net.add_process(PjdSink::new("sink", PortId::of(a), model, 8, Some(50)));
            (net, sink)
        };
        let run = || {
            let (net, sink) = build();
            let mut e = Engine::new(net);
            e.run_until(TimeNs::from_secs(10));
            e.network()
                .process_as::<PjdSink>(sink)
                .unwrap()
                .arrivals()
                .to_vec()
        };
        assert_eq!(run(), run());
    }
}
