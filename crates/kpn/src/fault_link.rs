//! Link-level fault injection: a lossy, laggy, duplicating channel.
//!
//! [`FaultyProcess`](../../rtft_core/struct.FaultyProcess.html) injects
//! faults *at* a process; real systems also lose, delay and duplicate
//! messages *between* processes — in the interconnect. [`FaultyLink`] is a
//! bounded FIFO whose writes pass through a seeded per-token fault draw
//! (drop / duplicate / delay), so a chaos campaign can perturb the channel
//! layer below everything the detectors model.
//!
//! # Semantics
//!
//! * **Drop** — the write completes ([`WriteOutcome::AcceptedDropped`]) but
//!   the token vanishes.
//! * **Duplicate** — the token is enqueued twice (the second copy only if
//!   capacity allows).
//! * **Delay** — the token is *staged* with a release time drawn uniformly
//!   from `[0, max_delay]`; it becomes readable only once `now` reaches the
//!   release time. The link preserves FIFO order: a delayed token holds
//!   back everything written after it (head-of-line blocking, as on a real
//!   ordered link).
//!
//! # Liveness caveat
//!
//! Channels are passive: staged tokens are released by the *next operation
//! on the link*, because only processes advance time. A token delayed at
//! the very tail of a finite stream therefore stays staged until some later
//! write or read attempt touches the channel. Harnesses that use delay
//! faults should either keep the producer running past the consumer's
//! expected count or treat missing tail tokens as an (honest, reportable)
//! consequence of the injected fault.

use crate::channel::{ChannelBehavior, ReadOutcome, WriteOutcome};
use crate::rng::SplitMix64;
use crate::token::Token;
use rtft_rtc::TimeNs;
use std::any::Any;
use std::collections::VecDeque;

/// What a [`FaultyLink`] does to each token, and when it starts doing it.
///
/// Probabilities are evaluated in the fixed order drop → duplicate → delay
/// with one RNG draw each, so a plan's effect on a given token stream is a
/// pure function of the seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaultPlan {
    /// Seed of the per-link fault RNG.
    pub seed: u64,
    /// Probability a written token is silently dropped.
    pub drop_p: f64,
    /// Probability a written token is duplicated.
    pub duplicate_p: f64,
    /// Probability a written token is delayed.
    pub delay_p: f64,
    /// Upper bound of the uniform extra delay.
    pub max_delay: TimeNs,
    /// Faults are injected only at/after this time (before it the link is
    /// a plain FIFO).
    pub active_from: TimeNs,
}

impl LinkFaultPlan {
    /// A plan that injects nothing (all probabilities zero).
    pub fn benign(seed: u64) -> Self {
        LinkFaultPlan {
            seed,
            drop_p: 0.0,
            duplicate_p: 0.0,
            delay_p: 0.0,
            max_delay: TimeNs::ZERO,
            active_from: TimeNs::ZERO,
        }
    }

    /// Sets the drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_drop(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability in [0, 1]");
        self.drop_p = p;
        self
    }

    /// Sets the duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability in [0, 1]");
        self.duplicate_p = p;
        self
    }

    /// Sets the delay probability and bound.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_delay(mut self, p: f64, max_delay: TimeNs) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability in [0, 1]");
        self.delay_p = p;
        self.max_delay = max_delay;
        self
    }

    /// Sets the activation time.
    pub fn from_time(mut self, at: TimeNs) -> Self {
        self.active_from = at;
        self
    }
}

/// A bounded FIFO that injects seeded per-token link faults on writes.
#[derive(Debug)]
pub struct FaultyLink {
    name: String,
    /// Tokens ready for the reader.
    ready: VecDeque<Token>,
    /// Tokens in transit: `(release_time, token)`, FIFO.
    staged: VecDeque<(TimeNs, Token)>,
    capacity: usize,
    max_fill: usize,
    plan: LinkFaultPlan,
    rng: SplitMix64,
    writes: u64,
    reads: u64,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
}

impl FaultyLink {
    /// Creates a faulty link named `name` with the given capacity and plan.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(name: impl Into<String>, capacity: usize, plan: LinkFaultPlan) -> Self {
        assert!(capacity > 0, "link capacity must be positive");
        FaultyLink {
            name: name.into(),
            ready: VecDeque::new(),
            staged: VecDeque::new(),
            capacity,
            max_fill: 0,
            plan,
            rng: SplitMix64::seed_from_u64(plan.seed),
            writes: 0,
            reads: 0,
            dropped: 0,
            duplicated: 0,
            delayed: 0,
        }
    }

    /// The link's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The plan injected by this link (carries the seed, for report
    /// headers).
    pub fn plan(&self) -> &LinkFaultPlan {
        &self.plan
    }

    /// Tokens dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Tokens duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Tokens delayed so far.
    pub fn delayed(&self) -> u64 {
        self.delayed
    }

    /// Tokens currently staged (written but not yet released).
    pub fn in_transit(&self) -> usize {
        self.staged.len()
    }

    /// Moves released tokens from staging to the ready queue, preserving
    /// FIFO order (a still-delayed token blocks everything behind it).
    fn release(&mut self, now: TimeNs) {
        while let Some((release, _)) = self.staged.front() {
            if *release <= now {
                let (_, tok) = self.staged.pop_front().expect("front exists");
                self.ready.push_back(tok);
            } else {
                break;
            }
        }
    }

    fn occupancy(&self) -> usize {
        self.ready.len() + self.staged.len()
    }
}

impl ChannelBehavior for FaultyLink {
    fn try_write(&mut self, iface: usize, token: Token, now: TimeNs) -> WriteOutcome {
        assert_eq!(iface, 0, "faulty link has a single write interface");
        self.release(now);
        if self.occupancy() >= self.capacity {
            return WriteOutcome::Blocked(token);
        }
        if now < self.plan.active_from {
            self.ready.push_back(token);
            self.writes += 1;
            self.max_fill = self.max_fill.max(self.occupancy());
            return WriteOutcome::Accepted;
        }
        // Fault draws, in fixed order so the stream is seed-deterministic.
        if self.plan.drop_p > 0.0 && self.rng.next_f64() < self.plan.drop_p {
            self.dropped += 1;
            self.writes += 1;
            return WriteOutcome::AcceptedDropped;
        }
        let duplicate = self.plan.duplicate_p > 0.0 && self.rng.next_f64() < self.plan.duplicate_p;
        let release = if self.plan.delay_p > 0.0 && self.rng.next_f64() < self.plan.delay_p {
            self.delayed += 1;
            now + TimeNs::from_ns(self.rng.next_inclusive(self.plan.max_delay.as_ns()))
        } else {
            now
        };
        self.staged.push_back((release, token.clone()));
        if duplicate && self.occupancy() < self.capacity {
            self.duplicated += 1;
            self.staged.push_back((release, token));
        }
        self.writes += 1;
        self.release(now);
        self.max_fill = self.max_fill.max(self.occupancy());
        WriteOutcome::Accepted
    }

    fn try_read(&mut self, iface: usize, now: TimeNs) -> ReadOutcome {
        assert_eq!(iface, 0, "faulty link has a single read interface");
        self.release(now);
        match self.ready.pop_front() {
            Some(t) => {
                self.reads += 1;
                ReadOutcome::Token(t)
            }
            None => ReadOutcome::Blocked,
        }
    }

    fn fill(&self, _iface: usize) -> usize {
        self.occupancy()
    }

    fn capacity(&self, _iface: usize) -> usize {
        self.capacity
    }

    fn max_fill(&self, _iface: usize) -> usize {
        self.max_fill
    }

    fn debug_name(&self) -> Option<&str> {
        Some(&self.name)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Payload;

    fn tok(seq: u64) -> Token {
        Token::new(seq, TimeNs::ZERO, Payload::U64(seq))
    }

    #[test]
    fn benign_link_is_a_fifo() {
        let mut l = FaultyLink::new("l", 4, LinkFaultPlan::benign(1));
        for s in 0..4 {
            assert_eq!(l.try_write(0, tok(s), TimeNs::ZERO), WriteOutcome::Accepted);
        }
        assert!(matches!(
            l.try_write(0, tok(4), TimeNs::ZERO),
            WriteOutcome::Blocked(_)
        ));
        for s in 0..4 {
            match l.try_read(0, TimeNs::ZERO) {
                ReadOutcome::Token(t) => assert_eq!(t.seq, s),
                other => panic!("expected token {s}, got {other:?}"),
            }
        }
        assert_eq!(l.dropped() + l.duplicated() + l.delayed(), 0);
    }

    #[test]
    fn drop_all_loses_every_token() {
        let plan = LinkFaultPlan::benign(7).with_drop(1.0);
        let mut l = FaultyLink::new("l", 4, plan);
        for s in 0..10 {
            assert_eq!(
                l.try_write(0, tok(s), TimeNs::ZERO),
                WriteOutcome::AcceptedDropped
            );
        }
        assert_eq!(l.dropped(), 10);
        assert_eq!(l.try_read(0, TimeNs::ZERO), ReadOutcome::Blocked);
    }

    #[test]
    fn duplicate_all_doubles_the_stream() {
        let plan = LinkFaultPlan::benign(7).with_duplicate(1.0);
        let mut l = FaultyLink::new("l", 8, plan);
        assert_eq!(l.try_write(0, tok(0), TimeNs::ZERO), WriteOutcome::Accepted);
        assert_eq!(l.fill(0), 2);
        assert_eq!(l.duplicated(), 1);
        let mut seqs = Vec::new();
        while let ReadOutcome::Token(t) = l.try_read(0, TimeNs::ZERO) {
            seqs.push(t.seq);
        }
        assert_eq!(seqs, vec![0, 0]);
    }

    #[test]
    fn delayed_token_released_at_its_time() {
        let plan = LinkFaultPlan::benign(3).with_delay(1.0, TimeNs::from_ms(10));
        let mut l = FaultyLink::new("l", 4, plan);
        assert_eq!(l.try_write(0, tok(0), TimeNs::ZERO), WriteOutcome::Accepted);
        assert_eq!(l.delayed(), 1);
        // Not readable before the release time…
        assert_eq!(l.try_read(0, TimeNs::ZERO), ReadOutcome::Blocked);
        assert_eq!(l.in_transit(), 1);
        // …but guaranteed readable at max_delay.
        match l.try_read(0, TimeNs::from_ms(10)) {
            ReadOutcome::Token(t) => assert_eq!(t.seq, 0),
            other => panic!("expected release, got {other:?}"),
        }
    }

    #[test]
    fn delay_preserves_fifo_order() {
        // First token delayed, second written undisturbed *before* the
        // release time: the second must not overtake the first.
        let plan = LinkFaultPlan::benign(3).with_delay(0.5, TimeNs::from_ms(10));
        let mut l = FaultyLink::new("l", 8, plan);
        for s in 0..8 {
            assert_eq!(l.try_write(0, tok(s), TimeNs::ZERO), WriteOutcome::Accepted);
        }
        let mut seqs = Vec::new();
        while let ReadOutcome::Token(t) = l.try_read(0, TimeNs::from_ms(10)) {
            seqs.push(t.seq);
        }
        assert_eq!(seqs, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn faults_start_only_at_activation_time() {
        let plan = LinkFaultPlan::benign(7)
            .with_drop(1.0)
            .from_time(TimeNs::from_ms(5));
        let mut l = FaultyLink::new("l", 8, plan);
        assert_eq!(l.try_write(0, tok(0), TimeNs::ZERO), WriteOutcome::Accepted);
        assert_eq!(
            l.try_write(0, tok(1), TimeNs::from_ms(5)),
            WriteOutcome::AcceptedDropped
        );
        assert_eq!(l.dropped(), 1);
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let run = |seed: u64| -> Vec<u64> {
            let plan = LinkFaultPlan::benign(seed).with_drop(0.3);
            let mut l = FaultyLink::new("l", 64, plan);
            for s in 0..64 {
                l.try_write(0, tok(s), TimeNs::ZERO);
            }
            let mut seqs = Vec::new();
            while let ReadOutcome::Token(t) = l.try_read(0, TimeNs::ZERO) {
                seqs.push(t.seq);
            }
            seqs
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
