//! Processes: the active entities of the network.
//!
//! A process is a sequential program with blocking channel I/O. Because the
//! simulation engine must be able to suspend a process at any blocking
//! point, processes are written in *resumable* style: the runtime calls
//! [`Process::resume`] with the completion of the previous system call, and
//! the process returns its next [`Syscall`]. This is the classic
//! protothread / state-machine encoding of a coroutine; the helper process
//! types at the bottom of this module cover the common stage shapes so
//! application code rarely writes the state machine by hand.

use crate::channel::PortId;
use crate::rng::SplitMix64;
use crate::token::{Payload, Token};
use rtft_rtc::{PjdModel, TimeNs};
use std::fmt;

/// Identifies a process within a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// The next action a process requests from the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Syscall {
    /// Destructive blocking read from a port.
    Read(PortId),
    /// Blocking write of a token to a port.
    Write(PortId, Token),
    /// Consume virtual time (computation, or pacing sleep).
    Compute(TimeNs),
    /// Terminate the process.
    Halt,
}

/// What the runtime reports back when resuming a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wakeup {
    /// First activation at time zero.
    Start,
    /// The pending `Read` completed with this token.
    ReadDone(Token),
    /// The pending `Write` completed (token enqueued or — for a selector —
    /// accepted-and-discarded; the writer cannot tell, per §3.1).
    WriteDone,
    /// The pending `Compute` interval elapsed.
    ComputeDone,
}

/// A resumable sequential process.
///
/// The runtime guarantees the alternation `resume(Start)`, then for every
/// returned syscall exactly one matching completion wakeup, until the
/// process returns [`Syscall::Halt`].
pub trait Process: Send {
    /// Diagnostic name of the process.
    fn name(&self) -> &str;

    /// Advances the process: `wake` reports completion of the previously
    /// returned syscall; the return value is the next syscall.
    fn resume(&mut self, wake: Wakeup, now: TimeNs) -> Syscall;

    /// Optional downcast hook so harnesses can inspect a process's recorded
    /// state after a run (sinks and collectors implement this).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

impl fmt::Debug for dyn Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Process({})", self.name())
    }
}

/// Deterministic per-token jitter source used by the helper processes.
///
/// Samples uniformly from `[0, jitter]` with a seeded RNG, so simulation
/// runs are reproducible and two replicas given different seeds exhibit the
/// paper's "design diversity ... captured by different jitter values".
#[derive(Debug, Clone)]
pub struct JitterSampler {
    jitter: TimeNs,
    rng: SplitMix64,
}

impl JitterSampler {
    /// Creates a sampler over `[0, jitter]` seeded with `seed`.
    pub fn new(jitter: TimeNs, seed: u64) -> Self {
        JitterSampler {
            jitter,
            rng: SplitMix64::seed_from_u64(seed),
        }
    }

    /// Draws the next jitter value.
    pub fn sample(&mut self) -> TimeNs {
        if self.jitter == TimeNs::ZERO {
            TimeNs::ZERO
        } else {
            TimeNs::from_ns(self.rng.next_inclusive(self.jitter.as_ns()))
        }
    }

    /// The configured maximum jitter.
    pub fn max_jitter(&self) -> TimeNs {
        self.jitter
    }
}

/// A source process emitting PJD-timed tokens.
///
/// Token `n` is emitted at `delay + n·period + U[0, jitter]` (clamped to be
/// non-decreasing), with payloads drawn from a generator closure. If the
/// downstream channel exerts backpressure the emission slips — standard
/// Kahn blocking-write semantics.
pub struct PjdSource {
    name: String,
    out: PortId,
    model: PjdModel,
    jitter: JitterSampler,
    generator: Box<dyn FnMut(u64) -> Payload + Send>,
    count: Option<u64>,
    next_seq: u64,
    last_nominal: TimeNs,
    state: SourceState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SourceState {
    Pacing,
    Writing,
}

impl fmt::Debug for PjdSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PjdSource")
            .field("name", &self.name)
            .field("model", &self.model)
            .field("next_seq", &self.next_seq)
            .finish_non_exhaustive()
    }
}

impl PjdSource {
    /// Creates a source writing to `out` with the given timing `model`.
    ///
    /// `seed` controls the jitter sequence; `count` bounds the number of
    /// emitted tokens (`None` = run forever); `generator` produces the
    /// payload for each sequence number.
    pub fn new(
        name: impl Into<String>,
        out: PortId,
        model: PjdModel,
        seed: u64,
        count: Option<u64>,
        generator: impl FnMut(u64) -> Payload + Send + 'static,
    ) -> Self {
        PjdSource {
            name: name.into(),
            out,
            model,
            jitter: JitterSampler::new(model.jitter, seed),
            generator: Box::new(generator),
            count,
            next_seq: 0,
            last_nominal: TimeNs::ZERO,
            state: SourceState::Pacing,
        }
    }

    fn next_emission_time(&mut self) -> TimeNs {
        // Nominal time of event n is delay + n·P; displaced by jitter but
        // kept non-decreasing so the trace stays a valid event stream.
        let nominal = self.model.delay + self.model.period * self.next_seq + self.jitter.sample();
        let t = nominal.max(self.last_nominal);
        self.last_nominal = t;
        t
    }
}

impl Process for PjdSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn resume(&mut self, wake: Wakeup, now: TimeNs) -> Syscall {
        loop {
            match self.state {
                SourceState::Pacing => {
                    if matches!(self.count, Some(c) if self.next_seq >= c) {
                        return Syscall::Halt;
                    }
                    match wake {
                        Wakeup::Start | Wakeup::WriteDone => {
                            let t = self.next_emission_time();
                            self.state = SourceState::Writing;
                            if t > now {
                                return Syscall::Compute(t - now);
                            }
                            // Emission due immediately; fall through.
                        }
                        Wakeup::ComputeDone => unreachable!("pacing state never sleeps"),
                        Wakeup::ReadDone(_) => unreachable!("source never reads"),
                    }
                }
                SourceState::Writing => {
                    let payload = (self.generator)(self.next_seq);
                    let token = Token::new(self.next_seq, now, payload);
                    self.next_seq += 1;
                    self.state = SourceState::Pacing;
                    return Syscall::Write(self.out, token);
                }
            }
        }
    }
}

/// A sink process reading tokens at a PJD-paced rate, recording arrivals.
///
/// Read `n` is attempted at `delay + n·period + U[0, jitter]`; the sink
/// records the time each read *completes* together with the token's digest,
/// giving the experiment harness both the output value sequence (for
/// Theorem 2 equivalence checks) and the inter-arrival timings (Table 2's
/// "Decoded Inter-Frame Timings").
pub struct PjdSink {
    name: String,
    input: PortId,
    model: PjdModel,
    jitter: JitterSampler,
    count: Option<u64>,
    next_seq: u64,
    last_nominal: TimeNs,
    arrivals: Vec<(TimeNs, u64)>,
    state: SinkState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SinkState {
    Pacing,
    Reading,
}

impl fmt::Debug for PjdSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PjdSink")
            .field("name", &self.name)
            .field("model", &self.model)
            .field("arrivals", &self.arrivals.len())
            .finish_non_exhaustive()
    }
}

impl PjdSink {
    /// Creates a sink reading from `input` with the given pacing `model`.
    pub fn new(
        name: impl Into<String>,
        input: PortId,
        model: PjdModel,
        seed: u64,
        count: Option<u64>,
    ) -> Self {
        PjdSink {
            name: name.into(),
            input,
            model,
            jitter: JitterSampler::new(model.jitter, seed),
            count,
            next_seq: 0,
            last_nominal: TimeNs::ZERO,
            arrivals: Vec::new(),
            state: SinkState::Pacing,
        }
    }

    /// The recorded `(completion time, payload digest)` pairs.
    pub fn arrivals(&self) -> &[(TimeNs, u64)] {
        &self.arrivals
    }

    /// Completion-to-completion inter-arrival durations.
    pub fn inter_arrivals(&self) -> Vec<TimeNs> {
        self.arrivals.windows(2).map(|w| w[1].0 - w[0].0).collect()
    }

    fn next_read_time(&mut self) -> TimeNs {
        let nominal = self.model.delay + self.model.period * self.next_seq + self.jitter.sample();
        let t = nominal.max(self.last_nominal);
        self.last_nominal = t;
        t
    }
}

impl Process for PjdSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn resume(&mut self, wake: Wakeup, now: TimeNs) -> Syscall {
        loop {
            match self.state {
                SinkState::Pacing => match wake {
                    Wakeup::Start | Wakeup::ReadDone(_) => {
                        if let Wakeup::ReadDone(ref token) = wake {
                            self.arrivals.push((now, token.payload.digest()));
                        }
                        if matches!(self.count, Some(c) if self.next_seq >= c) {
                            return Syscall::Halt;
                        }
                        let t = self.next_read_time();
                        self.state = SinkState::Reading;
                        if t > now {
                            return Syscall::Compute(t - now);
                        }
                    }
                    Wakeup::ComputeDone => unreachable!("pacing state never sleeps"),
                    Wakeup::WriteDone => unreachable!("sink never writes"),
                },
                SinkState::Reading => {
                    self.next_seq += 1;
                    self.state = SinkState::Pacing;
                    return Syscall::Read(self.input);
                }
            }
        }
    }
}

/// A 1-in/1-out transform stage: read, compute, write.
///
/// The compute duration per token is `base + U[0, jitter]` (seeded), which
/// is how the experiments realise the replica interface models of Table 1:
/// a stage whose service time has jitter `J` produces output bounded by the
/// ⟨P, J⟩ curves when fed a periodic input.
pub struct Transform {
    name: String,
    input: PortId,
    output: PortId,
    base: TimeNs,
    jitter: JitterSampler,
    func: Box<dyn FnMut(Payload) -> Payload + Send>,
    out_seq: u64,
    state: TransformState,
    pending: Option<Payload>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransformState {
    Reading,
    Computing,
    Writing,
}

impl fmt::Debug for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transform")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl Transform {
    /// Creates a transform stage applying `func` to each token payload.
    ///
    /// `base` is the deterministic part of the per-token service time and
    /// `jitter`/`seed` the stochastic part.
    pub fn new(
        name: impl Into<String>,
        input: PortId,
        output: PortId,
        base: TimeNs,
        jitter: TimeNs,
        seed: u64,
        func: impl FnMut(Payload) -> Payload + Send + 'static,
    ) -> Self {
        Transform {
            name: name.into(),
            input,
            output,
            base,
            jitter: JitterSampler::new(jitter, seed),
            func: Box::new(func),
            out_seq: 0,
            state: TransformState::Reading,
            pending: None,
        }
    }

    /// A zero-delay pass-through stage (useful as a measurement tap).
    pub fn passthrough(name: impl Into<String>, input: PortId, output: PortId) -> Self {
        Transform::new(name, input, output, TimeNs::ZERO, TimeNs::ZERO, 0, |p| p)
    }
}

impl Process for Transform {
    fn name(&self) -> &str {
        &self.name
    }

    fn resume(&mut self, wake: Wakeup, now: TimeNs) -> Syscall {
        match self.state {
            TransformState::Reading => {
                if let Wakeup::ReadDone(token) = wake {
                    self.pending = Some(token.payload);
                    self.state = TransformState::Computing;
                    let d = self.base + self.jitter.sample();
                    if d > TimeNs::ZERO {
                        return Syscall::Compute(d);
                    }
                    // Zero service time: fall through to writing.
                    self.resume(Wakeup::ComputeDone, now)
                } else {
                    Syscall::Read(self.input)
                }
            }
            TransformState::Computing => {
                let payload = self.pending.take().expect("payload staged before compute");
                let out = (self.func)(payload);
                let token = Token::new(self.out_seq, now, out);
                self.out_seq += 1;
                self.state = TransformState::Writing;
                Syscall::Write(self.output, token)
            }
            TransformState::Writing => {
                // Write completed: loop back to reading.
                self.state = TransformState::Reading;
                Syscall::Read(self.input)
            }
        }
    }
}

/// A PJD traffic shaper: releases token `n` no earlier than
/// `delay + n·period + U[0, jitter]`.
///
/// This is how a replica's *output interface model* (Table 1 of the paper)
/// is realised faithfully: a pipeline stage with per-token service jitter
/// `J > P` would accumulate unbounded backlog jitter and violate its
/// declared arrival curves (producing divergence false positives), whereas
/// a shaper jitters each token against the **nominal schedule**, so the
/// output stream is exactly a ⟨period, jitter, delay⟩ stream as long as
/// tokens arrive in time (which the upstream fixed service times
/// guarantee fault-free).
pub struct PjdShaper {
    name: String,
    input: PortId,
    output: PortId,
    model: PjdModel,
    jitter: JitterSampler,
    seq: u64,
    last_nominal: TimeNs,
    pending: Option<Payload>,
    state: ShaperState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShaperState {
    Reading,
    Holding,
    Writing,
}

impl fmt::Debug for PjdShaper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PjdShaper")
            .field("name", &self.name)
            .field("model", &self.model)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl PjdShaper {
    /// Creates a shaper imposing `model` on the stream from `input` to
    /// `output`; `seed` drives the per-token jitter draw.
    pub fn new(
        name: impl Into<String>,
        input: PortId,
        output: PortId,
        model: PjdModel,
        seed: u64,
    ) -> Self {
        PjdShaper {
            name: name.into(),
            input,
            output,
            model,
            jitter: JitterSampler::new(model.jitter, seed),
            seq: 0,
            last_nominal: TimeNs::ZERO,
            pending: None,
            state: ShaperState::Reading,
        }
    }

    fn release_time(&mut self) -> TimeNs {
        let nominal = self.model.delay + self.model.period * self.seq + self.jitter.sample();
        let t = nominal.max(self.last_nominal);
        self.last_nominal = t;
        t
    }
}

impl Process for PjdShaper {
    fn name(&self) -> &str {
        &self.name
    }

    fn resume(&mut self, wake: Wakeup, now: TimeNs) -> Syscall {
        loop {
            match self.state {
                ShaperState::Reading => {
                    if let Wakeup::ReadDone(ref token) = wake {
                        self.pending = Some(token.payload.clone());
                        self.state = ShaperState::Holding;
                        let release = self.release_time();
                        if release > now {
                            return Syscall::Compute(release - now);
                        }
                        continue;
                    }
                    return Syscall::Read(self.input);
                }
                ShaperState::Holding => {
                    let payload = self.pending.take().expect("token staged");
                    let token = Token::new(self.seq, now, payload);
                    self.seq += 1;
                    self.state = ShaperState::Writing;
                    return Syscall::Write(self.output, token);
                }
                ShaperState::Writing => {
                    self.state = ShaperState::Reading;
                    return Syscall::Read(self.input);
                }
            }
        }
    }
}

/// Collects every token from a port as fast as possible (no pacing, no
/// backpressure shaping) — a measurement probe.
pub struct Collector {
    name: String,
    input: PortId,
    tokens: Vec<Token>,
    limit: Option<usize>,
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("name", &self.name)
            .field("tokens", &self.tokens.len())
            .finish_non_exhaustive()
    }
}

impl Collector {
    /// Creates a collector on `input`, optionally stopping after `limit`
    /// tokens.
    pub fn new(name: impl Into<String>, input: PortId, limit: Option<usize>) -> Self {
        Collector {
            name: name.into(),
            input,
            // Reserve up front (capped) so a long run never pays Vec
            // doubling: regrowing 200k tokens memcpys ~16 MB mid-bench.
            tokens: Vec::with_capacity(limit.unwrap_or(0).min(1 << 20)),
            limit,
        }
    }

    /// The collected tokens.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }
}

impl Process for Collector {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn resume(&mut self, wake: Wakeup, _now: TimeNs) -> Syscall {
        if let Wakeup::ReadDone(token) = wake {
            self.tokens.push(token);
        }
        if matches!(self.limit, Some(l) if self.tokens.len() >= l) {
            return Syscall::Halt;
        }
        Syscall::Read(self.input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelId;

    fn port() -> PortId {
        PortId::of(ChannelId(0))
    }

    #[test]
    fn jitter_sampler_deterministic_per_seed() {
        let mut a = JitterSampler::new(TimeNs::from_ms(5), 42);
        let mut b = JitterSampler::new(TimeNs::from_ms(5), 42);
        let mut c = JitterSampler::new(TimeNs::from_ms(5), 43);
        let sa: Vec<_> = (0..10).map(|_| a.sample()).collect();
        let sb: Vec<_> = (0..10).map(|_| b.sample()).collect();
        let sc: Vec<_> = (0..10).map(|_| c.sample()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
        assert!(sa.iter().all(|j| *j <= TimeNs::from_ms(5)));
    }

    #[test]
    fn zero_jitter_sampler_is_zero() {
        let mut s = JitterSampler::new(TimeNs::ZERO, 1);
        assert_eq!(s.sample(), TimeNs::ZERO);
    }

    #[test]
    fn source_paces_then_writes() {
        let model = PjdModel::periodic(TimeNs::from_ms(10));
        let mut src = PjdSource::new("src", port(), model, 0, Some(2), Payload::U64);
        // t=0: first emission is due at 0 → immediate write.
        let s1 = src.resume(Wakeup::Start, TimeNs::ZERO);
        match s1 {
            Syscall::Write(p, t) => {
                assert_eq!(p, port());
                assert_eq!(t.seq, 0);
            }
            other => panic!("expected write, got {other:?}"),
        }
        // After the write: pace to t=10ms.
        let s2 = src.resume(Wakeup::WriteDone, TimeNs::ZERO);
        assert_eq!(s2, Syscall::Compute(TimeNs::from_ms(10)));
        let s3 = src.resume(Wakeup::ComputeDone, TimeNs::from_ms(10));
        assert!(matches!(s3, Syscall::Write(_, ref t) if t.seq == 1));
        // Count exhausted.
        let s4 = src.resume(Wakeup::WriteDone, TimeNs::from_ms(10));
        assert_eq!(s4, Syscall::Halt);
    }

    #[test]
    fn source_with_delay_offsets_first_emission() {
        let model = PjdModel::new(TimeNs::from_ms(10), TimeNs::ZERO, TimeNs::from_ms(3));
        let mut src = PjdSource::new("src", port(), model, 0, Some(1), |_| Payload::Empty);
        let s1 = src.resume(Wakeup::Start, TimeNs::ZERO);
        assert_eq!(s1, Syscall::Compute(TimeNs::from_ms(3)));
    }

    #[test]
    fn sink_records_arrivals() {
        let model = PjdModel::periodic(TimeNs::from_ms(10));
        let mut sink = PjdSink::new("sink", port(), model, 0, Some(2));
        let s1 = sink.resume(Wakeup::Start, TimeNs::ZERO);
        assert_eq!(s1, Syscall::Read(port()));
        let tok = Token::new(0, TimeNs::ZERO, Payload::U64(9));
        let s2 = sink.resume(Wakeup::ReadDone(tok), TimeNs::from_ms(1));
        // Next read due at t=10ms → pace 9ms.
        assert_eq!(s2, Syscall::Compute(TimeNs::from_ms(9)));
        let s3 = sink.resume(Wakeup::ComputeDone, TimeNs::from_ms(10));
        assert_eq!(s3, Syscall::Read(port()));
        let tok2 = Token::new(1, TimeNs::from_ms(10), Payload::U64(10));
        let s4 = sink.resume(Wakeup::ReadDone(tok2), TimeNs::from_ms(10));
        assert_eq!(s4, Syscall::Halt);
        assert_eq!(sink.arrivals().len(), 2);
        assert_eq!(sink.inter_arrivals(), vec![TimeNs::from_ms(9)]);
    }

    #[test]
    fn transform_read_compute_write_cycle() {
        let inp = PortId::of(ChannelId(0));
        let out = PortId::of(ChannelId(1));
        let mut t = Transform::new(
            "double",
            inp,
            out,
            TimeNs::from_ms(2),
            TimeNs::ZERO,
            0,
            |p| Payload::U64(p.as_u64().unwrap_or(0) * 2),
        );
        assert_eq!(t.resume(Wakeup::Start, TimeNs::ZERO), Syscall::Read(inp));
        let s = t.resume(
            Wakeup::ReadDone(Token::new(0, TimeNs::ZERO, Payload::U64(21))),
            TimeNs::ZERO,
        );
        assert_eq!(s, Syscall::Compute(TimeNs::from_ms(2)));
        let s = t.resume(Wakeup::ComputeDone, TimeNs::from_ms(2));
        match s {
            Syscall::Write(p, tok) => {
                assert_eq!(p, out);
                assert_eq!(tok.payload, Payload::U64(42));
                assert_eq!(tok.produced_at, TimeNs::from_ms(2));
            }
            other => panic!("expected write, got {other:?}"),
        }
        assert_eq!(
            t.resume(Wakeup::WriteDone, TimeNs::from_ms(2)),
            Syscall::Read(inp)
        );
    }

    #[test]
    fn passthrough_has_zero_latency() {
        let inp = PortId::of(ChannelId(0));
        let out = PortId::of(ChannelId(1));
        let mut t = Transform::passthrough("tap", inp, out);
        t.resume(Wakeup::Start, TimeNs::ZERO);
        let s = t.resume(
            Wakeup::ReadDone(Token::new(0, TimeNs::ZERO, Payload::U64(5))),
            TimeNs::from_ms(7),
        );
        assert!(matches!(s, Syscall::Write(_, ref tok) if tok.payload == Payload::U64(5)));
    }

    #[test]
    fn collector_stops_at_limit() {
        let mut c = Collector::new("c", port(), Some(2));
        assert_eq!(c.resume(Wakeup::Start, TimeNs::ZERO), Syscall::Read(port()));
        let s = c.resume(
            Wakeup::ReadDone(Token::new(0, TimeNs::ZERO, Payload::Empty)),
            TimeNs::ZERO,
        );
        assert_eq!(s, Syscall::Read(port()));
        let s = c.resume(
            Wakeup::ReadDone(Token::new(1, TimeNs::ZERO, Payload::Empty)),
            TimeNs::ZERO,
        );
        assert_eq!(s, Syscall::Halt);
        assert_eq!(c.tokens().len(), 2);
    }
}
