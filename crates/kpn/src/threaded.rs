//! Real-thread runtime: the same networks and channel semantics on actual
//! OS threads and wall-clock time.
//!
//! The discrete-event engine gives deterministic virtual-time results; this
//! runtime demonstrates that the framework's channel state machines
//! (including the replicator/selector from `rtft-core`) run unchanged on a
//! real multicore — the "multicore emulation" leg of the reproduction. Each
//! process gets its own thread; blocking channel operations are implemented
//! with a mutex + condvar per channel; `Compute` becomes `thread::sleep`;
//! `now` is the wall-clock offset from the run's epoch.
//!
//! Measurements from this runtime are inherently noisy (host scheduling),
//! so the experiment tables are produced by the deterministic engine, while
//! the integration tests use this runtime to validate behavioural
//! equivalence (same token sequences, faults detected).

use crate::channel::{ChannelBehavior, ReadOutcome, WriteOutcome};
use crate::network::Network;
use crate::process::{Process, Syscall, Wakeup};
use crate::token::Token;
use rtft_obs::{Counter, MetricsRegistry};
use rtft_rtc::TimeNs;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Pre-resolved wall-clock metric handles shared by all process threads.
/// Resolved once at run start so the channel hot path never touches the
/// registry lock.
#[derive(Debug, Clone, Default)]
struct ThreadObs {
    writes: Counter,
    reads: Counter,
    write_waits: Counter,
    read_waits: Counter,
    spin_hits: Counter,
}

impl ThreadObs {
    fn from_registry(registry: &MetricsRegistry) -> Self {
        ThreadObs {
            writes: registry.counter("threaded.channel.writes"),
            reads: registry.counter("threaded.channel.reads"),
            write_waits: registry.counter("threaded.channel.write_waits"),
            read_waits: registry.counter("threaded.channel.read_waits"),
            spin_hits: registry.counter("threaded.channel.spin_hits"),
        }
    }
}

/// Iterations of [`std::hint::spin_loop`] attempted (with the channel
/// mutex released) before a blocked writer/reader parks on the condvar.
/// On a contended multicore the peer usually drains/fills the queue within
/// this window, saving the park/unpark round-trip; on a 1-core host the
/// spin burns one short quantum and falls through to the existing condvar
/// wait, so liveness is unchanged.
const SPIN_ITERS: u32 = 100;

/// Wall-clock timestamp (ns since the run epoch) of the most recent
/// successful channel operation, compute completion, or halt. Drives
/// quiescence detection in the join loop: once this stops advancing, the
/// only threads still alive are permanently blocked on channels.
#[derive(Debug, Default)]
struct Progress {
    last_ns: AtomicU64,
}

impl Progress {
    fn touch(&self, now: TimeNs) {
        self.last_ns.fetch_max(now.as_ns(), Ordering::Relaxed);
    }

    fn last(&self) -> u64 {
        self.last_ns.load(Ordering::Relaxed)
    }
}

/// Default quiescence idle window: how long the join loop waits with no
/// progress anywhere before declaring the network quiescent. Far above any
/// service time or period in this repository (all ≤ tens of ms); a single
/// `Compute` sleep longer than the configured window would be misread as
/// quiescence, so callers running coarser schedules must raise it via
/// [`ThreadedConfig::with_quiescence_grace`] — and callers running many
/// *small* jobs (the fleet executor) should lower it, since the window is
/// pure completion-latency tail for every job.
pub const DEFAULT_QUIESCENCE_GRACE: Duration = Duration::from_secs(1);

/// A shared cancellation flag for a threaded run.
///
/// Cloning yields a handle to the same flag; [`CancelToken::cancel`] makes
/// the join loop of the run holding the token return at its next poll
/// (within a few hundred microseconds), reporting every still-running
/// process in [`ThreadedRun::timed_out`]. The fleet executor uses this to
/// abandon a job that outlived its deadline without waiting for the run's
/// hard deadline.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Configuration of a threaded run: hard deadline, quiescence idle window,
/// optional cancellation hook and optional metrics registry.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Hard upper bound on the run's wall-clock duration.
    pub deadline: Duration,
    /// Idle window after which the network is declared quiescent
    /// ([`DEFAULT_QUIESCENCE_GRACE`] unless overridden).
    pub quiescence_grace: Duration,
    /// Cooperative cancellation hook checked by the join loop.
    pub cancel: Option<CancelToken>,
    /// Wall-clock channel metrics are recorded here when set.
    pub metrics: Option<MetricsRegistry>,
}

impl ThreadedConfig {
    /// A config with the given hard deadline and all defaults.
    pub fn new(deadline: Duration) -> Self {
        ThreadedConfig {
            deadline,
            quiescence_grace: DEFAULT_QUIESCENCE_GRACE,
            cancel: None,
            metrics: None,
        }
    }

    /// Overrides the quiescence idle window.
    pub fn with_quiescence_grace(mut self, grace: Duration) -> Self {
        self.quiescence_grace = grace;
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Records wall-clock channel metrics into `registry`.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(registry.clone());
        self
    }
}

/// A channel shared between process threads.
#[derive(Debug)]
struct SharedChannel {
    state: Mutex<crate::network::ChanBody>,
    changed: Condvar,
    obs: Option<ThreadObs>,
    progress: Arc<Progress>,
}

impl SharedChannel {
    fn write_blocking(&self, iface: usize, mut token: Token, clock: &WallClock) {
        let mut guard = self.state.lock().unwrap();
        let mut spun = false;
        let mut parked = false;
        loop {
            // The channel takes ownership; a blocked write hands the token
            // back, so no payload is ever cloned on the retry loop.
            match guard.try_write(iface, token, clock.now()) {
                WriteOutcome::Accepted | WriteOutcome::AcceptedDropped => {
                    if let Some(obs) = &self.obs {
                        obs.writes.inc();
                        if spun && !parked {
                            obs.spin_hits.inc();
                        }
                    }
                    self.progress.touch(clock.now());
                    self.changed.notify_all();
                    return;
                }
                WriteOutcome::Blocked(t) => {
                    token = t;
                    if !spun {
                        // First miss: release the lock, spin briefly, retry
                        // before paying for a condvar park.
                        spun = true;
                        drop(guard);
                        for _ in 0..SPIN_ITERS {
                            std::hint::spin_loop();
                        }
                        guard = self.state.lock().unwrap();
                        continue;
                    }
                    parked = true;
                    if let Some(obs) = &self.obs {
                        obs.write_waits.inc();
                    }
                    guard = self
                        .changed
                        .wait_timeout(guard, Duration::from_millis(5))
                        .expect("channel mutex poisoned")
                        .0;
                }
            }
        }
    }

    fn read_blocking(&self, iface: usize, clock: &WallClock) -> Token {
        let mut guard = self.state.lock().unwrap();
        let mut spun = false;
        let mut parked = false;
        loop {
            match guard.try_read(iface, clock.now()) {
                ReadOutcome::Token(t) => {
                    if let Some(obs) = &self.obs {
                        obs.reads.inc();
                        if spun && !parked {
                            obs.spin_hits.inc();
                        }
                    }
                    self.progress.touch(clock.now());
                    self.changed.notify_all();
                    return t;
                }
                ReadOutcome::Blocked => {
                    if !spun {
                        spun = true;
                        drop(guard);
                        for _ in 0..SPIN_ITERS {
                            std::hint::spin_loop();
                        }
                        guard = self.state.lock().unwrap();
                        continue;
                    }
                    parked = true;
                    if let Some(obs) = &self.obs {
                        obs.read_waits.inc();
                    }
                    guard = self
                        .changed
                        .wait_timeout(guard, Duration::from_millis(5))
                        .expect("channel mutex poisoned")
                        .0;
                }
            }
        }
    }
}

/// Wall-clock time since the run's epoch, reported as [`TimeNs`] so the
/// same process code runs under both runtimes.
#[derive(Debug, Clone, Copy)]
struct WallClock {
    epoch: Instant,
}

impl WallClock {
    fn now(&self) -> TimeNs {
        TimeNs::from_ns(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadedRun {
    /// The channels after the run (wrapped; downcast via
    /// [`ThreadedRun::channel_as`]).
    channels: Vec<(String, Arc<SharedChannel>)>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Processes that were still running when the deadline hit (names).
    pub timed_out: Vec<String>,
    /// `true` if the run returned because its [`CancelToken`] fired.
    pub cancelled: bool,
    /// The processes, returned for post-run inspection, in insertion order.
    processes: Vec<(String, crate::network::ProcBody)>,
}

impl ThreadedRun {
    /// Inspects a channel's final state under its concrete type.
    pub fn channel_as<T: 'static, R>(&self, index: usize, f: impl FnOnce(&T) -> R) -> Option<R> {
        let guard = self.channels.get(index)?.1.state.lock().unwrap();
        guard.as_any().downcast_ref::<T>().map(f)
    }

    /// Inspects a finished process under its concrete type (only processes
    /// that halted before the deadline are returned to the run).
    pub fn process_as<T: 'static>(&self, name: &str) -> Option<&T> {
        self.processes
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, p)| p.as_any())
            .and_then(|a| a.downcast_ref::<T>())
    }
}

/// Why a threaded run could not be started.
///
/// The panicking entry points ([`run_threaded`], [`run_threaded_with`])
/// predate this type; [`try_run_threaded_with`] surfaces the same failure
/// as a value so services (the `rtft-serve` front-end) can propagate one
/// boxed error instead of catching unwinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadedError {
    /// The network failed validation (dangling ports, unread channels).
    InvalidNetwork(String),
}

impl std::fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadedError::InvalidNetwork(why) => write!(f, "invalid network: {why}"),
        }
    }
}

impl std::error::Error for ThreadedError {}

/// Runs `network` on real threads until every process halts, the network
/// quiesces, or `deadline` elapses.
///
/// Quiescence: once no channel operation, compute completion, or halt has
/// happened anywhere for [`DEFAULT_QUIESCENCE_GRACE`], the remaining
/// threads can only be permanently blocked on channels (Kahn processes
/// such as shapers never halt by construction), so the run returns early;
/// `deadline` is the hard upper bound for networks that keep making
/// progress. Unfinished processes are detached (their threads park on
/// channels forever and are reaped at process exit); their names are
/// reported in [`ThreadedRun::timed_out`].
///
/// Use [`run_threaded_with`] to override the quiescence window or attach a
/// [`CancelToken`].
///
/// # Panics
///
/// Panics if the network fails validation.
pub fn run_threaded(network: Network, deadline: Duration) -> ThreadedRun {
    run_threaded_with(network, &ThreadedConfig::new(deadline))
}

/// Like [`run_threaded`], but records wall-clock channel metrics
/// (`threaded.channel.{writes,reads,write_waits,read_waits,spin_hits}`
/// counters and the `threaded.elapsed_ns` gauge) into `registry`.
pub fn run_threaded_observed(
    network: Network,
    deadline: Duration,
    registry: &MetricsRegistry,
) -> ThreadedRun {
    run_threaded_with(
        network,
        &ThreadedConfig::new(deadline).with_metrics(registry),
    )
}

/// Runs `network` on real threads under an explicit [`ThreadedConfig`]:
/// hard deadline, quiescence idle window, optional cancellation and
/// optional metrics. See [`run_threaded`] for the termination semantics.
///
/// # Panics
///
/// Panics if the network fails validation.
pub fn run_threaded_with(network: Network, config: &ThreadedConfig) -> ThreadedRun {
    match try_run_threaded_with(network, config) {
        Ok(run) => run,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`run_threaded_with`]: returns
/// [`ThreadedError::InvalidNetwork`] instead of panicking when the network
/// fails validation.
pub fn try_run_threaded_with(
    network: Network,
    config: &ThreadedConfig,
) -> Result<ThreadedRun, ThreadedError> {
    if let Err(e) = network.validate() {
        return Err(ThreadedError::InvalidNetwork(e));
    }
    let (channel_slots, process_slots) = network.into_parts();
    let clock = WallClock {
        epoch: Instant::now(),
    };
    let obs = config.metrics.as_ref().map(ThreadObs::from_registry);
    let progress = Arc::new(Progress::default());

    let channels: Vec<(String, Arc<SharedChannel>)> = channel_slots
        .into_iter()
        .map(|slot| {
            (
                slot.name,
                Arc::new(SharedChannel {
                    state: Mutex::new(slot.behavior),
                    changed: Condvar::new(),
                    obs: obs.clone(),
                    progress: Arc::clone(&progress),
                }),
            )
        })
        .collect();

    let mut handles = Vec::new();
    for slot in process_slots {
        let name = slot.name.clone();
        let mut process = slot.process;
        let chans: Vec<Arc<SharedChannel>> = channels.iter().map(|(_, c)| Arc::clone(c)).collect();
        let progress = Arc::clone(&progress);
        let handle = std::thread::Builder::new()
            .name(name.clone())
            .spawn(move || {
                let mut wake = Wakeup::Start;
                loop {
                    match process.resume(wake, clock.now()) {
                        Syscall::Halt => {
                            progress.touch(clock.now());
                            return (name, process);
                        }
                        Syscall::Compute(d) => {
                            progress.touch(clock.now());
                            if d > TimeNs::ZERO {
                                std::thread::sleep(Duration::from_nanos(d.as_ns()));
                            }
                            progress.touch(clock.now());
                            wake = Wakeup::ComputeDone;
                        }
                        Syscall::Read(port) => {
                            let t = chans[port.channel.0].read_blocking(port.iface, &clock);
                            wake = Wakeup::ReadDone(t);
                        }
                        Syscall::Write(port, token) => {
                            chans[port.channel.0].write_blocking(port.iface, token, &clock);
                            wake = Wakeup::WriteDone;
                        }
                    }
                }
            })
            .expect("spawn process thread");
        handles.push(handle);
    }

    // Join with a global deadline, returning early once the network
    // quiesces or the cancel token fires. A duplicated network always
    // contains Kahn processes that never halt (shapers, stages): after the
    // bounded producer and consumer finish, those threads are permanently
    // blocked on channels. Once no channel operation, compute, or halt has
    // happened anywhere for the configured quiescence window, waiting out
    // the rest of the deadline adds only latency, so the deadline serves
    // purely as a hard upper bound.
    let start = Instant::now();
    let mut pending: Vec<Option<_>> = handles.into_iter().map(Some).collect();
    let mut finished = Vec::new();
    let mut timed_out = Vec::new();
    let mut cancelled = false;
    loop {
        for slot in pending.iter_mut() {
            // `JoinHandle` has no timed join; poll `is_finished`.
            if slot.as_ref().is_some_and(|h| h.is_finished()) {
                match slot.take().expect("just checked").join() {
                    Ok((name, process)) => finished.push((name, process)),
                    Err(_) => timed_out.push("<panicked>".to_owned()),
                }
            }
        }
        if pending.iter().all(Option::is_none) {
            break;
        }
        if config.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            cancelled = true;
            break;
        }
        let idle_ns = clock.now().as_ns().saturating_sub(progress.last());
        if start.elapsed() >= config.deadline || idle_ns > config.quiescence_grace.as_nanos() as u64
        {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    for handle in pending.into_iter().flatten() {
        timed_out.push(handle.thread().name().unwrap_or("<unnamed>").to_owned());
        drop(handle); // detach: parked on a channel forever, reaped at exit
    }

    let elapsed = start.elapsed();
    if let Some(registry) = &config.metrics {
        registry
            .gauge("threaded.elapsed_ns")
            .set(elapsed.as_nanos() as u64);
    }
    Ok(ThreadedRun {
        channels,
        elapsed,
        timed_out,
        cancelled,
        processes: finished,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Fifo, PortId};
    use crate::process::{Collector, PjdSink, PjdSource};
    use crate::token::Payload;
    use rtft_rtc::PjdModel;

    /// Tests pin the quiescence window explicitly (satellite of the fleet
    /// PR): every period in this module is ≤ 1 ms, so 200 ms of global
    /// silence is conclusive and keeps the tests fast.
    fn test_config() -> ThreadedConfig {
        ThreadedConfig::new(Duration::from_secs(10))
            .with_quiescence_grace(Duration::from_millis(200))
    }

    #[test]
    fn threaded_pipeline_delivers_in_order() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 4));
        // 1 ms period so the test stays fast on wall clock.
        let model = PjdModel::periodic(TimeNs::from_ms(1));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            model,
            0,
            Some(20),
            Payload::U64,
        ));
        net.add_process(Collector::new("col", PortId::of(a), Some(20)));
        let run = run_threaded_with(net, &test_config());
        assert!(run.timed_out.is_empty(), "timed out: {:?}", run.timed_out);
        let col = run
            .process_as::<Collector>("col")
            .expect("collector finished");
        let values: Vec<u64> = col
            .tokens()
            .iter()
            .map(|t| t.payload.as_u64().unwrap())
            .collect();
        assert_eq!(values, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_backpressure_preserves_kahn_order() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 1));
        let fast = PjdModel::periodic(TimeNs::from_us(100));
        let slow = PjdModel::periodic(TimeNs::from_ms(1));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            fast,
            0,
            Some(10),
            Payload::U64,
        ));
        net.add_process(PjdSink::new("sink", PortId::of(a), slow, 0, Some(10)));
        let run = run_threaded_with(net, &test_config());
        assert!(run.timed_out.is_empty());
        let sink = run.process_as::<PjdSink>("sink").expect("sink finished");
        assert_eq!(sink.arrivals().len(), 10);
    }

    #[test]
    fn deadline_reaps_unfinished_processes() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 1));
        // Collector with no producer: blocks forever.
        net.add_process(Collector::new("stuck", PortId::of(a), None));
        let run = run_threaded(net, Duration::from_millis(100));
        assert_eq!(run.timed_out, vec!["stuck".to_owned()]);
    }

    #[test]
    fn observed_run_counts_channel_ops() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 4));
        let model = PjdModel::periodic(TimeNs::from_us(100));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            model,
            0,
            Some(7),
            Payload::U64,
        ));
        net.add_process(Collector::new("col", PortId::of(a), Some(7)));
        let registry = MetricsRegistry::new();
        let run = run_threaded_with(net, &test_config().with_metrics(&registry));
        assert!(run.timed_out.is_empty());
        assert_eq!(registry.counter("threaded.channel.writes").get(), 7);
        assert_eq!(registry.counter("threaded.channel.reads").get(), 7);
        assert!(registry.gauge("threaded.elapsed_ns").get() > 0);
    }

    #[test]
    fn channel_state_inspectable_after_run() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 8));
        let model = PjdModel::periodic(TimeNs::from_us(100));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            model,
            0,
            Some(5),
            Payload::U64,
        ));
        net.add_process(Collector::new("col", PortId::of(a), Some(5)));
        let run = run_threaded_with(net, &test_config());
        let (writes, reads) = run
            .channel_as::<Fifo, _>(0, |f| (f.writes(), f.reads()))
            .expect("fifo");
        assert_eq!((writes, reads), (5, 5));
    }

    #[test]
    fn short_quiescence_window_returns_promptly() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 4));
        let model = PjdModel::periodic(TimeNs::from_ms(1));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(a),
            model,
            0,
            Some(5),
            Payload::U64,
        ));
        // Unbounded collector: never halts, blocks after the 5th token —
        // only quiescence detection can end this run before the deadline.
        net.add_process(Collector::new("col", PortId::of(a), None));
        let cfg = ThreadedConfig::new(Duration::from_secs(30))
            .with_quiescence_grace(Duration::from_millis(50));
        let run = run_threaded_with(net, &cfg);
        assert_eq!(run.timed_out, vec!["col".to_owned()]);
        assert!(!run.cancelled);
        assert!(
            run.elapsed < Duration::from_secs(2),
            "quiescence window not honoured: {:?}",
            run.elapsed
        );
    }

    #[test]
    fn cancel_token_aborts_a_stuck_run() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 1));
        // Collector with no producer: blocks forever.
        net.add_process(Collector::new("stuck", PortId::of(a), None));
        let token = CancelToken::new();
        let canceller = token.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            canceller.cancel();
        });
        // Deadline and quiescence window both far beyond the cancel point.
        let cfg = ThreadedConfig::new(Duration::from_secs(30)).with_cancel(token);
        let run = run_threaded_with(net, &cfg);
        h.join().unwrap();
        assert!(run.cancelled);
        assert_eq!(run.timed_out, vec!["stuck".to_owned()]);
        assert!(run.elapsed < Duration::from_secs(5));
    }
}
