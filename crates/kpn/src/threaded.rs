//! Real-thread runtime: the same networks and channel semantics on actual
//! OS threads and wall-clock time.
//!
//! The discrete-event engine gives deterministic virtual-time results; this
//! runtime demonstrates that the framework's channel state machines
//! (including the replicator/selector from `rtft-core`) run unchanged on a
//! real multicore — the "multicore emulation" leg of the reproduction. Each
//! process gets its own thread; blocking channel operations are implemented
//! with a mutex + condvar per channel; `Compute` becomes `thread::sleep`;
//! `now` is the wall-clock offset from the run's epoch.
//!
//! Measurements from this runtime are inherently noisy (host scheduling),
//! so the experiment tables are produced by the deterministic engine, while
//! the integration tests use this runtime to validate behavioural
//! equivalence (same token sequences, faults detected).

use crate::channel::{ChannelBehavior, ReadOutcome, WriteOutcome};
use crate::network::Network;
use crate::token::Token;
use crate::process::{Syscall, Wakeup};
use parking_lot::{Condvar, Mutex};
use rtft_rtc::TimeNs;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A channel shared between process threads.
#[derive(Debug)]
struct SharedChannel {
    state: Mutex<Box<dyn ChannelBehavior>>,
    changed: Condvar,
}

impl SharedChannel {
    fn write_blocking(&self, iface: usize, token: Token, clock: &WallClock) {
        let mut guard = self.state.lock();
        loop {
            match guard.try_write(iface, token.clone(), clock.now()) {
                WriteOutcome::Accepted | WriteOutcome::AcceptedDropped => {
                    self.changed.notify_all();
                    return;
                }
                WriteOutcome::Blocked => {
                    self.changed.wait_for(&mut guard, Duration::from_millis(5));
                }
            }
        }
    }

    fn read_blocking(&self, iface: usize, clock: &WallClock) -> Token {
        let mut guard = self.state.lock();
        loop {
            match guard.try_read(iface, clock.now()) {
                ReadOutcome::Token(t) => {
                    self.changed.notify_all();
                    return t;
                }
                ReadOutcome::Blocked => {
                    self.changed.wait_for(&mut guard, Duration::from_millis(5));
                }
            }
        }
    }
}

/// Wall-clock time since the run's epoch, reported as [`TimeNs`] so the
/// same process code runs under both runtimes.
#[derive(Debug, Clone, Copy)]
struct WallClock {
    epoch: Instant,
}

impl WallClock {
    fn now(&self) -> TimeNs {
        TimeNs::from_ns(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadedRun {
    /// The channels after the run (wrapped; downcast via
    /// [`ThreadedRun::channel_as`]).
    channels: Vec<(String, Arc<SharedChannel>)>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Processes that were still running when the deadline hit (names).
    pub timed_out: Vec<String>,
    /// The processes, returned for post-run inspection, in insertion order.
    processes: Vec<(String, Box<dyn crate::process::Process>)>,
}

impl ThreadedRun {
    /// Inspects a channel's final state under its concrete type.
    pub fn channel_as<T: 'static, R>(
        &self,
        index: usize,
        f: impl FnOnce(&T) -> R,
    ) -> Option<R> {
        let guard = self.channels.get(index)?.1.state.lock();
        guard.as_any().downcast_ref::<T>().map(f)
    }

    /// Inspects a finished process under its concrete type (only processes
    /// that halted before the deadline are returned to the run).
    pub fn process_as<T: 'static>(&self, name: &str) -> Option<&T> {
        self.processes
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, p)| p.as_any())
            .and_then(|a| a.downcast_ref::<T>())
    }
}

/// Runs `network` on real threads until every process halts or `deadline`
/// elapses.
///
/// Processes that have not halted by the deadline are detached (their
/// threads park on channels forever and are reaped at process exit); their
/// names are reported in [`ThreadedRun::timed_out`]. Design note: Kahn
/// processes block indefinitely by construction, so a hard join-with-timeout
/// is the only portable way to bound a run on real threads.
///
/// # Panics
///
/// Panics if the network fails validation.
pub fn run_threaded(network: Network, deadline: Duration) -> ThreadedRun {
    if let Err(e) = network.validate() {
        panic!("invalid network: {e}");
    }
    let (channel_slots, process_slots) = network.into_parts();
    let clock = WallClock { epoch: Instant::now() };

    let channels: Vec<(String, Arc<SharedChannel>)> = channel_slots
        .into_iter()
        .map(|slot| {
            (
                slot.name,
                Arc::new(SharedChannel {
                    state: Mutex::new(slot.behavior),
                    changed: Condvar::new(),
                }),
            )
        })
        .collect();

    let mut handles = Vec::new();
    for slot in process_slots {
        let name = slot.name.clone();
        let mut process = slot.process;
        let chans: Vec<Arc<SharedChannel>> =
            channels.iter().map(|(_, c)| Arc::clone(c)).collect();
        let handle = std::thread::Builder::new()
            .name(name.clone())
            .spawn(move || {
                let mut wake = Wakeup::Start;
                loop {
                    match process.resume(wake, clock.now()) {
                        Syscall::Halt => return (name, process),
                        Syscall::Compute(d) => {
                            if d > TimeNs::ZERO {
                                std::thread::sleep(Duration::from_nanos(d.as_ns()));
                            }
                            wake = Wakeup::ComputeDone;
                        }
                        Syscall::Read(port) => {
                            let t = chans[port.channel.0].read_blocking(port.iface, &clock);
                            wake = Wakeup::ReadDone(t);
                        }
                        Syscall::Write(port, token) => {
                            chans[port.channel.0].write_blocking(port.iface, token, &clock);
                            wake = Wakeup::WriteDone;
                        }
                    }
                }
            })
            .expect("spawn process thread");
        handles.push(handle);
    }

    // Join with a global deadline.
    let start = Instant::now();
    let mut finished = Vec::new();
    let mut timed_out = Vec::new();
    for handle in handles {
        let remaining = deadline.saturating_sub(start.elapsed());
        // `JoinHandle` has no timed join; poll `is_finished`.
        let poll_start = Instant::now();
        while !handle.is_finished() && poll_start.elapsed() < remaining {
            std::thread::sleep(Duration::from_micros(200));
        }
        if handle.is_finished() {
            match handle.join() {
                Ok((name, process)) => finished.push((name, process)),
                Err(_) => timed_out.push("<panicked>".to_owned()),
            }
        } else {
            timed_out.push(handle.thread().name().unwrap_or("<unnamed>").to_owned());
            drop(handle); // detach
        }
    }

    ThreadedRun { channels, elapsed: start.elapsed(), timed_out, processes: finished }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Fifo, PortId};
    use crate::process::{Collector, PjdSink, PjdSource};
    use crate::token::Payload;
    use rtft_rtc::PjdModel;

    #[test]
    fn threaded_pipeline_delivers_in_order() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 4));
        // 1 ms period so the test stays fast on wall clock.
        let model = PjdModel::periodic(TimeNs::from_ms(1));
        net.add_process(PjdSource::new("src", PortId::of(a), model, 0, Some(20), Payload::U64));
        net.add_process(Collector::new("col", PortId::of(a), Some(20)));
        let run = run_threaded(net, Duration::from_secs(10));
        assert!(run.timed_out.is_empty(), "timed out: {:?}", run.timed_out);
        let col = run.process_as::<Collector>("col").expect("collector finished");
        let values: Vec<u64> =
            col.tokens().iter().map(|t| t.payload.as_u64().unwrap()).collect();
        assert_eq!(values, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_backpressure_preserves_kahn_order() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 1));
        let fast = PjdModel::periodic(TimeNs::from_us(100));
        let slow = PjdModel::periodic(TimeNs::from_ms(1));
        net.add_process(PjdSource::new("src", PortId::of(a), fast, 0, Some(10), Payload::U64));
        net.add_process(PjdSink::new("sink", PortId::of(a), slow, 0, Some(10)));
        let run = run_threaded(net, Duration::from_secs(10));
        assert!(run.timed_out.is_empty());
        let sink = run.process_as::<PjdSink>("sink").expect("sink finished");
        assert_eq!(sink.arrivals().len(), 10);
    }

    #[test]
    fn deadline_reaps_unfinished_processes() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 1));
        // Collector with no producer: blocks forever.
        net.add_process(Collector::new("stuck", PortId::of(a), None));
        let run = run_threaded(net, Duration::from_millis(100));
        assert_eq!(run.timed_out, vec!["stuck".to_owned()]);
    }

    #[test]
    fn channel_state_inspectable_after_run() {
        let mut net = Network::new();
        let a = net.add_channel(Fifo::new("a", 8));
        let model = PjdModel::periodic(TimeNs::from_us(100));
        net.add_process(PjdSource::new("src", PortId::of(a), model, 0, Some(5), Payload::U64));
        net.add_process(Collector::new("col", PortId::of(a), Some(5)));
        let run = run_threaded(net, Duration::from_secs(5));
        let (writes, reads) =
            run.channel_as::<Fifo, _>(0, |f| (f.writes(), f.reads())).expect("fifo");
        assert_eq!((writes, reads), (5, 5));
    }
}
