//! A reusable priority worker pool with per-worker run queues and work
//! stealing.
//!
//! The fleet executor (`rtft-fleet`) runs many independent network
//! simulations concurrently; this pool is its execution substrate, kept in
//! `rtft-kpn` so other harnesses (bench campaigns, future batch runners)
//! can share it. Design:
//!
//! * **Per-worker run queues** — each worker owns a binary heap ordered by
//!   a caller-supplied `u64` priority (smaller runs first; the fleet uses
//!   absolute deadlines, making the pool an earliest-deadline-first
//!   scheduler). Submission targets one worker's queue (round-robin by
//!   default), so the common path contends on one small lock.
//! * **Work stealing** — a worker whose own queue is empty scans its peers
//!   and steals their *most urgent* task. Classic stealing takes the
//!   victim's coldest end; under deadline scheduling the urgent end is the
//!   correct one — an idle core should always run the globally earliest
//!   deadline it can find.
//! * **Panic isolation** — a panicking task is caught and counted; the
//!   worker thread survives. One misbehaving job cannot take down the
//!   pool (or, above it, the fleet).
//!
//! Dropping the pool drains it: workers keep executing until every
//! submitted task (including tasks submitted *by* running tasks) has run,
//! then exit and are joined.

use crate::token::Bytes;
use rtft_obs::{Counter, MetricsRegistry};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long an idle worker sleeps before re-scanning for stealable work.
/// Submissions to a worker's own queue wake it immediately; this bounds
/// only the latency of *stealing* from a peer.
const IDLE_RESCAN: Duration = Duration::from_millis(1);

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PrioritizedTask {
    priority: u64,
    seq: u64,
    run: Task,
}

impl PrioritizedTask {
    /// Total order: priority first (smaller = more urgent), then FIFO.
    fn key(&self) -> (u64, u64) {
        (self.priority, self.seq)
    }
}

impl PartialEq for PrioritizedTask {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for PrioritizedTask {}

impl PartialOrd for PrioritizedTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PrioritizedTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

struct WorkerQueue {
    heap: Mutex<BinaryHeap<Reverse<PrioritizedTask>>>,
    wake: Condvar,
}

struct PoolShared {
    queues: Vec<WorkerQueue>,
    /// Tasks queued **or currently running**. Workers only exit when this
    /// reaches zero under shutdown, so a running task may still submit
    /// follow-up work (the fleet's replacement runs rely on this).
    pending: AtomicUsize,
    /// Tasks currently executing on a worker (for the backpressure gauge
    /// surfaced as [`PoolLoad`]).
    inflight: AtomicUsize,
    shutdown: AtomicBool,
    seq: AtomicU64,
    next_target: AtomicUsize,
    executed: AtomicU64,
    stolen: AtomicU64,
    panicked: AtomicU64,
}

impl PoolShared {
    fn pop_own(&self, index: usize) -> Option<PrioritizedTask> {
        self.queues[index]
            .heap
            .lock()
            .unwrap()
            .pop()
            .map(|Reverse(t)| t)
    }

    fn steal(&self, thief: usize) -> Option<PrioritizedTask> {
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (thief + offset) % n;
            if let Some(Reverse(t)) = self.queues[victim].heap.lock().unwrap().pop() {
                self.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<PoolShared>, index: usize) {
    loop {
        let task = shared.pop_own(index).or_else(|| shared.steal(index));
        if let Some(t) = task {
            shared.inflight.fetch_add(1, Ordering::SeqCst);
            if catch_unwind(AssertUnwindSafe(t.run)).is_err() {
                shared.panicked.fetch_add(1, Ordering::Relaxed);
            }
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            shared.executed.fetch_add(1, Ordering::Relaxed);
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) && shared.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        let guard = shared.queues[index].heap.lock().unwrap();
        if guard.is_empty() {
            // Timed wait so peers' submissions become stealable promptly.
            let _ = shared.queues[index]
                .wake
                .wait_timeout(guard, IDLE_RESCAN)
                .expect("pool queue mutex poisoned");
        }
    }
}

/// Execution counters of a [`WorkerPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Tasks executed (including panicked ones).
    pub executed: u64,
    /// Tasks a worker stole from a peer's queue.
    pub stolen: u64,
    /// Tasks that panicked (caught; the worker survived).
    pub panicked: u64,
}

/// Instantaneous backpressure snapshot of a [`WorkerPool`]: how much work
/// is waiting in run queues and how much is executing right now.
///
/// `queued` is exact (the queue locks are taken); `inflight` is a
/// relaxed-in-time atomic read, so during task handoff the two can
/// transiently sum to one less than [`WorkerPool::pending`]. Services use
/// this to report *real* queue depth instead of inferring it from
/// admission rejections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolLoad {
    /// Tasks sitting in worker run queues, not yet started.
    pub queued: usize,
    /// Tasks currently executing on a worker thread.
    pub inflight: usize,
}

/// A bounded pool of worker threads with per-worker priority run queues
/// and work stealing. See the module docs for the scheduling discipline.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .field("pending", &self.pending())
            .field("stats", &self.stats())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..workers)
                .map(|_| WorkerQueue {
                    heap: Mutex::new(BinaryHeap::new()),
                    wake: Condvar::new(),
                })
                .collect(),
            pending: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            next_target: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pool-worker-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Submits a task with the given priority (smaller runs first) to the
    /// next worker in round-robin order.
    pub fn submit(&self, priority: u64, f: impl FnOnce() + Send + 'static) {
        let target = self.shared.next_target.fetch_add(1, Ordering::Relaxed) % self.workers();
        self.submit_to(target, priority, f);
    }

    /// Submits a task to a specific worker's queue (`worker` is taken
    /// modulo the pool size). Peers can still steal it.
    pub fn submit_to(&self, worker: usize, priority: u64, f: impl FnOnce() + Send + 'static) {
        let w = worker % self.workers();
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        let mut q = self.shared.queues[w].heap.lock().unwrap();
        q.push(Reverse(PrioritizedTask {
            priority,
            seq,
            run: Box::new(f),
        }));
        drop(q);
        self.shared.queues[w].wake.notify_one();
    }

    /// Tasks queued or currently running.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::SeqCst)
    }

    /// Queue-depth/inflight snapshot (see [`PoolLoad`]).
    pub fn load(&self) -> PoolLoad {
        PoolLoad {
            queued: self
                .shared
                .queues
                .iter()
                .map(|q| q.heap.lock().unwrap().len())
                .sum(),
            inflight: self.shared.inflight.load(Ordering::SeqCst),
        }
    }

    /// Per-worker run-queue depths, in worker order (diagnostics; exposes
    /// imbalance the work-stealing normally hides).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shared
            .queues
            .iter()
            .map(|q| q.heap.lock().unwrap().len())
            .collect()
    }

    /// Execution counters so far.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers(),
            executed: self.shared.executed.load(Ordering::Relaxed),
            stolen: self.shared.stolen.load(Ordering::Relaxed),
            panicked: self.shared.panicked.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkerPool {
    /// Drains the pool: blocks until every submitted task has run, then
    /// joins the workers.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for q in &self.shared.queues {
            q.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Payload buffer pool
// ---------------------------------------------------------------------------

/// A recycling arena for [`Bytes`] payload buffers.
///
/// Token payloads are `Arc<[u8]>`, so cloning them through the channel ring
/// is already free — but *creating* one per ingested frame is a heap
/// allocation on the hot ingest path. The pool closes that gap: buffers are
/// parked on exact-length shelves when the last owner settles a batch, and
/// the next frame of the same size reuses the allocation in place via
/// [`Arc::get_mut`]. In steady state (fleet jobs cycling same-shaped
/// frames) token flow performs zero heap allocations.
///
/// Exact-length shelving is deliberate: `Arc<[u8]>` carries its length in
/// the fat pointer, so a recycled buffer can only ever be refilled with a
/// payload of the *same* size. Workloads here are framed (fixed-size ADPCM
/// blocks, fixed-width sensor words), which makes exact-match hit rates
/// high; odd-sized one-offs simply miss and allocate.
///
/// All operations are thread-safe; counters (`kpn.pool.*` when attached to
/// a [`MetricsRegistry`]) expose hit/miss/recycle/discard totals so tests
/// and benches can assert reuse actually happens.
pub struct PayloadPool {
    shelves: Mutex<HashMap<usize, Vec<Bytes>>>,
    /// Buffers offered back while still shared (an in-flight job holds
    /// clones); reclaimed lazily by [`take`](PayloadPool::take) once the
    /// last clone drops.
    parked: Mutex<Vec<Bytes>>,
    /// Retained buffers per distinct length; beyond this, recycles discard.
    per_len_cap: usize,
    hits: Counter,
    misses: Counter,
    recycled: Counter,
    discarded: Counter,
}

/// Snapshot of a pool's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadPoolStats {
    /// `take` calls satisfied from a shelf (no allocation).
    pub hits: u64,
    /// `take` calls that had to allocate.
    pub misses: u64,
    /// Buffers accepted back onto a shelf.
    pub recycled: u64,
    /// Buffers rejected at recycle (still shared, or shelf full).
    pub discarded: u64,
}

impl PayloadPoolStats {
    /// Fraction of takes served without allocating, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// A uniquely-owned buffer checked out of a [`PayloadPool`].
///
/// Holds the only reference to its `Arc<[u8]>`, so the contents are
/// mutable in place (a socket can read straight into it). [`freeze`]
/// relinquishes mutability and yields the shareable [`Bytes`].
///
/// [`freeze`]: PoolBuf::freeze
#[derive(Debug)]
pub struct PoolBuf {
    buf: Bytes,
}

impl PoolBuf {
    /// Mutable view of the whole buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        Arc::get_mut(&mut self.buf).expect("PoolBuf invariant: uniquely owned")
    }

    /// Buffer length in bytes (fixed at `take`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when the buffer has zero length.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable, shareable payload.
    #[inline]
    pub fn freeze(self) -> Bytes {
        self.buf
    }
}

impl Default for PayloadPool {
    fn default() -> Self {
        PayloadPool::new()
    }
}

impl fmt::Debug for PayloadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("PayloadPool")
            .field("per_len_cap", &self.per_len_cap)
            .field("stats", &stats)
            .finish()
    }
}

impl PayloadPool {
    /// Default shelf depth per distinct buffer length.
    pub const DEFAULT_PER_LEN_CAP: usize = 64;

    /// Upper bound on buffers waiting in the deferred-reclaim parking
    /// lot (see [`park`](PayloadPool::park)).
    pub const PARK_CAP: usize = 1024;

    /// A pool with the default per-length shelf depth and free-floating
    /// counters.
    pub fn new() -> Self {
        PayloadPool::with_per_len_cap(PayloadPool::DEFAULT_PER_LEN_CAP)
    }

    /// A pool retaining at most `cap` buffers per distinct length.
    pub fn with_per_len_cap(cap: usize) -> Self {
        PayloadPool {
            shelves: Mutex::new(HashMap::new()),
            parked: Mutex::new(Vec::new()),
            per_len_cap: cap,
            hits: Counter::new(),
            misses: Counter::new(),
            recycled: Counter::new(),
            discarded: Counter::new(),
        }
    }

    /// A pool whose counters are registered as `kpn.pool.{hits,misses,
    /// recycled,discarded}` in `registry`.
    pub fn with_metrics(registry: &MetricsRegistry) -> Self {
        let mut pool = PayloadPool::new();
        pool.hits = registry.counter("kpn.pool.hits");
        pool.misses = registry.counter("kpn.pool.misses");
        pool.recycled = registry.counter("kpn.pool.recycled");
        pool.discarded = registry.counter("kpn.pool.discarded");
        pool
    }

    /// Checks out a uniquely-owned buffer of exactly `len` bytes.
    ///
    /// Shelf hit: the recycled allocation is returned as-is (contents are
    /// whatever the previous payload held — callers overwrite). Miss: a
    /// fresh zeroed buffer is allocated.
    pub fn take(&self, len: usize) -> PoolBuf {
        self.scavenge();
        if let Some(buf) = self
            .shelves
            .lock()
            .unwrap()
            .get_mut(&len)
            .and_then(Vec::pop)
        {
            debug_assert_eq!(Arc::strong_count(&buf), 1);
            self.hits.inc();
            return PoolBuf { buf };
        }
        self.misses.inc();
        PoolBuf {
            buf: Bytes::from(vec![0u8; len]),
        }
    }

    /// Copies `data` into a pooled buffer and freezes it — the common
    /// "ingest one frame" operation in a single call.
    pub fn take_copy(&self, data: &[u8]) -> Bytes {
        let mut buf = self.take(data.len());
        buf.as_mut_slice().copy_from_slice(data);
        buf.freeze()
    }

    /// Offers a payload back to the pool once its batch has settled.
    ///
    /// Accepted (returns `true`) only when this is the last reference —
    /// a buffer still shared with a WAL record or an in-flight response
    /// cannot be mutated and is dropped instead — and the shelf for its
    /// length is below the cap.
    pub fn recycle(&self, mut buf: Bytes) -> bool {
        if Arc::get_mut(&mut buf).is_none() {
            self.discarded.inc();
            return false;
        }
        let mut shelves = self.shelves.lock().unwrap();
        let shelf = shelves.entry(buf.len()).or_default();
        if shelf.len() >= self.per_len_cap {
            self.discarded.inc();
            return false;
        }
        shelf.push(buf);
        self.recycled.inc();
        true
    }

    /// Offers a payload back that may *still be shared* — typically with
    /// a fleet job that has settled but not yet dropped its spec. The
    /// buffer is parked and reclaimed by a later [`take`] once the last
    /// clone drops; a buffer parked while already unique shelves on the
    /// next take just the same.
    ///
    /// The parking lot is bounded ([`PARK_CAP`](PayloadPool::PARK_CAP));
    /// beyond it the offer is discarded immediately.
    ///
    /// [`take`]: PayloadPool::take
    pub fn park(&self, buf: Bytes) {
        let mut parked = self.parked.lock().unwrap();
        if parked.len() >= PayloadPool::PARK_CAP {
            self.discarded.inc();
            return;
        }
        parked.push(buf);
    }

    /// Moves every parked buffer whose last external clone has dropped
    /// onto its shelf; still-shared buffers stay parked.
    fn scavenge(&self) {
        let mut parked = self.parked.lock().unwrap();
        if parked.is_empty() {
            return;
        }
        let candidates = std::mem::take(&mut *parked);
        // Recycle outside the parked lock (recycle takes the shelf lock);
        // survivors are re-parked afterwards.
        drop(parked);
        let mut still_shared = Vec::new();
        for mut buf in candidates {
            if Arc::get_mut(&mut buf).is_some() {
                self.recycle(buf);
            } else {
                still_shared.push(buf);
            }
        }
        if !still_shared.is_empty() {
            self.parked.lock().unwrap().extend(still_shared);
        }
    }

    /// Lifetime counter snapshot.
    pub fn stats(&self) -> PayloadPoolStats {
        PayloadPoolStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            recycled: self.recycled.get(),
            discarded: self.discarded.get(),
        }
    }

    /// Buffers currently shelved across all lengths.
    pub fn shelved(&self) -> usize {
        self.shelves.lock().unwrap().values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_everything_before_drop_returns() {
        let counter = Arc::new(AtomicU64::new(0));
        let pool = WorkerPool::new(3);
        for i in 0..50 {
            let c = Arc::clone(&counter);
            pool.submit(i, move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn single_worker_runs_in_priority_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let pool = WorkerPool::new(1);
        // Block the worker so the queue fills before anything runs.
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            pool.submit(0, move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        for (priority, label) in [(30u64, "c"), (10, "a"), (20, "b")] {
            let order = Arc::clone(&order);
            pool.submit(priority, move || order.lock().unwrap().push(label));
        }
        gate.store(true, Ordering::SeqCst);
        drop(pool);
        assert_eq!(*order.lock().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn idle_worker_steals_from_loaded_peer() {
        let pool = WorkerPool::new(2);
        let running = Arc::new(AtomicU64::new(0));
        // Pin a long task plus a backlog onto worker 0 only.
        {
            let running = Arc::clone(&running);
            pool.submit_to(0, 0, move || {
                running.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(50));
            });
        }
        let done = Arc::new(AtomicU64::new(0));
        for i in 0..8 {
            let done = Arc::clone(&done);
            pool.submit_to(0, i + 1, move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Wait for the drain; worker 1 must have stolen the backlog while
        // worker 0 slept in the long task.
        while pool.pending() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = pool.stats();
        assert_eq!(done.load(Ordering::SeqCst), 8);
        assert!(stats.stolen > 0, "expected steals, got {stats:?}");
    }

    #[test]
    fn load_gauge_tracks_queued_and_inflight() {
        let pool = WorkerPool::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            pool.submit(0, move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        // Wait until the gate task is actually executing.
        while pool.load().inflight == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        for i in 0..4 {
            pool.submit(i + 1, || {});
        }
        let load = pool.load();
        assert_eq!(load.inflight, 1, "{load:?}");
        assert_eq!(load.queued, 4, "{load:?}");
        assert_eq!(pool.queue_depths().iter().sum::<usize>(), 4);
        gate.store(true, Ordering::SeqCst);
        drop(pool);
    }

    #[test]
    fn panicking_task_is_counted_and_pool_survives() {
        let pool = WorkerPool::new(1);
        pool.submit(0, || panic!("tenant bug"));
        let ok = Arc::new(AtomicU64::new(0));
        {
            let ok = Arc::clone(&ok);
            pool.submit(1, move || {
                ok.fetch_add(1, Ordering::SeqCst);
            });
        }
        while pool.pending() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(ok.load(Ordering::SeqCst), 1, "worker survived the panic");
        assert_eq!(pool.stats().panicked, 1);
    }
}

#[cfg(test)]
mod payload_pool_tests {
    use super::*;

    #[test]
    fn recycled_buffer_is_reused_not_reallocated() {
        let pool = PayloadPool::new();
        let first = pool.take_copy(b"hello scc");
        let addr = first.as_ptr();
        assert!(pool.recycle(first), "sole owner must be accepted");

        let second = pool.take_copy(b"bye scc!!"); // same length → shelf hit
        assert_eq!(second.as_ptr(), addr, "allocation must be reused in place");
        assert_eq!(&second[..], b"bye scc!!");

        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.recycled, 1);
        assert_eq!(stats.discarded, 0);
    }

    #[test]
    fn steady_state_cycle_allocates_once() {
        let pool = PayloadPool::new();
        for i in 0..1000u32 {
            let payload = pool.take_copy(&i.to_le_bytes());
            assert_eq!(&payload[..], i.to_le_bytes());
            assert!(pool.recycle(payload));
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 1, "steady state must not allocate");
        assert_eq!(stats.hits, 999);
        assert!(stats.hit_rate() > 0.99, "{stats:?}");
    }

    #[test]
    fn shared_buffer_is_discarded_not_shelved() {
        let pool = PayloadPool::new();
        let payload = pool.take_copy(b"shared");
        let alias = Bytes::clone(&payload);
        assert!(!pool.recycle(payload), "shared buffer must be rejected");
        assert_eq!(pool.stats().discarded, 1);
        assert_eq!(pool.shelved(), 0);
        drop(alias);
    }

    #[test]
    fn shelf_cap_bounds_retention() {
        let pool = PayloadPool::with_per_len_cap(2);
        let bufs: Vec<Bytes> = (0..3).map(|_| pool.take_copy(&[0u8; 16])).collect();
        let mut kept = 0;
        for b in bufs {
            if pool.recycle(b) {
                kept += 1;
            }
        }
        assert_eq!(kept, 2);
        assert_eq!(pool.shelved(), 2);
        assert_eq!(pool.stats().discarded, 1);
    }

    #[test]
    fn lengths_shelve_independently_and_counters_reach_registry() {
        let registry = MetricsRegistry::new();
        let pool = PayloadPool::with_metrics(&registry);
        let a = pool.take_copy(&[1u8; 8]);
        let b = pool.take_copy(&[2u8; 32]);
        pool.recycle(a);
        pool.recycle(b);
        let c = pool.take(8);
        assert_eq!(c.len(), 8);
        assert_eq!(registry.counter("kpn.pool.hits").get(), 1);
        assert_eq!(registry.counter("kpn.pool.misses").get(), 2);
        assert_eq!(registry.counter("kpn.pool.recycled").get(), 2);
        assert_eq!(pool.shelved(), 1, "only the 32-byte shelf remains");
    }

    #[test]
    fn parked_buffer_is_reclaimed_once_clones_drop() {
        let pool = PayloadPool::new();
        let payload = pool.take_copy(b"in flight");
        let addr = payload.as_ptr();
        let job_clone = Bytes::clone(&payload);
        pool.park(payload); // still shared: stays parked, not shelved
        assert_eq!(pool.shelved(), 0);

        let other = pool.take_copy(b"different length"); // scavenge: no-op
        assert_eq!(pool.stats().recycled, 0);

        drop(job_clone); // the "job" releases its reference
        let reused = pool.take_copy(b"new frame"); // scavenge reclaims...
        assert_eq!(reused.as_ptr(), addr, "...and the shelf hit reuses it");
        assert_eq!(pool.stats().recycled, 1);
        drop(other);
    }

    #[test]
    fn empty_payloads_round_trip() {
        let pool = PayloadPool::new();
        let empty = pool.take_copy(&[]);
        assert!(empty.is_empty());
        pool.recycle(empty);
        assert!(pool.take(0).is_empty());
    }
}
