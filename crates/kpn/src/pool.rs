//! A reusable priority worker pool with per-worker run queues and work
//! stealing.
//!
//! The fleet executor (`rtft-fleet`) runs many independent network
//! simulations concurrently; this pool is its execution substrate, kept in
//! `rtft-kpn` so other harnesses (bench campaigns, future batch runners)
//! can share it. Design:
//!
//! * **Per-worker run queues** — each worker owns a binary heap ordered by
//!   a caller-supplied `u64` priority (smaller runs first; the fleet uses
//!   absolute deadlines, making the pool an earliest-deadline-first
//!   scheduler). Submission targets one worker's queue (round-robin by
//!   default), so the common path contends on one small lock.
//! * **Work stealing** — a worker whose own queue is empty scans its peers
//!   and steals their *most urgent* task. Classic stealing takes the
//!   victim's coldest end; under deadline scheduling the urgent end is the
//!   correct one — an idle core should always run the globally earliest
//!   deadline it can find.
//! * **Panic isolation** — a panicking task is caught and counted; the
//!   worker thread survives. One misbehaving job cannot take down the
//!   pool (or, above it, the fleet).
//!
//! Dropping the pool drains it: workers keep executing until every
//! submitted task (including tasks submitted *by* running tasks) has run,
//! then exit and are joined.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long an idle worker sleeps before re-scanning for stealable work.
/// Submissions to a worker's own queue wake it immediately; this bounds
/// only the latency of *stealing* from a peer.
const IDLE_RESCAN: Duration = Duration::from_millis(1);

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PrioritizedTask {
    priority: u64,
    seq: u64,
    run: Task,
}

impl PrioritizedTask {
    /// Total order: priority first (smaller = more urgent), then FIFO.
    fn key(&self) -> (u64, u64) {
        (self.priority, self.seq)
    }
}

impl PartialEq for PrioritizedTask {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for PrioritizedTask {}

impl PartialOrd for PrioritizedTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PrioritizedTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

struct WorkerQueue {
    heap: Mutex<BinaryHeap<Reverse<PrioritizedTask>>>,
    wake: Condvar,
}

struct PoolShared {
    queues: Vec<WorkerQueue>,
    /// Tasks queued **or currently running**. Workers only exit when this
    /// reaches zero under shutdown, so a running task may still submit
    /// follow-up work (the fleet's replacement runs rely on this).
    pending: AtomicUsize,
    /// Tasks currently executing on a worker (for the backpressure gauge
    /// surfaced as [`PoolLoad`]).
    inflight: AtomicUsize,
    shutdown: AtomicBool,
    seq: AtomicU64,
    next_target: AtomicUsize,
    executed: AtomicU64,
    stolen: AtomicU64,
    panicked: AtomicU64,
}

impl PoolShared {
    fn pop_own(&self, index: usize) -> Option<PrioritizedTask> {
        self.queues[index]
            .heap
            .lock()
            .unwrap()
            .pop()
            .map(|Reverse(t)| t)
    }

    fn steal(&self, thief: usize) -> Option<PrioritizedTask> {
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (thief + offset) % n;
            if let Some(Reverse(t)) = self.queues[victim].heap.lock().unwrap().pop() {
                self.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<PoolShared>, index: usize) {
    loop {
        let task = shared.pop_own(index).or_else(|| shared.steal(index));
        if let Some(t) = task {
            shared.inflight.fetch_add(1, Ordering::SeqCst);
            if catch_unwind(AssertUnwindSafe(t.run)).is_err() {
                shared.panicked.fetch_add(1, Ordering::Relaxed);
            }
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            shared.executed.fetch_add(1, Ordering::Relaxed);
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) && shared.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        let guard = shared.queues[index].heap.lock().unwrap();
        if guard.is_empty() {
            // Timed wait so peers' submissions become stealable promptly.
            let _ = shared.queues[index]
                .wake
                .wait_timeout(guard, IDLE_RESCAN)
                .expect("pool queue mutex poisoned");
        }
    }
}

/// Execution counters of a [`WorkerPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Tasks executed (including panicked ones).
    pub executed: u64,
    /// Tasks a worker stole from a peer's queue.
    pub stolen: u64,
    /// Tasks that panicked (caught; the worker survived).
    pub panicked: u64,
}

/// Instantaneous backpressure snapshot of a [`WorkerPool`]: how much work
/// is waiting in run queues and how much is executing right now.
///
/// `queued` is exact (the queue locks are taken); `inflight` is a
/// relaxed-in-time atomic read, so during task handoff the two can
/// transiently sum to one less than [`WorkerPool::pending`]. Services use
/// this to report *real* queue depth instead of inferring it from
/// admission rejections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolLoad {
    /// Tasks sitting in worker run queues, not yet started.
    pub queued: usize,
    /// Tasks currently executing on a worker thread.
    pub inflight: usize,
}

/// A bounded pool of worker threads with per-worker priority run queues
/// and work stealing. See the module docs for the scheduling discipline.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .field("pending", &self.pending())
            .field("stats", &self.stats())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..workers)
                .map(|_| WorkerQueue {
                    heap: Mutex::new(BinaryHeap::new()),
                    wake: Condvar::new(),
                })
                .collect(),
            pending: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            next_target: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pool-worker-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Submits a task with the given priority (smaller runs first) to the
    /// next worker in round-robin order.
    pub fn submit(&self, priority: u64, f: impl FnOnce() + Send + 'static) {
        let target = self.shared.next_target.fetch_add(1, Ordering::Relaxed) % self.workers();
        self.submit_to(target, priority, f);
    }

    /// Submits a task to a specific worker's queue (`worker` is taken
    /// modulo the pool size). Peers can still steal it.
    pub fn submit_to(&self, worker: usize, priority: u64, f: impl FnOnce() + Send + 'static) {
        let w = worker % self.workers();
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        let mut q = self.shared.queues[w].heap.lock().unwrap();
        q.push(Reverse(PrioritizedTask {
            priority,
            seq,
            run: Box::new(f),
        }));
        drop(q);
        self.shared.queues[w].wake.notify_one();
    }

    /// Tasks queued or currently running.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::SeqCst)
    }

    /// Queue-depth/inflight snapshot (see [`PoolLoad`]).
    pub fn load(&self) -> PoolLoad {
        PoolLoad {
            queued: self
                .shared
                .queues
                .iter()
                .map(|q| q.heap.lock().unwrap().len())
                .sum(),
            inflight: self.shared.inflight.load(Ordering::SeqCst),
        }
    }

    /// Per-worker run-queue depths, in worker order (diagnostics; exposes
    /// imbalance the work-stealing normally hides).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shared
            .queues
            .iter()
            .map(|q| q.heap.lock().unwrap().len())
            .collect()
    }

    /// Execution counters so far.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers(),
            executed: self.shared.executed.load(Ordering::Relaxed),
            stolen: self.shared.stolen.load(Ordering::Relaxed),
            panicked: self.shared.panicked.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkerPool {
    /// Drains the pool: blocks until every submitted task has run, then
    /// joins the workers.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for q in &self.shared.queues {
            q.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_everything_before_drop_returns() {
        let counter = Arc::new(AtomicU64::new(0));
        let pool = WorkerPool::new(3);
        for i in 0..50 {
            let c = Arc::clone(&counter);
            pool.submit(i, move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn single_worker_runs_in_priority_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let pool = WorkerPool::new(1);
        // Block the worker so the queue fills before anything runs.
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            pool.submit(0, move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        for (priority, label) in [(30u64, "c"), (10, "a"), (20, "b")] {
            let order = Arc::clone(&order);
            pool.submit(priority, move || order.lock().unwrap().push(label));
        }
        gate.store(true, Ordering::SeqCst);
        drop(pool);
        assert_eq!(*order.lock().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn idle_worker_steals_from_loaded_peer() {
        let pool = WorkerPool::new(2);
        let running = Arc::new(AtomicU64::new(0));
        // Pin a long task plus a backlog onto worker 0 only.
        {
            let running = Arc::clone(&running);
            pool.submit_to(0, 0, move || {
                running.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(50));
            });
        }
        let done = Arc::new(AtomicU64::new(0));
        for i in 0..8 {
            let done = Arc::clone(&done);
            pool.submit_to(0, i + 1, move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Wait for the drain; worker 1 must have stolen the backlog while
        // worker 0 slept in the long task.
        while pool.pending() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = pool.stats();
        assert_eq!(done.load(Ordering::SeqCst), 8);
        assert!(stats.stolen > 0, "expected steals, got {stats:?}");
    }

    #[test]
    fn load_gauge_tracks_queued_and_inflight() {
        let pool = WorkerPool::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            pool.submit(0, move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        // Wait until the gate task is actually executing.
        while pool.load().inflight == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        for i in 0..4 {
            pool.submit(i + 1, || {});
        }
        let load = pool.load();
        assert_eq!(load.inflight, 1, "{load:?}");
        assert_eq!(load.queued, 4, "{load:?}");
        assert_eq!(pool.queue_depths().iter().sum::<usize>(), 4);
        gate.store(true, Ordering::SeqCst);
        drop(pool);
    }

    #[test]
    fn panicking_task_is_counted_and_pool_survives() {
        let pool = WorkerPool::new(1);
        pool.submit(0, || panic!("tenant bug"));
        let ok = Arc::new(AtomicU64::new(0));
        {
            let ok = Arc::clone(&ok);
            pool.submit(1, move || {
                ok.fetch_add(1, Ordering::SeqCst);
            });
        }
        while pool.pending() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(ok.load(Ordering::SeqCst), 1, "worker survived the panic");
        assert_eq!(pool.stats().panicked, 1);
    }
}
