//! Seeded pseudo-random numbers for jitter sampling.
//!
//! The experiments only need a deterministic, well-mixed, seedable stream —
//! not cryptographic quality — so the runtime carries its own SplitMix64
//! (Steele, Lea & Flood, OOPSLA 2014: the java.util.SplittableRandom
//! finalizer) instead of an external RNG crate. SplitMix64 passes BigCrush,
//! is two multiplications and three xor-shifts per draw, and every seed —
//! including 0 — yields a full-period sequence.

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A draw uniform over `0..=max` (inclusive), via 128-bit
    /// multiply-shift range reduction (Lemire) — no modulo bias worth
    /// caring about for jitter windows, and branch-free.
    pub fn next_inclusive(&mut self, max: u64) -> u64 {
        if max == u64::MAX {
            return self.next_u64();
        }
        let n = max + 1;
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A draw uniform over `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        let mut c = SplitMix64::seed_from_u64(43);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 1234567 from the published SplitMix64
        // algorithm (checked against the original C implementation).
        let mut r = SplitMix64::seed_from_u64(1234567);
        let first = r.next_u64();
        let mut r2 = SplitMix64::seed_from_u64(1234567);
        assert_eq!(first, r2.next_u64());
        assert_ne!(first, r.next_u64(), "stream must advance");
    }

    #[test]
    fn inclusive_range_respects_bounds() {
        let mut r = SplitMix64::seed_from_u64(9);
        for max in [0u64, 1, 2, 7, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.next_inclusive(max) <= max);
            }
        }
        // max == 0 always yields 0.
        assert_eq!(r.next_inclusive(0), 0);
    }

    #[test]
    fn inclusive_range_covers_both_endpoints() {
        let mut r = SplitMix64::seed_from_u64(5);
        let draws: Vec<u64> = (0..1000).map(|_| r.next_inclusive(3)).collect();
        for v in 0..=3 {
            assert!(draws.contains(&v), "value {v} never drawn");
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = SplitMix64::seed_from_u64(77);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SplitMix64::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]), "stream must vary");
    }
}
