//! Chaos under load: faulty tenants inside the fleet executor.
//!
//! Scenario runs in [`crate::runner`] exercise one structure at a time.
//! This module instead drives the PR-2 [`FleetExecutor`] with a mixed
//! tenant set — healthy jobs, a duplicated job whose replica fail-stops
//! mid-run (forcing a replica replacement), and a value-voting job under
//! silent data corruption — and returns the executor's own
//! [`FleetReport`]. It answers the question the single-scenario runner
//! cannot: does detection-plus-replacement still hold when the faulty
//! tenant competes for workers with healthy ones?

use crate::runner::payload_cycle;
use crate::scenario::SERVICE_DIVISOR;
use rtft_apps::networks::App;
use rtft_core::{
    CorruptionMode, DuplicationConfig, FaultPlan, JitterStageReplica, NJitterStageReplica,
    NModularModel, NSizingReport,
};
use rtft_fleet::{
    Admission, FleetConfig, FleetExecutor, FleetReport, JobRuntime, JobSpec, JobTemplate,
};
use rtft_rtc::{PjdModel, TimeNs};
use std::sync::Arc;
use std::time::Duration;

/// Tokens each tenant's producer emits.
const LOAD_TOKENS: u64 = 120;

fn horizon_for(app: App) -> TimeNs {
    let model = app.profile().model;
    model.producer.period * (LOAD_TOKENS + 60) + model.consumer.delay + TimeNs::from_secs(5)
}

fn duplicated_spec(name: &str, app: App, seed: u64, fault: Option<(usize, FaultPlan)>) -> JobSpec {
    let profile = app.profile();
    let model = profile.model;
    let service = model.producer.period / SERVICE_DIVISOR;
    let offset = service + model.producer.jitter + TimeNs::from_ms(1);
    let mut cfg = DuplicationConfig::from_model(model)
        .expect("profile models are bounded")
        .with_token_count(LOAD_TOKENS)
        .with_seeds(seed ^ 0xA5A5, seed ^ 0x5A5A)
        .with_payload(payload_cycle(seed, profile.input_token_bytes));
    if let Some((replica, plan)) = fault {
        cfg = cfg.with_fault(replica, plan);
    }
    let factory = JitterStageReplica {
        service,
        out_model: [
            model.replica_out[0].with_delay(offset),
            model.replica_out[1].with_delay(offset),
        ],
        seeds: [seed ^ 0x11, seed ^ 0x22],
    };
    JobSpec {
        name: name.to_string(),
        template: JobTemplate::Duplicated {
            cfg,
            factory: Arc::new(factory),
        },
        relative_deadline: Duration::from_secs(60),
        runtime: JobRuntime::DiscreteEvent {
            horizon: horizon_for(app),
        },
    }
}

fn voting_spec(name: &str, app: App, seed: u64, fault: Option<(usize, FaultPlan)>) -> JobSpec {
    let profile = app.profile();
    let model = profile.model;
    let period = model.producer.period;
    let service = period / SERVICE_DIVISOR;
    let offset = service + model.producer.jitter + TimeNs::from_ms(1);
    let mid_jitter = TimeNs::from_ns(
        (model.replica_out[0].jitter.as_ns() + model.replica_out[1].jitter.as_ns()) / 2,
    );
    let nmodel = NModularModel {
        producer: model.producer,
        consumer: model.consumer,
        replicas: vec![
            model.replica_out[0],
            model.replica_out[1],
            PjdModel::new(period, mid_jitter, TimeNs::ZERO),
        ],
    };
    let sizing = NSizingReport::analyze(&nmodel).expect("profile models are bounded");
    let mut faults = vec![FaultPlan::healthy(); 3];
    if let Some((replica, plan)) = fault {
        faults[replica] = plan;
    }
    let factory = NJitterStageReplica {
        service,
        out_models: nmodel.replicas.clone(),
        offset,
        seed_base: seed ^ 0x33,
    };
    JobSpec {
        name: name.to_string(),
        template: JobTemplate::NModularVoting {
            model: nmodel,
            sizing,
            token_count: LOAD_TOKENS,
            seeds: (seed ^ 0xA5A5, seed ^ 0x5A5A),
            payload: payload_cycle(seed, profile.input_token_bytes),
            factory: Arc::new(factory),
            faults,
        },
        relative_deadline: Duration::from_secs(60),
        runtime: JobRuntime::DiscreteEvent {
            horizon: horizon_for(app),
        },
    }
}

/// Runs the chaos-under-load tenant mix and returns the fleet's report.
///
/// The mix (all deterministic DES jobs, seeded from `seed`):
///
/// 1. `mjpeg-healthy` — fault-free duplicated baseline;
/// 2. `adpcm-failstop` — duplicated, replica 1 fail-stops mid-stream; the
///    executor must latch it and launch a healthy replacement run;
/// 3. `h264-corrupt` — tri-voting, replica 0 flips a payload bit
///    mid-stream; the voting selector must latch it while the delivered
///    stream stays value-clean;
/// 4. `adpcm-voting-healthy` — fault-free voting baseline.
///
/// # Panics
///
/// Panics if the executor rejects any of the four submissions (the default
/// pending capacity far exceeds the tenant count).
pub fn chaos_under_load(seed: u64) -> FleetReport {
    // Fleet workers follow the campaign worker policy (all cores unless
    // RTFT_CAMPAIGN_WORKERS caps it), clamped to the four-tenant mix; at
    // least two so replacement runs overlap the remaining tenants.
    let workers = rtft_kpn::campaign_workers().clamp(2, 4);
    let executor = FleetExecutor::new(FleetConfig {
        workers,
        pending_capacity: 16,
        max_replacements: 2,
    });
    let submissions = [
        duplicated_spec("mjpeg-healthy", App::Mjpeg, seed ^ 0x0101, None),
        duplicated_spec(
            "adpcm-failstop",
            App::Adpcm,
            seed ^ 0x0202,
            Some((1, FaultPlan::fail_stop_at(TimeNs::from_ms(200)))),
        ),
        voting_spec(
            "h264-corrupt",
            App::H264,
            seed ^ 0x0303,
            Some((
                0,
                FaultPlan::corrupt_at(CorruptionMode::BitFlip(17), TimeNs::from_secs(1)),
            )),
        ),
        voting_spec("adpcm-voting-healthy", App::Adpcm, seed ^ 0x0404, None),
    ];
    for spec in submissions {
        let name = spec.name.clone();
        let admission = executor.submit(spec);
        assert!(
            matches!(admission, Admission::Admitted(_)),
            "{name}: {admission:?}"
        );
    }
    executor.join()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_tenants_are_detected_and_healthy_ones_unharmed() {
        let report = chaos_under_load(0xBEEF);
        assert_eq!(report.runs.len(), 4);
        let by_name = |name: &str| {
            report
                .runs
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("missing job {name}"))
        };

        let healthy = by_name("mjpeg-healthy");
        assert!(healthy.faulty_replicas.is_empty(), "{healthy:?}");
        assert!(!healthy.failed);
        assert_eq!(healthy.arrivals, LOAD_TOKENS);

        let failstop = by_name("adpcm-failstop");
        assert_eq!(failstop.faulty_replicas, vec![1], "{failstop:?}");
        assert!(failstop.recovered, "replacement run must come back healthy");
        assert!(!failstop.failed);

        let corrupt = by_name("h264-corrupt");
        assert_eq!(corrupt.faulty_replicas, vec![0], "{corrupt:?}");
        assert!(!corrupt.failed);

        let voting_healthy = by_name("adpcm-voting-healthy");
        assert!(
            voting_healthy.faulty_replicas.is_empty(),
            "{voting_healthy:?}"
        );
        assert_eq!(voting_healthy.arrivals, LOAD_TOKENS);
    }

    #[test]
    fn load_report_is_reproducible_in_outcome() {
        let a = chaos_under_load(7);
        let b = chaos_under_load(7);
        // Wall-clock fields differ run to run; the logical outcome must not.
        let digest = |r: &FleetReport| {
            let mut rows: Vec<String> = r
                .runs
                .iter()
                .map(|j| {
                    format!(
                        "{}:{}:{:?}:{}:{}",
                        j.name, j.arrivals, j.faulty_replicas, j.recovered, j.failed
                    )
                })
                .collect();
            rows.sort();
            rows
        };
        assert_eq!(digest(&a), digest(&b));
    }
}
