//! Network-dimension chaos: a seeded, fault-injecting load harness over a
//! live [`rtft_serve::Server`].
//!
//! Where [`crate::Campaign`] sweeps the *simulated* fault space, this
//! module attacks the serving stack itself: hundreds of concurrent TCP
//! connections drive real `RTFT/1` traffic while a seeded subset turns
//! hostile — replica faults injected inside flushes, slow-loris writers
//! that trickle a frame one byte at a time, malformed and bit-damaged
//! frames, fragmented (partial) writes, abrupt disconnects that reconnect
//! and resume under the same tenant, and deliberate queue-quota storms
//! that force `Busy` refusals. Every scenario's outcome is classified
//! ([`NetOutcome`]) and checked against the framework's guarantees:
//!
//! * permanent replica faults latch within the analytic
//!   [`detection_bound`] for the stream's app;
//! * stalled writers are **evicted losslessly** — the socket closes but
//!   every accepted token stays in the books as `undelivered`;
//! * malformed frames fail the connection **closed** with accounting
//!   intact;
//! * quota storms are pure backpressure — refused tokens are counted
//!   `rejected`, never silently dropped;
//! * at teardown, `offered == delivered + undelivered + rejected` holds
//!   per stream *and* per tenant, and [`replay_verify`] over the
//!   surviving write-ahead log comes back clean.
//!
//! The harness is deterministic per seed: the scenario schedule, every
//! per-scenario classification, every count in the canonical
//! [`NetChaosReport::to_json`] — including the DES-virtual detection
//! latencies — are byte-identical across runs of the same
//! [`NetChaosConfig`]. Wall-clock measurements (elapsed time, retry
//! sleeps) live on the report struct but are excluded from the canonical
//! JSON. [`soak_net_chaos`] loops seeded waves under a wall-clock budget
//! for minutes-long soaks.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use rtft_apps::networks::App;
use rtft_fleet::FleetConfig;
use rtft_kpn::SplitMix64;
use rtft_obs::json::{array, escape, JsonObject};
use rtft_rtc::TimeNs;
use rtft_serve::wire::{read_frame, write_frame, write_tokens};
use rtft_serve::{
    detection_bound, hetero_detection_bound, hetero_redundancy, replay_verify, workload,
    BusyReason, Client, FaultInjection, Frame, ProtocolError, RetryPolicy, ServeError, ServeReport,
    ServeRuntime, Server, ServerConfig, StreamAccount, TenancyConfig, TenantConfig, TokensAck,
    WalConfig, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};

use crate::bounds::BoundCheck;

/// Distinct load tenants the well-behaved connections spread across.
const LOAD_TENANTS: u32 = 8;

/// Whole-frame read deadline the server enforces (the slow-loris guard).
/// Generous relative to the partial-write scenario's 100 ms mid-frame
/// pause, so scheduler jitter under hundreds of concurrent threads
/// cannot evict a merely-fragmented (as opposed to stalled) writer.
const READ_TIMEOUT: Duration = Duration::from_secs(1);

/// Idle deadline — generous, so well-behaved connections waiting their
/// turn in a large wave are never evicted.
const MAX_IDLE: Duration = Duration::from_secs(30);

/// Injection instant for the replica-fault scenarios (virtual time,
/// proven in-bound for the MJPEG profile by the serve acceptance test).
const INJECT_AT_MS: u64 = 120;

/// Milliseconds between slow-loris bytes (each gap is under
/// [`READ_TIMEOUT`], so only the whole-frame deadline can catch it).
const TRICKLE_GAP: Duration = Duration::from_millis(60);

/// Bytes a slow-loris writer trickles before listening for the eviction.
const TRICKLE_BYTES: usize = 5;

/// Sampling stride the hetero-fault scenarios open their streams with.
/// Small enough that the sampled-divergence bound fits comfortably
/// inside one flush of [`HETERO_NET_TOKENS`] MJPEG tokens.
const HETERO_NET_STRIDE: u64 = 4;

/// Minimum tokens per flush for a hetero-fault stream: the checker
/// fail-stops at [`INJECT_AT_MS`] and the main stream must keep
/// producing samples long enough for the sampled gap to latch.
const HETERO_NET_TOKENS: usize = 24;

/// The seven network-fault kinds the harness injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// A permanent fail-stop fault injected into replica 1 of every
    /// flush on the stream (server-side [`FaultInjection`]).
    ReplicaFault,
    /// A writer that starts a frame and trickles it one byte at a time —
    /// each inter-byte gap short, the whole frame never completing.
    SlowLoris,
    /// A deliberately invalid frame (unknown tag, trailing bytes,
    /// dishonest token count, or zero length) after valid traffic.
    Malformed,
    /// A valid frame written in two fragments with a pause between them
    /// — must be reassembled, not evicted.
    PartialWrite,
    /// An abrupt socket drop (no `Close`) followed by a reconnect under
    /// the same tenant that resumes streaming on a fresh stream.
    Disconnect,
    /// A tenant sized to overflow its queue quota, forcing a
    /// deterministic `Busy{quota-exceeded}` refusal mid-stream.
    BusyStorm,
    /// A permanent fail-stop fault injected into the *checker* of a
    /// sampled-checker stream (opened with the
    /// [`HETERO_NET_STRIDE`] redundancy byte) — detection must land
    /// within the k-dependent sampled-divergence bound.
    HeteroFault,
}

impl NetFaultKind {
    /// Every kind, in schedule order.
    pub const ALL: [NetFaultKind; 7] = [
        NetFaultKind::ReplicaFault,
        NetFaultKind::SlowLoris,
        NetFaultKind::Malformed,
        NetFaultKind::PartialWrite,
        NetFaultKind::Disconnect,
        NetFaultKind::BusyStorm,
        NetFaultKind::HeteroFault,
    ];

    /// Stable lowercase label (reports, schedules).
    pub fn label(&self) -> &'static str {
        match self {
            NetFaultKind::ReplicaFault => "replica-fault",
            NetFaultKind::SlowLoris => "slow-loris",
            NetFaultKind::Malformed => "malformed",
            NetFaultKind::PartialWrite => "partial-write",
            NetFaultKind::Disconnect => "disconnect",
            NetFaultKind::BusyStorm => "busy-storm",
            NetFaultKind::HeteroFault => "hetero-fault",
        }
    }
}

/// How a scenario's injected condition resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetOutcome {
    /// Replica fault latched within the analytic detection bound on
    /// every flush.
    DetectedInBound,
    /// Replica fault latched, but at least one latency exceeded the
    /// bound.
    DetectedLate,
    /// The connection was evicted and every accepted token stayed in the
    /// books.
    EvictedLossless,
    /// The malformed frame ended the connection cleanly, accounting
    /// intact.
    FailedClosed,
    /// The reconnected client resumed streaming and lost nothing.
    Resumed,
    /// The quota storm was refused, retried, and fully delivered.
    Backpressured,
    /// Unremarkable: every token offered was delivered.
    Clean,
    /// An invariant broke — the details are in the report's violations.
    Violation,
}

impl NetOutcome {
    /// Every class, in report order.
    pub const ALL: [NetOutcome; 8] = [
        NetOutcome::DetectedInBound,
        NetOutcome::DetectedLate,
        NetOutcome::EvictedLossless,
        NetOutcome::FailedClosed,
        NetOutcome::Resumed,
        NetOutcome::Backpressured,
        NetOutcome::Clean,
        NetOutcome::Violation,
    ];

    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            NetOutcome::DetectedInBound => "detected-in-bound",
            NetOutcome::DetectedLate => "detected-late",
            NetOutcome::EvictedLossless => "evicted-lossless",
            NetOutcome::FailedClosed => "failed-closed",
            NetOutcome::Resumed => "resumed",
            NetOutcome::Backpressured => "backpressured",
            NetOutcome::Clean => "clean",
            NetOutcome::Violation => "violation",
        }
    }
}

/// One connection's scripted role in the wave.
#[derive(Debug, Clone)]
pub struct NetScenario {
    /// Client index — also the stream id its phase-1 open receives
    /// (opens are sequential, so the mapping is exact).
    pub conn: u32,
    /// The injected fault, or `None` for a well-behaved load client.
    pub kind: Option<NetFaultKind>,
    /// Application profile the stream runs.
    pub app: App,
    /// Tenant name the connection's `Hello` carries.
    pub tenant: String,
}

impl NetScenario {
    /// The redundancy byte the stream's phase-1 open carries: the
    /// sampled-checker encoding for hetero-fault scenarios, the
    /// duplicated pair for everyone else.
    pub fn redundancy(&self) -> u8 {
        match self.kind {
            Some(NetFaultKind::HeteroFault) => {
                hetero_redundancy(HETERO_NET_STRIDE).expect("stride is a small power of two")
            }
            _ => 2,
        }
    }
}

/// Harness sizing. Fully scalar, so a soak can derive per-wave seeds.
#[derive(Debug, Clone, Copy)]
pub struct NetChaosConfig {
    /// Base seed: schedule, payloads, jitter, corruption choices.
    pub seed: u64,
    /// Concurrent client connections in the wave.
    pub connections: u32,
    /// How many of them are hostile (cycling [`NetFaultKind::ALL`]).
    pub hostile: u32,
    /// Tokens per batch.
    pub tokens_per_batch: usize,
    /// Batches each well-behaved client streams.
    pub batches: usize,
    /// Run the server with a write-ahead log and finish with
    /// [`replay_verify`] (the RepTFD-style check).
    pub wal: bool,
}

impl Default for NetChaosConfig {
    fn default() -> Self {
        NetChaosConfig {
            seed: 0xDAC14,
            connections: 64,
            hostile: 8,
            tokens_per_batch: 4,
            batches: 2,
            wal: true,
        }
    }
}

/// The deterministic scenario schedule for `cfg`: the first
/// `cfg.hostile` clients cycle through [`NetFaultKind::ALL`], the rest
/// are load clients; apps cycle per index (replica-fault and
/// hetero-fault scenarios pin MJPEG, whose injection recipe is proven
/// in-bound); busy-storm scenarios get dedicated over-quota tenants,
/// everyone else spreads over [`LOAD_TENANTS`] shared ones.
pub fn generate_net_scenarios(cfg: &NetChaosConfig) -> Vec<NetScenario> {
    (0..cfg.connections)
        .map(|i| {
            let kind =
                (i < cfg.hostile).then(|| NetFaultKind::ALL[i as usize % NetFaultKind::ALL.len()]);
            let app = match kind {
                Some(NetFaultKind::ReplicaFault) | Some(NetFaultKind::HeteroFault) => App::Mjpeg,
                _ => App::ALL[i as usize % App::ALL.len()],
            };
            let tenant = match kind {
                Some(NetFaultKind::BusyStorm) => format!("storm-{i}"),
                _ => format!("load-{}", i % LOAD_TENANTS),
            };
            NetScenario {
                conn: i,
                kind,
                app,
                tenant,
            }
        })
        .collect()
}

/// One scenario's reconciled outcome: the client's view checked against
/// the server's books. Every field below is deterministic per seed
/// (detection latencies are DES virtual time).
#[derive(Debug, Clone)]
pub struct NetScenarioOutcome {
    /// The scenario that ran.
    pub scenario: NetScenario,
    /// Its classification.
    pub class: NetOutcome,
    /// Tokens the client tried to send (accepted + refused).
    pub offered: u64,
    /// Tokens the server accepted (from its stream accounts).
    pub tokens_in: u64,
    /// Tokens delivered back as outputs.
    pub delivered: u64,
    /// Accepted tokens reported undelivered.
    pub undelivered: u64,
    /// Tokens refused at admission — still in the client's hands.
    pub rejected: u64,
    /// Fault latches the client received.
    pub faults: u64,
    /// Detection latencies of those latches (virtual ns, deterministic).
    pub detection_latencies_ns: Vec<u64>,
    /// Flush retries plus forced token refusals (wall-clock-dependent
    /// where fleet backpressure is possible; excluded from the canonical
    /// JSON).
    pub retries: u64,
}

/// What one chaos-net wave produced.
#[derive(Debug)]
pub struct NetChaosReport {
    /// The configuration that ran.
    pub config: NetChaosConfig,
    /// Per-scenario reconciled outcomes, by client index.
    pub outcomes: Vec<NetScenarioOutcome>,
    /// Connections the server evicted (must equal the slow-loris count).
    pub evictions: u64,
    /// Protocol errors the server counted (must equal the malformed
    /// count).
    pub protocol_errors: u64,
    /// `replay_verify` over the surviving WAL came back clean (`true`
    /// when no WAL was configured).
    pub replay_clean: bool,
    /// Every invariant breach, human-readable. Empty on a clean wave.
    pub violations: Vec<String>,
    /// The server's full end-of-life report (stream accounts, tenant
    /// directory, fleet view). Excluded from the canonical JSON — some
    /// of it (reconnect stream ids, wall-clock fleet data) is not
    /// deterministic across runs.
    pub serve: ServeReport,
    /// Wall-clock duration of the wave (excluded from canonical JSON).
    pub elapsed: Duration,
}

impl NetChaosReport {
    /// Scenarios classified as `class`.
    pub fn count(&self, class: NetOutcome) -> u64 {
        self.outcomes.iter().filter(|o| o.class == class).count() as u64
    }

    /// Total tokens the server accepted.
    pub fn accepted_tokens(&self) -> u64 {
        self.outcomes.iter().map(|o| o.tokens_in).sum()
    }

    /// Total tokens delivered back to clients.
    pub fn delivered_tokens(&self) -> u64 {
        self.outcomes.iter().map(|o| o.delivered).sum()
    }

    /// Total tokens refused at admission.
    pub fn rejected_tokens(&self) -> u64 {
        self.outcomes.iter().map(|o| o.rejected).sum()
    }

    /// Every detection latency in the wave (virtual ns).
    pub fn detection_latencies(&self) -> Vec<u64> {
        self.outcomes
            .iter()
            .flat_map(|o| o.detection_latencies_ns.iter().copied())
            .collect()
    }

    /// `true` when no invariant broke.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The canonical report: scenario schedule, per-fault
    /// classification, eviction/refusal totals, replay verdict.
    /// **Byte-identical across runs of the same config** — wall-clock
    /// facts (elapsed, retry counts, the raw serve report) are
    /// deliberately absent.
    pub fn to_json(&self) -> String {
        let mut classes = JsonObject::new();
        for class in NetOutcome::ALL {
            classes = classes.u64_field(class.label(), self.count(class));
        }
        let scenarios = array(self.outcomes.iter().map(|o| {
            JsonObject::new()
                .u64_field("conn", o.scenario.conn as u64)
                .str_field("kind", o.scenario.kind.map_or("load", |k| k.label()))
                .str_field("app", o.scenario.app.label())
                .str_field("tenant", &o.scenario.tenant)
                .str_field("class", o.class.label())
                .u64_field("offered", o.offered)
                .u64_field("tokens_in", o.tokens_in)
                .u64_field("delivered", o.delivered)
                .u64_field("undelivered", o.undelivered)
                .u64_field("rejected", o.rejected)
                .u64_field("faults", o.faults)
                .raw_field(
                    "detection_latencies_ns",
                    &array(o.detection_latencies_ns.iter().map(|l| l.to_string())),
                )
                .finish()
        }));
        JsonObject::new()
            .str_field("schema", "rtft-chaos-net-v1")
            .u64_field("seed", self.config.seed)
            .u64_field("connections", self.config.connections as u64)
            .u64_field("hostile", self.config.hostile as u64)
            .u64_field("tokens_per_batch", self.config.tokens_per_batch as u64)
            .u64_field("batches", self.config.batches as u64)
            .bool_field("wal", self.config.wal)
            .raw_field("classes", &classes.finish())
            .raw_field("scenarios", &scenarios)
            .u64_field("evictions", self.evictions)
            .u64_field("protocol_errors", self.protocol_errors)
            .u64_field("accepted", self.accepted_tokens())
            .u64_field("delivered", self.delivered_tokens())
            .u64_field("rejected", self.rejected_tokens())
            .bool_field("replay_clean", self.replay_clean)
            .raw_field(
                "violations",
                &array(self.violations.iter().map(|v| format!("\"{}\"", escape(v)))),
            )
            .finish()
    }
}

/// A minutes-capable soak: seeded waves of [`run_net_chaos`] until the
/// wall-clock budget is spent.
#[derive(Debug)]
pub struct NetSoakReport {
    /// Every wave's report, in order. Wave `i` ran seed
    /// `cfg.seed + i` in its own WAL subdirectory.
    pub waves: Vec<NetChaosReport>,
    /// Total wall-clock time of the soak.
    pub elapsed: Duration,
}

impl NetSoakReport {
    /// Violations across every wave.
    pub fn violations(&self) -> Vec<String> {
        self.waves
            .iter()
            .enumerate()
            .flat_map(|(i, w)| w.violations.iter().map(move |v| format!("wave {i}: {v}")))
            .collect()
    }

    /// `true` when no wave broke an invariant.
    pub fn clean(&self) -> bool {
        self.waves.iter().all(|w| w.clean())
    }
}

/// Runs seeded chaos waves until `budget` wall-clock time is spent (at
/// least one wave always runs). Wave `i` uses `cfg.seed + i` and logs
/// into `dir/wave-{i}`, so every wave's canonical report is itself
/// reproducible in isolation.
pub fn soak_net_chaos(
    cfg: &NetChaosConfig,
    budget: Duration,
    dir: &Path,
) -> Result<NetSoakReport, ServeError> {
    let start = Instant::now();
    let mut waves = Vec::new();
    loop {
        let mut wave_cfg = *cfg;
        wave_cfg.seed = cfg.seed.wrapping_add(waves.len() as u64);
        let wave_dir = dir.join(format!("wave-{}", waves.len()));
        std::fs::create_dir_all(&wave_dir).map_err(ServeError::Io)?;
        waves.push(run_net_chaos(&wave_cfg, &wave_dir)?);
        if start.elapsed() >= budget {
            break;
        }
    }
    Ok(NetSoakReport {
        waves,
        elapsed: start.elapsed(),
    })
}

/// What one scenario thread observed, before reconciliation with the
/// server's books.
#[derive(Debug, Default)]
struct ClientView {
    class: Option<NetOutcome>,
    offered: u64,
    accepted: u64,
    delivered_seen: u64,
    rejected: u64,
    retries: u64,
    latencies: Vec<u64>,
    /// Stream opened by a reconnect (disconnect scenarios).
    second_stream: Option<u32>,
    errors: Vec<String>,
}

impl ClientView {
    fn err(&mut self, conn: u32, what: impl std::fmt::Display) {
        self.errors.push(format!("conn {conn}: {what}"));
    }
}

enum Conn {
    Api(Client),
    Raw(TcpStream),
}

/// Runs one full chaos wave: start a hardened server, open every
/// scenario's connection and stream sequentially (stream id == client
/// index), unleash all scripts concurrently, then tear down and check
/// every invariant. Returns the reconciled report; infrastructure
/// failures (bind, handshake) surface as errors, invariant breaches as
/// [`NetChaosReport::violations`].
pub fn run_net_chaos(cfg: &NetChaosConfig, dir: &Path) -> Result<NetChaosReport, ServeError> {
    let started = Instant::now();
    let scenarios = generate_net_scenarios(cfg);
    let inject: Vec<FaultInjection> = scenarios
        .iter()
        .filter(|s| {
            matches!(
                s.kind,
                Some(NetFaultKind::ReplicaFault) | Some(NetFaultKind::HeteroFault)
            )
        })
        .map(|s| FaultInjection {
            stream: s.conn,
            replica: 1,
            at: TimeNs::from_ms(INJECT_AT_MS),
        })
        .collect();
    let server_cfg = ServerConfig {
        fleet: FleetConfig {
            workers: rtft_kpn::campaign_workers().clamp(2, 8),
            // Every client keeps at most one flush outstanding, so this
            // never refuses QueueFull — storms exercise quota refusals
            // deterministically instead.
            pending_capacity: cfg.connections as usize * 2 + 16,
            max_replacements: 0,
        },
        runtime: ServeRuntime::DiscreteEvent,
        max_frame: DEFAULT_MAX_FRAME,
        inject,
        seed: cfg.seed,
        wal: cfg.wal.then(|| WalConfig::new(dir).with_fsync(false)),
        tenancy: Some(TenancyConfig::default()),
        read_timeout: Some(READ_TIMEOUT),
        max_idle: Some(MAX_IDLE),
    };
    let server = Server::start("127.0.0.1:0", server_cfg.clone())?;
    let addr = server.addr();

    // Storm tenants are pre-attached with a queue quota of exactly one
    // batch: their second un-flushed batch is refused deterministically.
    for s in &scenarios {
        if s.kind == Some(NetFaultKind::BusyStorm) {
            server
                .attach_tenant(
                    &s.tenant,
                    TenantConfig {
                        queue_quota: cfg.tokens_per_batch as u64,
                        ..TenantConfig::default()
                    },
                )
                .expect("storm tenant names are unique");
        }
    }

    // Phase 1 — sequential connect + open, so stream ids equal client
    // indices and the fault-injection targets (and the canonical report)
    // are deterministic.
    let mut conns: Vec<Conn> = Vec::with_capacity(scenarios.len());
    for s in &scenarios {
        let raw = matches!(
            s.kind,
            Some(NetFaultKind::SlowLoris)
                | Some(NetFaultKind::Malformed)
                | Some(NetFaultKind::PartialWrite)
        );
        let stream = if raw {
            let mut sock = raw_connect(addr, &s.tenant)?;
            let id = raw_open(&mut sock, s.app)?;
            conns.push(Conn::Raw(sock));
            id
        } else {
            let mut client = Client::connect(addr, &s.tenant)?;
            let id = client.open_stream(s.app, s.redundancy())?.expect_stream();
            conns.push(Conn::Api(client));
            id
        };
        assert_eq!(stream, s.conn, "phase-1 opens are sequential");
    }

    // Phase 2 — every script at once.
    let handles: Vec<_> = scenarios
        .iter()
        .cloned()
        .zip(conns)
        .map(|(s, conn)| {
            let cfg = *cfg;
            std::thread::Builder::new()
                .name(format!("chaos-net-{}", s.conn))
                .spawn(move || drive_scenario(&cfg, addr, &s, conn))
                .expect("spawn scenario thread")
        })
        .collect();
    let views: Vec<ClientView> = handles
        .into_iter()
        .map(|h| h.join().expect("scenario thread panicked"))
        .collect();

    let protocol_errors = server.registry().counter("serve.protocol.errors").get();
    let report = server.shutdown();

    let mut violations: Vec<String> = Vec::new();
    let outcomes = reconcile(cfg, &scenarios, &views, &report, &mut violations);
    check_tenants(&scenarios, &outcomes, &report, &mut violations);

    let slow_loris = scenarios
        .iter()
        .filter(|s| s.kind == Some(NetFaultKind::SlowLoris))
        .count() as u64;
    if report.evictions != slow_loris {
        violations.push(format!(
            "evictions {} != slow-loris scenarios {slow_loris}",
            report.evictions
        ));
    }
    let malformed = scenarios
        .iter()
        .filter(|s| s.kind == Some(NetFaultKind::Malformed))
        .count() as u64;
    if protocol_errors != malformed {
        violations.push(format!(
            "protocol errors {protocol_errors} != malformed scenarios {malformed}"
        ));
    }
    if !report.balanced() {
        violations.push("serve report unbalanced: tokens_in != delivered + undelivered".into());
    }

    let replay_clean = if cfg.wal {
        let verify = replay_verify(dir, &server_cfg)?;
        if !verify.clean() {
            violations.push(format!(
                "replay_verify found {} divergent positions",
                verify.divergent()
            ));
        }
        verify.clean()
    } else {
        true
    };

    Ok(NetChaosReport {
        config: *cfg,
        outcomes,
        evictions: report.evictions,
        protocol_errors,
        replay_clean,
        violations,
        serve: report,
        elapsed: started.elapsed(),
    })
}

/// Folds each scenario's client view together with the server's stream
/// accounts into the reconciled outcome rows, recording every
/// discrepancy as a violation.
fn reconcile(
    cfg: &NetChaosConfig,
    scenarios: &[NetScenario],
    views: &[ClientView],
    report: &ServeReport,
    violations: &mut Vec<String>,
) -> Vec<NetScenarioOutcome> {
    let by_id: std::collections::HashMap<u32, &StreamAccount> =
        report.streams.iter().map(|s| (s.id, s)).collect();
    scenarios
        .iter()
        .zip(views)
        .map(|(s, view)| {
            let conn = s.conn;
            let mut rows: Vec<&StreamAccount> = Vec::new();
            match by_id.get(&conn) {
                Some(row) => rows.push(row),
                None => violations.push(format!("conn {conn}: stream {conn} not in report")),
            }
            if let Some(second) = view.second_stream {
                match by_id.get(&second) {
                    Some(row) => rows.push(row),
                    None => violations.push(format!("conn {conn}: stream {second} not in report")),
                }
            }
            let tokens_in: u64 = rows.iter().map(|r| r.tokens_in).sum();
            let delivered: u64 = rows.iter().map(|r| r.delivered).sum();
            let undelivered: u64 = rows.iter().map(|r| r.undelivered).sum();
            let rejected: u64 = rows.iter().map(|r| r.rejected).sum();
            let faults: u64 = rows.iter().map(|r| r.faults).sum();

            for e in &view.errors {
                violations.push(e.clone());
            }
            // The offered balance: everything the client tried to send
            // is accepted (and then delivered or undelivered) or
            // rejected — nothing vanishes.
            if view.offered != tokens_in + rejected {
                violations.push(format!(
                    "conn {conn}: offered {} != tokens_in {tokens_in} + rejected {rejected}",
                    view.offered
                ));
            }
            if view.accepted != tokens_in {
                violations.push(format!(
                    "conn {conn}: client saw {} accepted, server books {tokens_in}",
                    view.accepted
                ));
            }
            if view.delivered_seen != delivered {
                violations.push(format!(
                    "conn {conn}: client saw {} outputs, server books {delivered}",
                    view.delivered_seen
                ));
            }
            if view.rejected != rejected {
                violations.push(format!(
                    "conn {conn}: client saw {} rejected, server books {rejected}",
                    view.rejected
                ));
            }
            let evicted = rows.iter().any(|r| r.evicted);
            let expect_evicted = s.kind == Some(NetFaultKind::SlowLoris);
            if evicted != expect_evicted {
                violations.push(format!(
                    "conn {conn}: evicted={evicted}, expected {expect_evicted}"
                ));
            }
            let expected_faults = match s.kind {
                Some(NetFaultKind::ReplicaFault) | Some(NetFaultKind::HeteroFault) => {
                    cfg.batches as u64
                }
                _ => 0,
            };
            if faults != expected_faults {
                violations.push(format!(
                    "conn {conn}: {faults} fault latches, expected {expected_faults}"
                ));
            }

            let class = if view.errors.is_empty() && view.offered == tokens_in + rejected {
                view.class.unwrap_or(NetOutcome::Clean)
            } else {
                NetOutcome::Violation
            };
            NetScenarioOutcome {
                scenario: s.clone(),
                class,
                offered: view.offered,
                tokens_in,
                delivered,
                undelivered,
                rejected,
                faults,
                detection_latencies_ns: view.latencies.clone(),
                retries: view.retries,
            }
        })
        .collect()
}

/// The per-tenant half of the balance invariant: grouping the stream
/// accounts by tenant must agree with the tenant directory's own books,
/// and each tenant's offered total must balance.
fn check_tenants(
    scenarios: &[NetScenario],
    outcomes: &[NetScenarioOutcome],
    report: &ServeReport,
    violations: &mut Vec<String>,
) {
    let Some(directory) = &report.tenants else {
        return;
    };
    let mut by_tenant: std::collections::HashMap<u64, (u64, u64, u64, u64)> =
        std::collections::HashMap::new();
    for row in &report.streams {
        let e = by_tenant.entry(row.tenant).or_default();
        e.0 += row.tokens_in;
        e.1 += row.delivered;
        e.2 += row.undelivered;
        e.3 += row.rejected;
    }
    for t in &directory.tenants {
        let (tokens_in, delivered, undelivered, _) =
            by_tenant.get(&t.id).copied().unwrap_or_default();
        if t.tokens_in != tokens_in {
            violations.push(format!(
                "tenant {}: directory tokens_in {} != stream sum {tokens_in}",
                t.id, t.tokens_in
            ));
        }
        if t.delivered != delivered {
            violations.push(format!(
                "tenant {}: directory delivered {} != stream sum {delivered}",
                t.id, t.delivered
            ));
        }
        if tokens_in != delivered + undelivered {
            violations.push(format!(
                "tenant {}: {tokens_in} accepted != {delivered} delivered + {undelivered} undelivered",
                t.id
            ));
        }
    }
    // Offered per tenant (client side) == accepted + rejected per tenant.
    let mut offered: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for (s, o) in scenarios.iter().zip(outcomes) {
        *offered.entry(s.tenant.as_str()).or_default() += o.offered;
    }
    let mut booked: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for (s, o) in scenarios.iter().zip(outcomes) {
        *booked.entry(s.tenant.as_str()).or_default() += o.tokens_in + o.rejected;
    }
    for (name, off) in offered {
        let b = booked.get(name).copied().unwrap_or(0);
        if off != b {
            violations.push(format!(
                "tenant {name}: offered {off} != accepted+rejected {b}"
            ));
        }
    }
}

/// Dispatches one scenario's script.
fn drive_scenario(
    cfg: &NetChaosConfig,
    addr: SocketAddr,
    s: &NetScenario,
    conn: Conn,
) -> ClientView {
    let mut view = ClientView::default();
    let outcome = match (s.kind, conn) {
        (None, Conn::Api(client)) => drive_load(cfg, s, client, &mut view),
        (Some(NetFaultKind::ReplicaFault), Conn::Api(client))
        | (Some(NetFaultKind::HeteroFault), Conn::Api(client)) => {
            drive_load(cfg, s, client, &mut view)
        }
        (Some(NetFaultKind::BusyStorm), Conn::Api(client)) => {
            drive_storm(cfg, s, client, &mut view)
        }
        (Some(NetFaultKind::Disconnect), Conn::Api(client)) => {
            drive_disconnect(cfg, addr, s, client, &mut view)
        }
        (Some(NetFaultKind::SlowLoris), Conn::Raw(sock)) => {
            drive_slow_loris(cfg, s, sock, &mut view)
        }
        (Some(NetFaultKind::Malformed), Conn::Raw(sock)) => {
            drive_malformed(cfg, s, sock, &mut view)
        }
        (Some(NetFaultKind::PartialWrite), Conn::Raw(sock)) => {
            drive_partial_write(cfg, s, sock, &mut view)
        }
        _ => unreachable!("scenario kind / connection type mismatch"),
    };
    if let Err(e) = outcome {
        view.err(s.conn, format!("script failed: {e}"));
    }
    view
}

/// Batch size for one scenario. Replica-fault streams always carry at
/// least 12 tokens per flush: the MJPEG run must extend past the
/// injection instant plus the detection window, or the fault would
/// never activate inside the flush. Hetero-fault streams need more —
/// the checker only votes every [`HETERO_NET_STRIDE`]-th token, so the
/// sampled gap takes proportionally longer to cross the threshold.
fn batch_tokens(cfg: &NetChaosConfig, s: &NetScenario) -> usize {
    match s.kind {
        Some(NetFaultKind::ReplicaFault) => cfg.tokens_per_batch.max(12),
        Some(NetFaultKind::HeteroFault) => cfg.tokens_per_batch.max(HETERO_NET_TOKENS),
        _ => cfg.tokens_per_batch,
    }
}

/// Seeded payloads for one scenario (deterministic per `(seed, conn)`).
fn batches_for(cfg: &NetChaosConfig, s: &NetScenario, count: usize) -> Vec<Vec<Vec<u8>>> {
    let per = batch_tokens(cfg, s);
    let all = workload(s.app, cfg.seed ^ (0xC0DE + s.conn as u64), count * per);
    all.chunks(per).map(<[_]>::to_vec).collect()
}

fn retry_policy(cfg: &NetChaosConfig, s: &NetScenario) -> RetryPolicy {
    RetryPolicy {
        seed: cfg.seed ^ s.conn as u64,
        ..RetryPolicy::default()
    }
}

/// Sends one batch, using the durable acknowledgement when a WAL is
/// configured; returns `true` if the batch was accepted.
fn send_batch(
    cfg: &NetChaosConfig,
    client: &mut Client,
    stream: u32,
    batch: Vec<Vec<u8>>,
) -> Result<bool, ServeError> {
    if cfg.wal {
        Ok(matches!(
            client.send_tokens_acked(stream, &batch)?,
            TokensAck::Durable(_)
        ))
    } else {
        client.send_tokens(stream, &batch)?;
        Ok(true)
    }
}

/// Well-behaved load, also the replica-fault and hetero-fault scripts
/// (the fault is injected server-side; the client just collects the
/// latches and judges them against the structure's analytic bound).
fn drive_load(
    cfg: &NetChaosConfig,
    s: &NetScenario,
    mut client: Client,
    view: &mut ClientView,
) -> Result<(), ServeError> {
    let stream = s.conn;
    let policy = retry_policy(cfg, s);
    for batch in batches_for(cfg, s, cfg.batches) {
        let n = batch.len() as u64;
        view.offered += n;
        if !send_batch(cfg, &mut client, stream, batch)? {
            view.err(s.conn, "load batch unexpectedly refused");
            continue;
        }
        view.accepted += n;
        let rf = client.send_flush_with_retry(stream, &policy)?;
        view.retries += rf.retries as u64;
        if !rf.outcome.admitted() {
            view.err(s.conn, format!("flush gave up: {:?}", rf.outcome.busy));
        }
        view.delivered_seen += rf.outcome.outputs.len() as u64;
        view.latencies
            .extend(rf.outcome.faults.iter().map(|f| f.detection_latency_ns));
    }
    let fin = client.close(stream)?;
    view.delivered_seen += fin.outputs.len() as u64;
    view.latencies
        .extend(fin.faults.iter().map(|f| f.detection_latency_ns));

    // Wire-side latencies already fold the activation grace in, so both
    // fault kinds share the no-extra-grace [`BoundCheck`]; only the
    // analytic bound differs (duplicated divergence vs. the k-dependent
    // sampled-divergence bound of the checker structure).
    let check = match s.kind {
        Some(NetFaultKind::ReplicaFault) => Some(BoundCheck::wire(detection_bound(s.app))),
        Some(NetFaultKind::HeteroFault) => Some(BoundCheck::wire(hetero_detection_bound(
            s.app,
            HETERO_NET_STRIDE,
            1,
        ))),
        _ => None,
    };
    view.class = Some(match check {
        Some(check) => {
            if view.latencies.len() != cfg.batches {
                view.err(
                    s.conn,
                    format!(
                        "{} fault latches, expected one per flush ({})",
                        view.latencies.len(),
                        cfg.batches
                    ),
                );
                NetOutcome::Violation
            } else if view
                .latencies
                .iter()
                .all(|&l| l > 0 && check.admits_latency(TimeNs::from_ns(l)))
            {
                NetOutcome::DetectedInBound
            } else {
                NetOutcome::DetectedLate
            }
        }
        None => NetOutcome::Clean,
    });
    Ok(())
}

/// Over-quota tenant: the second un-flushed batch is refused
/// (`quota-exceeded`), a flush frees the quota, and the refused batch is
/// re-sent and delivered — backpressure round-trip, zero loss.
fn drive_storm(
    cfg: &NetChaosConfig,
    s: &NetScenario,
    mut client: Client,
    view: &mut ClientView,
) -> Result<(), ServeError> {
    let stream = s.conn;
    let policy = retry_policy(cfg, s);
    let n = cfg.tokens_per_batch as u64;
    let mut batches = batches_for(cfg, s, 2).into_iter();
    let first = batches.next().expect("two batches");
    let second = batches.next().expect("two batches");

    view.offered += n;
    if !send_batch(cfg, &mut client, stream, first)? {
        view.err(s.conn, "first storm batch refused under an empty quota");
    } else {
        view.accepted += n;
    }

    // The deterministic refusal: quota == one batch, one batch buffered.
    view.offered += n;
    let refused = if cfg.wal {
        match client.send_tokens_acked(stream, &second)? {
            TokensAck::Refused(info) => Some(info),
            TokensAck::Durable(_) => None,
        }
    } else {
        client.send_tokens(stream, &second)?;
        Some(client.recv_busy(stream)?)
    };
    match refused {
        Some(info) if info.reason == BusyReason::QuotaExceeded => {
            view.rejected += n;
            view.retries += 1;
        }
        Some(info) => view.err(s.conn, format!("storm refused with {:?}", info.reason)),
        None => view.err(s.conn, "over-quota batch was not refused"),
    }

    // Flush frees the buffered quota; the refused batch then lands.
    for resend in [false, true] {
        if resend {
            view.offered += n;
            if send_batch(cfg, &mut client, stream, second.clone())? {
                view.accepted += n;
            } else {
                view.err(s.conn, "re-sent batch refused after quota freed");
            }
        }
        let rf = client.send_flush_with_retry(stream, &policy)?;
        view.retries += rf.retries as u64;
        if !rf.outcome.admitted() {
            view.err(
                s.conn,
                format!("storm flush gave up: {:?}", rf.outcome.busy),
            );
        }
        view.delivered_seen += rf.outcome.outputs.len() as u64;
    }
    let fin = client.close(stream)?;
    view.delivered_seen += fin.outputs.len() as u64;
    view.class = Some(NetOutcome::Backpressured);
    Ok(())
}

/// Abrupt disconnect (no `Close`), then a reconnect under the same
/// tenant resumes on a fresh stream.
fn drive_disconnect(
    cfg: &NetChaosConfig,
    addr: SocketAddr,
    s: &NetScenario,
    mut client: Client,
    view: &mut ClientView,
) -> Result<(), ServeError> {
    let stream = s.conn;
    let policy = retry_policy(cfg, s);
    let n = cfg.tokens_per_batch as u64;
    let mut batches = batches_for(cfg, s, 2).into_iter();

    view.offered += n;
    if send_batch(
        cfg,
        &mut client,
        stream,
        batches.next().expect("two batches"),
    )? {
        view.accepted += n;
    }
    let rf = client.send_flush_with_retry(stream, &policy)?;
    view.retries += rf.retries as u64;
    view.delivered_seen += rf.outcome.outputs.len() as u64;
    drop(client); // the fault: socket torn down, no Close frame

    let mut client = Client::connect(addr, &s.tenant)?;
    let second = client.open_stream(s.app, 2)?.expect_stream();
    view.second_stream = Some(second);
    view.offered += n;
    if send_batch(
        cfg,
        &mut client,
        second,
        batches.next().expect("two batches"),
    )? {
        view.accepted += n;
    }
    let rf = client.send_flush_with_retry(second, &policy)?;
    view.retries += rf.retries as u64;
    view.delivered_seen += rf.outcome.outputs.len() as u64;
    let fin = client.close(second)?;
    view.delivered_seen += fin.outputs.len() as u64;
    view.class = Some(NetOutcome::Resumed);
    Ok(())
}

/// One accepted batch, then a frame that never completes: a byte every
/// [`TRICKLE_GAP`] until the whole-frame deadline evicts the connection.
fn drive_slow_loris(
    cfg: &NetChaosConfig,
    s: &NetScenario,
    mut sock: TcpStream,
    view: &mut ClientView,
) -> Result<(), ServeError> {
    let stream = s.conn;
    let mut batches = batches_for(cfg, s, 2).into_iter();
    let n = cfg.tokens_per_batch as u64;
    view.offered += n;
    raw_send_tokens(cfg, &mut sock, stream, batches.next().expect("two batches"))?;
    view.accepted += n;

    // Start a valid Tokens frame but never finish it. Each gap is well
    // under the read timeout — only the whole-frame deadline can latch.
    let wire = Frame::Tokens {
        stream,
        payloads: batches
            .next()
            .expect("two batches")
            .into_iter()
            .map(rtft_kpn::Bytes::from)
            .collect(),
    }
    .encode();
    let trickle = TRICKLE_BYTES.min(wire.len() - 1);
    for byte in &wire[..trickle] {
        if sock.write_all(std::slice::from_ref(byte)).is_err() {
            break; // already evicted mid-trickle
        }
        let _ = sock.flush();
        std::thread::sleep(TRICKLE_GAP);
    }
    // The server must close the socket on us, not the other way round.
    sock.set_read_timeout(Some(Duration::from_secs(20)))?;
    match read_frame(&mut sock, DEFAULT_MAX_FRAME) {
        Err(_) => view.class = Some(NetOutcome::EvictedLossless),
        Ok((frame, _)) => view.err(
            s.conn,
            format!("expected eviction, server sent {}", frame.name()),
        ),
    }
    Ok(())
}

/// One accepted batch, then a seeded guaranteed-invalid frame: the
/// connection must fail closed without touching the books.
fn drive_malformed(
    cfg: &NetChaosConfig,
    s: &NetScenario,
    mut sock: TcpStream,
    view: &mut ClientView,
) -> Result<(), ServeError> {
    let stream = s.conn;
    let mut batches = batches_for(cfg, s, 1).into_iter();
    let n = cfg.tokens_per_batch as u64;
    view.offered += n;
    raw_send_tokens(cfg, &mut sock, stream, batches.next().expect("one batch"))?;
    view.accepted += n;

    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ (0xBAD ^ s.conn as u64));
    let junk: Vec<u8> = match rng.next_u64() % 4 {
        0 => {
            // Unknown tag.
            let mut w = Vec::new();
            w.extend_from_slice(&2u32.to_le_bytes());
            w.extend_from_slice(&[0x7F, 0x00]);
            w
        }
        1 => {
            // Valid Flush body with one trailing byte inside the length.
            let wire = Frame::Flush { stream }.encode();
            let len = u32::from_le_bytes(wire[..4].try_into().unwrap()) + 1;
            let mut w = Vec::new();
            w.extend_from_slice(&len.to_le_bytes());
            w.extend_from_slice(&wire[4..]);
            w.push(0x00);
            w
        }
        2 => {
            // Dishonest token count: claims 1000 payloads, carries none.
            let mut w = Vec::new();
            w.extend_from_slice(&9u32.to_le_bytes());
            w.push(0x03);
            w.extend_from_slice(&stream.to_le_bytes());
            w.extend_from_slice(&1000u32.to_le_bytes());
            w
        }
        _ => {
            // Zero-length frame.
            0u32.to_le_bytes().to_vec()
        }
    };
    sock.write_all(&junk)?;
    let _ = sock.flush();
    sock.set_read_timeout(Some(Duration::from_secs(20)))?;
    match read_frame(&mut sock, DEFAULT_MAX_FRAME) {
        Err(_) => view.class = Some(NetOutcome::FailedClosed),
        Ok((frame, _)) => view.err(
            s.conn,
            format!("expected fail-closed, server sent {}", frame.name()),
        ),
    }
    Ok(())
}

/// A valid Tokens frame written in two fragments with a pause between
/// them (shorter than the read timeout): the deadline reader must
/// reassemble it and the batch must deliver in full.
fn drive_partial_write(
    cfg: &NetChaosConfig,
    s: &NetScenario,
    mut sock: TcpStream,
    view: &mut ClientView,
) -> Result<(), ServeError> {
    let stream = s.conn;
    let mut batches = batches_for(cfg, s, 1).into_iter();
    let batch = batches.next().expect("one batch");
    let n = batch.len() as u64;
    view.offered += n;

    let wire = Frame::Tokens {
        stream,
        payloads: batch.into_iter().map(rtft_kpn::Bytes::from).collect(),
    }
    .encode();
    let split = wire.len() / 2;
    sock.write_all(&wire[..split])?;
    sock.flush()?;
    std::thread::sleep(Duration::from_millis(100)); // < READ_TIMEOUT
    sock.write_all(&wire[split..])?;
    sock.flush()?;
    if cfg.wal {
        raw_wait_durable(&mut sock, stream)?;
    }
    view.accepted += n;

    write_frame(&mut sock, &Frame::Flush { stream })?;
    raw_collect(&mut sock, stream, view)?;
    write_frame(&mut sock, &Frame::Close { stream })?;
    raw_collect(&mut sock, stream, view)?;
    view.class = Some(NetOutcome::Clean);
    Ok(())
}

/// Handshakes a raw connection under `tenant`.
fn raw_connect(addr: SocketAddr, tenant: &str) -> Result<TcpStream, ServeError> {
    let mut sock = TcpStream::connect(addr)?;
    sock.set_nodelay(true).ok();
    write_frame(
        &mut sock,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            client: tenant.to_string(),
        },
    )?;
    match read_frame(&mut sock, DEFAULT_MAX_FRAME)?.0 {
        Frame::Accepted { .. } => Ok(sock),
        other => Err(ProtocolError::UnexpectedFrame {
            expected: "Accepted",
            got: other.name(),
        }
        .into()),
    }
}

/// Opens a duplicated stream on a raw connection.
fn raw_open(sock: &mut TcpStream, app: App) -> Result<u32, ServeError> {
    let app = App::ALL
        .iter()
        .position(|a| *a == app)
        .expect("App::ALL contains every variant") as u8;
    write_frame(sock, &Frame::OpenStream { app, redundancy: 2 })?;
    match read_frame(sock, DEFAULT_MAX_FRAME)?.0 {
        Frame::Accepted { id } => Ok(id),
        other => Err(ProtocolError::UnexpectedFrame {
            expected: "Accepted",
            got: other.name(),
        }
        .into()),
    }
}

/// Sends one Tokens batch raw, waiting for the `Durable` ack when the
/// server runs a WAL.
fn raw_send_tokens(
    cfg: &NetChaosConfig,
    sock: &mut TcpStream,
    stream: u32,
    payloads: Vec<Vec<u8>>,
) -> Result<(), ServeError> {
    write_tokens(sock, stream, &payloads)?;
    if cfg.wal {
        raw_wait_durable(sock, stream)?;
    }
    Ok(())
}

/// Blocks until the `Durable` ack for `stream` (raw connections carry
/// exactly one stream, so nothing else needs requeueing).
fn raw_wait_durable(sock: &mut TcpStream, stream: u32) -> Result<(), ServeError> {
    loop {
        if let Frame::Durable { stream: s, .. } = read_frame(sock, DEFAULT_MAX_FRAME)?.0 {
            if s == stream {
                return Ok(());
            }
        }
    }
}

/// Reads push frames for `stream` into `view` until its terminal `Stats`
/// (or a `Busy`, which is recorded as an error — the raw scripts never
/// expect backpressure).
fn raw_collect(sock: &mut TcpStream, stream: u32, view: &mut ClientView) -> Result<(), ServeError> {
    loop {
        match read_frame(sock, DEFAULT_MAX_FRAME)?.0 {
            Frame::Output { stream: s, .. } if s == stream => view.delivered_seen += 1,
            Frame::Fault {
                stream: s,
                detection_latency_ns,
                ..
            } if s == stream => view.latencies.push(detection_latency_ns),
            Frame::Stats { stream: s, .. } if s == stream => return Ok(()),
            Frame::Busy {
                stream: s, reason, ..
            } if s == stream => {
                view.err(stream, format!("unexpected Busy({reason:?})"));
                return Ok(());
            }
            _ => {}
        }
    }
}
