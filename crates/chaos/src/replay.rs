//! Folding WAL replay verdicts into the campaign taxonomy.
//!
//! `rtft-serve`'s `replay_verify` re-runs a logged stream through the
//! deterministic pipeline and diffs the produced output digests against
//! the digests the live run recorded. That diff is itself a fault
//! detector — a third detection site next to the replicator and selector,
//! but one that works *after the fact* and catches transients the
//! redundancy may have let through. This module maps a replay verdict
//! onto [`OutcomeClass`] so chaos campaigns and serve reports speak one
//! vocabulary.

use crate::runner::OutcomeClass;

/// The replay verdict for one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayVerdict {
    /// Output digests the live run logged.
    pub recorded: u64,
    /// Positions where the replayed digest differed (including digests
    /// missing from either side when lengths disagree).
    pub divergent: u64,
    /// Whether the live run had already latched a replica faulty for this
    /// stream — i.e. the fault was known before replay.
    pub known_faulty: bool,
}

/// Classify a replay verdict.
///
/// * Any divergence is [`OutcomeClass::ReplayDivergence`]: the live
///   execution produced output the deterministic pipeline cannot
///   reproduce, which is the definition of an undetected transient.
/// * No divergence on a stream that *had* latched a fault is
///   [`OutcomeClass::Masked`] — the redundancy delivered the correct
///   stream despite the latch, and replay confirms it.
/// * No divergence and no latch is also [`OutcomeClass::Masked`]
///   vacuously (nothing to mask); campaigns count it as a clean run.
pub fn classify_replay(verdict: ReplayVerdict) -> OutcomeClass {
    if verdict.divergent > 0 {
        OutcomeClass::ReplayDivergence
    } else {
        OutcomeClass::Masked
    }
}

/// Diff two digest sequences the way `replay_verify` does: positional
/// comparison plus a length mismatch counted as one divergence per
/// unmatched digest.
pub fn diff_digests(recorded: &[u64], replayed: &[u64]) -> u64 {
    let common = recorded.len().min(replayed.len());
    let mismatched = recorded[..common]
        .iter()
        .zip(&replayed[..common])
        .filter(|(a, b)| a != b)
        .count();
    (mismatched + (recorded.len().max(replayed.len()) - common)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_do_not_diverge() {
        assert_eq!(diff_digests(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(diff_digests(&[], &[]), 0);
    }

    #[test]
    fn positional_mismatch_and_length_mismatch_both_count() {
        assert_eq!(diff_digests(&[1, 2, 3], &[1, 9, 3]), 1);
        assert_eq!(diff_digests(&[1, 2, 3], &[1, 2]), 1);
        assert_eq!(diff_digests(&[1], &[9, 8, 7]), 3);
    }

    #[test]
    fn divergence_classifies_as_replay_divergence() {
        let v = ReplayVerdict {
            recorded: 10,
            divergent: 1,
            known_faulty: false,
        };
        assert_eq!(classify_replay(v), OutcomeClass::ReplayDivergence);
        assert_eq!(classify_replay(v).label(), "replay-divergence");
    }

    #[test]
    fn clean_replay_classifies_as_masked() {
        for known_faulty in [false, true] {
            let v = ReplayVerdict {
                recorded: 10,
                divergent: 0,
                known_faulty,
            };
            assert_eq!(classify_replay(v), OutcomeClass::Masked);
        }
    }
}
