//! # rtft-chaos — deterministic fault-space campaigns
//!
//! Chaos-engineering harness for the rtft workspace (the DAC'14 real-time
//! fault detection and tolerance framework). Where the unit tests of
//! `rtft-core` pin down single mechanisms, this crate sweeps the *fault
//! space*: hundreds of seeded scenarios crossing
//!
//! * **applications** — the paper's Table 1 timing profiles (MJPEG,
//!   ADPCM, H.264) via `rtft-apps`;
//! * **redundancy structures** — the paper's two-replica duplication with
//!   the timing selector, three-replica value voting, and the sampled
//!   checker (full-rate main spot-checked every `k`-th token, swept by
//!   [`generate_hetero_scenarios`]);
//! * **platforms** — ideal Kahn semantics, the SCC mesh, and the SCC mesh
//!   with a degraded NoC (`rtft-scc`);
//! * **fault kinds** — fail-stop, permanent slow-down, silent data
//!   corruption, transient and intermittent stalls, token omission, plus
//!   fault-free surveillance runs.
//!
//! Every scenario outcome is classified **against the analytic bounds** of
//! `rtft-rtc` ([`rtft_rtc::DetectionBounds`]): a permanent timing fault
//! latched inside its bound is [`OutcomeClass::DetectedInBound`]; a latch
//! on a healthy replica is a [`OutcomeClass::FalsePositive`]; an unlatched
//! fault whose output stream is wrong is a
//! [`OutcomeClass::SilentFailure`]. The campaign is the empirical check
//! that the framework's guarantees — and only its guarantees — hold.
//!
//! Everything is seed-driven: the same `(campaign_seed, count)` produces a
//! byte-identical [`CampaignReport::to_json`]. Wall-clock validation lives
//! in the separate [`threaded`] spot checks, and [`chaos_under_load`]
//! replays faulty tenants through the `rtft-fleet` executor.
//!
//! The [`net`] module extends the sweep to the *network* dimension:
//! [`run_net_chaos`] drives a live `rtft-serve` server with hundreds of
//! concurrent connections while a seeded subset injects replica faults,
//! slow-loris stalls, malformed frames, partial writes, abrupt
//! disconnects and quota storms — then proves the token books balanced
//! and the write-ahead log replays clean.
//!
//! ```
//! use rtft_chaos::{Campaign, OutcomeClass};
//!
//! let report = Campaign::generate(0xDAC14, 25).run();
//! assert_eq!(report.outcomes.len(), 25);
//! // No healthy replica may ever be latched.
//! assert_eq!(report.count(OutcomeClass::FalsePositive), 0);
//! ```

#![warn(missing_docs)]

mod bounds;
mod campaign;
mod load;
pub mod net;
pub mod replay;
mod runner;
mod scenario;
mod tenants;
pub mod threaded;

pub use bounds::BoundCheck;
pub use campaign::{Campaign, CampaignReport};
pub use load::chaos_under_load;
pub use net::{
    generate_net_scenarios, run_net_chaos, soak_net_chaos, NetChaosConfig, NetChaosReport,
    NetFaultKind, NetOutcome, NetScenario, NetScenarioOutcome, NetSoakReport,
};
pub use replay::{classify_replay, diff_digests, ReplayVerdict};
pub use runner::{run_scenario, OutcomeClass, ScenarioOutcome};
pub use scenario::{
    generate_hetero_scenarios, generate_scenarios, kind_label, FaultSpec, PlatformKind, Redundancy,
    Scenario, SCENARIO_TOKENS, SERVICE_DIVISOR,
};
pub use tenants::{
    chaos_with_tenants, TenantChaosReport, CHAOS_TENANTS, DETACHED_TENANT, FAULTY_TENANT,
};
pub use threaded::{run_spot_checks, SpotCheck};
