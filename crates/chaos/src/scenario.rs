//! Deterministic fault-space scenario generation.
//!
//! A [`Scenario`] fixes every axis of one chaos experiment — application,
//! redundancy structure, execution platform, fault specification, and RNG
//! seed — so the same scenario always produces the same outcome. The
//! generator expands a single campaign seed into an arbitrary number of
//! scenarios by walking a [`SplitMix64`] stream; nothing else feeds it, so
//! two campaigns built from the same `(seed, count)` are identical.

use rtft_apps::networks::App;
use rtft_core::{CorruptionMode, FaultKind, FaultPlan, FaultTrigger};
use rtft_kpn::SplitMix64;
use rtft_rtc::sizing::SizingReport;
use rtft_rtc::TimeNs;

/// The replica compute stage's service time is the producer period divided
/// by this. A `SlowBy(f)` fault therefore degrades the replica's *output*
/// period by `f / SERVICE_DIVISOR` once `f` exceeds the divisor (below
/// that, the downstream shaper hides the slack and the fault is
/// analytically undetectable).
pub const SERVICE_DIVISOR: u64 = 2;

/// Tokens every scenario's producer emits.
pub const SCENARIO_TOKENS: u64 = 140;

/// How the critical subnetwork is replicated and arbitrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Redundancy {
    /// The paper's two-replica duplication with the timing selector.
    Duplicated,
    /// Three replicas arbitrated by the value-voting selector.
    TriVoting,
    /// Full-rate main replica plus a lightweight checker that re-verifies
    /// every `k`-th token digest (`rtft_core::hetero`).
    Hetero {
        /// Sampling stride; campaigns sweep `k ∈ {1, 4, 16, 64}`.
        k: u64,
    },
}

impl Redundancy {
    /// Replica count of the structure (the hetero checker counts as a
    /// replica slot for fault-injection purposes).
    pub fn replicas(self) -> usize {
        match self {
            Redundancy::Duplicated | Redundancy::Hetero { .. } => 2,
            Redundancy::TriVoting => 3,
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Redundancy::Duplicated => "duplicated",
            Redundancy::TriVoting => "tri-voting",
            // Metric labels are interned statics, so the swept strides map
            // through a match.
            Redundancy::Hetero { k: 1 } => "hetero-k1",
            Redundancy::Hetero { k: 4 } => "hetero-k4",
            Redundancy::Hetero { k: 16 } => "hetero-k16",
            Redundancy::Hetero { k: 64 } => "hetero-k64",
            Redundancy::Hetero { .. } => "hetero",
        }
    }
}

/// Which timing model the DES charges for communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformKind {
    /// Zero-cost ideal platform (pure Kahn semantics).
    Ideal,
    /// The SCC mesh under the paper's boot clocks.
    Scc,
    /// The SCC mesh with a uniformly degraded NoC
    /// (`NocFaultPlan::uniform`).
    SccDegradedNoc,
}

impl PlatformKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            PlatformKind::Ideal => "ideal",
            PlatformKind::Scc => "scc",
            PlatformKind::SccDegradedNoc => "scc-degraded-noc",
        }
    }
}

/// One injected fault: which replica, what kind, when.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Index of the replica the fault attaches to.
    pub replica: usize,
    /// The failure mode.
    pub kind: FaultKind,
    /// Virtual injection instant (the fault takes effect at the replica's
    /// next activation at or after this time).
    pub at: TimeNs,
}

impl FaultSpec {
    /// The runnable fault plan, seeded for the probabilistic kinds.
    pub fn plan(&self, seed: u64) -> FaultPlan {
        FaultPlan {
            trigger: FaultTrigger::AtTime(self.at),
            kind: self.kind,
            seed,
        }
    }

    /// `true` for faults that permanently degrade the replica's *timing*
    /// (fail-stop or a permanent slow-down that actually shows at the
    /// output) — the class the paper's detectors guarantee to catch.
    pub fn is_permanent_timing(&self) -> bool {
        match self.kind {
            FaultKind::FailStop => true,
            FaultKind::SlowBy(f) => f > SERVICE_DIVISOR as f64,
            _ => false,
        }
    }

    /// `true` for silent-data-corruption faults.
    pub fn is_value(&self) -> bool {
        matches!(self.kind, FaultKind::Corrupt(_))
    }

    /// Report label of the fault kind.
    pub fn kind_label(&self) -> &'static str {
        kind_label(&self.kind)
    }
}

/// Report label of a [`FaultKind`] (stable across parameterisations, so
/// latency statistics can aggregate by kind).
pub fn kind_label(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::FailStop => "fail-stop",
        FaultKind::SlowBy(_) => "slow-by",
        FaultKind::Corrupt(_) => "corrupt",
        FaultKind::Transient { .. } => "transient",
        FaultKind::Intermittent { .. } => "intermittent",
        FaultKind::Omission(_) => "omission",
    }
}

/// One point of the fault space: everything needed to build, run, and
/// classify a single experiment.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Position in the campaign (also the report ordering key).
    pub id: u64,
    /// Which application's Table 1 timing profile drives the network.
    pub app: App,
    /// Replication structure.
    pub redundancy: Redundancy,
    /// Communication timing model.
    pub platform: PlatformKind,
    /// The injected fault; `None` is a fault-free surveillance run (any
    /// latch is a false positive by construction).
    pub fault: Option<FaultSpec>,
    /// Scenario RNG seed (payloads, jitter, probabilistic faults).
    pub seed: u64,
    /// Tokens the producer emits.
    pub token_count: u64,
}

/// Expands `campaign_seed` into `count` scenarios, deterministically.
///
/// The palette interleaves every fault kind with both redundancy
/// structures: permanent timing faults (which the analytic bounds must
/// catch), self-healing transient/intermittent stalls, token omission,
/// silent data corruption (on both the timing selector — where it can slip
/// through — and the voting selector — where it must not), and fault-free
/// surveillance runs.
pub fn generate_scenarios(campaign_seed: u64, count: u64) -> Vec<Scenario> {
    let mut rng = SplitMix64::seed_from_u64(campaign_seed);
    // Pre-compute each app's permanent-fault detection bound once; the
    // transient/intermittent window lengths are expressed relative to it.
    let apps = App::ALL;
    let permanent_bounds: Vec<TimeNs> = apps
        .iter()
        .map(|app| {
            let model = app.profile().model;
            let sizing = SizingReport::analyze(&model).expect("profile models are bounded");
            sizing.detection_bounds(&model).permanent_timing()
        })
        .collect();

    let platforms = [
        PlatformKind::Ideal,
        PlatformKind::Scc,
        PlatformKind::SccDegradedNoc,
    ];

    (0..count)
        .map(|id| {
            let app_ix = (rng.next_u64() % apps.len() as u64) as usize;
            let app = apps[app_ix];
            let platform = platforms[(rng.next_u64() % platforms.len() as u64) as usize];
            let period = app.profile().model.producer.period;
            let bound = permanent_bounds[app_ix];
            let palette = rng.next_u64() % 15;
            let (kind, redundancy) = match palette {
                0 => (Some(FaultKind::FailStop), Redundancy::Duplicated),
                1 => (Some(FaultKind::FailStop), Redundancy::TriVoting),
                2 => (Some(FaultKind::SlowBy(4.0)), Redundancy::Duplicated),
                3 => (Some(FaultKind::SlowBy(8.0)), Redundancy::Duplicated),
                4 => (Some(FaultKind::SlowBy(6.0)), Redundancy::TriVoting),
                5 => (
                    Some(FaultKind::Corrupt(CorruptionMode::BitFlip(
                        (rng.next_u64() % 64) as u32,
                    ))),
                    Redundancy::TriVoting,
                ),
                6 => (
                    Some(FaultKind::Corrupt(CorruptionMode::Substitute(
                        rng.next_u64() | 1,
                    ))),
                    Redundancy::TriVoting,
                ),
                7 => (
                    Some(FaultKind::Corrupt(CorruptionMode::BitFlip(
                        (rng.next_u64() % 64) as u32,
                    ))),
                    Redundancy::Duplicated,
                ),
                8 => (Some(FaultKind::Omission(0.3)), Redundancy::TriVoting),
                9 => (Some(FaultKind::Omission(0.5)), Redundancy::Duplicated),
                10 => (
                    Some(FaultKind::Transient {
                        duration: bound * 2,
                    }),
                    Redundancy::Duplicated,
                ),
                11 => (
                    Some(FaultKind::Transient {
                        duration: period / 2,
                    }),
                    Redundancy::Duplicated,
                ),
                12 => (
                    Some(FaultKind::Intermittent {
                        on: bound * 2,
                        off: bound,
                    }),
                    Redundancy::Duplicated,
                ),
                13 => (None, Redundancy::Duplicated),
                _ => (None, Redundancy::TriVoting),
            };
            let fault = kind.map(|kind| {
                let replica = (rng.next_u64() % redundancy.replicas() as u64) as usize;
                // Inject inside [20%, 50%] of the stream so enough traffic
                // remains for every detector to play out.
                let frac = 0.2 + 0.3 * rng.next_f64();
                let stream_ns = period.as_ns() * SCENARIO_TOKENS;
                FaultSpec {
                    replica,
                    kind,
                    at: TimeNs::from_ns((frac * stream_ns as f64) as u64),
                }
            });
            Scenario {
                id,
                app,
                redundancy,
                platform,
                fault,
                seed: rng.next_u64(),
                token_count: SCENARIO_TOKENS,
            }
        })
        .collect()
}

/// Expands `campaign_seed` into `count` sampled-checker scenarios at
/// stride `k`, deterministically. Kept separate from
/// [`generate_scenarios`] so existing campaign reports stay byte-identical.
///
/// Value faults only target the **main** replica (side `0`): the checker
/// is the trusted side by construction, so a corrupted checker latching
/// the healthy main would be misclassified as a false positive. Timing
/// faults target either side. Streams are stretched by `8·k` tokens so the
/// sampled-divergence detector (latency `∝ k`) has room to play out.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn generate_hetero_scenarios(campaign_seed: u64, count: u64, k: u64) -> Vec<Scenario> {
    assert!(k > 0, "sampling stride must be positive");
    let mut rng = SplitMix64::seed_from_u64(campaign_seed ^ 0x8E7E_0000 ^ k);
    let apps = App::ALL;
    let permanent_bounds: Vec<TimeNs> = apps
        .iter()
        .map(|app| {
            let model = app.profile().model;
            let sizing = SizingReport::analyze(&model).expect("profile models are bounded");
            sizing.detection_bounds(&model).permanent_timing()
        })
        .collect();
    let platforms = [
        PlatformKind::Ideal,
        PlatformKind::Scc,
        PlatformKind::SccDegradedNoc,
    ];
    let token_count = SCENARIO_TOKENS + 8 * k;

    (0..count)
        .map(|id| {
            let app_ix = (rng.next_u64() % apps.len() as u64) as usize;
            let app = apps[app_ix];
            let platform = platforms[(rng.next_u64() % platforms.len() as u64) as usize];
            let period = app.profile().model.producer.period;
            let bound = permanent_bounds[app_ix];
            let palette = rng.next_u64() % 8;
            let (kind, replica) = match palette {
                0 => (Some(FaultKind::FailStop), 0),
                1 => (Some(FaultKind::FailStop), 1),
                2 => (Some(FaultKind::SlowBy(6.0)), 0),
                3 => (
                    Some(FaultKind::Corrupt(CorruptionMode::BitFlip(
                        (rng.next_u64() % 64) as u32,
                    ))),
                    0,
                ),
                4 => (
                    Some(FaultKind::Corrupt(CorruptionMode::Substitute(
                        rng.next_u64() | 1,
                    ))),
                    0,
                ),
                5 => (Some(FaultKind::Omission(0.4)), 0),
                6 => (
                    Some(FaultKind::Transient {
                        duration: bound * 2,
                    }),
                    0,
                ),
                _ => (None, 0),
            };
            let fault = kind.map(|kind| {
                let frac = 0.2 + 0.3 * rng.next_f64();
                let stream_ns = period.as_ns() * token_count;
                FaultSpec {
                    replica,
                    kind,
                    at: TimeNs::from_ns((frac * stream_ns as f64) as u64),
                }
            });
            Scenario {
                id,
                app,
                redundancy: Redundancy::Hetero { k },
                platform,
                fault,
                seed: rng.next_u64(),
                token_count,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_scenarios(42, 100);
        let b = generate_scenarios(42, 100);
        assert_eq!(a.len(), 100);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        // A different campaign seed permutes the space.
        let c = generate_scenarios(43, 100);
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| format!("{x:?}") != format!("{y:?}")),
            "different seeds must generate different campaigns"
        );
    }

    #[test]
    fn palette_covers_every_kind_and_structure() {
        let scenarios = generate_scenarios(7, 300);
        let mut labels: Vec<&str> = scenarios
            .iter()
            .filter_map(|s| s.fault.map(|f| f.kind_label()))
            .collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(
            labels,
            [
                "corrupt",
                "fail-stop",
                "intermittent",
                "omission",
                "slow-by",
                "transient"
            ]
        );
        assert!(scenarios
            .iter()
            .any(|s| s.redundancy == Redundancy::TriVoting && s.fault.is_none()));
        assert!(scenarios
            .iter()
            .any(|s| s.platform == PlatformKind::SccDegradedNoc));
        // Corruption hits both selector types.
        assert!(scenarios.iter().any(|s| s
            .fault
            .is_some_and(|f| f.is_value() && s.redundancy == Redundancy::Duplicated)));
        assert!(scenarios.iter().any(|s| s
            .fault
            .is_some_and(|f| f.is_value() && s.redundancy == Redundancy::TriVoting)));
    }

    #[test]
    fn hetero_generation_is_deterministic_and_trusts_the_checker() {
        let a = generate_hetero_scenarios(42, 80, 4);
        let b = generate_hetero_scenarios(42, 80, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        let mut kinds = std::collections::BTreeSet::new();
        for s in &a {
            assert_eq!(s.redundancy, Redundancy::Hetero { k: 4 });
            assert_eq!(s.redundancy.label(), "hetero-k4");
            assert_eq!(s.token_count, SCENARIO_TOKENS + 32);
            if let Some(f) = s.fault {
                kinds.insert(f.kind_label());
                if f.is_value() {
                    assert_eq!(f.replica, 0, "value faults only hit the main side");
                }
                assert!(f.replica < 2);
            }
        }
        assert!(kinds.contains("fail-stop") && kinds.contains("corrupt"));
        // A different stride generates a different campaign.
        let c = generate_hetero_scenarios(42, 80, 16);
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| format!("{x:?}") != format!("{y:?}")));
        assert!(c.iter().all(|s| s.token_count == SCENARIO_TOKENS + 128));
    }

    #[test]
    fn injection_times_sit_inside_the_stream() {
        for s in generate_scenarios(11, 200) {
            if let Some(f) = s.fault {
                let stream = s.app.profile().model.producer.period * s.token_count;
                assert!(f.at >= TimeNs::from_ns(stream.as_ns() / 5));
                assert!(f.at <= TimeNs::from_ns(stream.as_ns() / 2 + 1));
                assert!(f.replica < s.redundancy.replicas());
            }
        }
    }
}
