//! Tenant-dimension chaos: attach/detach mid-campaign under fleet load.
//!
//! [`chaos_with_tenants`] drives the tenant directory against the fleet
//! executor: four tenants each submit two deterministic DES jobs, one
//! tenant's first job carries an injected fault, and (optionally) one
//! healthy tenant detaches between the rounds. The report carries both
//! the fleet's view and the tenant directory, so tests can assert the
//! two invariants the single-tenant campaigns cannot: fault *isolation*
//! (the faulty tenant's latches never appear in another tenant's books)
//! and detach *losslessness* (a draining tenant settles every admitted
//! job and its token balance stays intact, while every other tenant's
//! outcome is byte-for-byte what it would have been without the detach).

use crate::runner::payload_cycle;
use crate::scenario::SERVICE_DIVISOR;
use rtft_apps::networks::App;
use rtft_core::{DuplicationConfig, FaultPlan, JitterStageReplica};
use rtft_fleet::{
    Admission, FleetConfig, FleetExecutor, FleetReport, JobNotifier, JobRuntime, JobSpec,
    JobTemplate,
};
use rtft_rtc::TimeNs;
use rtft_tenant::{
    TenantConfig, TenantDirectoryReport, TenantError, TenantId, TenantManager, TenantReject,
};
use std::sync::Arc;
use std::time::Duration;

/// Tokens per tenant job (small — every job is a full DES run).
const TENANT_TOKENS: u64 = 40;

/// Tenants in the mix.
pub const CHAOS_TENANTS: usize = 4;

/// Index of the tenant whose first job carries the injected fault.
pub const FAULTY_TENANT: usize = 1;

/// Index of the tenant detached between the rounds (when enabled).
pub const DETACHED_TENANT: usize = 2;

/// Jobs each surviving tenant submits.
const ROUNDS: usize = 2;

fn spec(name: &str, app: App, seed: u64, fault: Option<(usize, FaultPlan)>) -> JobSpec {
    let profile = app.profile();
    let model = profile.model;
    let service = model.producer.period / SERVICE_DIVISOR;
    let offset = service + model.producer.jitter + TimeNs::from_ms(1);
    let mut cfg = DuplicationConfig::from_model(model)
        .expect("profile models are bounded")
        .with_token_count(TENANT_TOKENS)
        .with_seeds(seed ^ 0xA5A5, seed ^ 0x5A5A)
        .with_payload(payload_cycle(seed, profile.input_token_bytes));
    if let Some((replica, plan)) = fault {
        cfg = cfg.with_fault(replica, plan);
    }
    let factory = JitterStageReplica {
        service,
        out_model: [
            model.replica_out[0].with_delay(offset),
            model.replica_out[1].with_delay(offset),
        ],
        seeds: [seed ^ 0x11, seed ^ 0x22],
    };
    JobSpec {
        name: name.to_string(),
        template: JobTemplate::Duplicated {
            cfg,
            factory: Arc::new(factory),
        },
        relative_deadline: Duration::from_secs(60),
        runtime: JobRuntime::DiscreteEvent {
            horizon: model.producer.period * (TENANT_TOKENS + 60)
                + model.consumer.delay
                + TimeNs::from_secs(5),
        },
    }
}

/// What one tenant-dimension chaos run produced.
#[derive(Debug)]
pub struct TenantChaosReport {
    /// The tenant directory at campaign end (sorted by id).
    pub directory: TenantDirectoryReport,
    /// The drained fleet's own report.
    pub fleet: FleetReport,
    /// Id of the tenant detached mid-campaign, if the run detached one.
    pub detached: Option<u64>,
}

/// Runs the tenant-dimension chaos mix and returns both views.
///
/// Four tenants attach to a directory with `shards` supervisor shards
/// and each submits [`ROUNDS`] duplicated DES jobs through tenant
/// admission (`admit_tokens` → `admit_flush` → fleet). Tenant
/// [`FAULTY_TENANT`]'s first job fail-stops one replica mid-stream —
/// its latch must land in that tenant's books alone. With `detach_mid`,
/// tenant [`DETACHED_TENANT`] detaches between the rounds: its drain
/// completes once its admitted job settles, and its second round is
/// refused (counted, not lost). Replacement is disabled
/// (`max_replacements: 0`), so every histogram in the directory is
/// virtual-time DES data and the whole report is deterministic in
/// `(seed, shards, detach_mid)` — byte-identical at any shard count.
///
/// # Panics
///
/// Panics if any admission that must succeed is refused, or if the
/// detach drain fails for a reason other than in-flight work.
pub fn chaos_with_tenants(seed: u64, shards: usize, detach_mid: bool) -> TenantChaosReport {
    let workers = rtft_kpn::campaign_workers().clamp(2, 4);
    let executor = FleetExecutor::new(FleetConfig {
        workers,
        pending_capacity: 32,
        max_replacements: 0,
    });
    let mgr = Arc::new(TenantManager::new(shards));
    let apps = [App::Mjpeg, App::Adpcm, App::H264, App::Adpcm];
    let ids: Vec<TenantId> = (0..CHAOS_TENANTS)
        .map(|i| {
            mgr.attach(&format!("chaos-{i}"), TenantConfig::default())
                .expect("fresh names attach")
        })
        .collect();

    let submit = |round: usize, i: usize| {
        let id = ids[i];
        mgr.admit_tokens(id, TENANT_TOKENS).expect("under quota");
        // Deterministic admission clock: one virtual millisecond per
        // submission slot (no tenant carries a rate limit here anyway).
        let now_ns = ((round * CHAOS_TENANTS + i) as u64) * 1_000_000;
        mgr.admit_flush(id, TENANT_TOKENS, now_ns)
            .expect("under in-flight cap");
        // Fail-stop: the timing selector of a duplicated pair detects
        // timing faults (value corruption is the voting structure's
        // domain, exercised by `chaos_under_load`).
        let fault = (i == FAULTY_TENANT && round == 0)
            .then(|| (1usize, FaultPlan::fail_stop_at(TimeNs::from_ms(80))));
        let job = spec(
            &format!("chaos-{i}/round-{round}"),
            apps[i],
            seed ^ ((round as u64) << 8) ^ (i as u64).wrapping_mul(0x9E37_79B9),
            fault,
        );
        let mgr = Arc::clone(&mgr);
        let notify: JobNotifier = Arc::new(move |record, result| {
            mgr.on_settle(id, record, result);
        });
        let name = job.name.clone();
        let admission = executor.submit_with(job, Some(notify));
        assert!(
            matches!(admission, Admission::Admitted(_)),
            "{name}: {admission:?}"
        );
    };

    for i in 0..CHAOS_TENANTS {
        submit(0, i);
    }

    let mut detached = None;
    if detach_mid {
        let id = ids[DETACHED_TENANT];
        mgr.begin_detach(id).expect("tenant is active");
        // From this instant the tenant refuses — losslessly.
        assert!(matches!(
            mgr.admit_flush(id, 1, 0),
            Err(TenantReject::Draining)
        ));
        // The drain completes once the round-0 job settles.
        loop {
            match mgr.finish_detach(id) {
                Ok(()) => break,
                Err(TenantError::StillBusy { .. }) => std::thread::sleep(Duration::from_millis(2)),
                Err(e) => panic!("detach drain failed: {e}"),
            }
        }
        detached = Some(id.0);
    }

    for round in 1..ROUNDS {
        for (i, &id) in ids.iter().enumerate() {
            if detach_mid && i == DETACHED_TENANT {
                // The detached tenant's second round is refused and
                // counted; the tokens were never accepted.
                assert!(matches!(
                    mgr.admit_tokens(id, TENANT_TOKENS),
                    Err(TenantReject::Draining)
                ));
                continue;
            }
            submit(round, i);
        }
    }

    let fleet = executor.join();
    TenantChaosReport {
        directory: mgr.report(),
        fleet,
        detached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_tenant::TenantState;

    #[test]
    fn faults_stay_confined_to_their_tenant() {
        let report = chaos_with_tenants(0xC0FFEE, 2, false);
        assert_eq!(report.fleet.runs.len(), CHAOS_TENANTS * ROUNDS);
        assert_eq!(report.directory.tenants.len(), CHAOS_TENANTS);
        for (i, t) in report.directory.tenants.iter().enumerate() {
            assert_eq!(t.jobs, ROUNDS as u64, "{t:?}");
            assert_eq!(t.tokens_in, ROUNDS as u64 * TENANT_TOKENS, "{t:?}");
            assert_eq!(t.inflight, 0, "all jobs settled: {t:?}");
            assert_eq!(t.buffered, 0, "all tokens flushed: {t:?}");
            if i == FAULTY_TENANT {
                assert!(t.faults > 0, "injected fault must latch: {t:?}");
                assert!(t.detection_latency_ns.count > 0, "{t:?}");
            } else {
                assert_eq!(t.faults, 0, "fault leaked into tenant {i}: {t:?}");
                assert_eq!(t.delivered, ROUNDS as u64 * TENANT_TOKENS, "{t:?}");
            }
        }
    }

    #[test]
    fn detach_under_load_is_lossless_and_isolated() {
        let without = chaos_with_tenants(0xD14, 2, false);
        let with = chaos_with_tenants(0xD14, 2, true);
        let id = with.detached.expect("a tenant detached");
        let t = with.directory.tenant(id).expect("detached tenant reported");
        assert_eq!(t.state, TenantState::Detached);
        // Balance intact: the one admitted job settled in full, nothing
        // is stuck in flight or in the buffer, and the refused second
        // round is accounted as rejected — not silently dropped.
        assert_eq!(t.jobs, 1, "{t:?}");
        assert_eq!(t.tokens_in, TENANT_TOKENS, "{t:?}");
        assert_eq!(t.delivered, TENANT_TOKENS, "{t:?}");
        assert_eq!(t.inflight, 0, "{t:?}");
        assert_eq!(t.buffered, 0, "{t:?}");
        assert_eq!(t.rejected_draining, 1 + TENANT_TOKENS, "{t:?}");
        // Isolation: every other tenant's report is byte-identical to
        // the run where no one detached.
        for (a, b) in without
            .directory
            .tenants
            .iter()
            .zip(with.directory.tenants.iter())
        {
            assert_eq!(a.id, b.id);
            if a.id != id {
                assert_eq!(a.to_json(), b.to_json(), "tenant {} perturbed", a.id);
            }
        }
    }

    #[test]
    fn tenant_directory_is_shard_invariant() {
        let one = chaos_with_tenants(0x5EED, 1, false).directory.to_json();
        let two = chaos_with_tenants(0x5EED, 2, false).directory.to_json();
        let four = chaos_with_tenants(0x5EED, 4, false).directory.to_json();
        assert_eq!(one, two);
        assert_eq!(one, four);
    }
}
