//! Campaign orchestration: run many scenarios, aggregate, report.
//!
//! A [`Campaign`] is nothing more than a campaign seed expanded into a
//! scenario list ([`generate_scenarios`]); [`Campaign::run`] executes every
//! scenario under the deterministic DES and folds the outcomes into a
//! [`CampaignReport`]. Because scenarios, runs, and the report serialiser
//! are all seed-driven and allocation-order independent, the same
//! `(seed, count)` pair produces a **byte-identical** `to_json()` on every
//! run — the property the campaign regression tests pin down.

use crate::runner::{run_scenario, OutcomeClass, ScenarioOutcome};
use crate::scenario::{generate_hetero_scenarios, generate_scenarios, Scenario};
use rtft_kpn::parallel::{campaign_workers, parallel_map_ordered};
use rtft_obs::json::{array, JsonObject};
use rtft_obs::{registry_to_json, HistogramSnapshot, MetricsRegistry};

/// A seeded set of scenarios ready to execute.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Seed the scenario list was expanded from.
    pub seed: u64,
    /// The scenarios, in id order.
    pub scenarios: Vec<Scenario>,
}

/// Registry metric name for a fault-kind latency histogram. Metric names
/// are interned `&'static str`s, so the kind labels map through a match.
fn latency_metric(kind_label: &str) -> &'static str {
    match kind_label {
        "fail-stop" => "chaos.latency.fail_stop",
        "slow-by" => "chaos.latency.slow_by",
        "corrupt" => "chaos.latency.corrupt",
        "transient" => "chaos.latency.transient",
        "intermittent" => "chaos.latency.intermittent",
        "omission" => "chaos.latency.omission",
        other => panic!("unknown fault kind label: {other}"),
    }
}

/// Registry metric name for an outcome-class counter.
fn class_metric(class: OutcomeClass) -> &'static str {
    match class {
        OutcomeClass::DetectedInBound => "chaos.class.detected_in_bound",
        OutcomeClass::DetectedLate => "chaos.class.detected_late",
        OutcomeClass::Masked => "chaos.class.masked",
        OutcomeClass::SilentFailure => "chaos.class.silent_failure",
        OutcomeClass::FalsePositive => "chaos.class.false_positive",
        OutcomeClass::ReplayDivergence => "chaos.class.replay_divergence",
    }
}

impl Campaign {
    /// Expands `seed` into a `count`-scenario campaign.
    pub fn generate(seed: u64, count: u64) -> Self {
        Campaign {
            seed,
            scenarios: generate_scenarios(seed, count),
        }
    }

    /// Expands `seed` into a `count`-scenario campaign over the
    /// sampled-checker structure with stride `k`. Kept separate from
    /// [`Campaign::generate`] so existing `(seed, count)` reports stay
    /// byte-identical.
    pub fn generate_hetero(seed: u64, count: u64, k: u64) -> Self {
        Campaign {
            seed,
            scenarios: generate_hetero_scenarios(seed, count, k),
        }
    }

    /// Runs every scenario and aggregates the outcomes.
    ///
    /// Scenarios are independent seeded simulations; they execute across
    /// [`campaign_workers`] threads (override with `RTFT_CAMPAIGN_WORKERS`,
    /// `1` forces the sequential inline path) and are folded into the
    /// report in scenario-index order, so [`CampaignReport::to_json`] stays
    /// byte-identical for any worker count — the replay contract now also
    /// covers worker-count independence.
    pub fn run(&self) -> CampaignReport {
        self.run_with_workers(campaign_workers())
    }

    /// [`Campaign::run`] with an explicit worker count.
    pub fn run_with_workers(&self, workers: usize) -> CampaignReport {
        // Scatter: each scenario simulates in isolation, touching no shared
        // state. Gather: `parallel_map_ordered` returns outcomes in input
        // order, and all metric folding happens below, sequentially, so the
        // registry contents are independent of execution interleaving.
        let outcomes = parallel_map_ordered(self.scenarios.clone(), workers, |_, scenario| {
            run_scenario(&scenario)
        });

        let metrics = MetricsRegistry::new();
        let scenarios_run = metrics.counter("chaos.scenarios");
        let detections = metrics.counter("chaos.detections");
        let value_errors = metrics.counter("chaos.value_errors");
        for outcome in &outcomes {
            scenarios_run.inc();
            metrics.counter(class_metric(outcome.class)).inc();
            value_errors.add(outcome.value_errors);
            if let (Some(latency), Some(fault)) =
                (outcome.detection_latency, outcome.scenario.fault)
            {
                detections.inc();
                metrics
                    .histogram(latency_metric(fault.kind_label()))
                    .record(latency.as_ns());
                metrics
                    .histogram("chaos.latency.all")
                    .record(latency.as_ns());
            }
        }
        let mut outcomes = outcomes;
        outcomes.sort_by_key(|o| o.scenario.id);

        CampaignReport {
            campaign_seed: self.seed,
            outcomes,
            metrics,
        }
    }
}

/// Aggregated result of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Seed the campaign was generated from.
    pub campaign_seed: u64,
    /// Per-scenario classified outcomes, in scenario-id order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Campaign metrics (outcome counters, detection-latency histograms).
    pub metrics: MetricsRegistry,
}

impl CampaignReport {
    /// Number of outcomes in `class`.
    pub fn count(&self, class: OutcomeClass) -> usize {
        self.outcomes.iter().filter(|o| o.class == class).count()
    }

    /// Outcomes in `class`.
    pub fn of_class(&self, class: OutcomeClass) -> impl Iterator<Item = &ScenarioOutcome> {
        self.outcomes.iter().filter(move |o| o.class == class)
    }

    /// The detection-latency distribution for one fault-kind label.
    pub fn latency_snapshot(&self, kind_label: &str) -> HistogramSnapshot {
        self.metrics
            .histogram(latency_metric(kind_label))
            .snapshot()
    }

    fn outcome_json(o: &ScenarioOutcome) -> String {
        let s = &o.scenario;
        let mut obj = JsonObject::new()
            .u64_field("id", s.id)
            .str_field("app", s.app.profile().name)
            .str_field("redundancy", s.redundancy.label())
            .str_field("platform", s.platform.label())
            .u64_field("seed", s.seed);
        match s.fault {
            Some(f) => {
                obj = obj
                    .str_field("fault", f.kind_label())
                    .u64_field("replica", f.replica as u64)
                    .u64_field("injected_ns", f.at.as_ns());
            }
            None => {
                obj = obj.str_field("fault", "healthy");
            }
        }
        obj.str_field("class", o.class.label())
            .opt_u64_field("detected_ns", o.detected_at.map(|t| t.as_ns()))
            .opt_u64_field("latency_ns", o.detection_latency.map(|t| t.as_ns()))
            .opt_u64_field("bound_ns", o.bound.map(|t| t.as_ns()))
            .u64_field("arrivals", o.arrivals)
            .u64_field("value_errors", o.value_errors)
            .finish()
    }

    /// The full campaign report as one JSON object. Byte-identical for
    /// identical `(campaign_seed, count)` inputs.
    pub fn to_json(&self) -> String {
        let mut classes = JsonObject::new();
        for class in OutcomeClass::ALL {
            classes = classes.u64_field(class.label(), self.count(class) as u64);
        }
        JsonObject::new()
            .str_field("schema", "rtft-chaos-campaign-v1")
            .u64_field("campaign_seed", self.campaign_seed)
            .u64_field("scenarios", self.outcomes.len() as u64)
            .raw_field("classes", &classes.finish())
            .raw_field(
                "outcomes",
                &array(self.outcomes.iter().map(Self::outcome_json)),
            )
            .raw_field("metrics", &registry_to_json(&self.metrics))
            .finish()
    }

    /// One-line summary for `BENCH_chaos.json`: outcome-class counts plus
    /// detection-latency p50/p99 per fault kind.
    pub fn bench_line(&self) -> String {
        let mut obj = JsonObject::new()
            .str_field("bench", "chaos_campaign")
            .u64_field("campaign_seed", self.campaign_seed)
            .u64_field("scenarios", self.outcomes.len() as u64);
        for class in OutcomeClass::ALL {
            obj = obj.u64_field(class.label(), self.count(class) as u64);
        }
        for kind in [
            "fail-stop",
            "slow-by",
            "corrupt",
            "transient",
            "intermittent",
            "omission",
        ] {
            let snap = self.latency_snapshot(kind);
            if snap.count > 0 {
                let key = latency_metric(kind)
                    .strip_prefix("chaos.latency.")
                    .expect("metric prefix");
                obj = obj.raw_field(
                    key,
                    &JsonObject::new()
                        .u64_field("count", snap.count)
                        .u64_field("p50_ns", snap.p50)
                        .u64_field("p99_ns", snap.p99)
                        .u64_field("max_ns", snap.max)
                        .finish(),
                );
            }
        }
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_runs_and_reports() {
        let report = Campaign::generate(0xC0FFEE, 20).run();
        assert_eq!(report.outcomes.len(), 20);
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"rtft-chaos-campaign-v1\""));
        assert!(json.contains("\"campaign_seed\":12648430"));
        // Every scenario classified.
        let total: usize = OutcomeClass::ALL.iter().map(|c| report.count(*c)).sum();
        assert_eq!(total, 20);
        // Bench line carries the class counts.
        assert!(report.bench_line().contains("\"bench\":\"chaos_campaign\""));
    }

    #[test]
    fn reports_are_byte_identical_for_the_same_seed() {
        let a = Campaign::generate(99, 12).run().to_json();
        let b = Campaign::generate(99, 12).run().to_json();
        assert_eq!(a, b);
    }
}
