//! One place that decides "was this detection in bound?".
//!
//! Both the campaign runner ([`crate::run_scenario`]) and the network
//! chaos harness ([`crate::run_net_chaos`]) classify observed detection
//! latencies against an analytic bound from `rtft-rtc`, and both used to
//! carry their own copy of the comparison (bound + activation grace vs.
//! raw wire bound). [`BoundCheck`] is the shared rule; the hetero sweep
//! classifies against it too, so all three redundancy structures are
//! judged identically.

use rtft_rtc::{PjdModel, TimeNs};

/// An analytic detection bound plus the grace the harness grants before
/// calling a latch late.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundCheck {
    bound: TimeNs,
    grace: TimeNs,
}

impl BoundCheck {
    /// A check with an explicit grace window.
    pub fn new(bound: TimeNs, grace: TimeNs) -> Self {
        BoundCheck { bound, grace }
    }

    /// The standard simulation-side grace: an `AtTime` fault takes effect
    /// at the replica's next activation, up to one producer period plus
    /// jitter after the scheduled instant.
    pub fn with_producer_grace(bound: TimeNs, producer: &PjdModel) -> Self {
        BoundCheck {
            bound,
            grace: producer.period + producer.jitter,
        }
    }

    /// The wire-side check: `rtft-serve` reports latencies against
    /// [`rtft_serve::detection_bound`]-style bounds that already fold the
    /// activation grace in, so none is added here.
    pub fn wire(bound: TimeNs) -> Self {
        BoundCheck {
            bound,
            grace: TimeNs::ZERO,
        }
    }

    /// The analytic bound being enforced.
    pub fn bound(&self) -> TimeNs {
        self.bound
    }

    /// The grace window granted on top of it.
    pub fn grace(&self) -> TimeNs {
        self.grace
    }

    /// Whether an observed `latency` (detection instant minus injection
    /// instant) is within bound + grace.
    pub fn admits_latency(&self, latency: TimeNs) -> bool {
        latency <= self.bound + self.grace
    }

    /// Whether a latch at `detected` for a fault injected at `injected` is
    /// within bound + grace.
    pub fn admits_at(&self, detected: TimeNs, injected: TimeNs) -> bool {
        detected <= injected + self.bound + self.grace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_ms(v)
    }

    #[test]
    fn latency_check_includes_grace() {
        let c = BoundCheck::with_producer_grace(ms(100), &PjdModel::from_ms(30.0, 2.0, 0.0));
        assert_eq!(c.bound(), ms(100));
        assert_eq!(c.grace(), ms(32));
        assert!(c.admits_latency(ms(132)));
        assert!(!c.admits_latency(ms(133)));
    }

    #[test]
    fn wire_check_has_no_extra_grace() {
        let c = BoundCheck::wire(ms(100));
        assert!(c.admits_latency(ms(100)));
        assert!(!c.admits_latency(ms(101)));
    }

    #[test]
    fn at_check_matches_latency_check() {
        let c = BoundCheck::new(ms(100), ms(30));
        assert!(c.admits_at(ms(500), ms(400)));
        assert!(c.admits_at(ms(530), ms(400)));
        assert!(!c.admits_at(ms(531), ms(400)));
    }
}
