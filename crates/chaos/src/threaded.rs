//! Wall-clock spot checks on the threaded runtime.
//!
//! Campaign scenarios run under the DES, where time is virtual and every
//! run is reproducible. These spot checks re-validate the two load-bearing
//! detection paths — fail-stop under the timing selector and silent data
//! corruption under the voting selector — on **real OS threads**, where
//! nothing is simulated. They are deliberately *not* part of
//! [`crate::CampaignReport`]: wall-clock latencies vary run to run, and
//! the campaign report must stay byte-identical for a given seed.
//!
//! Following `tests/platforms.rs`, the PJD models here use jitter budgets
//! (tens of milliseconds against millisecond periods) that dominate OS
//! scheduling stalls on a shared host; the no-false-positive guarantee
//! only holds when the declared curves bound the platform's actual jitter.

use rtft_core::{
    build_duplicated, build_n_modular_voting, CorruptionMode, DuplicationConfig, FaultPlan,
    JitterStageReplica, NJitterStageReplica, NModularModel, NReplicator, NSizingReport, Replicator,
    Selector, VotingSelector,
};
use rtft_kpn::threaded::run_threaded;
use rtft_kpn::{Payload, PjdSink};
use rtft_rtc::sizing::DuplicationModel;
use rtft_rtc::{PjdModel, TimeNs};
use std::sync::Arc;
use std::time::Duration;

/// Result of one wall-clock spot check.
#[derive(Debug, Clone, Copy)]
pub struct SpotCheck {
    /// Which check ran.
    pub name: &'static str,
    /// The injected fault was latched on the faulty replica (and only it).
    pub detected: bool,
    /// The consumer received every expected token.
    pub complete: bool,
    /// Every delivered payload carried the expected digest.
    pub value_clean: bool,
}

impl SpotCheck {
    /// `true` when the check holds in full.
    pub fn passed(&self) -> bool {
        self.detected && self.complete && self.value_clean
    }
}

const SPOT_TOKENS: u64 = 300;
const DEADLINE: Duration = Duration::from_secs(20);

/// Duplicated structure, replica 1 fail-stops at 100 ms: the timing
/// selector (or replicator overflow) must latch it and the healthy replica
/// must carry the stream to completion.
pub fn spot_duplicated_fail_stop() -> SpotCheck {
    let model = DuplicationModel::symmetric(
        PjdModel::new(TimeNs::from_ms(2), TimeNs::from_ms(40), TimeNs::ZERO),
        PjdModel::new(TimeNs::from_ms(2), TimeNs::from_ms(40), TimeNs::from_ms(6)),
        [
            PjdModel::new(TimeNs::from_ms(2), TimeNs::from_ms(40), TimeNs::ZERO),
            PjdModel::new(TimeNs::from_ms(2), TimeNs::from_ms(45), TimeNs::ZERO),
        ],
    );
    let cfg = DuplicationConfig::from_model(model)
        .expect("bounded")
        .with_token_count(SPOT_TOKENS)
        .with_payload(Arc::new(Payload::U64))
        .with_fault(1, FaultPlan::fail_stop_at(TimeNs::from_ms(100)));
    let factory = JitterStageReplica::from_model(&cfg.model).with_seeds([0xC1, 0xC2]);
    let (net, _ids) = build_duplicated(&cfg, &factory);

    let run = run_threaded(net, DEADLINE);
    // Builder channel order: replicator is 0, selector is 1.
    let faulty_latched = run
        .channel_as::<Replicator, _>(0, |r| r.fault(1).is_some())
        .unwrap_or(false)
        || run
            .channel_as::<Selector, _>(1, |s| s.fault(1).is_some())
            .unwrap_or(false);
    let healthy_latched = run
        .channel_as::<Replicator, _>(0, |r| r.fault(0).is_some())
        .unwrap_or(true)
        || run
            .channel_as::<Selector, _>(1, |s| s.fault(0).is_some())
            .unwrap_or(true);
    let arrivals = run
        .process_as::<PjdSink>("consumer")
        .map(|s| s.arrivals().to_vec())
        .unwrap_or_default();
    let value_clean = arrivals
        .iter()
        .enumerate()
        .all(|(seq, (_, digest))| *digest == Payload::U64(seq as u64).digest());
    SpotCheck {
        name: "duplicated-fail-stop",
        detected: faulty_latched && !healthy_latched,
        complete: arrivals.len() as u64 == SPOT_TOKENS,
        value_clean,
    }
}

/// Tri-voting structure, replica 0 flips payload bits from 100 ms on: the
/// voting selector must latch the value mismatch while the delivered
/// stream stays complete and digest-clean.
pub fn spot_voting_corruption() -> SpotCheck {
    let period = TimeNs::from_ms(2);
    let model = NModularModel {
        producer: PjdModel::new(period, TimeNs::from_ms(40), TimeNs::ZERO),
        consumer: PjdModel::new(period, TimeNs::from_ms(40), TimeNs::from_ms(6)),
        replicas: vec![
            PjdModel::new(period, TimeNs::from_ms(40), TimeNs::ZERO),
            PjdModel::new(period, TimeNs::from_ms(45), TimeNs::ZERO),
            PjdModel::new(period, TimeNs::from_ms(42), TimeNs::ZERO),
        ],
    };
    let sizing = NSizingReport::analyze(&model).expect("bounded");
    let factory = NJitterStageReplica::from_model(&model).with_seed_base(0xD0);
    let faults = vec![
        FaultPlan::corrupt_at(CorruptionMode::BitFlip(11), TimeNs::from_ms(100)),
        FaultPlan::healthy(),
        FaultPlan::healthy(),
    ];
    let (net, _ids) = build_n_modular_voting(
        &model,
        &sizing,
        SPOT_TOKENS,
        (0xE1, 0xE2),
        Arc::new(Payload::U64),
        &factory,
        &faults,
    );

    let run = run_threaded(net, DEADLINE);
    let faulty_latched = run
        .channel_as::<VotingSelector, _>(1, |s| s.fault(0).is_some())
        .unwrap_or(false);
    let healthy_latched = run
        .channel_as::<NReplicator, _>(0, |r| r.fault(1).is_some() || r.fault(2).is_some())
        .unwrap_or(true)
        || run
            .channel_as::<VotingSelector, _>(1, |s| s.fault(1).is_some() || s.fault(2).is_some())
            .unwrap_or(true);
    let arrivals = run
        .process_as::<PjdSink>("consumer")
        .map(|s| s.arrivals().to_vec())
        .unwrap_or_default();
    let value_clean = arrivals
        .iter()
        .enumerate()
        .all(|(seq, (_, digest))| *digest == Payload::U64(seq as u64).digest());
    SpotCheck {
        name: "voting-corruption",
        detected: faulty_latched && !healthy_latched,
        complete: arrivals.len() as u64 == SPOT_TOKENS,
        value_clean,
    }
}

/// Runs every wall-clock spot check.
pub fn run_spot_checks() -> Vec<SpotCheck> {
    vec![spot_duplicated_fail_stop(), spot_voting_corruption()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_spot_checks_hold() {
        for check in run_spot_checks() {
            assert!(check.passed(), "{check:?}");
        }
    }
}
