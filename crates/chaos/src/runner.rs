//! Scenario execution and outcome classification.
//!
//! [`run_scenario`] builds the scenario's network, runs it to completion
//! under the deterministic DES, and classifies what happened against the
//! analytic detection bounds of `rtft-rtc`:
//!
//! * [`OutcomeClass::DetectedInBound`] — the faulty replica was latched
//!   within its analytic bound (plus one activation period of grace, since
//!   an `AtTime` fault takes effect at the replica's next resume);
//! * [`OutcomeClass::DetectedLate`] — latched, but after the bound (or the
//!   fault class carries no guarantee at all);
//! * [`OutcomeClass::Masked`] — never latched, yet every expected token
//!   arrived with the correct payload digest;
//! * [`OutcomeClass::SilentFailure`] — never latched and the output is
//!   wrong (missing tokens or corrupted digests reached the consumer);
//! * [`OutcomeClass::FalsePositive`] — a *healthy* replica was latched.

use crate::bounds::BoundCheck;
use crate::scenario::{FaultSpec, PlatformKind, Redundancy, Scenario, SERVICE_DIVISOR};
use rtft_core::{
    build_duplicated, build_hetero, build_n_modular_voting, DuplicationConfig, FaultKind,
    FaultPlan, HeteroModel, HeteroSelector, HeteroSizingReport, HeteroStageReplica,
    JitterStageReplica, NJitterStageReplica, NModularModel, NReplicator, NSizingReport,
    PayloadGenerator, SampledReplicator, VotingSelector,
};
use rtft_kpn::{Engine, Payload, SplitMix64};
use rtft_rtc::detection::{DetectionBounds, HeteroBounds};
use rtft_rtc::{PjdModel, TimeNs};
use rtft_scc::{low_contention_pipeline, NocFaultPlan, SccPlatform};
use std::sync::Arc;

/// How a scenario ended, relative to the framework's guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OutcomeClass {
    /// Faulty replica latched within the analytic bound.
    DetectedInBound,
    /// Faulty replica latched after the bound (or no bound exists).
    DetectedLate,
    /// No latch, and the delivered stream is complete and value-correct.
    Masked,
    /// No latch, and the delivered stream is wrong.
    SilentFailure,
    /// A healthy replica was latched.
    FalsePositive,
    /// Deterministic WAL replay of the stream produced different output
    /// digests than the live run recorded — a transient fault in the
    /// original execution detected after the fact (see [`crate::replay`]).
    ReplayDivergence,
}

impl OutcomeClass {
    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            OutcomeClass::DetectedInBound => "detected-in-bound",
            OutcomeClass::DetectedLate => "detected-late",
            OutcomeClass::Masked => "masked",
            OutcomeClass::SilentFailure => "silent-failure",
            OutcomeClass::FalsePositive => "false-positive",
            OutcomeClass::ReplayDivergence => "replay-divergence",
        }
    }

    /// Every class, in report order.
    pub const ALL: [OutcomeClass; 6] = [
        OutcomeClass::DetectedInBound,
        OutcomeClass::DetectedLate,
        OutcomeClass::Masked,
        OutcomeClass::SilentFailure,
        OutcomeClass::FalsePositive,
        OutcomeClass::ReplayDivergence,
    ];
}

/// The classified result of one scenario run.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioOutcome {
    /// The scenario that produced this outcome.
    pub scenario: Scenario,
    /// Classification against the analytic bounds.
    pub class: OutcomeClass,
    /// Earliest latch on the *faulty* replica, if any.
    pub detected_at: Option<TimeNs>,
    /// `detected_at − injection instant` (scheduled, not effective).
    pub detection_latency: Option<TimeNs>,
    /// The analytic bound the latency was judged against.
    pub bound: Option<TimeNs>,
    /// Tokens the consumer received.
    pub arrivals: u64,
    /// Delivered tokens whose payload digest differed from the reference.
    pub value_errors: u64,
}

/// The analytic latch bound for this scenario's fault, from the
/// [`DetectionBounds`] table. `None` means the framework makes no promise
/// (mild slow-downs the shaper hides; corruption under the timing
/// selector).
fn analytic_bound(s: &Scenario, f: &FaultSpec, b: &DetectionBounds) -> Option<TimeNs> {
    match f.kind {
        FaultKind::FailStop => Some(b.permanent_timing()),
        FaultKind::SlowBy(raw) => {
            let eff = raw / SERVICE_DIVISOR as f64;
            if eff > 1.0 {
                b.slow_by(eff)
            } else {
                None
            }
        }
        FaultKind::Corrupt(_) => match s.redundancy {
            Redundancy::TriVoting => Some(b.value_vote()),
            Redundancy::Duplicated => None,
            // Hetero scenarios are judged by [`hetero_analytic_bound`].
            Redundancy::Hetero { .. } => None,
        },
        // A stalled window behaves fail-stop while it lasts; if it latches
        // at all, it must latch like a permanent fault.
        FaultKind::Transient { .. } | FaultKind::Intermittent { .. } => Some(b.permanent_timing()),
        // Heuristic: each token is dropped with probability `p`, so the
        // divergence surplus accrues `p`-fold slower than under fail-stop.
        FaultKind::Omission(p) => Some(TimeNs::from_ns(
            (b.fail_stop.as_ns() as f64 / p).ceil() as u64
        )),
    }
}

/// The analytic latch bound for a hetero scenario's fault, from the
/// [`HeteroBounds`] table. Side 0 is the full-rate main (overflow and
/// sampled-divergence detectors race; digest mismatches convict it), side 1
/// the trusted checker (only the sampled-divergence detector sees it).
fn hetero_analytic_bound(f: &FaultSpec, b: &HeteroBounds) -> Option<TimeNs> {
    match f.kind {
        FaultKind::FailStop | FaultKind::Transient { .. } | FaultKind::Intermittent { .. } => {
            Some(if f.replica == 0 {
                b.permanent_timing()
            } else {
                b.sampled_divergence
            })
        }
        FaultKind::SlowBy(raw) => {
            let eff = raw / SERVICE_DIVISOR as f64;
            if f.replica == 0 && eff > 1.0 {
                b.slow_by(eff)
            } else {
                None
            }
        }
        // The checker is trusted: a corrupting main is convicted at the
        // next verified sample; a corrupting checker convicts the main
        // instead, so no per-side promise exists there.
        FaultKind::Corrupt(_) => {
            if f.replica == 0 {
                Some(b.value)
            } else {
                None
            }
        }
        // Sample surplus accrues `p`-fold slower, on the sampled stream.
        FaultKind::Omission(p) => Some(TimeNs::from_ns(
            (b.sampled_divergence.as_ns() as f64 / p).ceil() as u64,
        )),
    }
}

/// Deterministic token payloads: a cycle of eight byte blocks of the
/// application's Table 1 token size, filled from the scenario seed.
pub(crate) fn payload_cycle(seed: u64, bytes: usize) -> PayloadGenerator {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let blocks: Vec<Payload> = (0..8)
        .map(|_| {
            let mut buf = vec![0u8; bytes];
            for chunk in buf.chunks_mut(8) {
                let w = rng.next_u64().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
            Payload::from(buf)
        })
        .collect();
    Arc::new(move |seq| blocks[(seq % 8) as usize].clone())
}

fn earliest(a: Option<TimeNs>, b: Option<TimeNs>) -> Option<TimeNs> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Wraps the built network in the scenario's platform and returns the
/// engine. SCC platforms route the two arbitration channels across the
/// mesh with the low-contention mapping; the degraded variant adds a
/// uniform [`NocFaultPlan`] (10 µs per chunk, 5 µs per chunk-hop).
fn engine_for(
    s: &Scenario,
    net: rtft_kpn::Network,
    replicator: rtft_kpn::ChannelId,
    selector: rtft_kpn::ChannelId,
) -> Engine {
    match s.platform {
        PlatformKind::Ideal => Engine::new(net),
        PlatformKind::Scc | PlatformKind::SccDegradedNoc => {
            let mapping = low_contention_pipeline(4);
            let mut platform = if s.platform == PlatformKind::SccDegradedNoc {
                SccPlatform::paper_boot().with_noc_faults(NocFaultPlan::uniform(
                    TimeNs::from_us(10),
                    TimeNs::from_us(5),
                ))
            } else {
                SccPlatform::paper_boot()
            };
            platform.route(replicator, mapping.core(0), mapping.core(1));
            platform.route(selector, mapping.core(2), mapping.core(3));
            Engine::with_platform(net, Box::new(platform))
        }
    }
}

/// Classifies a finished run from its per-replica latch times and the
/// consumer's arrival record. `bound` is the precomputed analytic bound
/// for this scenario's fault ([`analytic_bound`] or
/// [`hetero_analytic_bound`]); `producer` feeds the activation grace of
/// the shared [`BoundCheck`] rule.
#[allow(clippy::too_many_arguments)]
fn classify(
    s: &Scenario,
    producer: &PjdModel,
    bound: Option<TimeNs>,
    latches: &[Option<TimeNs>],
    arrivals: &[(TimeNs, u64)],
    expected_digests: &[u64],
) -> ScenarioOutcome {
    let value_errors = arrivals
        .iter()
        .enumerate()
        .filter(|(k, (_, digest))| *digest != expected_digests[k % expected_digests.len()])
        .count() as u64;
    let complete = arrivals.len() as u64 == s.token_count;

    let (class, detected_at, latency, bound) = match s.fault {
        None => {
            if latches.iter().any(Option::is_some) {
                (OutcomeClass::FalsePositive, None, None, None)
            } else if complete && value_errors == 0 {
                (OutcomeClass::Masked, None, None, None)
            } else {
                (OutcomeClass::SilentFailure, None, None, None)
            }
        }
        Some(f) => {
            let healthy_latched = latches
                .iter()
                .enumerate()
                .any(|(i, l)| i != f.replica && l.is_some());
            let detected_at = latches[f.replica];
            if healthy_latched {
                (OutcomeClass::FalsePositive, detected_at, None, bound)
            } else if let Some(at) = detected_at {
                // An AtTime fault takes effect at the replica's next
                // activation, up to one period after the scheduled
                // instant — grant that grace before judging the bound.
                let latency = at.saturating_sub(f.at);
                let class = match bound {
                    Some(b) if BoundCheck::with_producer_grace(b, producer).admits_at(at, f.at) => {
                        OutcomeClass::DetectedInBound
                    }
                    _ => OutcomeClass::DetectedLate,
                };
                (class, Some(at), Some(latency), bound)
            } else if complete && value_errors == 0 {
                (OutcomeClass::Masked, None, None, bound)
            } else {
                (OutcomeClass::SilentFailure, None, None, bound)
            }
        }
    };

    ScenarioOutcome {
        scenario: *s,
        class,
        detected_at,
        detection_latency: latency,
        bound,
        arrivals: arrivals.len() as u64,
        value_errors,
    }
}

/// Builds, runs, and classifies one scenario under the deterministic DES.
pub fn run_scenario(s: &Scenario) -> ScenarioOutcome {
    let profile = s.app.profile();
    let model = profile.model;
    let period = model.producer.period;
    let service = period / SERVICE_DIVISOR;
    let offset = service + model.producer.jitter + TimeNs::from_ms(1);
    let payload = payload_cycle(s.seed, profile.input_token_bytes);
    let expected_digests: Vec<u64> = (0..8).map(|i| payload(i).digest()).collect();
    let horizon = period * (s.token_count + 60) + model.consumer.delay + TimeNs::from_secs(5);

    match s.redundancy {
        Redundancy::Duplicated => {
            let mut cfg = DuplicationConfig::from_model(model)
                .expect("profile models are bounded")
                .with_token_count(s.token_count)
                .with_seeds(s.seed ^ 0xA5A5, s.seed ^ 0x5A5A)
                .with_payload(Arc::clone(&payload));
            if let Some(f) = s.fault {
                cfg = cfg.with_fault(f.replica, f.plan(s.seed ^ 0xFA01));
            }
            let factory = JitterStageReplica {
                service,
                out_model: [
                    model.replica_out[0].with_delay(offset),
                    model.replica_out[1].with_delay(offset),
                ],
                seeds: [s.seed ^ 0x11, s.seed ^ 0x22],
            };
            let bounds = cfg.sizing.detection_bounds(&model);
            let (net, ids) = build_duplicated(&cfg, &factory);
            let mut engine = engine_for(s, net, ids.replicator, ids.selector);
            engine.run_until(horizon);
            let net = engine.network();
            let rep = ids.replicator_faults(net);
            let sel = ids.selector_faults(net);
            let latches: Vec<Option<TimeNs>> = (0..2)
                .map(|i| earliest(rep[i].map(|r| r.at), sel[i].map(|r| r.at)))
                .collect();
            let bound = s.fault.and_then(|f| analytic_bound(s, &f, &bounds));
            classify(
                s,
                &model.producer,
                bound,
                &latches,
                ids.consumer_arrivals(net),
                &expected_digests,
            )
        }
        Redundancy::TriVoting => {
            let mid_jitter = TimeNs::from_ns(
                (model.replica_out[0].jitter.as_ns() + model.replica_out[1].jitter.as_ns()) / 2,
            );
            let nmodel = NModularModel {
                producer: model.producer,
                consumer: model.consumer,
                replicas: vec![
                    model.replica_out[0],
                    model.replica_out[1],
                    PjdModel::new(period, mid_jitter, TimeNs::ZERO),
                ],
            };
            let sizing = NSizingReport::analyze(&nmodel).expect("profile models are bounded");
            let mut faults = vec![FaultPlan::healthy(); 3];
            if let Some(f) = s.fault {
                faults[f.replica] = f.plan(s.seed ^ 0xFA01);
            }
            let factory = NJitterStageReplica {
                service,
                out_models: nmodel.replicas.clone(),
                offset,
                seed_base: s.seed ^ 0x33,
            };
            let bounds = DetectionBounds::new(
                nmodel.producer,
                nmodel.consumer,
                nmodel.replicas.clone(),
                sizing.threshold,
                sizing
                    .replicator_capacity
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(1),
                sizing.selector_capacity.iter().copied().max().unwrap_or(1),
            );
            let (net, ids) = build_n_modular_voting(
                &nmodel,
                &sizing,
                s.token_count,
                (s.seed ^ 0xA5A5, s.seed ^ 0x5A5A),
                Arc::clone(&payload),
                &factory,
                &faults,
            );
            let mut engine = engine_for(s, net, ids.replicator, ids.selector);
            engine.run_until(horizon);
            let net = engine.network();
            let rep = net
                .channel_as::<NReplicator>(ids.replicator)
                .expect("n-replicator");
            let sel = net
                .channel_as::<VotingSelector>(ids.selector)
                .expect("voting selector");
            let latches: Vec<Option<TimeNs>> = (0..3)
                .map(|i| earliest(rep.fault(i).map(|r| r.at), sel.fault(i).map(|r| r.at)))
                .collect();
            let bound = s.fault.and_then(|f| analytic_bound(s, &f, &bounds));
            classify(
                s,
                &nmodel.producer,
                bound,
                &latches,
                ids.consumer_arrivals(net),
                &expected_digests,
            )
        }
        Redundancy::Hetero { k } => {
            let hmodel = HeteroModel::with_checker_jitter(
                model.producer,
                model.consumer,
                model.replica_out[0],
                model.replica_out[1].jitter,
                k,
            );
            let sizing = HeteroSizingReport::analyze(&hmodel).expect("profile models are bounded");
            let bounds = sizing.bounds(&hmodel);
            let mut faults = [FaultPlan::healthy(), FaultPlan::healthy()];
            if let Some(f) = s.fault {
                faults[f.replica] = f.plan(s.seed ^ 0xFA01);
            }
            let factory = HeteroStageReplica {
                service,
                out_models: [hmodel.main, hmodel.checker],
                offset,
                seed_base: s.seed ^ 0x44,
            };
            let (net, ids) = build_hetero(
                &hmodel,
                &sizing,
                s.token_count,
                (s.seed ^ 0xA5A5, s.seed ^ 0x5A5A),
                Arc::clone(&payload),
                &factory,
                &faults,
            );
            let mut engine = engine_for(s, net, ids.replicator, ids.selector);
            engine.run_until(horizon);
            let net = engine.network();
            let rep = net
                .channel_as::<SampledReplicator>(ids.replicator)
                .expect("sampled replicator");
            let sel = net
                .channel_as::<HeteroSelector>(ids.selector)
                .expect("hetero selector");
            let latches: Vec<Option<TimeNs>> = (0..2)
                .map(|i| earliest(rep.fault(i).map(|r| r.at), sel.fault(i).map(|r| r.at)))
                .collect();
            let bound = s.fault.and_then(|f| hetero_analytic_bound(&f, &bounds));
            classify(
                s,
                &hmodel.producer,
                bound,
                &latches,
                ids.consumer_arrivals(net),
                &expected_digests,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SCENARIO_TOKENS;
    use rtft_apps::networks::App;
    use rtft_core::CorruptionMode;

    fn base(app: App, redundancy: Redundancy, fault: Option<FaultSpec>) -> Scenario {
        Scenario {
            id: 0,
            app,
            redundancy,
            platform: PlatformKind::Ideal,
            fault,
            seed: 0xDECADE,
            token_count: SCENARIO_TOKENS,
        }
    }

    #[test]
    fn fault_free_scenario_is_masked() {
        for redundancy in [Redundancy::Duplicated, Redundancy::TriVoting] {
            let out = run_scenario(&base(App::Adpcm, redundancy, None));
            assert_eq!(out.class, OutcomeClass::Masked, "{out:?}");
            assert_eq!(out.arrivals, SCENARIO_TOKENS);
            assert_eq!(out.value_errors, 0);
        }
    }

    #[test]
    fn fail_stop_is_detected_in_bound_on_both_structures() {
        let at = TimeNs::from_ms(400);
        for redundancy in [Redundancy::Duplicated, Redundancy::TriVoting] {
            let fault = FaultSpec {
                replica: 1,
                kind: FaultKind::FailStop,
                at,
            };
            let out = run_scenario(&base(App::Adpcm, redundancy, Some(fault)));
            assert_eq!(out.class, OutcomeClass::DetectedInBound, "{out:?}");
            assert!(out.detected_at.expect("latched") > at);
        }
    }

    #[test]
    fn corruption_is_caught_by_voting_but_can_slip_past_the_timing_selector() {
        let fault = FaultSpec {
            replica: 0,
            kind: FaultKind::Corrupt(CorruptionMode::BitFlip(9)),
            at: TimeNs::from_ms(300),
        };
        let voting = run_scenario(&base(App::Adpcm, Redundancy::TriVoting, Some(fault)));
        assert!(
            matches!(
                voting.class,
                OutcomeClass::DetectedInBound | OutcomeClass::DetectedLate
            ),
            "{voting:?}"
        );
        assert_eq!(voting.value_errors, 0, "voting must mask the bad values");

        let duplicated = run_scenario(&base(App::Adpcm, Redundancy::Duplicated, Some(fault)));
        assert!(
            matches!(
                duplicated.class,
                OutcomeClass::SilentFailure | OutcomeClass::Masked
            ),
            "timing selector cannot *detect* corruption: {duplicated:?}"
        );
    }

    #[test]
    fn scc_platform_preserves_detection() {
        let fault = FaultSpec {
            replica: 0,
            kind: FaultKind::FailStop,
            at: TimeNs::from_secs(1),
        };
        for platform in [PlatformKind::Scc, PlatformKind::SccDegradedNoc] {
            let s = Scenario {
                platform,
                ..base(App::Mjpeg, Redundancy::Duplicated, Some(fault))
            };
            let out = run_scenario(&s);
            assert_eq!(out.class, OutcomeClass::DetectedInBound, "{out:?}");
        }
    }

    #[test]
    fn short_transient_is_masked_long_transient_is_detected() {
        let period = App::Adpcm.profile().model.producer.period;
        let short = FaultSpec {
            replica: 1,
            kind: FaultKind::Transient {
                duration: period / 2,
            },
            at: TimeNs::from_ms(300),
        };
        let out = run_scenario(&base(App::Adpcm, Redundancy::Duplicated, Some(short)));
        assert_eq!(out.class, OutcomeClass::Masked, "{out:?}");

        let long = FaultSpec {
            replica: 1,
            kind: FaultKind::Transient {
                duration: TimeNs::from_secs(2),
            },
            at: TimeNs::from_ms(300),
        };
        let out = run_scenario(&base(App::Adpcm, Redundancy::Duplicated, Some(long)));
        assert_eq!(out.class, OutcomeClass::DetectedInBound, "{out:?}");
    }

    #[test]
    fn hetero_fault_free_is_masked_fail_stop_is_in_bound_on_either_side() {
        let healthy = run_scenario(&base(App::Adpcm, Redundancy::Hetero { k: 4 }, None));
        assert_eq!(healthy.class, OutcomeClass::Masked, "{healthy:?}");
        assert_eq!(healthy.arrivals, SCENARIO_TOKENS);
        assert_eq!(healthy.value_errors, 0);

        let at = TimeNs::from_ms(400);
        for replica in [0, 1] {
            let fault = FaultSpec {
                replica,
                kind: FaultKind::FailStop,
                at,
            };
            let out = run_scenario(&base(App::Adpcm, Redundancy::Hetero { k: 4 }, Some(fault)));
            assert_eq!(out.class, OutcomeClass::DetectedInBound, "{out:?}");
            assert!(out.detected_at.expect("latched") > at);
        }
    }

    #[test]
    fn hetero_corruption_on_main_is_caught_by_the_sampled_check() {
        let fault = FaultSpec {
            replica: 0,
            kind: FaultKind::Corrupt(CorruptionMode::BitFlip(9)),
            at: TimeNs::from_ms(300),
        };
        let out = run_scenario(&base(App::Adpcm, Redundancy::Hetero { k: 1 }, Some(fault)));
        assert_eq!(out.class, OutcomeClass::DetectedInBound, "{out:?}");
    }

    #[test]
    fn hetero_scenarios_run_deterministically() {
        let fault = FaultSpec {
            replica: 0,
            kind: FaultKind::Omission(0.4),
            at: TimeNs::from_ms(250),
        };
        let s = base(App::Adpcm, Redundancy::Hetero { k: 4 }, Some(fault));
        let a = run_scenario(&s);
        let b = run_scenario(&s);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn same_scenario_same_outcome() {
        let fault = FaultSpec {
            replica: 2,
            kind: FaultKind::Omission(0.3),
            at: TimeNs::from_ms(250),
        };
        let s = base(App::Adpcm, Redundancy::TriVoting, Some(fault));
        let a = run_scenario(&s);
        let b = run_scenario(&s);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
