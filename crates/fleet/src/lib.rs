//! # rtft-fleet — multi-tenant fleet execution for rtft networks
//!
//! The paper makes *one* application tolerant to *one* timing fault. This
//! crate scales that out: a stream of independent jobs — each a duplicated
//! or n-modular fault-tolerant network built by `rtft-core` — executes
//! concurrently on a bounded worker pool, and the fleet layer supplies
//! what a single network cannot:
//!
//! * **Admission control with backpressure** — [`FleetExecutor::submit`]
//!   is non-blocking; when the outstanding-job limit is reached it returns
//!   [`Admission::Rejected`] so the caller sheds load, just as the paper's
//!   replicator drops a faulty replica's stream rather than deadlocking.
//! * **Earliest-deadline-first scheduling** — each job's absolute deadline
//!   (admission time + relative deadline) is its priority on the
//!   work-stealing [`WorkerPool`](rtft_kpn::WorkerPool); idle workers
//!   steal the globally most urgent run.
//! * **Health-aware replica replacement** — a run whose arbitration
//!   channels latched a replica faulty still completes (fault masking),
//!   then the fleet re-spawns the job from a healed copy of its template
//!   and records the time-to-recovery; the [`FleetSupervisor`] folds every
//!   run's metrics and [`HealthModel`](rtft_obs::HealthModel) into one
//!   fleet-level registry.
//!
//! # Example
//!
//! ```
//! use rtft_fleet::{Admission, FleetConfig, FleetExecutor, JobRuntime, JobSpec, JobTemplate};
//! use rtft_core::{DuplicationConfig, FaultPlan, JitterStageReplica};
//! use rtft_rtc::sizing::DuplicationModel;
//! use rtft_rtc::{PjdModel, TimeNs};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let model = DuplicationModel::symmetric(
//!     PjdModel::from_ms(30.0, 2.0, 0.0),
//!     PjdModel::from_ms(30.0, 2.0, 90.0),
//!     [PjdModel::from_ms(30.0, 5.0, 0.0), PjdModel::from_ms(30.0, 30.0, 0.0)],
//! );
//! let cfg = DuplicationConfig::from_model(model)?
//!     .with_token_count(50)
//!     .with_fault(0, FaultPlan::fail_stop_at(TimeNs::from_secs(1)));
//! let factory = Arc::new(JitterStageReplica::from_model(&cfg.model));
//!
//! let fleet = FleetExecutor::new(FleetConfig::default());
//! let admission = fleet.submit(JobSpec {
//!     name: "tenant-a".into(),
//!     template: JobTemplate::Duplicated { cfg, factory },
//!     relative_deadline: Duration::from_secs(30),
//!     runtime: JobRuntime::DiscreteEvent { horizon: TimeNs::from_secs(20) },
//! });
//! assert!(matches!(admission, Admission::Admitted(_)));
//!
//! let report = fleet.join();
//! // The fault was observed, the job was re-spawned healed, and recovered.
//! assert_eq!(report.status.replaced, 1);
//! assert_eq!(report.status.recovered, 1);
//! assert!(!report.runs[0].failed);
//! # Ok::<(), rtft_rtc::CurveAnalysisError>(())
//! ```

#![warn(missing_docs)]

mod executor;
mod job;
mod supervisor;

pub use executor::{
    Admission, FleetConfig, FleetExecutor, FleetLoad, FleetReport, JobNotifier, JobRecord,
    RejectReason,
};
pub use job::{
    execute, execute_spec, JobId, JobRunResult, JobRuntime, JobSpec, JobTemplate, SharedFactory,
};
pub use supervisor::{FleetStatus, FleetSupervisor};
