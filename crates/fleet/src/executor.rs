//! The fleet executor: admission control, EDF scheduling, replacement.
//!
//! # Job lifecycle
//!
//! ```text
//!             submit()
//!    ┌───────────┴───────────┐
//!    ▼                       ▼
//! Rejected               Admitted ──► Queued (EDF by absolute deadline)
//! (queue full /              │
//!  shutting down)            ▼
//!                         Running ──panic──► Failed
//!                            │
//!              ┌─────────────┴─────────────┐
//!              ▼                           ▼
//!       faulty replicas             no faulty replicas
//!      & attempts left                     │
//!              │                           ▼
//!              ▼                     Finished (completed / failed,
//!       Replacement queued            deadline met / missed)
//!       (healed template,                  │
//!        same JobId, EDF            attempt > 0 & completed
//!        against original                  │
//!        deadline)                         ▼
//!              │                       Recovered
//!              └──────► runs again ────────┘
//! ```
//!
//! # Admission and backpressure
//!
//! The executor never queues more than `pending_capacity` *outstanding*
//! jobs (admitted but not yet finished, replacements included). `submit`
//! on a full executor returns [`Admission::Rejected`] immediately — the
//! caller sheds load instead of blocking, mirroring how the paper's
//! replicator unblocks the producer on a full replica queue rather than
//! deadlocking the network.
//!
//! # Scheduling
//!
//! Every admitted job gets an absolute deadline (admission time plus its
//! relative deadline) which becomes its priority on the `rtft-kpn`
//! [`WorkerPool`] — smaller runs first, so the pool executes
//! earliest-deadline-first across all tenants, with idle workers stealing
//! the most urgent work of their peers.
//!
//! # Replacement
//!
//! A run that comes back with latched-faulty replicas still *completes* —
//! that is the paper's fault masking. The fleet layer then re-spawns the
//! job from a healed copy of its template (up to `max_replacements`
//! times): the fleet-level analogue of replacing a faulty replica on a
//! spare core. Time from the fault observation to the replacement's
//! healthy completion is recorded as the job's time-to-recovery.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use rtft_kpn::{PoolStats, WorkerPool};
use rtft_obs::json::{array, JsonObject};

use crate::job::{execute, JobId, JobRunResult, JobSpec};
use crate::supervisor::{FleetStatus, FleetSupervisor};

/// Sizing and policy knobs of a [`FleetExecutor`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Maximum outstanding (admitted but unfinished) jobs before
    /// `submit` rejects.
    pub pending_capacity: usize,
    /// Replacement runs allowed per job after fault observations.
    pub max_replacements: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 2,
            pending_capacity: 64,
            max_replacements: 1,
        }
    }
}

/// Outcome of [`FleetExecutor::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The job was queued under this id.
    Admitted(JobId),
    /// The job was refused; nothing was queued.
    Rejected(RejectReason),
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The outstanding-job limit was reached (backpressure).
    QueueFull {
        /// Outstanding jobs at the time of the attempt.
        pending: usize,
        /// The configured limit.
        capacity: usize,
    },
    /// [`FleetExecutor::shutdown`] was already called.
    ShuttingDown,
    /// A per-tenant quota (queue bytes-in-buffer or in-flight jobs) is
    /// exhausted. Produced by admission layers sitting in front of the
    /// executor (rtft-tenant); carried here so every refusal on the
    /// submission path shares one structured vocabulary.
    QuotaExceeded {
        /// Units of the quota already in use (tokens or jobs).
        used: u64,
        /// The configured limit.
        quota: u64,
    },
    /// A per-tenant token-rate limit refused the work for now.
    RateLimited {
        /// Nanoseconds until the token bucket will have refilled enough
        /// for the refused batch (0 when unknown). A retry hint, not a
        /// guarantee — other submitters drain the same bucket.
        retry_after_ns: u64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { pending, capacity } => {
                write!(f, "queue full ({pending} of {capacity} jobs outstanding)")
            }
            RejectReason::ShuttingDown => write!(f, "executor is shutting down"),
            RejectReason::QuotaExceeded { used, quota } => {
                write!(f, "quota exceeded ({used} of {quota} in use)")
            }
            RejectReason::RateLimited { retry_after_ns } => {
                write!(f, "rate limited (retry after {retry_after_ns} ns)")
            }
        }
    }
}

impl std::error::Error for RejectReason {}

/// Callback invoked exactly once when a job settles (its final run —
/// original or last replacement — completed or panicked). The
/// [`JobRunResult`] is `None` only for panicked runs. Fired *before* the
/// job's outstanding slot is released, so [`FleetExecutor::join`] returns
/// only after every notifier has run.
pub type JobNotifier = Arc<dyn Fn(&JobRecord, Option<&JobRunResult>) + Send + Sync>;

/// Instantaneous backpressure view across the fleet: pool queue depth,
/// executing runs, and admitted-but-unfinished jobs against capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetLoad {
    /// Runs waiting in worker queues.
    pub queued: usize,
    /// Runs executing right now.
    pub inflight: usize,
    /// Admitted but unfinished jobs (replacements transfer, not add).
    pub outstanding: usize,
    /// The admission limit on `outstanding`.
    pub capacity: usize,
}

/// Final record of one job (its last run's observations).
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Fleet-assigned id.
    pub id: JobId,
    /// Tenant name from the spec.
    pub name: String,
    /// Replacement runs this job consumed (0 = first run was final).
    pub attempts: u64,
    /// Tokens delivered by the final run.
    pub arrivals: u64,
    /// Tokens expected per run.
    pub expected: u64,
    /// Faulty replicas observed across all of the job's runs, ascending.
    pub faulty_replicas: Vec<usize>,
    /// Admission-to-final-completion wall time in nanoseconds.
    pub completion_ns: u64,
    /// Whether the final run finished inside the relative deadline.
    pub deadline_met: bool,
    /// Whether a replacement run came back healthy after a fault.
    pub recovered: bool,
    /// Whether the final run fell short of its expected tokens (or
    /// panicked).
    pub failed: bool,
}

impl JobRecord {
    /// Renders the record as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64_field("id", self.id.0)
            .str_field("name", &self.name)
            .u64_field("attempts", self.attempts)
            .u64_field("arrivals", self.arrivals)
            .u64_field("expected", self.expected)
            .raw_field(
                "faulty_replicas",
                &array(self.faulty_replicas.iter().map(|r| r.to_string())),
            )
            .u64_field("completion_ns", self.completion_ns)
            .bool_field("deadline_met", self.deadline_met)
            .bool_field("recovered", self.recovered)
            .bool_field("failed", self.failed)
            .finish()
    }
}

/// Everything [`FleetExecutor::join`] returns.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One record per admitted job, in completion order.
    pub runs: Vec<JobRecord>,
    /// Fleet-level counters and distributions.
    pub status: FleetStatus,
    /// Worker-pool counters (executed / stolen / panicked).
    pub pool: PoolStats,
}

impl FleetReport {
    /// Renders the report as a JSON object.
    ///
    /// The `jobs` array is emitted sorted by job id — `runs` itself stays
    /// in completion order (callers assert EDF ordering on it), but the
    /// serialized report must be byte-identical regardless of which of two
    /// equally-urgent jobs happened to finish first on a given run.
    pub fn to_json(&self) -> String {
        let mut ordered: Vec<&JobRecord> = self.runs.iter().collect();
        ordered.sort_by_key(|r| r.id.0);
        JsonObject::new()
            .raw_field("jobs", &array(ordered.iter().map(|r| r.to_json())))
            .raw_field("status", &self.status.to_json())
            .u64_field("pool_executed", self.pool.executed)
            .u64_field("pool_stolen", self.pool.stolen)
            .u64_field("pool_panicked", self.pool.panicked)
            .finish()
    }
}

struct FleetState {
    next_id: u64,
    /// Admitted but unfinished jobs (replacements transfer, not add).
    outstanding: usize,
    records: Vec<JobRecord>,
}

struct Inner {
    cfg: FleetConfig,
    epoch: Instant,
    pool: WorkerPool,
    supervisor: FleetSupervisor,
    state: Mutex<FleetState>,
    idle: Condvar,
    accepting: AtomicBool,
}

impl Inner {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A multi-tenant job executor over the `rtft-kpn` worker pool. Cloning
/// shares the executor (submissions may come from many threads).
#[derive(Clone)]
pub struct FleetExecutor {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for FleetExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetExecutor")
            .field("workers", &self.inner.pool.workers())
            .field("outstanding", &self.outstanding())
            .finish()
    }
}

impl FleetExecutor {
    /// Spawns the worker pool and an empty fleet.
    pub fn new(cfg: FleetConfig) -> Self {
        let pool = WorkerPool::new(cfg.workers);
        FleetExecutor {
            inner: Arc::new(Inner {
                cfg,
                epoch: Instant::now(),
                pool,
                supervisor: FleetSupervisor::new(),
                state: Mutex::new(FleetState {
                    next_id: 0,
                    outstanding: 0,
                    records: Vec::new(),
                }),
                idle: Condvar::new(),
                accepting: AtomicBool::new(true),
            }),
        }
    }

    /// The fleet supervisor (live metrics while jobs run).
    pub fn supervisor(&self) -> &FleetSupervisor {
        &self.inner.supervisor
    }

    /// Admitted-but-unfinished jobs right now.
    pub fn outstanding(&self) -> usize {
        self.inner.state.lock().unwrap().outstanding
    }

    /// Tries to admit a job. Non-blocking: a full fleet rejects instead
    /// of waiting.
    pub fn submit(&self, spec: JobSpec) -> Admission {
        self.submit_with(spec, None)
    }

    /// Like [`submit`](Self::submit), with an optional [`JobNotifier`]
    /// fired when the job settles — how a service (the `rtft-serve`
    /// front-end) pushes a job's outputs without waiting for the whole
    /// fleet to [`join`](Self::join).
    pub fn submit_with(&self, spec: JobSpec, notify: Option<JobNotifier>) -> Admission {
        let inner = &self.inner;
        if !inner.accepting.load(Ordering::SeqCst) {
            inner.supervisor.on_rejected(inner.now_ns());
            return Admission::Rejected(RejectReason::ShuttingDown);
        }
        let admitted_ns = inner.now_ns();
        let id = {
            let mut st = inner.state.lock().unwrap();
            if st.outstanding >= inner.cfg.pending_capacity {
                let pending = st.outstanding;
                drop(st);
                inner.supervisor.on_rejected(admitted_ns);
                return Admission::Rejected(RejectReason::QueueFull {
                    pending,
                    capacity: inner.cfg.pending_capacity,
                });
            }
            st.outstanding += 1;
            let id = JobId(st.next_id);
            st.next_id += 1;
            id
        };
        inner.supervisor.on_submitted(id, admitted_ns);
        self.publish_load();
        let deadline_ns = admitted_ns.saturating_add(spec.relative_deadline.as_nanos() as u64);
        let task_inner = Arc::clone(inner);
        inner.pool.submit(deadline_ns, move || {
            run_job(
                &task_inner,
                id,
                spec,
                0,
                admitted_ns,
                None,
                Vec::new(),
                notify,
            );
        });
        Admission::Admitted(id)
    }

    /// Queue-depth/inflight/outstanding snapshot — the *real* backpressure
    /// behind `submit`'s accept/reject verdicts.
    pub fn load(&self) -> FleetLoad {
        let pool = self.inner.pool.load();
        FleetLoad {
            queued: pool.queued,
            inflight: pool.inflight,
            outstanding: self.outstanding(),
            capacity: self.inner.cfg.pending_capacity,
        }
    }

    /// Publishes the current load to the supervisor's gauges
    /// (`fleet.pool.queued` / `fleet.pool.inflight` /
    /// `fleet.jobs.outstanding`).
    fn publish_load(&self) {
        let load = self.load();
        self.inner.supervisor.on_load(
            load.queued as u64,
            load.inflight as u64,
            load.outstanding as u64,
        );
    }

    /// Stops admitting new jobs (outstanding ones keep running).
    pub fn shutdown(&self) {
        self.inner.accepting.store(false, Ordering::SeqCst);
    }

    /// Blocks until every admitted job (including replacements) has
    /// finished, then returns the fleet report. Further submissions are
    /// rejected.
    pub fn join(self) -> FleetReport {
        self.shutdown();
        let inner = &self.inner;
        let mut st = inner.state.lock().unwrap();
        while st.outstanding > 0 {
            st = inner.idle.wait(st).unwrap();
        }
        let runs = st.records.clone();
        drop(st);
        FleetReport {
            runs,
            status: inner.supervisor.status(),
            pool: inner.pool.stats(),
        }
    }
}

/// Executes one run of a job on a pool worker and settles its bookkeeping:
/// either schedules a replacement (transferring the outstanding slot) or
/// records the final result and releases the slot.
#[allow(clippy::too_many_arguments)]
fn run_job(
    inner: &Arc<Inner>,
    id: JobId,
    spec: JobSpec,
    attempt: u64,
    admitted_ns: u64,
    observed_fault_ns: Option<u64>,
    mut faulty_so_far: Vec<usize>,
    notify: Option<JobNotifier>,
) {
    // The builders can panic on malformed specs; isolate the run so the
    // outstanding count is settled either way (a leaked slot would hang
    // `join`).
    let result = catch_unwind(AssertUnwindSafe(|| execute(&spec.template, &spec.runtime)));
    let now_ns = inner.now_ns();
    let completion_ns = now_ns.saturating_sub(admitted_ns);
    let deadline_met = completion_ns <= spec.relative_deadline.as_nanos() as u64;

    let result = match result {
        Ok(r) => r,
        Err(_) => {
            inner.supervisor.on_run_panicked(id, now_ns);
            let record = JobRecord {
                id,
                name: spec.name,
                attempts: attempt,
                arrivals: 0,
                expected: spec.template.expected_tokens(),
                faulty_replicas: faulty_so_far,
                completion_ns,
                deadline_met: false,
                recovered: false,
                failed: true,
            };
            if let Some(notify) = &notify {
                notify(&record, None);
            }
            finish(inner, record);
            return;
        }
    };

    inner
        .supervisor
        .on_run_finished(id, &result, completion_ns, deadline_met);

    let recovered = attempt > 0 && result.faulty_replicas.is_empty() && result.completed();
    if recovered {
        let recovery_ns = now_ns.saturating_sub(observed_fault_ns.unwrap_or(admitted_ns));
        inner.supervisor.on_recovered(id, now_ns, recovery_ns);
    }

    faulty_so_far.extend(result.faulty_replicas.iter().copied());
    faulty_so_far.sort_unstable();
    faulty_so_far.dedup();

    // Fault observed and replacement budget left: re-spawn from a healed
    // template. The outstanding slot transfers to the replacement run, so
    // `join` keeps waiting for it.
    if !result.faulty_replicas.is_empty() && attempt < inner.cfg.max_replacements {
        inner
            .supervisor
            .on_replacement_scheduled(id, now_ns, attempt + 1);
        let healed = JobSpec {
            name: spec.name,
            template: spec.template.healed(),
            relative_deadline: spec.relative_deadline,
            runtime: spec.runtime,
        };
        let deadline_ns = admitted_ns.saturating_add(healed.relative_deadline.as_nanos() as u64);
        let task_inner = Arc::clone(inner);
        inner.pool.submit(deadline_ns, move || {
            run_job(
                &task_inner,
                id,
                healed,
                attempt + 1,
                admitted_ns,
                Some(now_ns),
                faulty_so_far,
                notify,
            );
        });
        return;
    }

    let record = JobRecord {
        id,
        name: spec.name,
        attempts: attempt,
        arrivals: result.arrivals,
        expected: result.expected,
        faulty_replicas: faulty_so_far,
        completion_ns,
        deadline_met,
        recovered,
        failed: !result.completed(),
    };
    // Settle notification before the outstanding slot is released, so
    // `join` implies every notifier already ran.
    if let Some(notify) = &notify {
        notify(&record, Some(&result));
    }
    finish(inner, record);
}

fn finish(inner: &Arc<Inner>, record: JobRecord) {
    let mut st = inner.state.lock().unwrap();
    st.records.push(record);
    st.outstanding -= 1;
    let outstanding = st.outstanding;
    if st.outstanding == 0 {
        inner.idle.notify_all();
    }
    drop(st);
    let pool = inner.pool.load();
    inner
        .supervisor
        .on_load(pool.queued as u64, pool.inflight as u64, outstanding as u64);
}
