//! Job descriptions: what one fleet tenant runs, and how to observe it.
//!
//! A *job* is one fault-tolerant network instance — a duplicated pair or an
//! n-modular group built from the `rtft-core` constructors — plus the
//! runtime it should execute under (deterministic DES or OS threads) and a
//! relative completion deadline. Templates are cheap to clone and can be
//! **re-built**: when a run comes back with latched replicas, the executor
//! re-spawns the job from a healed copy of its template (the fleet-level
//! analogue of the paper's replica replacement).

use rtft_core::{
    build_duplicated, build_hetero, build_n_modular, build_n_modular_voting, instrument_duplicated,
    ArbFault, ArbFaultCause, DuplicationConfig, FaultPlan, FaultRecord, FaultTrigger, HeteroModel,
    HeteroSelector, HeteroSizingReport, NModularModel, NReplicator, NSelector, NSizingReport,
    PayloadGenerator, ReplicaFactory, Replicator, ReplicatorFaultCause, SampledReplicator,
    Selector, VotingSelector,
};
use rtft_kpn::threaded::{run_threaded_with, ThreadedConfig};
use rtft_kpn::{Engine, PjdSink};
use rtft_obs::{DetectionSite, HealthModel, MetricsRegistry};
use rtft_rtc::TimeNs;
use std::sync::Arc;
use std::time::Duration;

/// Fleet-wide unique job identifier, assigned at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// A replica factory that can be shared between the template and its
/// healed replacements.
pub type SharedFactory = Arc<dyn ReplicaFactory + Send + Sync>;

/// Which runtime executes the job's network.
#[derive(Debug, Clone, Copy)]
pub enum JobRuntime {
    /// Deterministic discrete-event simulation up to a virtual horizon.
    DiscreteEvent {
        /// Virtual-time limit of the run.
        horizon: TimeNs,
    },
    /// Real OS threads under wall-clock time.
    Threaded {
        /// Hard wall-clock deadline of the run.
        deadline: Duration,
        /// Quiescence idle window (see `rtft_kpn::threaded`).
        quiescence_grace: Duration,
    },
}

/// The rebuildable description of a job's network.
#[derive(Clone)]
pub enum JobTemplate {
    /// The paper's two-replica duplication (`build_duplicated`).
    Duplicated {
        /// Full duplication config (model, sizing, faults, payload).
        cfg: DuplicationConfig,
        /// Replica subnetwork factory.
        factory: SharedFactory,
    },
    /// The n-replica generalisation (`build_n_modular`).
    NModular {
        /// Interface timing models.
        model: NModularModel,
        /// Derived queue parameters.
        sizing: NSizingReport,
        /// Tokens the producer emits.
        token_count: u64,
        /// RNG seeds: producer, consumer.
        seeds: (u64, u64),
        /// Token payload generator.
        payload: PayloadGenerator,
        /// Replica subnetwork factory.
        factory: SharedFactory,
        /// One fault plan per replica.
        faults: Vec<FaultPlan>,
    },
    /// n-modular redundancy arbitrated by the value-voting selector
    /// (`build_n_modular_voting`): tolerates silent data corruption in a
    /// replica minority, not just timing faults. Needs ≥ 3 replicas.
    NModularVoting {
        /// Interface timing models.
        model: NModularModel,
        /// Derived queue parameters.
        sizing: NSizingReport,
        /// Tokens the producer emits.
        token_count: u64,
        /// RNG seeds: producer, consumer.
        seeds: (u64, u64),
        /// Token payload generator.
        payload: PayloadGenerator,
        /// Replica subnetwork factory.
        factory: SharedFactory,
        /// One fault plan per replica.
        faults: Vec<FaultPlan>,
    },
    /// The sampled-checker structure (`build_hetero`): a full-rate main
    /// replica spot-checked by a lightweight checker that re-verifies
    /// every `k`-th token digest. Runs record checker-lag and
    /// sampled-vs-verified counters into the job registry.
    Hetero {
        /// Interface timing models (main, checker, stride `k`).
        model: HeteroModel,
        /// Derived queue parameters and sampled threshold.
        sizing: HeteroSizingReport,
        /// Tokens the producer emits.
        token_count: u64,
        /// RNG seeds: producer, consumer.
        seeds: (u64, u64),
        /// Token payload generator.
        payload: PayloadGenerator,
        /// Replica subnetwork factory (side 0 = main, side 1 = checker).
        factory: SharedFactory,
        /// Fault plans: `[main, checker]`.
        faults: [FaultPlan; 2],
    },
}

impl std::fmt::Debug for JobTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobTemplate::Duplicated { cfg, .. } => f
                .debug_struct("JobTemplate::Duplicated")
                .field("cfg", cfg)
                .finish_non_exhaustive(),
            JobTemplate::NModular {
                token_count,
                faults,
                ..
            } => f
                .debug_struct("JobTemplate::NModular")
                .field("replicas", &faults.len())
                .field("token_count", token_count)
                .finish_non_exhaustive(),
            JobTemplate::NModularVoting {
                token_count,
                faults,
                ..
            } => f
                .debug_struct("JobTemplate::NModularVoting")
                .field("replicas", &faults.len())
                .field("token_count", token_count)
                .finish_non_exhaustive(),
            JobTemplate::Hetero {
                model, token_count, ..
            } => f
                .debug_struct("JobTemplate::Hetero")
                .field("k", &model.k)
                .field("token_count", token_count)
                .finish_non_exhaustive(),
        }
    }
}

impl JobTemplate {
    /// Number of replicas the template builds.
    pub fn replica_count(&self) -> usize {
        match self {
            JobTemplate::Duplicated { .. } | JobTemplate::Hetero { .. } => 2,
            JobTemplate::NModular { faults, .. } | JobTemplate::NModularVoting { faults, .. } => {
                faults.len()
            }
        }
    }

    /// Tokens the consumer is expected to receive (0 if unbounded).
    pub fn expected_tokens(&self) -> u64 {
        match self {
            JobTemplate::Duplicated { cfg, .. } => cfg.token_count.unwrap_or(0),
            JobTemplate::NModular { token_count, .. }
            | JobTemplate::NModularVoting { token_count, .. }
            | JobTemplate::Hetero { token_count, .. } => *token_count,
        }
    }

    /// A copy of the template with every fault plan cleared — what a
    /// replacement run is built from.
    pub fn healed(&self) -> JobTemplate {
        match self {
            JobTemplate::Duplicated { cfg, factory } => JobTemplate::Duplicated {
                cfg: cfg.healed(),
                factory: Arc::clone(factory),
            },
            JobTemplate::NModular {
                model,
                sizing,
                token_count,
                seeds,
                payload,
                factory,
                faults,
            } => JobTemplate::NModular {
                model: model.clone(),
                sizing: sizing.clone(),
                token_count: *token_count,
                seeds: *seeds,
                payload: Arc::clone(payload),
                factory: Arc::clone(factory),
                faults: vec![FaultPlan::healthy(); faults.len()],
            },
            JobTemplate::NModularVoting {
                model,
                sizing,
                token_count,
                seeds,
                payload,
                factory,
                faults,
            } => JobTemplate::NModularVoting {
                model: model.clone(),
                sizing: sizing.clone(),
                token_count: *token_count,
                seeds: *seeds,
                payload: Arc::clone(payload),
                factory: Arc::clone(factory),
                faults: vec![FaultPlan::healthy(); faults.len()],
            },
            JobTemplate::Hetero {
                model,
                sizing,
                token_count,
                seeds,
                payload,
                factory,
                ..
            } => JobTemplate::Hetero {
                model: model.clone(),
                sizing: sizing.clone(),
                token_count: *token_count,
                seeds: *seeds,
                payload: Arc::clone(payload),
                factory: Arc::clone(factory),
                faults: [FaultPlan::healthy(), FaultPlan::healthy()],
            },
        }
    }
}

/// One admitted job: a template, a runtime, and a relative deadline.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable tenant/job name (report key).
    pub name: String,
    /// The network to build for each run.
    pub template: JobTemplate,
    /// Completion deadline relative to admission (wall clock); drives the
    /// executor's EDF ordering and the `deadline_met` verdict.
    pub relative_deadline: Duration,
    /// Runtime the network executes under.
    pub runtime: JobRuntime,
}

/// Everything the supervisor needs to know about one finished run.
#[derive(Debug)]
pub struct JobRunResult {
    /// Tokens the consumer actually received.
    pub arrivals: u64,
    /// Tokens the consumer was expected to receive.
    pub expected: u64,
    /// Replica indices latched faulty by either arbitration channel,
    /// ascending, deduplicated.
    pub faulty_replicas: Vec<usize>,
    /// The run's private metrics registry (folded into the fleet registry
    /// by the supervisor).
    pub registry: MetricsRegistry,
    /// Replica health (duplicated jobs only; n-modular jobs report faults
    /// through `faulty_replicas`).
    pub health: Option<HealthModel>,
    /// The consumer's per-token `(arrival time ns, payload digest)` log,
    /// in delivery order — what a streaming front-end pushes back to its
    /// client as `Output` frames.
    pub arrival_log: Vec<(u64, u64)>,
}

impl JobRunResult {
    /// `true` when every expected token arrived (an unbounded job is
    /// complete when it delivered anything at all).
    pub fn completed(&self) -> bool {
        if self.expected == 0 {
            self.arrivals > 0
        } else {
            self.arrivals >= self.expected
        }
    }
}

/// Folds a hetero run's per-structure observability into the job
/// registry: how many main tokens were sampled for re-verification, how
/// many of those the checker actually verified, and how far the checker
/// was still running behind the sampled stream when the run ended.
fn record_hetero_metrics(registry: &MetricsRegistry, samples: u64, verified: u64, lag: u64) {
    registry.counter("hetero.tokens.sampled").add(samples);
    registry.counter("hetero.tokens.verified").add(verified);
    registry.gauge("hetero.checker_lag").set(lag);
}

/// Builds a hetero run's health view after the fact: injection instants
/// from the fault plans, detection instants from the two channels' latch
/// records. The front-end reads detection latencies off this exactly as
/// it does for duplicated jobs.
fn hetero_health(
    faults: &[FaultPlan; 2],
    rep: [Option<FaultRecord>; 2],
    sel: [Option<ArbFault>; 2],
) -> HealthModel {
    let health = HealthModel::new(2);
    for (i, plan) in faults.iter().enumerate() {
        if let FaultTrigger::AtTime(t) = plan.trigger {
            health.note_fault_injected(i, t.as_ns());
        }
    }
    for i in 0..2 {
        let mut events: Vec<(DetectionSite, u64)> = Vec::new();
        if let Some(f) = rep[i] {
            let site = match f.cause {
                ReplicatorFaultCause::Overflow => DetectionSite::ReplicatorOverflow,
                ReplicatorFaultCause::Divergence => DetectionSite::ReplicatorDivergence,
            };
            events.push((site, f.at.as_ns()));
        }
        if let Some(f) = sel[i] {
            let site = match f.cause {
                ArbFaultCause::Stall => DetectionSite::SelectorStall,
                // A digest mismatch is an arrival that disagrees — the
                // closest existing site label.
                ArbFaultCause::Divergence | ArbFaultCause::ValueMismatch => {
                    DetectionSite::SelectorDivergence
                }
            };
            events.push((site, f.at.as_ns()));
        }
        // `on_detection` takes the first call as the first detection, so
        // feed the sites in time order.
        events.sort_by_key(|e| e.1);
        for (site, at) in events {
            health.on_detection(i, site, at);
        }
    }
    health
}

/// Merges two detectors' faulty-replica views into one ascending list.
fn union_faulty(a: impl Iterator<Item = usize>, b: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut v: Vec<usize> = a.chain(b).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Copies a sink's arrival record into the run result's plain-u64 log.
fn arrival_log_of(arrivals: &[(TimeNs, u64)]) -> Vec<(u64, u64)> {
    arrivals.iter().map(|&(t, d)| (t.as_ns(), d)).collect()
}

/// Builds and runs one instance of the template under the given runtime.
///
/// This is a plain synchronous function: the fleet executor calls it from
/// a pool worker, tests can call it directly.
///
/// # Panics
///
/// Panics if the template's sizing and model disagree (propagated from the
/// `rtft-core` builders) — the executor catches this and marks the run
/// failed rather than poisoning the pool.
pub fn execute(template: &JobTemplate, runtime: &JobRuntime) -> JobRunResult {
    match template {
        JobTemplate::Duplicated { cfg, factory } => execute_duplicated(cfg, factory, runtime),
        JobTemplate::NModularVoting {
            model,
            sizing,
            token_count,
            seeds,
            payload,
            factory,
            faults,
        } => {
            let (net, ids) = build_n_modular_voting(
                model,
                sizing,
                *token_count,
                *seeds,
                Arc::clone(payload),
                factory.as_ref(),
                faults,
            );
            let expected = *token_count;
            match runtime {
                JobRuntime::DiscreteEvent { horizon } => {
                    let mut engine = Engine::new(net);
                    engine.run_until(*horizon);
                    let net = engine.network();
                    let rep = net
                        .channel_as::<NReplicator>(ids.replicator)
                        .expect("n-replicator");
                    let sel = net
                        .channel_as::<VotingSelector>(ids.selector)
                        .expect("voting selector");
                    let arrival_log = arrival_log_of(ids.consumer_arrivals(net));
                    JobRunResult {
                        arrivals: arrival_log.len() as u64,
                        expected,
                        faulty_replicas: union_faulty(rep.faulty_indices(), sel.faulty_indices()),
                        registry: MetricsRegistry::new(),
                        health: None,
                        arrival_log,
                    }
                }
                JobRuntime::Threaded {
                    deadline,
                    quiescence_grace,
                } => {
                    let registry = MetricsRegistry::new();
                    let config = ThreadedConfig::new(*deadline)
                        .with_quiescence_grace(*quiescence_grace)
                        .with_metrics(&registry);
                    let run = run_threaded_with(net, &config);
                    let faulty = run
                        .channel_as::<NReplicator, _>(ids.replicator.0, |r| {
                            r.faulty_indices().collect::<Vec<_>>()
                        })
                        .unwrap_or_default()
                        .into_iter()
                        .chain(
                            run.channel_as::<VotingSelector, _>(ids.selector.0, |s| {
                                s.faulty_indices().collect::<Vec<_>>()
                            })
                            .unwrap_or_default(),
                        );
                    let arrival_log = run
                        .process_as::<PjdSink>("consumer")
                        .map_or_else(Vec::new, |s| arrival_log_of(s.arrivals()));
                    JobRunResult {
                        arrivals: arrival_log.len() as u64,
                        expected,
                        faulty_replicas: union_faulty(faulty, std::iter::empty()),
                        registry,
                        health: None,
                        arrival_log,
                    }
                }
            }
        }
        JobTemplate::NModular {
            model,
            sizing,
            token_count,
            seeds,
            payload,
            factory,
            faults,
        } => {
            let (net, ids) = build_n_modular(
                model,
                sizing,
                *token_count,
                *seeds,
                Arc::clone(payload),
                factory.as_ref(),
                faults,
            );
            let expected = *token_count;
            match runtime {
                JobRuntime::DiscreteEvent { horizon } => {
                    let mut engine = Engine::new(net);
                    engine.run_until(*horizon);
                    let net = engine.network();
                    let rep = net
                        .channel_as::<NReplicator>(ids.replicator)
                        .expect("n-replicator");
                    let sel = net
                        .channel_as::<NSelector>(ids.selector)
                        .expect("n-selector");
                    let arrival_log = arrival_log_of(ids.consumer_arrivals(net));
                    JobRunResult {
                        arrivals: arrival_log.len() as u64,
                        expected,
                        faulty_replicas: union_faulty(rep.faulty_indices(), sel.faulty_indices()),
                        registry: MetricsRegistry::new(),
                        health: None,
                        arrival_log,
                    }
                }
                JobRuntime::Threaded {
                    deadline,
                    quiescence_grace,
                } => {
                    let registry = MetricsRegistry::new();
                    let config = ThreadedConfig::new(*deadline)
                        .with_quiescence_grace(*quiescence_grace)
                        .with_metrics(&registry);
                    let run = run_threaded_with(net, &config);
                    let faulty = run
                        .channel_as::<NReplicator, _>(ids.replicator.0, |r| {
                            r.faulty_indices().collect::<Vec<_>>()
                        })
                        .unwrap_or_default()
                        .into_iter()
                        .chain(
                            run.channel_as::<NSelector, _>(ids.selector.0, |s| {
                                s.faulty_indices().collect::<Vec<_>>()
                            })
                            .unwrap_or_default(),
                        );
                    let arrival_log = run
                        .process_as::<PjdSink>("consumer")
                        .map_or_else(Vec::new, |s| arrival_log_of(s.arrivals()));
                    JobRunResult {
                        arrivals: arrival_log.len() as u64,
                        expected,
                        faulty_replicas: union_faulty(faulty, std::iter::empty()),
                        registry,
                        health: None,
                        arrival_log,
                    }
                }
            }
        }
        JobTemplate::Hetero {
            model,
            sizing,
            token_count,
            seeds,
            payload,
            factory,
            faults,
        } => {
            let (net, ids) = build_hetero(
                model,
                sizing,
                *token_count,
                *seeds,
                Arc::clone(payload),
                factory.as_ref(),
                faults,
            );
            let expected = *token_count;
            match runtime {
                JobRuntime::DiscreteEvent { horizon } => {
                    let mut engine = Engine::new(net);
                    engine.run_until(*horizon);
                    let net = engine.network();
                    let rep = net
                        .channel_as::<SampledReplicator>(ids.replicator)
                        .expect("sampled replicator");
                    let sel = net
                        .channel_as::<HeteroSelector>(ids.selector)
                        .expect("hetero selector");
                    let registry = MetricsRegistry::new();
                    let check = sel.policy();
                    record_hetero_metrics(
                        &registry,
                        check.samples(),
                        check.verified(),
                        check.checker_lag(),
                    );
                    let health = hetero_health(
                        faults,
                        [rep.fault(0), rep.fault(1)],
                        [sel.fault(0), sel.fault(1)],
                    );
                    let arrival_log = arrival_log_of(ids.consumer_arrivals(net));
                    JobRunResult {
                        arrivals: arrival_log.len() as u64,
                        expected,
                        faulty_replicas: union_faulty(
                            rep.faulty_indices(),
                            (0..2).filter(|&i| sel.fault(i).is_some()),
                        ),
                        registry,
                        health: Some(health),
                        arrival_log,
                    }
                }
                JobRuntime::Threaded {
                    deadline,
                    quiescence_grace,
                } => {
                    let registry = MetricsRegistry::new();
                    let config = ThreadedConfig::new(*deadline)
                        .with_quiescence_grace(*quiescence_grace)
                        .with_metrics(&registry);
                    let run = run_threaded_with(net, &config);
                    let rep_records = run
                        .channel_as::<SampledReplicator, _>(ids.replicator.0, |r| {
                            [r.fault(0), r.fault(1)]
                        })
                        .unwrap_or([None, None]);
                    let (sel_records, obs) = run
                        .channel_as::<HeteroSelector, _>(ids.selector.0, |s| {
                            let c = s.policy();
                            (
                                [s.fault(0), s.fault(1)],
                                (c.samples(), c.verified(), c.checker_lag()),
                            )
                        })
                        .unwrap_or(([None, None], (0, 0, 0)));
                    record_hetero_metrics(&registry, obs.0, obs.1, obs.2);
                    let health = hetero_health(faults, rep_records, sel_records);
                    let arrival_log = run
                        .process_as::<PjdSink>("consumer")
                        .map_or_else(Vec::new, |s| arrival_log_of(s.arrivals()));
                    JobRunResult {
                        arrivals: arrival_log.len() as u64,
                        expected,
                        faulty_replicas: union_faulty(
                            (0..2).filter(|&i| rep_records[i].is_some()),
                            (0..2).filter(|&i| sel_records[i].is_some()),
                        ),
                        registry,
                        health: Some(health),
                        arrival_log,
                    }
                }
            }
        }
    }
}

/// Runs a full [`JobSpec`] outside the executor: builds the template and
/// executes it under the spec's runtime, ignoring admission and deadlines.
///
/// This is the WAL replay path — `rtft-serve`'s `replay_verify` re-runs a
/// logged stream's spec through the exact same builder the live server
/// used, so the replayed output digests are comparable bit-for-bit with
/// the logged ones. Determinism holds because every jitter source is
/// seeded from the spec itself.
pub fn execute_spec(spec: &JobSpec) -> JobRunResult {
    execute(&spec.template, &spec.runtime)
}

fn execute_duplicated(
    cfg: &DuplicationConfig,
    factory: &SharedFactory,
    runtime: &JobRuntime,
) -> JobRunResult {
    let (mut net, ids) = build_duplicated(cfg, factory.as_ref());
    let registry = MetricsRegistry::new();
    let health = instrument_duplicated(&mut net, &ids, cfg, &registry);
    let expected = cfg.token_count.unwrap_or(0);
    match runtime {
        JobRuntime::DiscreteEvent { horizon } => {
            let mut engine = Engine::new(net);
            engine.run_until(*horizon);
            let net = engine.network();
            let rep = ids.replicator_faults(net);
            let sel = ids.selector_faults(net);
            let faulty = union_faulty(
                rep.iter().enumerate().filter_map(|(i, f)| f.map(|_| i)),
                sel.iter().enumerate().filter_map(|(i, f)| f.map(|_| i)),
            );
            let arrival_log = arrival_log_of(ids.consumer_arrivals(net));
            JobRunResult {
                arrivals: arrival_log.len() as u64,
                expected,
                faulty_replicas: faulty,
                registry,
                health: Some(health),
                arrival_log,
            }
        }
        JobRuntime::Threaded {
            deadline,
            quiescence_grace,
        } => {
            let config = ThreadedConfig::new(*deadline)
                .with_quiescence_grace(*quiescence_grace)
                .with_metrics(&registry);
            let run = run_threaded_with(net, &config);
            let rep = run
                .channel_as::<Replicator, _>(ids.replicator.0, |r| {
                    (0..2).filter(|&i| r.fault(i).is_some()).collect::<Vec<_>>()
                })
                .unwrap_or_default();
            let sel = run
                .channel_as::<Selector, _>(ids.selector.0, |s| {
                    (0..2).filter(|&i| s.fault(i).is_some()).collect::<Vec<_>>()
                })
                .unwrap_or_default();
            let arrival_log = run
                .process_as::<PjdSink>("consumer")
                .map_or_else(Vec::new, |s| arrival_log_of(s.arrivals()));
            JobRunResult {
                arrivals: arrival_log.len() as u64,
                expected,
                faulty_replicas: union_faulty(rep.into_iter(), sel.into_iter()),
                registry,
                health: Some(health),
                arrival_log,
            }
        }
    }
}
