//! Fleet-level health folding.
//!
//! Each job run carries its own private [`MetricsRegistry`] (and, for
//! duplicated jobs, a [`HealthModel`]). The supervisor owns the *fleet*
//! registry and folds every completed run into it exactly once via
//! [`MetricsRegistry::absorb`], so fleet-level dashboards see one merged
//! view: total detections, the combined detection-latency distribution,
//! per-queue high-water marks across all tenants — plus the fleet's own
//! lifecycle counters (admissions, rejections, replacements, recoveries).

use rtft_obs::export::events_to_jsonl;
use rtft_obs::{
    ClockDomain, Counter, EventRecord, EventSink, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry,
};

use crate::job::{JobId, JobRunResult};

/// Capacity of the supervisor's lifecycle event ring.
const EVENT_CAPACITY: usize = 1024;

/// Folds per-job observations into fleet-level metrics and events.
#[derive(Debug, Clone)]
pub struct FleetSupervisor {
    registry: MetricsRegistry,
    events: EventSink,
    submitted: Counter,
    rejected: Counter,
    completed: Counter,
    failed: Counter,
    replaced: Counter,
    recovered: Counter,
    deadline_missed: Counter,
    faulty_replicas: Counter,
    completion_ns: Histogram,
    recovery_ns: Histogram,
    detection_latency_ns: Histogram,
    pool_queued: Gauge,
    pool_inflight: Gauge,
    outstanding: Gauge,
}

impl Default for FleetSupervisor {
    fn default() -> Self {
        FleetSupervisor::new()
    }
}

impl FleetSupervisor {
    /// A fresh supervisor with an empty fleet registry.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        FleetSupervisor {
            submitted: registry.counter("fleet.jobs.submitted"),
            rejected: registry.counter("fleet.jobs.rejected"),
            completed: registry.counter("fleet.jobs.completed"),
            failed: registry.counter("fleet.jobs.failed"),
            replaced: registry.counter("fleet.jobs.replaced"),
            recovered: registry.counter("fleet.jobs.recovered"),
            deadline_missed: registry.counter("fleet.deadline.missed"),
            faulty_replicas: registry.counter("fleet.replicas.faulty"),
            completion_ns: registry.histogram("fleet.completion_ns"),
            recovery_ns: registry.histogram("fleet.recovery_ns"),
            detection_latency_ns: registry.histogram("fleet.detection_latency_ns"),
            pool_queued: registry.gauge("fleet.pool.queued"),
            pool_inflight: registry.gauge("fleet.pool.inflight"),
            outstanding: registry.gauge("fleet.jobs.outstanding"),
            events: EventSink::new(EVENT_CAPACITY),
            registry,
        }
    }

    /// The fleet registry (merged view across all folded jobs).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    fn event(&self, name: &'static str, at_ns: u64, job: JobId, value: u64) {
        self.events.push(EventRecord {
            at_ns,
            clock: ClockDomain::Wall,
            name,
            node: Some(job.0 as usize),
            channel: None,
            value,
        });
    }

    /// Records an admission.
    pub fn on_submitted(&self, job: JobId, at_ns: u64) {
        self.submitted.inc();
        self.event("fleet.job.submitted", at_ns, job, 0);
    }

    /// Records a rejection (backpressure or shutdown).
    pub fn on_rejected(&self, at_ns: u64) {
        self.rejected.inc();
        self.event("fleet.job.rejected", at_ns, JobId(u64::MAX), 0);
    }

    /// Folds one finished run into the fleet view. `completion_ns` is the
    /// wall time from admission to this run's completion; `deadline_met`
    /// is the executor's verdict against the job's relative deadline.
    pub fn on_run_finished(
        &self,
        job: JobId,
        result: &JobRunResult,
        completion_ns: u64,
        deadline_met: bool,
    ) {
        self.registry.absorb(&result.registry);
        if let Some(health) = &result.health {
            self.detection_latency_ns
                .merge_from(health.detection_latency());
        }
        self.faulty_replicas
            .add(result.faulty_replicas.len() as u64);
        for &replica in &result.faulty_replicas {
            self.event("fleet.replica.faulty", completion_ns, job, replica as u64);
        }
        if result.completed() {
            self.completed.inc();
            self.completion_ns.record(completion_ns);
            self.event("fleet.job.completed", completion_ns, job, result.arrivals);
        } else {
            self.failed.inc();
            self.event("fleet.job.failed", completion_ns, job, result.arrivals);
        }
        if !deadline_met {
            self.deadline_missed.inc();
            self.event("fleet.deadline.missed", completion_ns, job, 0);
        }
    }

    /// Records a scheduled replacement run for `job`.
    pub fn on_replacement_scheduled(&self, job: JobId, at_ns: u64, attempt: u64) {
        self.replaced.inc();
        self.event("fleet.job.replaced", at_ns, job, attempt);
    }

    /// Records a successful recovery: a replacement run came back with no
    /// faulty replicas. `recovery_ns` is the wall time from the fault
    /// *observation* (the faulty run's completion) to the replacement's
    /// completion — the fleet-level time-to-recovery.
    pub fn on_recovered(&self, job: JobId, at_ns: u64, recovery_ns: u64) {
        self.recovered.inc();
        self.recovery_ns.record(recovery_ns);
        self.event("fleet.job.recovered", at_ns, job, recovery_ns);
    }

    /// Publishes the executor's instantaneous load to the fleet gauges
    /// (`fleet.pool.queued` / `fleet.pool.inflight` /
    /// `fleet.jobs.outstanding`). Gauges keep their high-water mark, so
    /// the fleet registry also records peak backpressure.
    pub fn on_load(&self, queued: u64, inflight: u64, outstanding: u64) {
        self.pool_queued.set(queued);
        self.pool_inflight.set(inflight);
        self.outstanding.set(outstanding);
    }

    /// Records a run that panicked inside the worker.
    pub fn on_run_panicked(&self, job: JobId, at_ns: u64) {
        self.failed.inc();
        self.event("fleet.job.panicked", at_ns, job, 0);
    }

    /// Snapshot of the fleet's lifecycle state.
    pub fn status(&self) -> FleetStatus {
        FleetStatus {
            submitted: self.submitted.get(),
            rejected: self.rejected.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            replaced: self.replaced.get(),
            recovered: self.recovered.get(),
            deadline_missed: self.deadline_missed.get(),
            faulty_replicas: self.faulty_replicas.get(),
            completion_ns: self.completion_ns.snapshot(),
            recovery_ns: self.recovery_ns.snapshot(),
            detection_latency_ns: self.detection_latency_ns.snapshot(),
        }
    }

    /// The lifecycle event log as JSONL (bounded ring; oldest dropped).
    pub fn events_jsonl(&self) -> String {
        events_to_jsonl(&self.events)
    }
}

/// Immutable fleet-level summary, captured at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStatus {
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs rejected at admission.
    pub rejected: u64,
    /// Runs that delivered every expected token.
    pub completed: u64,
    /// Runs that fell short (or panicked).
    pub failed: u64,
    /// Replacement runs scheduled after a fault observation.
    pub replaced: u64,
    /// Replacement runs that came back healthy.
    pub recovered: u64,
    /// Completions after the job's relative deadline.
    pub deadline_missed: u64,
    /// Total replica fault latches observed across all runs.
    pub faulty_replicas: u64,
    /// Admission-to-completion wall latency distribution.
    pub completion_ns: HistogramSnapshot,
    /// Fault-observation-to-recovery wall latency distribution.
    pub recovery_ns: HistogramSnapshot,
    /// Merged per-job detection latency distribution.
    pub detection_latency_ns: HistogramSnapshot,
}

impl FleetStatus {
    /// Renders the status as a JSON object (hand-rolled, zero-dep).
    pub fn to_json(&self) -> String {
        use rtft_obs::json::JsonObject;
        let hist = |s: &HistogramSnapshot| {
            JsonObject::new()
                .u64_field("count", s.count)
                .u64_field("max", s.max)
                .u64_field("p50", s.p50)
                .u64_field("p99", s.p99)
                .f64_field("mean", s.mean())
                .finish()
        };
        JsonObject::new()
            .u64_field("submitted", self.submitted)
            .u64_field("rejected", self.rejected)
            .u64_field("completed", self.completed)
            .u64_field("failed", self.failed)
            .u64_field("replaced", self.replaced)
            .u64_field("recovered", self.recovered)
            .u64_field("deadline_missed", self.deadline_missed)
            .u64_field("faulty_replicas", self.faulty_replicas)
            .raw_field("completion_ns", &hist(&self.completion_ns))
            .raw_field("recovery_ns", &hist(&self.recovery_ns))
            .raw_field("detection_latency_ns", &hist(&self.detection_latency_ns))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_obs::MetricsRegistry;

    fn result(faulty: Vec<usize>, arrivals: u64, expected: u64) -> JobRunResult {
        JobRunResult {
            arrivals,
            expected,
            faulty_replicas: faulty,
            registry: MetricsRegistry::new(),
            health: None,
            arrival_log: Vec::new(),
        }
    }

    #[test]
    fn folds_lifecycle_counters() {
        let s = FleetSupervisor::new();
        s.on_submitted(JobId(0), 0);
        s.on_run_finished(JobId(0), &result(vec![1], 100, 100), 5_000, true);
        s.on_replacement_scheduled(JobId(0), 5_000, 1);
        s.on_run_finished(JobId(0), &result(vec![], 100, 100), 9_000, true);
        s.on_recovered(JobId(0), 9_000, 4_000);

        let st = s.status();
        assert_eq!(st.submitted, 1);
        assert_eq!(st.completed, 2);
        assert_eq!(st.replaced, 1);
        assert_eq!(st.recovered, 1);
        assert_eq!(st.faulty_replicas, 1);
        assert_eq!(st.recovery_ns.count, 1);
        assert_eq!(st.completion_ns.count, 2);
        assert!(st.to_json().contains("\"recovered\":1"));
    }

    #[test]
    fn absorbs_job_registries_into_fleet_view() {
        let s = FleetSupervisor::new();
        let job = MetricsRegistry::new();
        job.counter("core.detections").add(3);
        s.on_run_finished(JobId(7), &result(vec![0], 10, 10), 1_000, true);
        s.registry().absorb(&job);
        let counters = s.registry().counter_values();
        assert!(counters.contains(&("core.detections".to_string(), 3)));
    }

    #[test]
    fn incomplete_run_counts_as_failed_and_misses_deadline() {
        let s = FleetSupervisor::new();
        s.on_run_finished(JobId(1), &result(vec![], 40, 100), 2_000, false);
        let st = s.status();
        assert_eq!(st.failed, 1);
        assert_eq!(st.completed, 0);
        assert_eq!(st.deadline_missed, 1);
        assert!(s.events_jsonl().contains("fleet.job.failed"));
    }
}
