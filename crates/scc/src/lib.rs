//! # rtft-scc — Intel SCC processor emulation
//!
//! A timing-faithful software model of the hardware the paper validated
//! its framework on: Intel's 48-core Single-Chip Cloud Computer in
//! bare-metal mode (§4.1 of Rai et al., DAC 2014). The real silicon is a
//! discontinued 2010 research vehicle; this crate reproduces the
//! properties the paper's experiments actually depend on:
//!
//! * [`topology`] — 24 dual-core tiles on a 6×4 mesh, deterministic X-Y
//!   routing;
//! * [`clock`] — the paper's boot clocks (tile 533 MHz / router 800 MHz /
//!   DDR3 800 MHz) and per-core timestamp counters with boot-time
//!   synchronisation;
//! * [`noc`] — MPB message timing with the ≤3 KB chunk rule;
//! * [`mpb`] — per-core 8 KB message-passing-buffer budgets;
//! * [`rcce`] — an iRCCE-like matched send/receive layer (blocking and
//!   non-blocking);
//! * [`mapping`] — the low-contention one-process-per-tile placement of
//!   §4.1;
//! * [`SccPlatform`] — the bridge charging these latencies to a
//!   `rtft-kpn` simulation.
//!
//! # Example: timing a frame transfer across the die
//!
//! ```
//! use rtft_scc::{CoreId, NocModel};
//! use rtft_rtc::TimeNs;
//!
//! let noc = NocModel::paper_boot();
//! // One 10 KB encoded MJPEG frame, corner to corner (8 hops, 4 chunks).
//! let t = noc.message_latency(CoreId::new(0), CoreId::new(47), 10 * 1024);
//! assert!(t < TimeNs::from_ms(1)); // ≪ the 30 ms frame period
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod mapping;
pub mod mpb;
pub mod noc;
pub mod optimize;
mod platform;
pub mod rcce;
pub mod topology;

pub use clock::{ClockDomain, SccClocks, Tsc, TscBank};
pub use mapping::{low_contention_pipeline, row_major, snake_order, Mapping};
pub use mpb::{MpbAllocator, MpbExhausted, MpbRegion};
pub use noc::{NocFaultPlan, NocModel, NocTraffic, MAX_CHUNK_BYTES, MPB_BYTES_PER_CORE};
pub use optimize::{duplicated_network_flows, optimize_mapping, OptimizedMapping};
pub use platform::SccPlatform;
pub use rcce::{RcceWorld, RecvOutcome, SendHandle};
pub use topology::{route_links, CoreId, Link, TileId, CORE_COUNT, TILE_COUNT};
