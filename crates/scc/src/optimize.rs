//! Search-based process placement for arbitrary flow graphs.
//!
//! The snake placement of [`crate::mapping::low_contention_pipeline`] is
//! optimal for linear pipelines, but a duplicated network (Fig. 1) is a
//! diamond: producer → {replica A pipeline, replica B pipeline} →
//! consumer. This module provides a deterministic local-search optimiser
//! in the spirit of Zimmer et al.'s low-contention mapping (the paper's
//! \[13\]): minimise total communication latency plus a contention penalty
//! for flows sharing mesh links, under the one-process-per-tile
//! constraint.

use crate::mapping::{snake_order, Mapping};
use crate::noc::NocModel;
use crate::topology::TILE_COUNT;
use rtft_rtc::TimeNs;

/// Cost of a candidate mapping: total per-flow latency plus a penalty per
/// unit of link sharing beyond one flow per link.
fn cost(mapping: &Mapping, flows: &[(usize, usize, usize)], noc: &NocModel) -> u128 {
    let mut total: u128 = 0;
    for (from, to, bytes) in flows {
        total += noc
            .message_latency(mapping.core(*from), mapping.core(*to), *bytes)
            .as_ns() as u128;
    }
    let pair_flows: Vec<(usize, usize)> = flows.iter().map(|(a, b, _)| (*a, *b)).collect();
    let util = mapping.link_utilization(&pair_flows);
    let contention: u128 = util
        .values()
        .map(|c| {
            if *c > 1 {
                ((*c - 1) as u128) * 50_000
            } else {
                0
            }
        })
        .sum();
    total + contention
}

/// Deterministic SplitMix64 for reproducible search.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Result of a placement optimisation.
#[derive(Debug, Clone)]
pub struct OptimizedMapping {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its cost (ns of total latency + contention penalty).
    pub cost: u128,
    /// The starting (snake) cost, for comparison.
    pub initial_cost: u128,
}

/// Optimises the placement of `processes` communicating via `flows`
/// (`(from, to, bytes per token)`), by seeded local search over pairwise
/// swaps and relocations from a snake-order start. One process per tile.
///
/// # Panics
///
/// Panics if `processes > 24` or a flow references an out-of-range
/// process.
pub fn optimize_mapping(
    processes: usize,
    flows: &[(usize, usize, usize)],
    noc: &NocModel,
    iterations: usize,
    seed: u64,
) -> OptimizedMapping {
    assert!(
        processes <= TILE_COUNT as usize,
        "one process per tile: at most 24"
    );
    for (a, b, _) in flows {
        assert!(
            *a < processes && *b < processes,
            "flow references unknown process"
        );
    }
    // Assignment: process i sits on tiles[slot[i]].
    let order = snake_order();
    let mut slots: Vec<usize> = (0..processes).collect();
    let to_mapping =
        |slots: &[usize]| Mapping::new(slots.iter().map(|s| order[*s].cores()[0]).collect());

    let mut best = to_mapping(&slots);
    let initial_cost = cost(&best, flows, noc);
    let mut best_cost = initial_cost;
    let mut rng = seed;

    for _ in 0..iterations {
        let mut candidate = slots.clone();
        if splitmix(&mut rng).is_multiple_of(2) && processes >= 2 {
            // Swap two processes.
            let i = (splitmix(&mut rng) as usize) % processes;
            let j = (splitmix(&mut rng) as usize) % processes;
            candidate.swap(i, j);
        } else {
            // Relocate one process to a free tile.
            let i = (splitmix(&mut rng) as usize) % processes;
            let target = (splitmix(&mut rng) as usize) % TILE_COUNT as usize;
            if candidate.contains(&target) {
                continue;
            }
            candidate[i] = target;
        }
        let m = to_mapping(&candidate);
        let c = cost(&m, flows, noc);
        if c < best_cost {
            best_cost = c;
            best = m;
            slots = candidate;
        }
    }

    OptimizedMapping {
        mapping: best,
        cost: best_cost,
        initial_cost,
    }
}

/// The flow set of a duplicated network (Fig. 1) with per-replica
/// pipeline lengths: producer → replicator fan-out → replica stages →
/// selector fan-in → consumer. Returns `(process count, flows)`; process
/// 0 is the producer and the last process is the consumer.
pub fn duplicated_network_flows(
    stages_per_replica: usize,
    input_bytes: usize,
    output_bytes: usize,
) -> (usize, Vec<(usize, usize, usize)>) {
    // 0: producer; replicas A = 1..=k, B = k+1..=2k; consumer = 2k+1.
    let k = stages_per_replica;
    let consumer = 2 * k + 1;
    let mut flows = Vec::new();
    for r in 0..2 {
        let base = 1 + r * k;
        flows.push((0, base, input_bytes));
        for s in 0..k - 1 {
            flows.push((base + s, base + s + 1, input_bytes));
        }
        flows.push((base + k - 1, consumer, output_bytes));
    }
    (consumer + 1, flows)
}

/// Communication latency summary of a mapping over a flow set.
pub fn latency_summary(
    mapping: &Mapping,
    flows: &[(usize, usize, usize)],
    noc: &NocModel,
) -> TimeNs {
    flows
        .iter()
        .map(|(a, b, bytes)| noc.message_latency(mapping.core(*a), mapping.core(*b), *bytes))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::low_contention_pipeline;

    fn noc() -> NocModel {
        NocModel::paper_boot()
    }

    #[test]
    fn optimizer_never_worse_than_snake_start() {
        let (n, flows) = duplicated_network_flows(3, 10 * 1024, 76_800);
        let result = optimize_mapping(n, &flows, &noc(), 2_000, 42);
        assert!(result.cost <= result.initial_cost);
        assert!(result.mapping.one_process_per_tile());
    }

    #[test]
    fn optimizer_improves_diamond_topologies() {
        // The snake is suboptimal for a diamond: both replica pipelines
        // plus the fan-in/fan-out stretch along one path. Local search
        // should shave measurable latency.
        let (n, flows) = duplicated_network_flows(4, 10 * 1024, 76_800);
        let result = optimize_mapping(n, &flows, &noc(), 5_000, 7);
        assert!(
            result.cost < result.initial_cost,
            "search found no improvement: {} vs {}",
            result.cost,
            result.initial_cost
        );
    }

    #[test]
    fn optimizer_is_deterministic_per_seed() {
        let (n, flows) = duplicated_network_flows(2, 3 * 1024, 3 * 1024);
        let a = optimize_mapping(n, &flows, &noc(), 1_000, 11);
        let b = optimize_mapping(n, &flows, &noc(), 1_000, 11);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn pipeline_flows_keep_snake_optimal_or_equal() {
        // For a pure pipeline the snake is already contention-free; the
        // optimiser must not pretend otherwise by more than trivial
        // latency shuffling.
        let flows: Vec<(usize, usize, usize)> = (0..7).map(|i| (i, i + 1, 3 * 1024)).collect();
        let snake = low_contention_pipeline(8);
        let pair_flows: Vec<(usize, usize)> = flows.iter().map(|(a, b, _)| (*a, *b)).collect();
        assert_eq!(snake.max_link_sharing(&pair_flows), 1);
        let result = optimize_mapping(8, &flows, &noc(), 2_000, 3);
        let result_sharing = result.mapping.max_link_sharing(&pair_flows);
        assert!(
            result_sharing <= 1,
            "optimiser introduced contention: {result_sharing}"
        );
    }

    #[test]
    fn flow_builder_shapes_the_diamond() {
        let (n, flows) = duplicated_network_flows(2, 100, 200);
        assert_eq!(n, 6); // producer + 2×2 stages + consumer
        assert_eq!(flows.len(), 6); // 2×(in + 1 internal + out)
        assert!(flows.contains(&(0, 1, 100)));
        assert!(flows.contains(&(0, 3, 100)));
        assert!(flows.contains(&(2, 5, 200)));
        assert!(flows.contains(&(4, 5, 200)));
    }

    #[test]
    #[should_panic(expected = "unknown process")]
    fn bad_flow_rejected() {
        let _ = optimize_mapping(2, &[(0, 5, 10)], &noc(), 10, 1);
    }
}
