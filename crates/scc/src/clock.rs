//! Clock domains and per-core timestamp counters.
//!
//! The paper boots the SCC with tiles at 533 MHz, routers at 800 MHz and
//! DDR3 at 800 MHz (§4.1), derives all timing measurements from each
//! core's local timestamp counter (TSC), and synchronises all clocks at
//! application boot "in order to get valid timing results". This module
//! reproduces that measurement methodology: each core's TSC runs at the
//! tile frequency with a per-core boot offset and an optional drift, and
//! [`TscBank::synchronize`] zeroes the offsets the way the boot-time sync
//! does.

use crate::topology::{CoreId, CORE_COUNT};
use rtft_rtc::TimeNs;

/// A fixed-frequency clock domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    freq_hz: u64,
}

impl ClockDomain {
    /// A domain at `freq_hz` hertz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is zero.
    pub fn new(freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "clock frequency must be positive");
        ClockDomain { freq_hz }
    }

    /// Frequency in hertz.
    pub fn freq_hz(&self) -> u64 {
        self.freq_hz
    }

    /// Duration of one cycle (rounded to the nearest picosecond, expressed
    /// in integer picoseconds).
    pub fn cycle_ps(&self) -> u64 {
        1_000_000_000_000 / self.freq_hz
    }

    /// Number of whole cycles elapsed in `t`.
    pub fn cycles_in(&self, t: TimeNs) -> u64 {
        (t.as_ns() as u128 * self.freq_hz as u128 / 1_000_000_000) as u64
    }

    /// Duration of `cycles` cycles (rounded down to whole nanoseconds).
    pub fn duration_of(&self, cycles: u64) -> TimeNs {
        TimeNs::from_ns((cycles as u128 * 1_000_000_000 / self.freq_hz as u128) as u64)
    }
}

/// The boot configuration of the paper's experiments (§4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SccClocks {
    /// Tile (core) clock: 533 MHz.
    pub tile: ClockDomain,
    /// Router clock: 800 MHz.
    pub router: ClockDomain,
    /// DDR3 memory clock: 800 MHz.
    pub memory: ClockDomain,
}

impl Default for SccClocks {
    fn default() -> Self {
        SccClocks {
            tile: ClockDomain::new(533_000_000),
            router: ClockDomain::new(800_000_000),
            memory: ClockDomain::new(800_000_000),
        }
    }
}

impl SccClocks {
    /// The paper's boot parameters.
    pub fn paper_boot() -> Self {
        Self::default()
    }
}

/// One core's timestamp counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tsc {
    domain: ClockDomain,
    /// Counter value at (global) time zero — models cores released from
    /// reset at slightly different instants.
    boot_offset_cycles: u64,
    /// Frequency error in parts per billion (crystal tolerance).
    drift_ppb: i64,
}

impl Tsc {
    /// A TSC in `domain` with the given boot offset and drift.
    pub fn new(domain: ClockDomain, boot_offset_cycles: u64, drift_ppb: i64) -> Self {
        Tsc {
            domain,
            boot_offset_cycles,
            drift_ppb,
        }
    }

    /// Reads the counter at global instant `now`.
    pub fn read(&self, now: TimeNs) -> u64 {
        let nominal = self.domain.cycles_in(now) as i128;
        let drifted = nominal + nominal * self.drift_ppb as i128 / 1_000_000_000;
        self.boot_offset_cycles + drifted.max(0) as u64
    }

    /// Converts a counter delta to wall time (ignoring drift — exactly what
    /// measurement code on the real SCC does).
    pub fn cycles_to_time(&self, cycles: u64) -> TimeNs {
        self.domain.duration_of(cycles)
    }

    /// Clears the boot offset (the effect of boot-time synchronisation).
    pub fn zero_offset(&mut self) {
        self.boot_offset_cycles = 0;
    }
}

/// The TSCs of all 48 cores.
#[derive(Debug, Clone)]
pub struct TscBank {
    tscs: Vec<Tsc>,
}

impl TscBank {
    /// A bank with per-core boot offsets generated from `seed` (cores come
    /// out of reset staggered) and a small deterministic drift.
    pub fn unsynchronized(clocks: &SccClocks, seed: u64) -> Self {
        // Simple SplitMix64 so we avoid a rand dependency here.
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let tscs = (0..CORE_COUNT)
            .map(|_| {
                let offset = next() % 1_000_000; // up to ~1.9 ms of stagger
                let drift = (next() % 40_001) as i64 - 20_000; // ±20 ppm
                Tsc::new(clocks.tile, offset, drift)
            })
            .collect();
        TscBank { tscs }
    }

    /// A bank that is already synchronised (zero offsets, zero drift).
    pub fn synchronized(clocks: &SccClocks) -> Self {
        TscBank {
            tscs: vec![Tsc::new(clocks.tile, 0, 0); CORE_COUNT as usize],
        }
    }

    /// Boot-time synchronisation (§4.1): aligns every core's counter to
    /// core 0's reading at instant `at`, removing the boot offsets (drift
    /// remains — sync cannot fix crystals).
    pub fn synchronize(&mut self, at: TimeNs) {
        let reference = self.tscs[0].read(at);
        for tsc in &mut self.tscs {
            let current = tsc.read(at);
            let correction = reference as i128 - current as i128;
            let new_offset = tsc.boot_offset_cycles as i128 + correction;
            tsc.boot_offset_cycles = new_offset.max(0) as u64;
        }
    }

    /// Reads core `core`'s TSC at instant `now`.
    pub fn read(&self, core: CoreId, now: TimeNs) -> u64 {
        self.tscs[core.index() as usize].read(now)
    }

    /// Maximum pairwise disagreement between core TSC readings at `now`,
    /// in cycles.
    pub fn max_skew(&self, now: TimeNs) -> u64 {
        let readings: Vec<u64> = (0..CORE_COUNT)
            .map(|i| self.tscs[i as usize].read(now))
            .collect();
        let min = readings.iter().min().copied().unwrap_or(0);
        let max = readings.iter().max().copied().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_domain_conversions() {
        let d = ClockDomain::new(533_000_000);
        assert_eq!(d.cycles_in(TimeNs::from_secs(1)), 533_000_000);
        assert_eq!(d.cycles_in(TimeNs::ZERO), 0);
        // Round-trip within one cycle.
        let t = TimeNs::from_ms(30);
        let back = d.duration_of(d.cycles_in(t));
        assert!(t.saturating_sub(back) < TimeNs::from_ns(2));
        // Cycle duration ≈ 1.876 ns.
        assert_eq!(d.cycle_ps(), 1876);
    }

    #[test]
    fn paper_boot_frequencies() {
        let c = SccClocks::paper_boot();
        assert_eq!(c.tile.freq_hz(), 533_000_000);
        assert_eq!(c.router.freq_hz(), 800_000_000);
        assert_eq!(c.memory.freq_hz(), 800_000_000);
    }

    #[test]
    fn tsc_monotonic() {
        let tsc = Tsc::new(ClockDomain::new(533_000_000), 100, 10_000);
        let mut prev = 0;
        for ms in (0..1000).step_by(50) {
            let v = tsc.read(TimeNs::from_ms(ms));
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn drift_changes_rate() {
        let d = ClockDomain::new(533_000_000);
        let fast = Tsc::new(d, 0, 20_000); // +20 ppm
        let slow = Tsc::new(d, 0, -20_000);
        let t = TimeNs::from_secs(10);
        let (f, s) = (fast.read(t), slow.read(t));
        assert!(f > s);
        // 40 ppm over 10 s at 533 MHz ≈ 213 200 cycles.
        assert!((f - s) > 200_000 && (f - s) < 226_000, "{}", f - s);
    }

    #[test]
    fn unsynchronized_bank_has_skew_sync_removes_it() {
        let clocks = SccClocks::paper_boot();
        let mut bank = TscBank::unsynchronized(&clocks, 42);
        let boot = TimeNs::from_ms(100);
        let skew_before = bank.max_skew(boot);
        assert!(skew_before > 0, "staggered reset must cause skew");
        bank.synchronize(boot);
        let skew_after = bank.max_skew(boot);
        assert_eq!(
            skew_after, 0,
            "sync aligns all counters at the sync instant"
        );
        // Drift reintroduces skew slowly afterwards — bounded by ±20 ppm.
        let later = boot + TimeNs::from_secs(10);
        let reintroduced = bank.max_skew(later);
        assert!(reintroduced > 0);
        assert!(reintroduced < 500_000, "{reintroduced}");
        assert!(reintroduced < skew_before || skew_before > 400_000);
    }

    #[test]
    fn synchronized_bank_agrees_exactly() {
        let bank = TscBank::synchronized(&SccClocks::paper_boot());
        assert_eq!(bank.max_skew(TimeNs::from_secs(5)), 0);
        assert_eq!(
            bank.read(CoreId::new(0), TimeNs::from_secs(1)),
            bank.read(CoreId::new(47), TimeNs::from_secs(1))
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let clocks = SccClocks::paper_boot();
        let a = TscBank::unsynchronized(&clocks, 7);
        let b = TscBank::unsynchronized(&clocks, 7);
        let c = TscBank::unsynchronized(&clocks, 8);
        let t = TimeNs::from_ms(10);
        assert_eq!(a.read(CoreId::new(3), t), b.read(CoreId::new(3), t));
        assert_ne!(a.max_skew(t), c.max_skew(t));
    }
}
