//! SCC die topology: 24 tiles on a 6×4 mesh, 2 cores per tile.
//!
//! The Intel Single-Chip Cloud Computer (Howard et al., ISSCC 2010) places
//! 48 IA-32 cores as 24 dual-core tiles on a 6-column × 4-row mesh of
//! routers. Messages between tiles follow deterministic X-then-Y routing.
//! Four DDR3 memory controllers sit at the mesh edges (tiles (0,0), (5,0),
//! (0,2) and (5,2) attach to them on the real die).

use std::fmt;

/// Mesh width (columns of tiles).
pub const MESH_COLS: u8 = 6;
/// Mesh height (rows of tiles).
pub const MESH_ROWS: u8 = 4;
/// Number of tiles.
pub const TILE_COUNT: u8 = MESH_COLS * MESH_ROWS;
/// Cores per tile.
pub const CORES_PER_TILE: u8 = 2;
/// Total cores.
pub const CORE_COUNT: u8 = TILE_COUNT * CORES_PER_TILE;

/// A tile (router) position on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId(u8);

impl TileId {
    /// Tile from a linear index `0..24`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 24`.
    pub fn new(index: u8) -> Self {
        assert!(index < TILE_COUNT, "tile index {index} out of range");
        TileId(index)
    }

    /// Tile at mesh coordinates `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= 6` or `y >= 4`.
    pub fn at(x: u8, y: u8) -> Self {
        assert!(
            x < MESH_COLS && y < MESH_ROWS,
            "tile ({x},{y}) out of range"
        );
        TileId(y * MESH_COLS + x)
    }

    /// Linear index `0..24`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Column `0..6`.
    pub fn x(self) -> u8 {
        self.0 % MESH_COLS
    }

    /// Row `0..4`.
    pub fn y(self) -> u8 {
        self.0 / MESH_COLS
    }

    /// The two cores on this tile.
    pub fn cores(self) -> [CoreId; 2] {
        [CoreId(self.0 * 2), CoreId(self.0 * 2 + 1)]
    }

    /// Manhattan (XY-route) hop distance to another tile.
    pub fn hops_to(self, other: TileId) -> u8 {
        self.x().abs_diff(other.x()) + self.y().abs_diff(other.y())
    }

    /// The sequence of tiles an XY-routed message traverses from `self` to
    /// `other`, inclusive of both endpoints: first along X, then along Y.
    pub fn xy_route(self, other: TileId) -> Vec<TileId> {
        let mut route = vec![self];
        let (mut x, mut y) = (self.x(), self.y());
        while x != other.x() {
            x = if x < other.x() { x + 1 } else { x - 1 };
            route.push(TileId::at(x, y));
        }
        while y != other.y() {
            y = if y < other.y() { y + 1 } else { y - 1 };
            route.push(TileId::at(x, y));
        }
        route
    }

    /// All tiles in row-major order.
    pub fn all() -> impl Iterator<Item = TileId> {
        (0..TILE_COUNT).map(TileId)
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile({},{})", self.x(), self.y())
    }
}

/// One of the 48 cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(u8);

impl CoreId {
    /// Core from a linear index `0..48`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 48`.
    pub fn new(index: u8) -> Self {
        assert!(index < CORE_COUNT, "core index {index} out of range");
        CoreId(index)
    }

    /// Linear index `0..48`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// The tile hosting this core.
    pub fn tile(self) -> TileId {
        TileId(self.0 / CORES_PER_TILE)
    }

    /// `0` or `1`: position within the tile.
    pub fn local(self) -> u8 {
        self.0 % CORES_PER_TILE
    }

    /// All cores in index order.
    pub fn all() -> impl Iterator<Item = CoreId> {
        (0..CORE_COUNT).map(CoreId)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A directed mesh link between adjacent tiles (for contention accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// Source tile.
    pub from: TileId,
    /// Destination tile (adjacent to `from`).
    pub to: TileId,
}

/// The links an XY-routed message occupies between two tiles.
pub fn route_links(from: TileId, to: TileId) -> Vec<Link> {
    let route = from.xy_route(to);
    route
        .windows(2)
        .map(|w| Link {
            from: w[0],
            to: w[1],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants() {
        assert_eq!(TILE_COUNT, 24);
        assert_eq!(CORE_COUNT, 48);
        assert_eq!(TileId::all().count(), 24);
        assert_eq!(CoreId::all().count(), 48);
    }

    #[test]
    fn tile_coordinates_roundtrip() {
        for t in TileId::all() {
            assert_eq!(TileId::at(t.x(), t.y()), t);
        }
        assert_eq!(TileId::at(5, 3).index(), 23);
    }

    #[test]
    fn cores_map_to_tiles() {
        let t = TileId::at(2, 1);
        let [a, b] = t.cores();
        assert_eq!(a.tile(), t);
        assert_eq!(b.tile(), t);
        assert_eq!(a.local(), 0);
        assert_eq!(b.local(), 1);
        assert_eq!(CoreId::new(47).tile(), TileId::new(23));
    }

    #[test]
    fn xy_route_goes_x_first() {
        let route = TileId::at(0, 0).xy_route(TileId::at(2, 2));
        let coords: Vec<(u8, u8)> = route.iter().map(|t| (t.x(), t.y())).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]);
    }

    #[test]
    fn hops_match_route_length() {
        for a in TileId::all() {
            for b in TileId::all() {
                let route = a.xy_route(b);
                assert_eq!(route.len() as u8 - 1, a.hops_to(b), "{a} -> {b}");
                // Route is contiguous.
                for w in route.windows(2) {
                    assert_eq!(w[0].hops_to(w[1]), 1);
                }
            }
        }
    }

    #[test]
    fn self_route_is_trivial() {
        let t = TileId::at(3, 2);
        assert_eq!(t.xy_route(t), vec![t]);
        assert_eq!(t.hops_to(t), 0);
        assert!(route_links(t, t).is_empty());
    }

    #[test]
    fn route_links_are_directed() {
        let links = route_links(TileId::at(0, 0), TileId::at(1, 0));
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].from, TileId::at(0, 0));
        assert_eq!(links[0].to, TileId::at(1, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_tile_rejected() {
        let _ = TileId::new(24);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_rejected() {
        let _ = CoreId::new(48);
    }
}
