//! iRCCE-like message passing over the emulated NoC.
//!
//! The paper uses the iRCCE non-blocking communication library (§4.1,
//! Clauss et al., HPCS 2011) on top of the MPBs. This module reproduces
//! the library's programming model — matched in-order send/receive between
//! core pairs, in blocking and non-blocking (handle + test) flavours —
//! against the [`NocModel`] timing model, under explicit virtual time.
//!
//! Operations take `now` and report completion instants rather than
//! sleeping; the KPN engine integration goes through
//! [`crate::SccPlatform`] instead, which charges the same latencies to the
//! writing process.

use crate::noc::NocModel;
use crate::topology::CoreId;
use rtft_rtc::TimeNs;
use std::collections::{HashMap, VecDeque};

/// An in-flight message.
#[derive(Debug, Clone)]
struct Message {
    payload: Vec<u8>,
    deliverable_at: TimeNs,
}

/// Result of a receive attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvOutcome {
    /// Message delivered: payload and the instant it became available.
    Ready(Vec<u8>, TimeNs),
    /// A message is in flight; ready at the given instant.
    Pending(TimeNs),
    /// No message has been sent on this pair.
    Empty,
}

/// Handle to a non-blocking send (`iRCCE_isend` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendHandle {
    /// Instant the transfer completes at the sender.
    pub done_at: TimeNs,
}

impl SendHandle {
    /// `iRCCE_test`: has the transfer completed by `now`?
    pub fn test(&self, now: TimeNs) -> bool {
        now >= self.done_at
    }
}

/// The communication world: matched, in-order channels between core pairs.
#[derive(Debug)]
pub struct RcceWorld {
    noc: NocModel,
    inflight: HashMap<(CoreId, CoreId), VecDeque<Message>>,
    /// Completion time of the previous send per pair — sends on one pair
    /// serialise (one MPB staging area).
    last_send_done: HashMap<(CoreId, CoreId), TimeNs>,
}

impl RcceWorld {
    /// A world over the given NoC model.
    pub fn new(noc: NocModel) -> Self {
        RcceWorld {
            noc,
            inflight: HashMap::new(),
            last_send_done: HashMap::new(),
        }
    }

    /// Blocking send (`iRCCE_send`): returns the instant the sender is done
    /// (which is also when the message becomes receivable — the chunk-wise
    /// copy through the MPB is synchronous).
    pub fn send(&mut self, from: CoreId, to: CoreId, payload: Vec<u8>, now: TimeNs) -> TimeNs {
        let start = now.max(
            self.last_send_done
                .get(&(from, to))
                .copied()
                .unwrap_or(TimeNs::ZERO),
        );
        let done = start + self.noc.message_latency(from, to, payload.len());
        self.last_send_done.insert((from, to), done);
        self.inflight
            .entry((from, to))
            .or_default()
            .push_back(Message {
                payload,
                deliverable_at: done,
            });
        done
    }

    /// Non-blocking send (`iRCCE_isend`): queues the transfer and returns a
    /// testable handle.
    pub fn isend(&mut self, from: CoreId, to: CoreId, payload: Vec<u8>, now: TimeNs) -> SendHandle {
        let done_at = self.send(from, to, payload, now);
        SendHandle { done_at }
    }

    /// Receive attempt (`iRCCE_recv` / the poll inside `iRCCE_irecv`).
    pub fn recv(&mut self, from: CoreId, to: CoreId, now: TimeNs) -> RecvOutcome {
        let Some(queue) = self.inflight.get_mut(&(from, to)) else {
            return RecvOutcome::Empty;
        };
        match queue.front() {
            None => RecvOutcome::Empty,
            Some(m) if m.deliverable_at <= now => {
                let m = queue.pop_front().expect("front exists");
                RecvOutcome::Ready(m.payload, m.deliverable_at)
            }
            Some(m) => RecvOutcome::Pending(m.deliverable_at),
        }
    }

    /// Messages currently in flight on a pair.
    pub fn in_flight(&self, from: CoreId, to: CoreId) -> usize {
        self.inflight.get(&(from, to)).map_or(0, VecDeque::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> RcceWorld {
        RcceWorld::new(NocModel::paper_boot())
    }

    #[test]
    fn send_then_recv_roundtrip() {
        let mut w = world();
        let (a, b) = (CoreId::new(0), CoreId::new(10));
        let done = w.send(a, b, vec![1, 2, 3], TimeNs::ZERO);
        assert!(done > TimeNs::ZERO);
        // Too early: pending.
        assert_eq!(w.recv(a, b, TimeNs::ZERO), RecvOutcome::Pending(done));
        // At completion: delivered.
        match w.recv(a, b, done) {
            RecvOutcome::Ready(data, at) => {
                assert_eq!(data, vec![1, 2, 3]);
                assert_eq!(at, done);
            }
            other => panic!("expected ready, got {other:?}"),
        }
        assert_eq!(w.recv(a, b, done), RecvOutcome::Empty);
    }

    #[test]
    fn messages_arrive_in_order() {
        let mut w = world();
        let (a, b) = (CoreId::new(3), CoreId::new(40));
        w.send(a, b, vec![1], TimeNs::ZERO);
        w.send(a, b, vec![2], TimeNs::ZERO);
        let t = TimeNs::from_secs(1);
        let first = w.recv(a, b, t);
        let second = w.recv(a, b, t);
        assert!(matches!(first, RecvOutcome::Ready(ref d, _) if d == &vec![1]));
        assert!(matches!(second, RecvOutcome::Ready(ref d, _) if d == &vec![2]));
    }

    #[test]
    fn sends_on_one_pair_serialize() {
        let mut w = world();
        let (a, b) = (CoreId::new(0), CoreId::new(47));
        let d1 = w.send(a, b, vec![0; 3072], TimeNs::ZERO);
        let d2 = w.send(a, b, vec![0; 3072], TimeNs::ZERO);
        assert!(
            d2 >= d1 * 2 / 1,
            "second send waits for the first: {d1} vs {d2}"
        );
        assert_eq!(d2.as_ns(), d1.as_ns() * 2);
    }

    #[test]
    fn isend_handle_tests_completion() {
        let mut w = world();
        let h = w.isend(CoreId::new(0), CoreId::new(2), vec![0; 1024], TimeNs::ZERO);
        assert!(!h.test(TimeNs::ZERO));
        assert!(h.test(h.done_at));
    }

    #[test]
    fn distinct_pairs_are_independent() {
        let mut w = world();
        w.send(CoreId::new(0), CoreId::new(1), vec![9], TimeNs::ZERO);
        assert_eq!(
            w.recv(CoreId::new(0), CoreId::new(2), TimeNs::from_secs(1)),
            RecvOutcome::Empty
        );
        assert_eq!(w.in_flight(CoreId::new(0), CoreId::new(1)), 1);
        assert_eq!(w.in_flight(CoreId::new(0), CoreId::new(2)), 0);
    }
}
