//! Message-passing buffer (MPB) allocation.
//!
//! Each SCC tile carries 16 KB of on-die SRAM, exposed as 8 KB per core,
//! used as the staging area for all MPB-routed messages. The paper's ≤3 KB
//! chunk rule exists precisely so a chunk (plus iRCCE bookkeeping) always
//! fits in the receiving core's MPB share. This module tracks those
//! allocations so a mis-configured application (too many concurrent
//! channels staged on one core) fails loudly at setup rather than
//! corrupting the emulation.

use crate::noc::MPB_BYTES_PER_CORE;
use crate::topology::CoreId;
use rtft_obs::MetricsRegistry;
use std::collections::HashMap;
use std::fmt;

/// An MPB allocation handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MpbRegion {
    /// Owning core.
    pub core: CoreId,
    /// Offset within the core's 8 KB share.
    pub offset: usize,
    /// Region length in bytes.
    pub len: usize,
}

/// Error allocating MPB space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpbExhausted {
    /// The core whose share overflowed.
    pub core: CoreId,
    /// Bytes requested.
    pub requested: usize,
    /// Bytes still free.
    pub available: usize,
}

impl fmt::Display for MpbExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MPB exhausted on {}: requested {} bytes, {} available",
            self.core, self.requested, self.available
        )
    }
}

impl std::error::Error for MpbExhausted {}

/// Per-core MPB allocator (bump allocation; channels live for the whole
/// run, matching iRCCE's static buffer carving).
#[derive(Debug, Default)]
pub struct MpbAllocator {
    used: HashMap<CoreId, usize>,
    registry: Option<MetricsRegistry>,
}

impl MpbAllocator {
    /// An empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes per-core occupancy to `registry` as gauges named
    /// `scc.mpb.core<N>.used_bytes` (the gauge's `max` is the high-water
    /// mark). Allocation is setup-time work, so the named-gauge lookup
    /// cost here is irrelevant.
    pub fn observe(&mut self, registry: &MetricsRegistry) {
        self.registry = Some(registry.clone());
    }

    /// Reserves `len` bytes in `core`'s share.
    ///
    /// # Errors
    ///
    /// [`MpbExhausted`] if the core's 8 KB share cannot fit the request.
    pub fn alloc(&mut self, core: CoreId, len: usize) -> Result<MpbRegion, MpbExhausted> {
        let used = self.used.entry(core).or_insert(0);
        let available = MPB_BYTES_PER_CORE - *used;
        if len > available {
            return Err(MpbExhausted {
                core,
                requested: len,
                available,
            });
        }
        let offset = *used;
        *used += len;
        if let Some(registry) = &self.registry {
            registry
                .gauge_named(format!("scc.mpb.{core}.used_bytes"))
                .set(*used as u64);
        }
        Ok(MpbRegion { core, offset, len })
    }

    /// Bytes used on `core`.
    pub fn used(&self, core: CoreId) -> usize {
        self.used.get(&core).copied().unwrap_or(0)
    }

    /// Bytes free on `core`.
    pub fn free(&self, core: CoreId) -> usize {
        MPB_BYTES_PER_CORE - self.used(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint() {
        let mut a = MpbAllocator::new();
        let core = CoreId::new(5);
        let r1 = a.alloc(core, 3072).unwrap();
        let r2 = a.alloc(core, 3072).unwrap();
        assert_eq!(r1.offset, 0);
        assert_eq!(r2.offset, 3072);
        assert_eq!(a.used(core), 6144);
        assert_eq!(a.free(core), 8192 - 6144);
    }

    #[test]
    fn share_is_8kb() {
        let mut a = MpbAllocator::new();
        let core = CoreId::new(0);
        assert!(a.alloc(core, 8192).is_ok());
        let err = a.alloc(core, 1).unwrap_err();
        assert_eq!(err.available, 0);
        assert!(err.to_string().contains("MPB exhausted"));
    }

    #[test]
    fn cores_have_independent_shares() {
        let mut a = MpbAllocator::new();
        a.alloc(CoreId::new(0), 8192).unwrap();
        assert!(a.alloc(CoreId::new(1), 8192).is_ok());
    }

    #[test]
    fn observed_allocator_publishes_occupancy() {
        let registry = MetricsRegistry::new();
        let mut a = MpbAllocator::new();
        a.observe(&registry);
        let core = CoreId::new(3);
        a.alloc(core, 3072).unwrap();
        a.alloc(core, 1024).unwrap();
        let gauges = registry.gauge_values();
        let (name, current, max) = &gauges[0];
        assert_eq!(name, "scc.mpb.core3.used_bytes");
        assert_eq!(*current, 4096);
        assert_eq!(*max, 4096);
    }

    #[test]
    fn two_chunks_plus_bookkeeping_fit() {
        // The ≤3KB rule exists so double-buffered chunks + flags fit in 8KB.
        let mut a = MpbAllocator::new();
        let core = CoreId::new(9);
        a.alloc(core, 3072).unwrap();
        a.alloc(core, 3072).unwrap();
        assert!(a.alloc(core, 2048).is_ok(), "bookkeeping space must remain");
    }
}
