//! Network-on-chip timing model: MPB messaging with ≤3 KB chunks.
//!
//! The paper sends and receives "in chunk sizes not exceeding 3 KB,
//! ensuring that all messages are routed exclusively via the message
//! passing buffers" (§4.1). This module models the cost of such a
//! transfer:
//!
//! ```text
//! t(msg) = Σ_chunks [ setup + bytes·copy_in + hops·per_hop + bytes·wire + bytes·copy_out ]
//! ```
//!
//! * `setup` — per-chunk software overhead (flag handling, iRCCE
//!   bookkeeping) on the 533 MHz core;
//! * `copy_in` / `copy_out` — the core moving the chunk into / out of the
//!   MPB (8 bytes per core cycle);
//! * `per_hop` — router traversal (4 cycles at 800 MHz per hop);
//! * `wire` — link serialisation at 8 bytes per router cycle.
//!
//! The absolute constants are derived from the published SCC
//! micro-architecture parameters; the framework results only require the
//! paper's qualitative property — on-chip communication being orders of
//! magnitude faster than token periods — which holds with large margin
//! (a 10 KB frame transfers in ~10 µs vs a 30 ms period).

use crate::clock::SccClocks;
use crate::topology::{route_links, CoreId, Link, TileId};
use rtft_obs::{Counter, Histogram, MetricsRegistry};
use rtft_rtc::TimeNs;

/// Maximum chunk size for MPB-only routing (§4.1).
pub const MAX_CHUNK_BYTES: usize = 3 * 1024;

/// Per-core MPB capacity: 16 KB per tile, split across two cores.
pub const MPB_BYTES_PER_CORE: usize = 8 * 1024;

/// Router cycles to traverse one hop.
pub const ROUTER_CYCLES_PER_HOP: u64 = 4;

/// Bytes moved per core cycle during an MPB copy.
pub const COPY_BYTES_PER_CYCLE: u64 = 8;

/// Bytes serialised per router cycle on a mesh link.
pub const LINK_BYTES_PER_CYCLE: u64 = 8;

/// Core cycles of per-chunk software overhead (flag write/poll, iRCCE
/// descriptor handling).
pub const CHUNK_SETUP_CORE_CYCLES: u64 = 200;

/// The NoC timing model.
#[derive(Debug, Clone, Copy)]
pub struct NocModel {
    clocks: SccClocks,
}

impl NocModel {
    /// Model under the given clock configuration.
    pub fn new(clocks: SccClocks) -> Self {
        NocModel { clocks }
    }

    /// Model under the paper's boot configuration.
    pub fn paper_boot() -> Self {
        NocModel::new(SccClocks::paper_boot())
    }

    /// The clock configuration.
    pub fn clocks(&self) -> &SccClocks {
        &self.clocks
    }

    /// Number of ≤3 KB chunks needed for `bytes`.
    pub fn chunks(&self, bytes: usize) -> usize {
        if bytes == 0 {
            1 // a bare flag/doorbell message still costs a chunk setup
        } else {
            bytes.div_ceil(MAX_CHUNK_BYTES)
        }
    }

    /// Latency of one chunk of `bytes` bytes over `hops` mesh hops.
    pub fn chunk_latency(&self, bytes: usize, hops: u8) -> TimeNs {
        let core = &self.clocks.tile;
        let router = &self.clocks.router;
        let setup = core.duration_of(CHUNK_SETUP_CORE_CYCLES);
        let copy_cycles = (bytes as u64).div_ceil(COPY_BYTES_PER_CYCLE);
        let copy = core.duration_of(copy_cycles); // writer side
        let copy_out = core.duration_of(copy_cycles); // reader side
        let hop = router.duration_of(ROUTER_CYCLES_PER_HOP * hops as u64);
        let wire = router.duration_of((bytes as u64).div_ceil(LINK_BYTES_PER_CYCLE));
        setup + copy + hop + wire + copy_out
    }

    /// End-to-end latency of a `bytes`-byte message from `from` to `to`,
    /// chunked per the paper's ≤3 KB rule. Same-tile transfers skip the
    /// mesh but still pay MPB copies and setup.
    pub fn message_latency(&self, from: CoreId, to: CoreId, bytes: usize) -> TimeNs {
        let hops = from.tile().hops_to(to.tile());
        let full_chunks = bytes / MAX_CHUNK_BYTES;
        let tail = bytes % MAX_CHUNK_BYTES;
        let mut total = TimeNs::ZERO;
        for _ in 0..full_chunks {
            total += self.chunk_latency(MAX_CHUNK_BYTES, hops);
        }
        if tail > 0 || bytes == 0 {
            total += self.chunk_latency(tail, hops);
        }
        total
    }

    /// Latency between two tiles for a given message size (core-agnostic
    /// helper used by the mapper's cost model).
    pub fn tile_latency(&self, from: TileId, to: TileId, bytes: usize) -> TimeNs {
        self.message_latency(from.cores()[0], to.cores()[0], bytes)
    }

    /// [`message_latency`](Self::message_latency) plus traffic accounting:
    /// bumps `traffic`'s message/chunk/byte counters and records the
    /// computed latency in its histogram. The latency value is identical
    /// to the untracked call.
    pub fn message_latency_tracked(
        &self,
        from: CoreId,
        to: CoreId,
        bytes: usize,
        traffic: &NocTraffic,
    ) -> TimeNs {
        let latency = self.message_latency(from, to, bytes);
        traffic.messages.inc();
        traffic.chunks.add(self.chunks(bytes) as u64);
        traffic.bytes.add(bytes as u64);
        traffic.latency.record(latency.as_ns());
        latency
    }
}

/// NoC-level fault injection: extra latency and link-down windows folded
/// into the message-latency model.
///
/// A chaos campaign perturbs the interconnect *below* everything the
/// detectors model: uniform congestion (`extra_per_chunk` /
/// `extra_per_hop`), per-link degradation, and link outages during which a
/// message needing the link stalls until the window closes. The plan is
/// pure data — evaluating it never draws randomness — so identical plans
/// yield identical latencies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NocFaultPlan {
    /// Extra latency added to every chunk (congestion floor).
    pub extra_per_chunk: TimeNs,
    /// Extra latency added per mesh hop, per chunk.
    pub extra_per_hop: TimeNs,
    /// Per-link degradation: each chunk whose x-y route crosses the link
    /// pays the extra latency.
    pub degraded_links: Vec<(Link, TimeNs)>,
    /// Link outages `(link, from, until)`: a message departing at `now ∈
    /// [from, until)` whose route crosses the link stalls until `until`.
    pub down_windows: Vec<(Link, TimeNs, TimeNs)>,
}

impl NocFaultPlan {
    /// A plan with uniform per-chunk and per-hop extra latency only.
    pub fn uniform(extra_per_chunk: TimeNs, extra_per_hop: TimeNs) -> Self {
        NocFaultPlan {
            extra_per_chunk,
            extra_per_hop,
            ..Default::default()
        }
    }

    /// Adds a degraded link.
    pub fn degrade(mut self, link: Link, extra: TimeNs) -> Self {
        self.degraded_links.push((link, extra));
        self
    }

    /// Adds a link-down window.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn down(mut self, link: Link, from: TimeNs, until: TimeNs) -> Self {
        assert!(until > from, "down window must be non-empty");
        self.down_windows.push((link, from, until));
        self
    }

    /// `true` if the plan perturbs nothing.
    pub fn is_benign(&self) -> bool {
        *self == NocFaultPlan::default()
    }

    /// The stall a message departing at `now` over `route` suffers from
    /// link-down windows (zero when no crossed link is down).
    pub fn departure_stall(&self, route: &[Link], now: TimeNs) -> TimeNs {
        let mut release = now;
        for (link, from, until) in &self.down_windows {
            if now >= *from && now < *until && route.contains(link) {
                release = release.max(*until);
            }
        }
        release - now
    }
}

impl NocModel {
    /// [`message_latency`](Self::message_latency) under a fault plan: base
    /// latency plus uniform and per-link extras, plus the departure stall
    /// if a crossed link is down at `now`.
    ///
    /// With a benign plan this equals the unperturbed latency exactly.
    pub fn message_latency_under(
        &self,
        plan: &NocFaultPlan,
        from: CoreId,
        to: CoreId,
        bytes: usize,
        now: TimeNs,
    ) -> TimeNs {
        let base = self.message_latency(from, to, bytes);
        if plan.is_benign() {
            return base;
        }
        let chunks = self.chunks(bytes) as u64;
        let hops = from.tile().hops_to(to.tile()) as u64;
        let mut extra = plan.extra_per_chunk * chunks + plan.extra_per_hop * (chunks * hops);
        let route = route_links(from.tile(), to.tile());
        for (link, degrade) in &plan.degraded_links {
            if route.contains(link) {
                extra += *degrade * chunks;
            }
        }
        plan.departure_stall(&route, now) + base + extra
    }
}

/// Traffic accounting handles for the NoC model — the emulation-side
/// equivalent of per-link flit counters. Resolve once with
/// [`NocTraffic::from_registry`] and pass to
/// [`NocModel::message_latency_tracked`].
///
/// Metrics registered: `scc.noc.messages`, `scc.noc.chunks`,
/// `scc.noc.bytes` (counters) and `scc.noc.message_latency_ns`
/// (histogram).
#[derive(Debug, Clone)]
pub struct NocTraffic {
    messages: Counter,
    chunks: Counter,
    bytes: Counter,
    latency: Histogram,
}

impl NocTraffic {
    /// Resolves the traffic handles in `registry`.
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        NocTraffic {
            messages: registry.counter("scc.noc.messages"),
            chunks: registry.counter("scc.noc.chunks"),
            bytes: registry.counter("scc.noc.bytes"),
            latency: registry.histogram("scc.noc.message_latency_ns"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NocModel {
        NocModel::paper_boot()
    }

    #[test]
    fn chunking_matches_3kb_rule() {
        let m = model();
        assert_eq!(m.chunks(0), 1);
        assert_eq!(m.chunks(1), 1);
        assert_eq!(m.chunks(3 * 1024), 1);
        assert_eq!(m.chunks(3 * 1024 + 1), 2);
        assert_eq!(m.chunks(10 * 1024), 4); // one MJPEG encoded frame
        assert_eq!(m.chunks(76_800), 25); // one decoded 320x240 frame
    }

    #[test]
    fn latency_grows_with_size_and_distance() {
        let m = model();
        let near = CoreId::new(0);
        let same_tile = CoreId::new(1);
        let far = CoreId::new(47);
        let small = m.message_latency(near, same_tile, 1024);
        let big = m.message_latency(near, same_tile, 10 * 1024);
        assert!(big > small);
        let near_hop = m.message_latency(near, CoreId::new(2), 1024); // 1 hop
        let far_hop = m.message_latency(near, far, 1024); // 8 hops
        assert!(far_hop > near_hop);
        assert!(near_hop > small, "mesh hops must cost something");
    }

    #[test]
    fn transfers_are_fast_relative_to_token_periods() {
        // The paper's premise: comms do not significantly influence FIFO
        // sizes or detection timings. A full 76.8 KB decoded frame across
        // the whole die must cost well under 1 ms (vs a 30 ms period).
        let m = model();
        let t = m.message_latency(CoreId::new(0), CoreId::new(47), 76_800);
        assert!(t < TimeNs::from_ms(1), "{t}");
        assert!(
            t > TimeNs::from_us(10),
            "a 25-chunk transfer is not free: {t}"
        );
    }

    #[test]
    fn zero_byte_message_still_costs_setup() {
        let m = model();
        let t = m.message_latency(CoreId::new(0), CoreId::new(2), 0);
        assert!(t > TimeNs::ZERO);
    }

    #[test]
    fn same_core_is_cheapest() {
        let m = model();
        let same = m.message_latency(CoreId::new(4), CoreId::new(4), 3000);
        let neighbor = m.message_latency(CoreId::new(4), CoreId::new(6), 3000);
        assert!(same < neighbor);
    }

    #[test]
    fn latency_is_additive_in_chunks() {
        let m = model();
        let one = m.message_latency(CoreId::new(0), CoreId::new(10), 3 * 1024);
        let four = m.message_latency(CoreId::new(0), CoreId::new(10), 12 * 1024);
        assert_eq!(four.as_ns(), one.as_ns() * 4);
    }

    #[test]
    fn benign_fault_plan_changes_nothing() {
        let m = model();
        let plan = NocFaultPlan::default();
        assert!(plan.is_benign());
        for bytes in [0usize, 100, 3 * 1024, 76_800] {
            assert_eq!(
                m.message_latency_under(
                    &plan,
                    CoreId::new(0),
                    CoreId::new(47),
                    bytes,
                    TimeNs::ZERO
                ),
                m.message_latency(CoreId::new(0), CoreId::new(47), bytes)
            );
        }
    }

    #[test]
    fn uniform_extras_scale_with_chunks_and_hops() {
        let m = model();
        let plan = NocFaultPlan::uniform(TimeNs::from_us(10), TimeNs::from_us(1));
        let from = CoreId::new(0);
        let to = CoreId::new(47); // 8 hops
        let bytes = 12 * 1024; // 4 chunks
        let base = m.message_latency(from, to, bytes);
        let faulty = m.message_latency_under(&plan, from, to, bytes, TimeNs::ZERO);
        // 4 chunks × 10 µs + 4 chunks × 8 hops × 1 µs.
        assert_eq!(faulty, base + TimeNs::from_us(40) + TimeNs::from_us(32));
    }

    #[test]
    fn degraded_link_charges_only_routes_crossing_it() {
        use crate::topology::{route_links, TileId};
        let m = model();
        let link = route_links(TileId::at(0, 0), TileId::at(1, 0))[0];
        let plan = NocFaultPlan::default().degrade(link, TimeNs::from_us(100));
        // CoreId 0 is on tile (0,0); CoreId 2 on tile (1,0): crosses.
        let crossing =
            m.message_latency_under(&plan, CoreId::new(0), CoreId::new(2), 1024, TimeNs::ZERO);
        assert_eq!(
            crossing,
            m.message_latency(CoreId::new(0), CoreId::new(2), 1024) + TimeNs::from_us(100)
        );
        // Same-tile transfer does not cross the link.
        let local =
            m.message_latency_under(&plan, CoreId::new(0), CoreId::new(1), 1024, TimeNs::ZERO);
        assert_eq!(
            local,
            m.message_latency(CoreId::new(0), CoreId::new(1), 1024)
        );
    }

    #[test]
    fn down_window_stalls_departures_inside_it() {
        use crate::topology::{route_links, TileId};
        let m = model();
        let link = route_links(TileId::at(0, 0), TileId::at(1, 0))[0];
        let plan = NocFaultPlan::default().down(link, TimeNs::from_ms(10), TimeNs::from_ms(20));
        let base = m.message_latency(CoreId::new(0), CoreId::new(2), 512);
        // Departing mid-window: stalls until 20 ms.
        let stalled = m.message_latency_under(
            &plan,
            CoreId::new(0),
            CoreId::new(2),
            512,
            TimeNs::from_ms(12),
        );
        assert_eq!(stalled, TimeNs::from_ms(8) + base);
        // Before and after the window: unperturbed.
        for t in [TimeNs::ZERO, TimeNs::from_ms(20), TimeNs::from_ms(30)] {
            assert_eq!(
                m.message_latency_under(&plan, CoreId::new(0), CoreId::new(2), 512, t),
                base
            );
        }
    }

    #[test]
    fn tracked_latency_matches_and_accounts_traffic() {
        let m = model();
        let registry = MetricsRegistry::new();
        let traffic = NocTraffic::from_registry(&registry);
        let plain = m.message_latency(CoreId::new(0), CoreId::new(47), 10 * 1024);
        let tracked =
            m.message_latency_tracked(CoreId::new(0), CoreId::new(47), 10 * 1024, &traffic);
        assert_eq!(plain, tracked, "tracking must not change the model");
        m.message_latency_tracked(CoreId::new(0), CoreId::new(1), 100, &traffic);
        assert_eq!(registry.counter("scc.noc.messages").get(), 2);
        assert_eq!(registry.counter("scc.noc.chunks").get(), 4 + 1);
        assert_eq!(registry.counter("scc.noc.bytes").get(), 10 * 1024 + 100);
        let h = registry.histogram("scc.noc.message_latency_ns").snapshot();
        assert_eq!(h.count, 2);
        assert_eq!(
            h.max,
            plain.as_ns().max(
                m.message_latency(CoreId::new(0), CoreId::new(1), 100)
                    .as_ns(),
            )
        );
    }
}
