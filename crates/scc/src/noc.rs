//! Network-on-chip timing model: MPB messaging with ≤3 KB chunks.
//!
//! The paper sends and receives "in chunk sizes not exceeding 3 KB,
//! ensuring that all messages are routed exclusively via the message
//! passing buffers" (§4.1). This module models the cost of such a
//! transfer:
//!
//! ```text
//! t(msg) = Σ_chunks [ setup + bytes·copy_in + hops·per_hop + bytes·wire + bytes·copy_out ]
//! ```
//!
//! * `setup` — per-chunk software overhead (flag handling, iRCCE
//!   bookkeeping) on the 533 MHz core;
//! * `copy_in` / `copy_out` — the core moving the chunk into / out of the
//!   MPB (8 bytes per core cycle);
//! * `per_hop` — router traversal (4 cycles at 800 MHz per hop);
//! * `wire` — link serialisation at 8 bytes per router cycle.
//!
//! The absolute constants are derived from the published SCC
//! micro-architecture parameters; the framework results only require the
//! paper's qualitative property — on-chip communication being orders of
//! magnitude faster than token periods — which holds with large margin
//! (a 10 KB frame transfers in ~10 µs vs a 30 ms period).

use crate::clock::SccClocks;
use crate::topology::{CoreId, TileId};
use rtft_obs::{Counter, Histogram, MetricsRegistry};
use rtft_rtc::TimeNs;

/// Maximum chunk size for MPB-only routing (§4.1).
pub const MAX_CHUNK_BYTES: usize = 3 * 1024;

/// Per-core MPB capacity: 16 KB per tile, split across two cores.
pub const MPB_BYTES_PER_CORE: usize = 8 * 1024;

/// Router cycles to traverse one hop.
pub const ROUTER_CYCLES_PER_HOP: u64 = 4;

/// Bytes moved per core cycle during an MPB copy.
pub const COPY_BYTES_PER_CYCLE: u64 = 8;

/// Bytes serialised per router cycle on a mesh link.
pub const LINK_BYTES_PER_CYCLE: u64 = 8;

/// Core cycles of per-chunk software overhead (flag write/poll, iRCCE
/// descriptor handling).
pub const CHUNK_SETUP_CORE_CYCLES: u64 = 200;

/// The NoC timing model.
#[derive(Debug, Clone, Copy)]
pub struct NocModel {
    clocks: SccClocks,
}

impl NocModel {
    /// Model under the given clock configuration.
    pub fn new(clocks: SccClocks) -> Self {
        NocModel { clocks }
    }

    /// Model under the paper's boot configuration.
    pub fn paper_boot() -> Self {
        NocModel::new(SccClocks::paper_boot())
    }

    /// The clock configuration.
    pub fn clocks(&self) -> &SccClocks {
        &self.clocks
    }

    /// Number of ≤3 KB chunks needed for `bytes`.
    pub fn chunks(&self, bytes: usize) -> usize {
        if bytes == 0 {
            1 // a bare flag/doorbell message still costs a chunk setup
        } else {
            bytes.div_ceil(MAX_CHUNK_BYTES)
        }
    }

    /// Latency of one chunk of `bytes` bytes over `hops` mesh hops.
    pub fn chunk_latency(&self, bytes: usize, hops: u8) -> TimeNs {
        let core = &self.clocks.tile;
        let router = &self.clocks.router;
        let setup = core.duration_of(CHUNK_SETUP_CORE_CYCLES);
        let copy_cycles = (bytes as u64).div_ceil(COPY_BYTES_PER_CYCLE);
        let copy = core.duration_of(copy_cycles); // writer side
        let copy_out = core.duration_of(copy_cycles); // reader side
        let hop = router.duration_of(ROUTER_CYCLES_PER_HOP * hops as u64);
        let wire = router.duration_of((bytes as u64).div_ceil(LINK_BYTES_PER_CYCLE));
        setup + copy + hop + wire + copy_out
    }

    /// End-to-end latency of a `bytes`-byte message from `from` to `to`,
    /// chunked per the paper's ≤3 KB rule. Same-tile transfers skip the
    /// mesh but still pay MPB copies and setup.
    pub fn message_latency(&self, from: CoreId, to: CoreId, bytes: usize) -> TimeNs {
        let hops = from.tile().hops_to(to.tile());
        let full_chunks = bytes / MAX_CHUNK_BYTES;
        let tail = bytes % MAX_CHUNK_BYTES;
        let mut total = TimeNs::ZERO;
        for _ in 0..full_chunks {
            total += self.chunk_latency(MAX_CHUNK_BYTES, hops);
        }
        if tail > 0 || bytes == 0 {
            total += self.chunk_latency(tail, hops);
        }
        total
    }

    /// Latency between two tiles for a given message size (core-agnostic
    /// helper used by the mapper's cost model).
    pub fn tile_latency(&self, from: TileId, to: TileId, bytes: usize) -> TimeNs {
        self.message_latency(from.cores()[0], to.cores()[0], bytes)
    }

    /// [`message_latency`](Self::message_latency) plus traffic accounting:
    /// bumps `traffic`'s message/chunk/byte counters and records the
    /// computed latency in its histogram. The latency value is identical
    /// to the untracked call.
    pub fn message_latency_tracked(
        &self,
        from: CoreId,
        to: CoreId,
        bytes: usize,
        traffic: &NocTraffic,
    ) -> TimeNs {
        let latency = self.message_latency(from, to, bytes);
        traffic.messages.inc();
        traffic.chunks.add(self.chunks(bytes) as u64);
        traffic.bytes.add(bytes as u64);
        traffic.latency.record(latency.as_ns());
        latency
    }
}

/// Traffic accounting handles for the NoC model — the emulation-side
/// equivalent of per-link flit counters. Resolve once with
/// [`NocTraffic::from_registry`] and pass to
/// [`NocModel::message_latency_tracked`].
///
/// Metrics registered: `scc.noc.messages`, `scc.noc.chunks`,
/// `scc.noc.bytes` (counters) and `scc.noc.message_latency_ns`
/// (histogram).
#[derive(Debug, Clone)]
pub struct NocTraffic {
    messages: Counter,
    chunks: Counter,
    bytes: Counter,
    latency: Histogram,
}

impl NocTraffic {
    /// Resolves the traffic handles in `registry`.
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        NocTraffic {
            messages: registry.counter("scc.noc.messages"),
            chunks: registry.counter("scc.noc.chunks"),
            bytes: registry.counter("scc.noc.bytes"),
            latency: registry.histogram("scc.noc.message_latency_ns"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NocModel {
        NocModel::paper_boot()
    }

    #[test]
    fn chunking_matches_3kb_rule() {
        let m = model();
        assert_eq!(m.chunks(0), 1);
        assert_eq!(m.chunks(1), 1);
        assert_eq!(m.chunks(3 * 1024), 1);
        assert_eq!(m.chunks(3 * 1024 + 1), 2);
        assert_eq!(m.chunks(10 * 1024), 4); // one MJPEG encoded frame
        assert_eq!(m.chunks(76_800), 25); // one decoded 320x240 frame
    }

    #[test]
    fn latency_grows_with_size_and_distance() {
        let m = model();
        let near = CoreId::new(0);
        let same_tile = CoreId::new(1);
        let far = CoreId::new(47);
        let small = m.message_latency(near, same_tile, 1024);
        let big = m.message_latency(near, same_tile, 10 * 1024);
        assert!(big > small);
        let near_hop = m.message_latency(near, CoreId::new(2), 1024); // 1 hop
        let far_hop = m.message_latency(near, far, 1024); // 8 hops
        assert!(far_hop > near_hop);
        assert!(near_hop > small, "mesh hops must cost something");
    }

    #[test]
    fn transfers_are_fast_relative_to_token_periods() {
        // The paper's premise: comms do not significantly influence FIFO
        // sizes or detection timings. A full 76.8 KB decoded frame across
        // the whole die must cost well under 1 ms (vs a 30 ms period).
        let m = model();
        let t = m.message_latency(CoreId::new(0), CoreId::new(47), 76_800);
        assert!(t < TimeNs::from_ms(1), "{t}");
        assert!(
            t > TimeNs::from_us(10),
            "a 25-chunk transfer is not free: {t}"
        );
    }

    #[test]
    fn zero_byte_message_still_costs_setup() {
        let m = model();
        let t = m.message_latency(CoreId::new(0), CoreId::new(2), 0);
        assert!(t > TimeNs::ZERO);
    }

    #[test]
    fn same_core_is_cheapest() {
        let m = model();
        let same = m.message_latency(CoreId::new(4), CoreId::new(4), 3000);
        let neighbor = m.message_latency(CoreId::new(4), CoreId::new(6), 3000);
        assert!(same < neighbor);
    }

    #[test]
    fn latency_is_additive_in_chunks() {
        let m = model();
        let one = m.message_latency(CoreId::new(0), CoreId::new(10), 3 * 1024);
        let four = m.message_latency(CoreId::new(0), CoreId::new(10), 12 * 1024);
        assert_eq!(four.as_ns(), one.as_ns() * 4);
    }

    #[test]
    fn tracked_latency_matches_and_accounts_traffic() {
        let m = model();
        let registry = MetricsRegistry::new();
        let traffic = NocTraffic::from_registry(&registry);
        let plain = m.message_latency(CoreId::new(0), CoreId::new(47), 10 * 1024);
        let tracked =
            m.message_latency_tracked(CoreId::new(0), CoreId::new(47), 10 * 1024, &traffic);
        assert_eq!(plain, tracked, "tracking must not change the model");
        m.message_latency_tracked(CoreId::new(0), CoreId::new(1), 100, &traffic);
        assert_eq!(registry.counter("scc.noc.messages").get(), 2);
        assert_eq!(registry.counter("scc.noc.chunks").get(), 4 + 1);
        assert_eq!(registry.counter("scc.noc.bytes").get(), 10 * 1024 + 100);
        let h = registry.histogram("scc.noc.message_latency_ns").snapshot();
        assert_eq!(h.count, 2);
        assert_eq!(
            h.max,
            plain.as_ns().max(
                m.message_latency(CoreId::new(0), CoreId::new(1), 100)
                    .as_ns(),
            )
        );
    }
}
