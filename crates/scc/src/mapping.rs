//! Process-to-core mapping with low router contention.
//!
//! The paper maps "only one process per tile in a way which reduces cross
//! traffic at the routers" (§4.1, citing Zimmer et al., RTAS 2012). For
//! pipeline-shaped process networks the canonical low-contention placement
//! is a snake walk over the mesh: consecutive pipeline stages sit on
//! adjacent tiles, so every flow occupies exactly one link and no two flows
//! share one.

use crate::noc::NocModel;
use crate::topology::{route_links, CoreId, Link, TileId, MESH_COLS, MESH_ROWS, TILE_COUNT};
use rtft_rtc::TimeNs;
use std::collections::HashMap;

/// An assignment of processes (by index) to cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    cores: Vec<CoreId>,
}

impl Mapping {
    /// A mapping from an explicit core list.
    pub fn new(cores: Vec<CoreId>) -> Self {
        Mapping { cores }
    }

    /// The core of process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn core(&self, i: usize) -> CoreId {
        self.cores[i]
    }

    /// Number of mapped processes.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// `true` if no processes are mapped.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// `true` if no tile hosts more than one process (the paper's
    /// one-process-per-tile constraint).
    pub fn one_process_per_tile(&self) -> bool {
        let mut seen = [false; TILE_COUNT as usize];
        for c in &self.cores {
            let t = c.tile().index() as usize;
            if seen[t] {
                return false;
            }
            seen[t] = true;
        }
        true
    }

    /// Directed-link usage counts for a set of flows
    /// `(producer process, consumer process)` — the router cross-traffic
    /// metric the placement minimises.
    pub fn link_utilization(&self, flows: &[(usize, usize)]) -> HashMap<Link, usize> {
        let mut util = HashMap::new();
        for (from, to) in flows {
            let (a, b) = (self.cores[*from].tile(), self.cores[*to].tile());
            for link in route_links(a, b) {
                *util.entry(link).or_insert(0) += 1;
            }
        }
        util
    }

    /// The maximum number of flows sharing any one link.
    pub fn max_link_sharing(&self, flows: &[(usize, usize)]) -> usize {
        self.link_utilization(flows)
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Total communication latency of the flows under a NoC model, one
    /// `bytes`-sized message per flow (placement cost function).
    pub fn total_latency(&self, flows: &[(usize, usize)], noc: &NocModel, bytes: usize) -> TimeNs {
        flows
            .iter()
            .map(|(a, b)| noc.message_latency(self.cores[*a], self.cores[*b], bytes))
            .sum()
    }
}

/// The snake order of tiles: left-to-right on even rows, right-to-left on
/// odd rows, so consecutive tiles in the order are always mesh-adjacent.
pub fn snake_order() -> Vec<TileId> {
    let mut order = Vec::with_capacity(TILE_COUNT as usize);
    for y in 0..MESH_ROWS {
        if y % 2 == 0 {
            for x in 0..MESH_COLS {
                order.push(TileId::at(x, y));
            }
        } else {
            for x in (0..MESH_COLS).rev() {
                order.push(TileId::at(x, y));
            }
        }
    }
    order
}

/// Low-contention pipeline placement: process `i` on core 0 of the `i`-th
/// snake-order tile. Consecutive pipeline stages are mesh-adjacent, so a
/// linear pipeline's flows never share a link.
///
/// # Panics
///
/// Panics if `processes > 24` (more processes than tiles — the paper's
/// one-process-per-tile constraint cannot hold).
pub fn low_contention_pipeline(processes: usize) -> Mapping {
    assert!(
        processes <= TILE_COUNT as usize,
        "cannot map {processes} processes one-per-tile on 24 tiles"
    );
    let order = snake_order();
    Mapping::new((0..processes).map(|i| order[i].cores()[0]).collect())
}

/// Naive placement used as the contention baseline: process `i` on core
/// `2·i` (consecutive tiles in row-major order — long X-routes share links
/// once flows skip around).
pub fn row_major(processes: usize) -> Mapping {
    assert!(processes <= TILE_COUNT as usize, "too many processes");
    Mapping::new(
        (0..processes)
            .map(|i| TileId::new(i as u8).cores()[0])
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline_flows(n: usize) -> Vec<(usize, usize)> {
        (0..n - 1).map(|i| (i, i + 1)).collect()
    }

    #[test]
    fn snake_order_is_adjacent() {
        let order = snake_order();
        assert_eq!(order.len(), 24);
        for w in order.windows(2) {
            assert_eq!(w[0].hops_to(w[1]), 1, "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn snake_mapping_keeps_one_process_per_tile() {
        let m = low_contention_pipeline(10);
        assert!(m.one_process_per_tile());
        assert_eq!(m.len(), 10);
    }

    #[test]
    fn snake_pipeline_has_no_link_sharing() {
        let m = low_contention_pipeline(12);
        assert_eq!(m.max_link_sharing(&pipeline_flows(12)), 1);
    }

    #[test]
    fn row_major_crossing_flows_share_links() {
        // Flows that hop over a row boundary in row-major order route back
        // across the row and collide with the intra-row flows.
        let m = row_major(8);
        let flows = vec![(0usize, 7usize), (1, 6), (2, 5), (3, 4)];
        let snake = low_contention_pipeline(8);
        assert!(
            m.max_link_sharing(&flows) >= snake.max_link_sharing(&pipeline_flows(8)),
            "baseline should be no better than snake on its own pipeline"
        );
    }

    #[test]
    fn latency_cost_prefers_snake_for_pipelines() {
        let noc = NocModel::paper_boot();
        let flows = pipeline_flows(12);
        let snake = low_contention_pipeline(12);
        let naive = row_major(12);
        let ls = snake.total_latency(&flows, &noc, 3 * 1024);
        let ln = naive.total_latency(&flows, &noc, 3 * 1024);
        assert!(ls <= ln, "snake {ls} vs row-major {ln}");
    }

    #[test]
    fn utilization_counts_every_link_once_per_flow() {
        let m = Mapping::new(vec![
            TileId::at(0, 0).cores()[0],
            TileId::at(2, 0).cores()[0],
        ]);
        let util = m.link_utilization(&[(0, 1)]);
        assert_eq!(util.len(), 2); // two hops
        assert!(util.values().all(|c| *c == 1));
    }

    #[test]
    #[should_panic(expected = "one-per-tile")]
    fn too_many_processes_rejected() {
        let _ = low_contention_pipeline(25);
    }
}
