//! Bridging the SCC model into the KPN runtime.
//!
//! [`SccPlatform`] implements [`rtft_kpn::Platform`]: every KPN channel is
//! given a route (source core → destination core), and each token write is
//! charged the corresponding MPB transfer latency, chunked per the ≤3 KB
//! rule. Unrouted channels (e.g. tile-local connections) cost nothing,
//! matching shared-MPB communication within a tile being effectively free
//! at the token periods of interest.

use crate::mapping::Mapping;
use crate::noc::{NocFaultPlan, NocModel};
use crate::topology::CoreId;
use rtft_kpn::{ChannelId, NodeId, Platform};
use rtft_rtc::TimeNs;
use std::collections::HashMap;

/// SCC timing model for the KPN engine.
#[derive(Debug)]
pub struct SccPlatform {
    noc: NocModel,
    routes: HashMap<ChannelId, (CoreId, CoreId)>,
    /// Optional per-core compute scaling (e.g. emulating a derated tile).
    core_scale: HashMap<NodeId, f64>,
    /// Stationary NoC perturbation folded into every routed transfer.
    noc_faults: NocFaultPlan,
}

impl SccPlatform {
    /// A platform over the given NoC model with no routes yet.
    pub fn new(noc: NocModel) -> Self {
        SccPlatform {
            noc,
            routes: HashMap::new(),
            core_scale: HashMap::new(),
            noc_faults: NocFaultPlan::default(),
        }
    }

    /// A platform under the paper's boot configuration.
    pub fn paper_boot() -> Self {
        SccPlatform::new(NocModel::paper_boot())
    }

    /// Routes `channel` from `from` to `to`; writes on the channel are
    /// charged the corresponding transfer latency.
    pub fn route(&mut self, channel: ChannelId, from: CoreId, to: CoreId) -> &mut Self {
        self.routes.insert(channel, (from, to));
        self
    }

    /// Routes a linear pipeline: channel `i` connects mapped process `i`
    /// to process `i + 1`.
    ///
    /// # Panics
    ///
    /// Panics if the mapping has fewer than `channels.len() + 1` entries.
    pub fn route_pipeline(&mut self, channels: &[ChannelId], mapping: &Mapping) -> &mut Self {
        for (i, ch) in channels.iter().enumerate() {
            self.route(*ch, mapping.core(i), mapping.core(i + 1));
        }
        self
    }

    /// Scales the compute durations of process `node` (1.0 = neutral).
    pub fn scale_node(&mut self, node: NodeId, scale: f64) -> &mut Self {
        self.core_scale.insert(node, scale);
        self
    }

    /// The underlying NoC model.
    pub fn noc(&self) -> &NocModel {
        &self.noc
    }

    /// Applies a [`NocFaultPlan`] to every routed transfer. The
    /// [`Platform`] trait has no notion of current time, so only the
    /// plan's *stationary* perturbations (uniform and per-link extras)
    /// take effect here; timed down-windows are evaluated as of `t = 0`.
    /// Harnesses that need windowed outages call
    /// [`NocModel::message_latency_under`] directly.
    pub fn with_noc_faults(mut self, plan: NocFaultPlan) -> Self {
        self.noc_faults = plan;
        self
    }

    /// The active NoC perturbation plan (benign by default).
    pub fn noc_faults(&self) -> &NocFaultPlan {
        &self.noc_faults
    }
}

impl Platform for SccPlatform {
    fn transfer_latency(&self, _writer: NodeId, channel: ChannelId, bytes: usize) -> TimeNs {
        match self.routes.get(&channel) {
            Some((from, to)) => {
                if self.noc_faults.is_benign() {
                    self.noc.message_latency(*from, *to, bytes)
                } else {
                    self.noc.message_latency_under(
                        &self.noc_faults,
                        *from,
                        *to,
                        bytes,
                        TimeNs::ZERO,
                    )
                }
            }
            None => TimeNs::ZERO,
        }
    }

    fn compute_scale(&self, node: NodeId) -> f64 {
        self.core_scale.get(&node).copied().unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::low_contention_pipeline;
    use rtft_kpn::{Collector, Engine, Fifo, Network, Payload, PjdSource, PortId, RunOutcome};
    use rtft_rtc::PjdModel;

    #[test]
    fn routed_channel_is_charged() {
        let mut p = SccPlatform::paper_boot();
        let ch = ChannelId(0);
        p.route(ch, CoreId::new(0), CoreId::new(47));
        let t = p.transfer_latency(NodeId(0), ch, 10 * 1024);
        assert!(t > TimeNs::from_us(1));
        // Unrouted channel is free.
        assert_eq!(
            p.transfer_latency(NodeId(0), ChannelId(9), 1024),
            TimeNs::ZERO
        );
    }

    #[test]
    fn pipeline_routing_uses_mapping() {
        let mapping = low_contention_pipeline(3);
        let mut p = SccPlatform::paper_boot();
        p.route_pipeline(&[ChannelId(0), ChannelId(1)], &mapping);
        let near = p.transfer_latency(NodeId(0), ChannelId(0), 3072);
        // Snake neighbours: exactly one hop each.
        assert_eq!(near, p.transfer_latency(NodeId(1), ChannelId(1), 3072));
        assert!(near > TimeNs::ZERO);
    }

    #[test]
    fn engine_run_with_scc_timing() {
        // A 30 fps source shipping 10 KB frames across the die: transfers
        // delay tokens by microseconds, not milliseconds.
        let mut net = Network::new();
        let ch = net.add_channel(Fifo::new("frames", 8));
        let model = PjdModel::periodic(TimeNs::from_ms(30));
        net.add_process(PjdSource::new(
            "cam",
            PortId::of(ch),
            model,
            0,
            Some(10),
            |_| Payload::from(vec![0u8; 10 * 1024]),
        ));
        let col = net.add_process(Collector::new("col", PortId::of(ch), Some(10)));

        let mut platform = SccPlatform::paper_boot();
        platform.route(ch, CoreId::new(0), CoreId::new(47));
        let mut engine = Engine::with_platform(net, Box::new(platform));
        let out = engine.run_until(TimeNs::from_secs(2));
        assert!(matches!(out, RunOutcome::Completed { .. }), "{out:?}");
        let col = engine.network().process_as::<Collector>(col).unwrap();
        assert_eq!(col.tokens().len(), 10);
        // Frame n is produced at n·30ms + transfer; spacing stays ~30ms.
        let times: Vec<TimeNs> = col.tokens().iter().map(|t| t.produced_at).collect();
        for (i, t) in times.iter().enumerate() {
            let nominal = TimeNs::from_ms(30) * i as u64;
            assert!(*t >= nominal);
            assert!(
                *t < nominal + TimeNs::from_ms(1),
                "transfer cost must be tiny: {t}"
            );
        }
    }

    #[test]
    fn noc_fault_plan_inflates_routed_transfers() {
        let route = (CoreId::new(0), CoreId::new(47));
        let ch = ChannelId(0);
        let mut healthy = SccPlatform::paper_boot();
        healthy.route(ch, route.0, route.1);
        let base = healthy.transfer_latency(NodeId(0), ch, 10 * 1024);

        let mut degraded = SccPlatform::paper_boot().with_noc_faults(NocFaultPlan::uniform(
            TimeNs::from_us(10),
            TimeNs::from_us(5),
        ));
        degraded.route(ch, route.0, route.1);
        // 10 KB = 4 chunks, 0 → 47 = 8 hops: 4·10 µs + 4·8·5 µs = 200 µs.
        assert_eq!(
            degraded.transfer_latency(NodeId(0), ch, 10 * 1024),
            base + TimeNs::from_us(200)
        );
        // Unrouted channels stay free even under a fault plan.
        assert_eq!(
            degraded.transfer_latency(NodeId(0), ChannelId(9), 1024),
            TimeNs::ZERO
        );
    }

    #[test]
    fn compute_scaling_applies() {
        let mut p = SccPlatform::paper_boot();
        p.scale_node(NodeId(3), 2.0);
        assert_eq!(p.compute_scale(NodeId(3)), 2.0);
        assert_eq!(p.compute_scale(NodeId(0)), 1.0);
    }
}
