//! # rtft-serve — streaming ingestion server for the fault-tolerant fleet
//!
//! The paper validates its detection framework on networks whose tokens
//! are generated *inside* the experiment. This crate closes the last gap
//! to a deployable system: real clients stream real payload bytes over
//! TCP into the fleet's fault-tolerant pipelines and get the selector's
//! outputs — and every fault detection, with its latency — pushed back.
//!
//! Everything is `std`-only: `std::net::TcpListener`, OS threads, and the
//! hand-rolled `RTFT/1` length-prefixed binary protocol in [`wire`]. No
//! async runtime, no external crates — the same zero-dependency discipline
//! as the rest of the workspace.
//!
//! * **[`wire`]** — the `RTFT/1` frame grammar: `Hello` / `OpenStream` /
//!   `Tokens` / `Flush` / `Close` from the client; `Accepted` / `Busy` /
//!   `Output` / `Fault` / `Stats` pushed by the server.
//! * **[`Server`]** — accepts connections, buffers token batches per
//!   stream, and turns each `Flush` into one admission-controlled fleet
//!   job (duplicated pair or tri-modular voting group). Saturation is an
//!   explicit `Busy` frame — backpressure, never token loss — and
//!   shutdown drains every admitted job before the sockets close.
//! * **[`Client`]** — the synchronous reference client the integration
//!   tests, CI smoke example and throughput bench drive. With a
//!   [`RetryPolicy`], [`Client::send_flush_with_retry`] turns retryable
//!   `Busy` refusals into bounded exponential backoff (seeded jitter,
//!   `RateLimited` retry-after honored) — and because a refused batch
//!   stays buffered server-side, a retry re-sends only the `Flush` frame.
//! * **Eviction** — with [`ServerConfig::read_timeout`] /
//!   [`ServerConfig::max_idle`] set, stalled (slow-loris) and idle
//!   connections are evicted: the socket closes, the books stay lossless
//!   (buffered tokens are reported `undelivered`, the report counts the
//!   eviction).
//! * **[`ServeReport`]** — deterministic end-of-life accounting: every
//!   accepted token is delivered or reported (`tokens_in == delivered +
//!   undelivered`, per stream).
//! * **Tenancy** — with a tenant directory configured
//!   ([`ServerConfig::tenancy`]), the `Hello` client name becomes a
//!   tenant identity and every batch passes that tenant's quota,
//!   in-flight cap and rate limit *before* it can reach the fleet;
//!   refusals are structured `Busy` codes (`quota-exceeded` /
//!   `rate-limited` / `tenant-draining`), tenants attach and detach at
//!   runtime ([`Server::detach_tenant`] drains losslessly), and the
//!   report gains a shard-count-invariant `tenants` section.
//! * **[`replay`]** — with a write-ahead log configured
//!   ([`ServerConfig::wal`]), accepted batches are group-committed to
//!   disk before the `Durable` ack, a restart rebuilds every stream and
//!   resubmits its undelivered tail, and [`replay_verify`] re-runs the
//!   whole log through the deterministic pipeline, flagging any output
//!   divergence as a detected transient fault in the original run.
//!
//! # Example
//!
//! ```
//! use rtft_apps::networks::App;
//! use rtft_serve::{Client, Server, ServerConfig, workload};
//!
//! let server = Server::start("127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(server.addr(), "doc-test")?;
//! let stream = client.open_stream(App::Adpcm, 2)?.expect_stream();
//! client.send_tokens(stream, &workload(App::Adpcm, 7, 4))?;
//! let run = client.flush(stream)?;
//! assert_eq!(run.outputs.len(), 4); // every token came back, in order
//! client.close(stream)?;
//! let report = server.shutdown();
//! assert!(report.balanced());
//! # Ok::<(), rtft_serve::ServeError>(())
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod replay;
pub mod report;
pub mod server;
pub mod wire;

pub use client::{
    digest_of, workload, BusyInfo, Client, DurableAck, FaultEvent, FlushOutcome, OpenOutcome,
    OutputEvent, RetriedFlush, RetryPolicy, StreamStats, TokensAck,
};
pub use error::{EvictReason, ProtocolError, ServeError};
pub use replay::{replay_verify, ReplayReport, StreamReplay};
pub use report::{ServeReport, StreamAccount};
pub use server::{
    detection_bound, hetero_detection_bound, FaultInjection, ServeRuntime, Server, ServerConfig,
    TenancyConfig,
};
pub use wire::{
    hetero_redundancy, hetero_stride, kind_label, site_kind, BusyReason, Frame, DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
};
// Re-exported so servers can be configured durable without naming the
// log crate directly.
pub use rtft_wal::WalConfig;
// Re-exported so multi-tenant servers can be configured and inspected
// without naming the tenant crate directly.
pub use rtft_tenant::{
    AttachError, TenantConfig, TenantDirectoryReport, TenantError, TenantId, TenantManager,
    TenantReject, TenantReport, TenantState, TokenRate,
};
