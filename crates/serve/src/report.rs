//! The server's end-of-life accounting.

use rtft_fleet::FleetReport;
use rtft_obs::json::{array, JsonObject};
use rtft_tenant::TenantDirectoryReport;

/// Final accounting for one stream.
///
/// The core invariant every shutdown upholds:
/// `tokens_in == delivered + undelivered` — an accepted token is either
/// delivered back to the client as an `Output` frame or reported here as
/// undelivered (still buffered, or lost to an incomplete faulty run).
/// Tokens a tenant quota refused were never accepted: they count in
/// `rejected`, not `tokens_in`, so the client's offered total is
/// `delivered + undelivered + rejected`. Tokens are never silently
/// dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamAccount {
    /// Stream id (global open order).
    pub id: u32,
    /// Tenant the stream was admitted under (0 = untenanted server).
    pub tenant: u64,
    /// Application label (`mjpeg` / `adpcm` / `h264`).
    pub app: &'static str,
    /// Replica count the stream ran under.
    pub redundancy: u8,
    /// Tokens accepted from the client.
    pub tokens_in: u64,
    /// Tokens delivered back as `Output` frames.
    pub delivered: u64,
    /// Accepted tokens not delivered (buffered at shutdown, or withheld
    /// by an incomplete run); always `tokens_in - delivered`.
    pub undelivered: u64,
    /// Tokens refused at admission (queue quota, draining tenant) and
    /// never accepted — the client still holds them.
    pub rejected: u64,
    /// Fault latches pushed to the client.
    pub faults: u64,
    /// Busy refusals the stream saw (each one retryable, lossless).
    pub busy: u64,
    /// Whether the client closed the stream before shutdown.
    pub closed: bool,
    /// Whether the stream's connection was evicted for violating a read
    /// deadline (idle or stalled). Eviction is lossless: the accepted
    /// tokens stay in the books, still buffered ones as `undelivered`.
    pub evicted: bool,
}

impl StreamAccount {
    /// Renders the account as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64_field("id", self.id as u64)
            .u64_field("tenant", self.tenant)
            .str_field("app", self.app)
            .u64_field("redundancy", self.redundancy as u64)
            .u64_field("tokens_in", self.tokens_in)
            .u64_field("delivered", self.delivered)
            .u64_field("undelivered", self.undelivered)
            .u64_field("rejected", self.rejected)
            .u64_field("faults", self.faults)
            .u64_field("busy", self.busy)
            .bool_field("closed", self.closed)
            .bool_field("evicted", self.evicted)
            .finish()
    }
}

/// Everything [`Server::shutdown`](crate::Server::shutdown) returns: the
/// per-stream token accounting, connection/frame/byte totals, and the
/// drained fleet's own report. Deterministic for a given seed and client
/// schedule under the discrete-event runtime.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-stream accounting, ascending by stream id.
    pub streams: Vec<StreamAccount>,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Frames read from clients.
    pub frames_in: u64,
    /// Frames pushed to clients.
    pub frames_out: u64,
    /// Wire bytes read from clients.
    pub bytes_in: u64,
    /// Wire bytes pushed to clients.
    pub bytes_out: u64,
    /// Streams rebuilt from the write-ahead log at startup (0 without a
    /// WAL). Recovered streams keep their accounting: their `tokens_in`
    /// counts logged tokens, so the balance invariant spans the restart.
    pub recovered_streams: u64,
    /// Logged-but-undelivered tokens resubmitted through the fleet at
    /// startup.
    pub replayed_tokens: u64,
    /// Torn-tail records dropped by WAL recovery at startup (tokens in
    /// those records were never acknowledged `Durable`, so dropping them
    /// loses nothing the client was promised).
    pub wal_truncated_records: u64,
    /// Connections evicted for read-deadline violations (idle or
    /// stalled writers). Each eviction is lossless — see
    /// [`StreamAccount::evicted`].
    pub evictions: u64,
    /// The tenant directory at shutdown (tenancy-enabled servers only):
    /// per-tenant reports sorted by id, the merged shard rollup, and the
    /// unique-stream / unique-tenant sketches.
    pub tenants: Option<TenantDirectoryReport>,
    /// The drained fleet's report (job records, status, pool counters).
    pub fleet: FleetReport,
}

impl ServeReport {
    /// Total tokens accepted across all streams.
    pub fn tokens_in(&self) -> u64 {
        self.streams.iter().map(|s| s.tokens_in).sum()
    }

    /// Total tokens delivered back across all streams.
    pub fn delivered(&self) -> u64 {
        self.streams.iter().map(|s| s.delivered).sum()
    }

    /// Total fault latches pushed across all streams.
    pub fn faults(&self) -> u64 {
        self.streams.iter().map(|s| s.faults).sum()
    }

    /// `true` if every stream's books balance
    /// (`tokens_in == delivered + undelivered`).
    pub fn balanced(&self) -> bool {
        self.streams
            .iter()
            .all(|s| s.tokens_in == s.delivered + s.undelivered)
    }

    /// Renders the report as a JSON object. Tenants (when present) are
    /// emitted sorted by id, so the section is byte-identical at any
    /// shard count.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        if let Some(tenants) = &self.tenants {
            obj = obj.raw_field("tenants", &tenants.to_json());
        }
        obj.raw_field("streams", &array(self.streams.iter().map(|s| s.to_json())))
            .u64_field("connections", self.connections)
            .u64_field("frames_in", self.frames_in)
            .u64_field("frames_out", self.frames_out)
            .u64_field("bytes_in", self.bytes_in)
            .u64_field("bytes_out", self.bytes_out)
            .u64_field("recovered_streams", self.recovered_streams)
            .u64_field("replayed_tokens", self.replayed_tokens)
            .u64_field("wal_truncated_records", self.wal_truncated_records)
            .u64_field("evictions", self.evictions)
            .u64_field("tokens_in", self.tokens_in())
            .u64_field("delivered", self.delivered())
            .u64_field("faults", self.faults())
            .raw_field("fleet", &self.fleet.to_json())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_fleet::FleetStatus;
    use rtft_kpn::PoolStats;

    fn account(tokens_in: u64, delivered: u64) -> StreamAccount {
        StreamAccount {
            id: 0,
            tenant: 0,
            app: "mjpeg",
            redundancy: 2,
            tokens_in,
            delivered,
            undelivered: tokens_in - delivered,
            rejected: 0,
            faults: 1,
            busy: 2,
            closed: true,
            evicted: false,
        }
    }

    fn report(streams: Vec<StreamAccount>) -> ServeReport {
        ServeReport {
            streams,
            connections: 1,
            frames_in: 10,
            frames_out: 20,
            bytes_in: 300,
            bytes_out: 400,
            recovered_streams: 0,
            replayed_tokens: 0,
            wal_truncated_records: 0,
            evictions: 0,
            tenants: None,
            fleet: FleetReport {
                runs: Vec::new(),
                status: FleetStatus::default(),
                pool: PoolStats {
                    workers: 2,
                    executed: 0,
                    stolen: 0,
                    panicked: 0,
                },
            },
        }
    }

    #[test]
    fn accounting_totals_and_balance() {
        let r = report(vec![account(8, 8), account(5, 3)]);
        assert_eq!(r.tokens_in(), 13);
        assert_eq!(r.delivered(), 11);
        assert_eq!(r.faults(), 2);
        assert!(r.balanced());
    }

    #[test]
    fn json_contains_stream_accounts() {
        let json = report(vec![account(8, 8)]).to_json();
        assert!(json.contains("\"app\":\"mjpeg\""), "{json}");
        assert!(json.contains("\"tokens_in\":8"), "{json}");
        assert!(json.contains("\"fleet\":{"), "{json}");
    }
}
