//! Replay verification: the WAL as an after-the-fact fault detector.
//!
//! Every flush job the server runs is deterministic in `(config seed,
//! stream id, app, redundancy, batch payloads)` — all of which the
//! write-ahead log captures. [`replay_verify`] therefore re-runs every
//! logged flush through [`rtft_fleet::execute_spec`] with the exact spec
//! the live server built (see `build_spec`) and compares the produced
//! output digests against the digests the live run logged. Any
//! difference means the *original* execution diverged from the
//! deterministic pipeline — a transient fault (bit flip, scheduling
//! corruption, torn write of the result path) that the in-band detectors
//! did not catch. This is the paper's output-equivalence check lifted to
//! a third, offline detection site.
//!
//! The scan is read-only ([`rtft_wal::read_log`]) so a suspect log can
//! be examined in place.

use std::path::Path;

use rtft_apps::networks::App;
use rtft_obs::json::{array, JsonObject};
use rtft_wal::{read_log, WalRecord};

use crate::error::ServeError;
use crate::server::{build_spec, ServerConfig};

/// One stream's replay verdict.
#[derive(Debug, Clone)]
pub struct StreamReplay {
    /// Stream id from the log.
    pub stream: u32,
    /// Application label.
    pub app: &'static str,
    /// Replica count the stream ran under.
    pub redundancy: u8,
    /// Output digests the live run logged.
    pub recorded: u64,
    /// Digests the deterministic replay reproduced.
    pub replayed: u64,
    /// Positions where recorded and replayed disagree (positional
    /// mismatches plus any length difference).
    pub divergent: u64,
    /// The first disagreement: `(cumulative position, recorded digest,
    /// replayed digest)`; digests are 0 where one side has no value.
    pub first_divergence: Option<(u64, u64, u64)>,
}

impl StreamReplay {
    /// Renders the verdict as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .u64_field("stream", self.stream as u64)
            .str_field("app", self.app)
            .u64_field("redundancy", self.redundancy as u64)
            .u64_field("recorded", self.recorded)
            .u64_field("replayed", self.replayed)
            .u64_field("divergent", self.divergent);
        if let Some((pos, rec, rep)) = self.first_divergence {
            obj = obj
                .u64_field("first_divergence_at", pos)
                .u64_field("first_divergence_recorded", rec)
                .u64_field("first_divergence_replayed", rep);
        }
        obj.finish()
    }
}

/// The verdict of one [`replay_verify`] pass over a log directory.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Per-stream verdicts, ascending by stream id.
    pub streams: Vec<StreamReplay>,
    /// Records the scan read.
    pub log_records: u64,
    /// Torn records at the log's tail (ignored, as recovery would).
    pub truncated_records: u64,
}

impl ReplayReport {
    /// Total divergent positions across all streams.
    pub fn divergent(&self) -> u64 {
        self.streams.iter().map(|s| s.divergent).sum()
    }

    /// `true` when every logged output was reproduced exactly — the log
    /// certifies the original run.
    pub fn clean(&self) -> bool {
        self.divergent() == 0
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .raw_field("streams", &array(self.streams.iter().map(|s| s.to_json())))
            .u64_field("log_records", self.log_records)
            .u64_field("truncated_records", self.truncated_records)
            .u64_field("divergent", self.divergent())
            .bool_field("clean", self.clean())
            .finish()
    }
}

struct LoggedStream {
    app: App,
    redundancy: u8,
    payloads: Vec<rtft_kpn::Bytes>,
    /// Settled flushes: `(first cumulative position, logged digests)`.
    outputs: Vec<(u64, Vec<u64>)>,
}

/// Re-runs every logged flush in `dir` with the job-construction rules of
/// `cfg` and diffs the outputs. `cfg` must be the configuration the
/// logging server ran with (same `seed`, `runtime`, `inject`), or the
/// replay is a different program and divergence means nothing.
pub fn replay_verify(dir: &Path, cfg: &ServerConfig) -> Result<ReplayReport, ServeError> {
    let (records, summary) = read_log(dir)?;

    let mut streams: std::collections::BTreeMap<u32, LoggedStream> =
        std::collections::BTreeMap::new();
    // Consume the records: payload buffers and digest vectors move into
    // the per-stream ledgers instead of being cloned out of them.
    for (_, rec) in records {
        match rec {
            WalRecord::StreamOpen {
                stream,
                tenant: _,
                app,
                redundancy,
            } => {
                streams.insert(
                    stream,
                    LoggedStream {
                        app: *App::ALL.get(app as usize).unwrap_or(&App::ALL[0]),
                        redundancy,
                        payloads: Vec::new(),
                        outputs: Vec::new(),
                    },
                );
            }
            WalRecord::Tokens { stream, payloads } => {
                if let Some(s) = streams.get_mut(&stream) {
                    s.payloads.extend(payloads);
                }
            }
            WalRecord::Outputs {
                stream,
                first_seq,
                digests,
            } => {
                if let Some(s) = streams.get_mut(&stream) {
                    s.outputs.push((first_seq, digests));
                }
            }
            WalRecord::StreamClose { .. } => {}
        }
    }

    let verdicts = streams
        .into_iter()
        .map(|(id, s)| {
            let mut recorded = 0u64;
            let mut replayed = 0u64;
            let mut divergent = 0u64;
            let mut first_divergence = None;
            // Each Outputs record is one settled flush; its batch is the
            // contiguous payload range it covered. Replay batch by batch
            // so the rebuilt jobs match the live ones token-for-token.
            for (first_seq, digests) in &s.outputs {
                recorded += digests.len() as u64;
                let lo = (*first_seq as usize).min(s.payloads.len());
                let hi = (lo + digests.len()).min(s.payloads.len());
                let batch = &s.payloads[lo..hi];
                let run = if batch.is_empty() {
                    Vec::new()
                } else {
                    let spec = build_spec(cfg, id, s.app, s.redundancy, batch);
                    rtft_fleet::execute_spec(&spec)
                        .arrival_log
                        .iter()
                        .map(|&(_, d)| d)
                        .collect::<Vec<u64>>()
                };
                replayed += run.len() as u64;
                let common = digests.len().min(run.len());
                for (i, (want, got)) in digests[..common].iter().zip(&run[..common]).enumerate() {
                    if want != got {
                        divergent += 1;
                        first_divergence.get_or_insert((first_seq + i as u64, *want, *got));
                    }
                }
                let extra = digests.len().max(run.len()) - common;
                if extra > 0 {
                    divergent += extra as u64;
                    first_divergence.get_or_insert((
                        first_seq + common as u64,
                        digests.get(common).copied().unwrap_or(0),
                        run.get(common).copied().unwrap_or(0),
                    ));
                }
            }
            StreamReplay {
                stream: id,
                app: s.app.label(),
                redundancy: s.redundancy,
                recorded,
                replayed,
                divergent,
                first_divergence,
            }
        })
        .collect();

    Ok(ReplayReport {
        streams: verdicts,
        log_records: summary.records,
        truncated_records: summary.truncated_records,
    })
}
