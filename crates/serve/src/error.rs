//! One boxed-error-compatible error type for the whole serve path.
//!
//! Every failure the server or client can hit — socket I/O, a malformed
//! `RTFT/1` frame, fleet admission refusing work, a runtime that cannot be
//! spawned — folds into [`ServeError`] via `From`, so public APIs return a
//! single type and callers can `?` straight into `Box<dyn Error>`.

use std::fmt;

use rtft_fleet::RejectReason;
use rtft_kpn::threaded::ThreadedError;

/// A violation of the `RTFT/1` frame grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// The length field exceeds the negotiated maximum frame size.
    Oversized {
        /// The offending length field.
        len: u32,
        /// The enforced maximum.
        max: u32,
    },
    /// The tag byte names no known frame.
    UnknownTag(u8),
    /// A body field was truncated, malformed, or left trailing bytes.
    BadPayload(&'static str),
    /// A well-formed frame arrived where the protocol does not allow it.
    UnexpectedFrame {
        /// What the state machine was waiting for.
        expected: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Version offered by the peer.
        offered: u32,
        /// Version this implementation speaks.
        supported: u32,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            ProtocolError::UnknownTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            ProtocolError::BadPayload(what) => write!(f, "malformed frame body: {what}"),
            ProtocolError::UnexpectedFrame { expected, got } => {
                write!(f, "expected {expected}, got {got}")
            }
            ProtocolError::VersionMismatch { offered, supported } => {
                write!(
                    f,
                    "peer speaks RTFT/{offered}, this side speaks RTFT/{supported}"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Why the server evicted a connection (read-deadline enforcement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// No frame arrived within `ServerConfig::max_idle` while the
    /// connection had no in-flight work.
    Idle,
    /// A started frame did not complete within
    /// `ServerConfig::read_timeout` (stalled or slow-loris writer).
    Stalled,
}

impl EvictReason {
    /// Stable lowercase label (event names, reports).
    pub fn label(&self) -> &'static str {
        match self {
            EvictReason::Idle => "idle",
            EvictReason::Stalled => "stalled",
        }
    }
}

impl fmt::Display for EvictReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Anything that can go wrong on the serve path.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// `RTFT/1` grammar violation.
    Protocol(ProtocolError),
    /// Fleet admission refused the work (backpressure; retryable when the
    /// reason is `QueueFull`).
    Rejected(RejectReason),
    /// The threaded runtime refused the network.
    Runtime(ThreadedError),
    /// The peer closed the connection mid-exchange.
    ConnectionClosed,
    /// The server evicted the connection for violating a read deadline.
    /// Accounting stays lossless: the evicted streams' buffered tokens
    /// are reported `undelivered`, never dropped.
    Evicted(EvictReason),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServeError::Rejected(r) => write!(f, "admission rejected: {r}"),
            ServeError::Runtime(e) => write!(f, "runtime error: {e}"),
            ServeError::ConnectionClosed => write!(f, "connection closed by peer"),
            ServeError::Evicted(reason) => write!(f, "connection evicted ({reason})"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Protocol(e) => Some(e),
            ServeError::Rejected(r) => Some(r),
            ServeError::Runtime(e) => Some(e),
            ServeError::ConnectionClosed => None,
            ServeError::Evicted(_) => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ServeError::ConnectionClosed
        } else {
            ServeError::Io(e)
        }
    }
}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> Self {
        ServeError::Protocol(e)
    }
}

impl From<RejectReason> for ServeError {
    fn from(r: RejectReason) -> Self {
        ServeError::Rejected(r)
    }
}

impl From<ThreadedError> for ServeError {
    fn from(e: ThreadedError) -> Self {
        ServeError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_boxes_into_dyn_error() {
        let cases: Vec<ServeError> = vec![
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe").into(),
            ProtocolError::UnknownTag(9).into(),
            RejectReason::ShuttingDown.into(),
            ThreadedError::InvalidNetwork("dangling port".into()).into(),
            ServeError::ConnectionClosed,
        ];
        for case in cases {
            let boxed: Box<dyn std::error::Error> = Box::new(case);
            assert!(!boxed.to_string().is_empty());
        }
    }

    #[test]
    fn eof_maps_to_connection_closed() {
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(
            ServeError::from(eof),
            ServeError::ConnectionClosed
        ));
    }
}
