//! The `RTFT/1` wire protocol: length-prefixed binary frames.
//!
//! # Frame grammar
//!
//! Every frame on the wire is
//!
//! ```text
//! frame   := length tag body
//! length  := u32 LE        ; bytes following the length field (tag + body),
//!                          ; 1 ..= max_frame
//! tag     := u8            ; frame discriminator (see below)
//! body    := tag-specific fields, fixed order, no padding
//! ```
//!
//! Scalars are little-endian (`u32`/`u64`). Variable-length fields are a
//! `u32` LE byte count followed by the raw bytes; strings are UTF-8.
//!
//! A `length` of zero, a `length` above the negotiated maximum, or an
//! unknown `tag` is a [`ProtocolError`] — the peer must drop the
//! connection. Decoding never panics on malformed input.
//!
//! # Frames
//!
//! | tag    | frame        | direction | body |
//! |--------|--------------|-----------|------|
//! | `0x01` | `Hello`      | C→S       | `version:u32, client:str` |
//! | `0x02` | `OpenStream` | C→S       | `app:u8, redundancy:u8` |
//! | `0x03` | `Tokens`     | C→S       | `stream:u32, count:u32, count × bytes` |
//! | `0x04` | `Flush`      | C→S       | `stream:u32` |
//! | `0x05` | `Close`      | C→S       | `stream:u32` |
//! | `0x81` | `Accepted`   | S→C       | `id:u32` |
//! | `0x82` | `Busy`       | S→C       | `stream:u32, reason:u8, pending:u32, capacity:u32` |
//! | `0x83` | `Output`     | S→C       | `stream:u32, seq:u64, at_ns:u64, digest:u64` |
//! | `0x84` | `Fault`      | S→C       | `stream:u32, replica:u32, kind:u8, detection_latency_ns:u64` |
//! | `0x85` | `Stats`      | S→C       | `stream:u32, tokens_in:u64, delivered:u64, faults:u64, busy:u64, queued:u32, inflight:u32, outstanding:u32` |
//! | `0x86` | `Durable`    | S→C       | `stream:u32, tokens:u32, seq:u64` |
//!
//! `app` indexes [`rtft_apps::networks::App::ALL`]; `redundancy` selects
//! the structure: `2` = duplicated timing selector, `3` = tri-modular
//! value voting, and `0x10 | e` = the sampled-checker structure with
//! stride `k = 1 << e` (`e ≤ 6`; see [`hetero_redundancy`] /
//! [`hetero_stride`]). `kind` in `Fault` is the detection site
//! ([`site_kind`] / [`kind_label`]).

use std::io::{self, IoSlice, Read, Write};

use crate::error::{ProtocolError, ServeError};
use rtft_kpn::{Bytes, PayloadPool};

/// Protocol version this implementation speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// Encodes a sampled-checker stride as an `OpenStream` redundancy byte:
/// `0x10 | e` with `k = 1 << e`. Only power-of-two strides up to `64`
/// fit the encoding; anything else returns `None`.
pub fn hetero_redundancy(k: u64) -> Option<u8> {
    if k.is_power_of_two() && k <= 64 {
        Some(0x10 | k.trailing_zeros() as u8)
    } else {
        None
    }
}

/// Decodes an `OpenStream` redundancy byte: `Some(k)` when it selects
/// the sampled-checker structure, `None` for the plain replica counts.
pub fn hetero_stride(redundancy: u8) -> Option<u64> {
    let e = redundancy ^ 0x10;
    if redundancy & 0xF0 == 0x10 && e <= 6 {
        Some(1u64 << e)
    } else {
        None
    }
}

/// Default upper bound on a frame's length field (tag + body bytes).
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Why the server refused work (the `reason` byte of a `Busy` frame).
///
/// Every refusal is lossless backpressure: whatever the server already
/// buffered stays buffered, whatever it refused stays with the client,
/// and the operation may be retried. The `pending`/`capacity` fields of
/// the `Busy` frame are reason-scoped:
///
/// | reason           | pending                   | capacity            |
/// |------------------|---------------------------|---------------------|
/// | `QueueFull`      | outstanding fleet jobs    | fleet job capacity  |
/// | `ShuttingDown`   | outstanding fleet jobs    | fleet job capacity  |
/// | `QuotaExceeded`  | quota units in use        | the quota           |
/// | `RateLimited`    | retry-after (whole ms)    | 0                   |
/// | `TenantDraining` | 0                         | 0                   |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyReason {
    /// Fleet admission is saturated; retry the flush later. Buffered
    /// tokens are retained server-side — nothing is lost.
    QueueFull,
    /// The server is draining; no new streams or tokens are accepted.
    ShuttingDown,
    /// A per-tenant quota (buffered-token queue quota on `Tokens`,
    /// in-flight-jobs cap on `Flush`) is exhausted.
    QuotaExceeded,
    /// The tenant's token-rate limit refused the flush for now; retry
    /// after the hinted delay.
    RateLimited,
    /// The stream's tenant is draining toward detach; no new work.
    TenantDraining,
}

impl BusyReason {
    fn to_byte(self) -> u8 {
        match self {
            BusyReason::QueueFull => 0,
            BusyReason::ShuttingDown => 1,
            BusyReason::QuotaExceeded => 2,
            BusyReason::RateLimited => 3,
            BusyReason::TenantDraining => 4,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtocolError> {
        match b {
            0 => Ok(BusyReason::QueueFull),
            1 => Ok(BusyReason::ShuttingDown),
            2 => Ok(BusyReason::QuotaExceeded),
            3 => Ok(BusyReason::RateLimited),
            4 => Ok(BusyReason::TenantDraining),
            _ => Err(ProtocolError::BadPayload("unknown busy reason")),
        }
    }
}

impl std::fmt::Display for BusyReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusyReason::QueueFull => write!(f, "queue-full"),
            BusyReason::ShuttingDown => write!(f, "shutting-down"),
            BusyReason::QuotaExceeded => write!(f, "quota-exceeded"),
            BusyReason::RateLimited => write!(f, "rate-limited"),
            BusyReason::TenantDraining => write!(f, "tenant-draining"),
        }
    }
}

/// One `RTFT/1` frame, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client greeting; must be the first frame on a connection.
    Hello {
        /// Protocol version the client speaks ([`PROTOCOL_VERSION`]).
        version: u32,
        /// Client name (diagnostics only).
        client: String,
    },
    /// Open a fault-tolerant stream.
    OpenStream {
        /// Index into [`rtft_apps::networks::App::ALL`].
        app: u8,
        /// Replica count: 2 (duplicated) or 3 (tri-modular voting).
        redundancy: u8,
    },
    /// A batch of token payloads for a stream.
    Tokens {
        /// Stream id from `Accepted`.
        stream: u32,
        /// Raw token payloads, in arrival order. Shared `Arc<[u8]>`
        /// buffers: the server threads one ingested copy through its
        /// buffer, the WAL record, and the fleet job without re-copying.
        payloads: Vec<Bytes>,
    },
    /// Run the stream's buffered tokens through its pipeline now.
    Flush {
        /// Stream id from `Accepted`.
        stream: u32,
    },
    /// Client is done with the stream; server settles it and replies with
    /// a final `Stats`.
    Close {
        /// Stream id from `Accepted`.
        stream: u32,
    },
    /// Positive reply to `Hello` (connection id) or `OpenStream` (stream
    /// id).
    Accepted {
        /// Connection or stream id.
        id: u32,
    },
    /// Backpressure: the request was refused, nothing was lost.
    Busy {
        /// Stream the refusal concerns (`u32::MAX` = whole connection).
        stream: u32,
        /// Why the server refused.
        reason: BusyReason,
        /// Outstanding fleet jobs at the time of refusal.
        pending: u32,
        /// The fleet's outstanding-job capacity.
        capacity: u32,
    },
    /// One selector output delivered to the consumer.
    Output {
        /// Stream id.
        stream: u32,
        /// Zero-based output sequence number within the flush.
        seq: u64,
        /// Delivery timestamp (virtual ns for DES runs, wall ns for
        /// threaded runs).
        at_ns: u64,
        /// FNV-1a digest of the delivered payload.
        digest: u64,
    },
    /// A replica was latched faulty during a flush run.
    Fault {
        /// Stream id.
        stream: u32,
        /// Latched replica index.
        replica: u32,
        /// Detection site ([`site_kind`]).
        kind: u8,
        /// Latch time minus injection time (0 when the injection instant
        /// is unknown to the server).
        detection_latency_ns: u64,
    },
    /// Per-stream accounting plus live server load.
    Stats {
        /// Stream id.
        stream: u32,
        /// Tokens accepted from the client so far.
        tokens_in: u64,
        /// Tokens delivered back as `Output` frames.
        delivered: u64,
        /// `Fault` frames pushed for this stream.
        faults: u64,
        /// `Busy` refusals this stream has seen.
        busy: u64,
        /// Fleet worker-pool queue depth at snapshot time.
        queued: u32,
        /// Fleet jobs executing at snapshot time.
        inflight: u32,
        /// Admitted-but-unfinished fleet jobs at snapshot time.
        outstanding: u32,
    },
    /// A `Tokens` batch reached the server's write-ahead log: the tokens
    /// survive a server crash and will be replayed on restart. Only sent
    /// when the server runs with a WAL (`ServerConfig::wal`).
    Durable {
        /// Stream id.
        stream: u32,
        /// Tokens in the batch this acknowledgement covers.
        tokens: u32,
        /// WAL sequence number of the batch's log record.
        seq: u64,
    },
}

impl Frame {
    /// The frame's tag byte.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0x01,
            Frame::OpenStream { .. } => 0x02,
            Frame::Tokens { .. } => 0x03,
            Frame::Flush { .. } => 0x04,
            Frame::Close { .. } => 0x05,
            Frame::Accepted { .. } => 0x81,
            Frame::Busy { .. } => 0x82,
            Frame::Output { .. } => 0x83,
            Frame::Fault { .. } => 0x84,
            Frame::Stats { .. } => 0x85,
            Frame::Durable { .. } => 0x86,
        }
    }

    /// Short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::OpenStream { .. } => "OpenStream",
            Frame::Tokens { .. } => "Tokens",
            Frame::Flush { .. } => "Flush",
            Frame::Close { .. } => "Close",
            Frame::Accepted { .. } => "Accepted",
            Frame::Busy { .. } => "Busy",
            Frame::Output { .. } => "Output",
            Frame::Fault { .. } => "Fault",
            Frame::Stats { .. } => "Stats",
            Frame::Durable { .. } => "Durable",
        }
    }

    /// Encodes the frame as `length ‖ tag ‖ body` wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Frame::Hello { version, client } => {
                put_u32(&mut body, *version);
                put_bytes(&mut body, client.as_bytes());
            }
            Frame::OpenStream { app, redundancy } => {
                body.push(*app);
                body.push(*redundancy);
            }
            Frame::Tokens { stream, payloads } => {
                put_u32(&mut body, *stream);
                put_u32(&mut body, payloads.len() as u32);
                for p in payloads {
                    put_bytes(&mut body, p);
                }
            }
            Frame::Flush { stream } | Frame::Close { stream } => {
                put_u32(&mut body, *stream);
            }
            Frame::Accepted { id } => put_u32(&mut body, *id),
            Frame::Busy {
                stream,
                reason,
                pending,
                capacity,
            } => {
                put_u32(&mut body, *stream);
                body.push(reason.to_byte());
                put_u32(&mut body, *pending);
                put_u32(&mut body, *capacity);
            }
            Frame::Output {
                stream,
                seq,
                at_ns,
                digest,
            } => {
                put_u32(&mut body, *stream);
                put_u64(&mut body, *seq);
                put_u64(&mut body, *at_ns);
                put_u64(&mut body, *digest);
            }
            Frame::Fault {
                stream,
                replica,
                kind,
                detection_latency_ns,
            } => {
                put_u32(&mut body, *stream);
                put_u32(&mut body, *replica);
                body.push(*kind);
                put_u64(&mut body, *detection_latency_ns);
            }
            Frame::Stats {
                stream,
                tokens_in,
                delivered,
                faults,
                busy,
                queued,
                inflight,
                outstanding,
            } => {
                put_u32(&mut body, *stream);
                put_u64(&mut body, *tokens_in);
                put_u64(&mut body, *delivered);
                put_u64(&mut body, *faults);
                put_u64(&mut body, *busy);
                put_u32(&mut body, *queued);
                put_u32(&mut body, *inflight);
                put_u32(&mut body, *outstanding);
            }
            Frame::Durable {
                stream,
                tokens,
                seq,
            } => {
                put_u32(&mut body, *stream);
                put_u32(&mut body, *tokens);
                put_u64(&mut body, *seq);
            }
        }
        let mut wire = Vec::with_capacity(5 + body.len());
        put_u32(&mut wire, 1 + body.len() as u32);
        wire.push(self.tag());
        wire.extend_from_slice(&body);
        wire
    }

    /// Decodes a frame from `tag ‖ body` bytes (the length prefix already
    /// stripped). Never panics on malformed input.
    pub fn decode(buf: &[u8]) -> Result<Frame, ProtocolError> {
        Frame::decode_impl(buf, None)
    }

    /// [`Frame::decode`], but `Tokens` payload buffers come from `pool`
    /// instead of fresh allocations — the zero-copy ingest path: in
    /// steady state every payload lands in a recycled buffer.
    pub fn decode_pooled(buf: &[u8], pool: &PayloadPool) -> Result<Frame, ProtocolError> {
        Frame::decode_impl(buf, Some(pool))
    }

    fn decode_impl(buf: &[u8], pool: Option<&PayloadPool>) -> Result<Frame, ProtocolError> {
        let (&tag, mut body) = buf
            .split_first()
            .ok_or(ProtocolError::BadPayload("empty frame"))?;
        let r = &mut body;
        let frame = match tag {
            0x01 => Frame::Hello {
                version: get_u32(r)?,
                client: std::str::from_utf8(get_byte_slice(r)?)
                    .map_err(|_| ProtocolError::BadPayload("client name is not UTF-8"))?
                    .to_owned(),
            },
            0x02 => Frame::OpenStream {
                app: get_u8(r)?,
                redundancy: get_u8(r)?,
            },
            0x03 => {
                let stream = get_u32(r)?;
                let count = get_u32(r)? as usize;
                // A payload costs at least its 4-byte length prefix, so a
                // count beyond the remaining bytes / 4 cannot be honest.
                if count > r.len() / 4 + 1 {
                    return Err(ProtocolError::BadPayload("token count exceeds frame"));
                }
                let mut payloads = Vec::with_capacity(count);
                for _ in 0..count {
                    let raw = get_byte_slice(r)?;
                    payloads.push(match pool {
                        Some(pool) => pool.take_copy(raw),
                        None => Bytes::from(raw),
                    });
                }
                Frame::Tokens { stream, payloads }
            }
            0x04 => Frame::Flush {
                stream: get_u32(r)?,
            },
            0x05 => Frame::Close {
                stream: get_u32(r)?,
            },
            0x81 => Frame::Accepted { id: get_u32(r)? },
            0x82 => Frame::Busy {
                stream: get_u32(r)?,
                reason: BusyReason::from_byte(get_u8(r)?)?,
                pending: get_u32(r)?,
                capacity: get_u32(r)?,
            },
            0x83 => Frame::Output {
                stream: get_u32(r)?,
                seq: get_u64(r)?,
                at_ns: get_u64(r)?,
                digest: get_u64(r)?,
            },
            0x84 => Frame::Fault {
                stream: get_u32(r)?,
                replica: get_u32(r)?,
                kind: get_u8(r)?,
                detection_latency_ns: get_u64(r)?,
            },
            0x85 => Frame::Stats {
                stream: get_u32(r)?,
                tokens_in: get_u64(r)?,
                delivered: get_u64(r)?,
                faults: get_u64(r)?,
                busy: get_u64(r)?,
                queued: get_u32(r)?,
                inflight: get_u32(r)?,
                outstanding: get_u32(r)?,
            },
            0x86 => Frame::Durable {
                stream: get_u32(r)?,
                tokens: get_u32(r)?,
                seq: get_u64(r)?,
            },
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        if !r.is_empty() {
            return Err(ProtocolError::BadPayload("trailing bytes after frame"));
        }
        Ok(frame)
    }
}

/// Writes one frame to `w`. Returns the wire bytes written.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<usize, ServeError> {
    let wire = frame.encode();
    w.write_all(&wire)?;
    Ok(wire.len())
}

/// Reads one frame from `r`, enforcing `max_frame` on the length field.
/// Returns the frame and the wire bytes consumed.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<(Frame, usize), ServeError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(ProtocolError::BadPayload("zero-length frame").into());
    }
    if len > max_frame {
        return Err(ProtocolError::Oversized {
            len,
            max: max_frame,
        }
        .into());
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok((Frame::decode(&buf)?, 4 + len as usize))
}

/// [`read_frame`] without per-frame allocation: the wire body is read
/// into the caller-owned `scratch` buffer (grown once, then reused for
/// every subsequent frame on the connection) and `Tokens` payloads are
/// copied straight into buffers recycled through `pool`. Together with
/// [`write_tokens`] on the sending side this is the steady-state
/// zero-allocation ingest path.
pub fn read_frame_pooled(
    r: &mut impl Read,
    max_frame: u32,
    pool: &PayloadPool,
    scratch: &mut Vec<u8>,
) -> Result<(Frame, usize), ServeError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(ProtocolError::BadPayload("zero-length frame").into());
    }
    if len > max_frame {
        return Err(ProtocolError::Oversized {
            len,
            max: max_frame,
        }
        .into());
    }
    scratch.resize(len as usize, 0);
    r.read_exact(scratch)?;
    Ok((Frame::decode_pooled(scratch, pool)?, 4 + len as usize))
}

/// Encodes and writes one `Tokens` frame from *borrowed* payload slices,
/// using gather I/O: the frame header and each payload's length prefix
/// are staged in small scratch vectors, the payload bytes themselves are
/// handed to [`Write::write_vectored`] in place. The batch is never
/// copied into an assembled frame buffer, so the send path costs the
/// caller no per-payload allocation or memcpy. Returns the wire bytes
/// written.
pub fn write_tokens(
    w: &mut impl Write,
    stream: u32,
    payloads: &[impl AsRef<[u8]>],
) -> Result<usize, ServeError> {
    // length ‖ tag ‖ stream ‖ count, then count × (len ‖ bytes); the
    // length field counts the tag plus everything after it.
    let tagged_len: usize = 9 + payloads.iter().map(|p| 4 + p.as_ref().len()).sum::<usize>();
    let mut header = [0u8; 13];
    header[..4].copy_from_slice(&(tagged_len as u32).to_le_bytes());
    header[4] = 0x03;
    header[5..9].copy_from_slice(&stream.to_le_bytes());
    header[9..13].copy_from_slice(&(payloads.len() as u32).to_le_bytes());
    let prefixes: Vec<[u8; 4]> = payloads
        .iter()
        .map(|p| (p.as_ref().len() as u32).to_le_bytes())
        .collect();
    let mut slices = Vec::with_capacity(1 + 2 * payloads.len());
    slices.push(IoSlice::new(&header));
    for (p, prefix) in payloads.iter().zip(&prefixes) {
        slices.push(IoSlice::new(prefix));
        slices.push(IoSlice::new(p.as_ref()));
    }
    write_all_vectored(w, &mut slices)?;
    Ok(4 + tagged_len)
}

/// Drives [`Write::write_vectored`] to completion across short writes.
/// (`Write::write_all_vectored` is unstable; this is the same loop,
/// advancing past fully-written slices and re-slicing the partial one.)
fn write_all_vectored(w: &mut impl Write, slices: &mut [IoSlice<'_>]) -> Result<(), ServeError> {
    let mut first = 0usize;
    // Bytes of `slices[first]` already written (a short write can land
    // mid-slice; `IoSlice::advance` is also unstable, so re-borrowing the
    // tail of the current slice is done by hand below).
    let mut offset = 0usize;
    while first < slices.len() {
        let n = if offset == 0 {
            w.write_vectored(&slices[first..])?
        } else {
            // Re-slice the partially-written head, then the rest.
            let head = &slices[first][offset..];
            let mut retry = Vec::with_capacity(slices.len() - first);
            retry.push(IoSlice::new(head));
            retry.extend(slices[first + 1..].iter().map(|s| IoSlice::new(s)));
            w.write_vectored(&retry)?
        };
        if n == 0 {
            return Err(ServeError::Io(io::Error::new(
                io::ErrorKind::WriteZero,
                "failed to write whole frame",
            )));
        }
        let mut left = n;
        while first < slices.len() {
            let remaining = slices[first].len() - offset;
            if left < remaining {
                offset += left;
                break;
            }
            left -= remaining;
            offset = 0;
            first += 1;
        }
    }
    Ok(())
}

/// Maps a detection site to the `kind` byte of a `Fault` frame.
pub fn site_kind(site: Option<rtft_obs::DetectionSite>) -> u8 {
    use rtft_obs::DetectionSite;
    match site {
        Some(DetectionSite::ReplicatorOverflow) => 0,
        Some(DetectionSite::ReplicatorDivergence) => 1,
        Some(DetectionSite::SelectorStall) => 2,
        Some(DetectionSite::SelectorDivergence) => 3,
        None => 255,
    }
}

/// Human label for a `Fault` frame's `kind` byte.
pub fn kind_label(kind: u8) -> &'static str {
    match kind {
        0 => "replicator.overflow",
        1 => "replicator.divergence",
        2 => "selector.stall",
        3 => "selector.divergence",
        _ => "unknown",
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

fn get_u8(r: &mut &[u8]) -> Result<u8, ProtocolError> {
    let (&b, rest) = r
        .split_first()
        .ok_or(ProtocolError::BadPayload("truncated u8"))?;
    *r = rest;
    Ok(b)
}

fn get_u32(r: &mut &[u8]) -> Result<u32, ProtocolError> {
    if r.len() < 4 {
        return Err(ProtocolError::BadPayload("truncated u32"));
    }
    let (head, rest) = r.split_at(4);
    *r = rest;
    Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
}

fn get_u64(r: &mut &[u8]) -> Result<u64, ProtocolError> {
    if r.len() < 8 {
        return Err(ProtocolError::BadPayload("truncated u64"));
    }
    let (head, rest) = r.split_at(8);
    *r = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
}

fn get_byte_slice<'a>(r: &mut &'a [u8]) -> Result<&'a [u8], ProtocolError> {
    let len = get_u32(r)? as usize;
    if r.len() < len {
        return Err(ProtocolError::BadPayload("truncated byte field"));
    }
    let (head, rest) = r.split_at(len);
    *r = rest;
    Ok(head)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_redundancy_roundtrips() {
        for k in [1u64, 2, 4, 8, 16, 32, 64] {
            let byte = hetero_redundancy(k).expect("power-of-two stride");
            assert_eq!(hetero_stride(byte), Some(k));
        }
        assert_eq!(hetero_redundancy(3), None);
        assert_eq!(hetero_redundancy(128), None);
        // Plain replica counts and out-of-range exponents decode to None.
        assert_eq!(hetero_stride(2), None);
        assert_eq!(hetero_stride(3), None);
        assert_eq!(hetero_stride(0x17), None);
        assert_eq!(hetero_stride(0x20), None);
    }

    fn round_trip(frame: Frame) {
        let wire = frame.encode();
        let (decoded, consumed) = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME)
            .unwrap_or_else(|e| panic!("{frame:?}: {e}"));
        assert_eq!(decoded, frame);
        assert_eq!(consumed, wire.len());
    }

    #[test]
    fn every_frame_round_trips() {
        round_trip(Frame::Hello {
            version: PROTOCOL_VERSION,
            client: "test-client".into(),
        });
        round_trip(Frame::OpenStream {
            app: 1,
            redundancy: 3,
        });
        round_trip(Frame::Tokens {
            stream: 7,
            payloads: vec![
                Bytes::from(vec![1, 2, 3]),
                Bytes::from(vec![]),
                Bytes::from(vec![0xFF; 100]),
            ],
        });
        round_trip(Frame::Flush { stream: 7 });
        round_trip(Frame::Close { stream: 7 });
        round_trip(Frame::Accepted { id: 42 });
        round_trip(Frame::Busy {
            stream: 7,
            reason: BusyReason::QueueFull,
            pending: 64,
            capacity: 64,
        });
        for reason in [
            BusyReason::ShuttingDown,
            BusyReason::QuotaExceeded,
            BusyReason::RateLimited,
            BusyReason::TenantDraining,
        ] {
            round_trip(Frame::Busy {
                stream: 9,
                reason,
                pending: 3,
                capacity: 0,
            });
        }
        round_trip(Frame::Output {
            stream: 7,
            seq: 3,
            at_ns: 123_456,
            digest: u64::MAX,
        });
        round_trip(Frame::Fault {
            stream: 7,
            replica: 1,
            kind: 3,
            detection_latency_ns: 987,
        });
        round_trip(Frame::Stats {
            stream: 7,
            tokens_in: 10,
            delivered: 10,
            faults: 1,
            busy: 2,
            queued: 3,
            inflight: 1,
            outstanding: 4,
        });
        round_trip(Frame::Durable {
            stream: 7,
            tokens: 16,
            seq: u64::MAX,
        });
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let wire = 0u32.to_le_bytes();
        let err = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)), "{err}");
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut wire.as_slice(), 1024).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::Protocol(ProtocolError::Oversized { len: u32::MAX, .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn unknown_tag_is_a_clean_error() {
        let frame = [2u8, 0, 0, 0, 0x7F, 0];
        let err = read_frame(&mut frame.as_slice(), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(
            matches!(err, ServeError::Protocol(ProtocolError::UnknownTag(0x7F))),
            "{err}"
        );
    }

    #[test]
    fn truncated_body_is_a_clean_error() {
        let full = Frame::Output {
            stream: 1,
            seq: 2,
            at_ns: 3,
            digest: 4,
        }
        .encode();
        // Re-frame a prefix of the body under a matching (shorter) length.
        let body = &full[4..full.len() - 5];
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(body);
        let err = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)), "{err}");
    }

    #[test]
    fn write_tokens_matches_frame_encode() {
        let payloads: Vec<&[u8]> = vec![b"alpha", b"", b"gamma-gamma"];
        let mut vectored = Vec::new();
        let n = write_tokens(&mut vectored, 9, &payloads).unwrap();
        let owned = Frame::Tokens {
            stream: 9,
            payloads: payloads.iter().map(|p| Bytes::from(*p)).collect(),
        };
        assert_eq!(vectored, owned.encode());
        assert_eq!(n, vectored.len());
    }

    /// A writer that accepts at most 3 bytes per call — forces
    /// `write_all_vectored` through every partial-write resumption case
    /// (mid-slice, on a slice boundary, spanning slices).
    struct Trickle(Vec<u8>);
    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(3);
            self.0.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            let first = bufs.iter().find(|b| !b.is_empty());
            match first {
                Some(b) => self.write(b),
                None => Ok(0),
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_tokens_survives_short_vectored_writes() {
        let payloads: Vec<&[u8]> = vec![b"0123456789", b"x", b"", b"abcdef"];
        let mut sink = Trickle(Vec::new());
        write_tokens(&mut sink, 3, &payloads).unwrap();
        let owned = Frame::Tokens {
            stream: 3,
            payloads: payloads.iter().map(|p| Bytes::from(*p)).collect(),
        };
        assert_eq!(sink.0, owned.encode());
    }

    #[test]
    fn pooled_read_reuses_payload_buffers() {
        let pool = PayloadPool::new();
        let mut scratch = Vec::new();
        let frame = Frame::Tokens {
            stream: 1,
            payloads: vec![Bytes::from(vec![7u8; 64])],
        };
        let wire = frame.encode();
        let (got, n) =
            read_frame_pooled(&mut wire.as_slice(), DEFAULT_MAX_FRAME, &pool, &mut scratch)
                .unwrap();
        assert_eq!(got, frame);
        assert_eq!(n, wire.len());
        // Recycle the decoded payload; the next identical frame must hit.
        match got {
            Frame::Tokens { payloads, .. } => {
                for p in payloads {
                    assert!(pool.recycle(p));
                }
            }
            _ => unreachable!(),
        }
        let (_, _) =
            read_frame_pooled(&mut wire.as_slice(), DEFAULT_MAX_FRAME, &pool, &mut scratch)
                .unwrap();
        let stats = pool.stats();
        assert_eq!(stats.hits, 1, "{stats:?}");
        assert_eq!(stats.misses, 1, "{stats:?}");
    }

    #[test]
    fn dishonest_token_count_is_rejected() {
        let mut body = vec![0x03];
        body.extend_from_slice(&7u32.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = Frame::decode(&body).unwrap_err();
        assert!(matches!(err, ProtocolError::BadPayload(_)), "{err}");
    }
}
