//! The streaming ingestion server: TCP front-end over the fleet executor.
//!
//! # Architecture
//!
//! ```text
//!        client                    server (std::net + threads)
//!   ┌──────────────┐   RTFT/1   ┌──────────┐
//!   │ Client::flush├───────────►│ reader   │── Flush ──► FleetExecutor
//!   └──────▲───────┘            │ thread   │             (EDF worker pool)
//!          │                    └──────────┘                   │
//!          │   Output / Fault / Stats  ◄── JobNotifier ────────┘
//!          └────────────────────────── (fires on job settle)
//! ```
//!
//! One acceptor thread polls a non-blocking listener; each connection gets
//! a blocking reader thread. Tokens buffer per stream until a `Flush`
//! turns the batch into one fault-tolerant fleet job (duplicated pair or
//! tri-modular voting, per the stream's redundancy). Admission is
//! **non-blocking**: a saturated fleet answers `Busy` and the batch stays
//! buffered server-side — backpressure, never token loss. When the job
//! settles, its [`JobNotifier`] pushes the selector's outputs, every fault
//! latch (with its detection latency), and a terminal `Stats` back through
//! the connection's shared writer.
//!
//! Shutdown is graceful: [`Server::begin_shutdown`] refuses new streams
//! with `Busy{shutting-down}`, [`Server::shutdown`] drains every admitted
//! job (notifiers still fire), then cancels the acceptor/readers via a
//! [`CancelToken`] and unblocks them by shutting the sockets down.

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rtft_apps::networks::App;
use rtft_core::{
    DuplicationConfig, FaultPlan, HeteroModel, HeteroSizingReport, HeteroStageReplica,
    JitterStageReplica, NJitterStageReplica, NModularModel, NSizingReport, PayloadGenerator,
};
use rtft_fleet::{
    Admission, FleetConfig, FleetExecutor, JobNotifier, JobRuntime, JobSpec, JobTemplate,
    RejectReason,
};
use rtft_kpn::threaded::CancelToken;
use rtft_kpn::{Bytes, Payload, PayloadPool};
use rtft_obs::{ClockDomain, Counter, EventRecord, EventSink, Histogram, MetricsRegistry};
use rtft_rtc::{PjdModel, TimeNs};
use rtft_tenant::{
    AttachError, TenantConfig, TenantError, TenantId, TenantManager, TenantReject, TenantReport,
    TenantState,
};
use rtft_wal::{Wal, WalConfig, WalRecord};

use crate::error::{EvictReason, ProtocolError, ServeError};
use crate::report::{ServeReport, StreamAccount};
use crate::wire::{
    hetero_stride, read_frame_pooled, site_kind, BusyReason, Frame, DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
};

/// Replica compute service time = producer period / this (matches the
/// chaos campaigns, so serve jobs inherit their timing envelope).
const SERVICE_DIVISOR: u64 = 2;

/// Acceptor poll interval while waiting for connections.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Poll interval while `Close` waits for a stream's in-flight flushes.
const DRAIN_POLL: Duration = Duration::from_millis(2);

/// Capacity of the server's lifecycle event ring.
const EVENT_CAPACITY: usize = 1024;

/// Which runtime a flush's fleet job executes under.
#[derive(Debug, Clone, Copy)]
pub enum ServeRuntime {
    /// Deterministic discrete-event simulation; the horizon is derived
    /// from the app's producer period and the batch size.
    DiscreteEvent,
    /// Real OS threads under wall-clock time.
    Threaded {
        /// Hard wall-clock deadline per flush run.
        deadline: Duration,
        /// Quiescence idle window (see `rtft_kpn::threaded`).
        quiescence_grace: Duration,
    },
}

/// A server-side fault injection: the `stream`-th stream opened on this
/// server (globally, zero-based) gets a permanent fail-stop fault in one
/// replica on every flush. The wire protocol deliberately has no
/// client-side fault frame — faults are an operator/test concern.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjection {
    /// Global open-order index of the target stream.
    pub stream: u32,
    /// Replica to fail-stop.
    pub replica: usize,
    /// Virtual/wall run time at which the replica halts.
    pub at: TimeNs,
}

/// Multi-tenant admission policy for a server.
///
/// With tenancy enabled, the `client` string of the `Hello` handshake
/// names the tenant every stream on that connection belongs to, and the
/// tenant's quotas / token rate / lifecycle gate admission *before* a
/// flush reaches the fleet. Without it (`ServerConfig::tenancy == None`)
/// the server behaves exactly as before tenancy existed.
#[derive(Debug, Clone)]
pub struct TenancyConfig {
    /// Supervisor shard count (hash-by-tenant-id; clamped to ≥ 1).
    pub shards: usize,
    /// Attach unknown `Hello` names on first sight with `default`. When
    /// `false`, a connection naming an unattached tenant is a protocol
    /// error — attach tenants up front via [`Server::attach_tenant`].
    pub auto_attach: bool,
    /// Policy for auto-attached (and recovery-re-attached) tenants.
    pub default: TenantConfig,
}

impl Default for TenancyConfig {
    fn default() -> Self {
        TenancyConfig {
            shards: 4,
            auto_attach: true,
            default: TenantConfig::default(),
        }
    }
}

/// Server sizing and policy.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fleet executor knobs. The serve default disables replacement
    /// (`max_replacements: 0`): a flush's *final* run is the faulty run,
    /// so the pushed outputs and detection latencies describe the fault
    /// the client streamed into — each flush rebuilds the network anyway.
    pub fleet: FleetConfig,
    /// Runtime for flush jobs.
    pub runtime: ServeRuntime,
    /// Maximum accepted frame length (tag + body bytes).
    pub max_frame: u32,
    /// Fault injections by global stream open-order.
    pub inject: Vec<FaultInjection>,
    /// Base seed for per-stream job seeds (token accounting and DES runs
    /// are reproducible per seed).
    pub seed: u64,
    /// Write-ahead log configuration. When set, every accepted `Tokens`
    /// batch is appended (group-committed) to the log before the server
    /// acknowledges it with a `Durable` frame, settled flushes log their
    /// output digests, and a restarting server replays the log: streams
    /// are rebuilt, each resumes at its last delivered sequence number,
    /// and the undelivered tail is resubmitted through the fleet.
    pub wal: Option<WalConfig>,
    /// Tenant lifecycle, quotas, and sharded supervision. `None` keeps
    /// the untenanted behavior (every stream under implicit tenant 0, no
    /// quotas).
    pub tenancy: Option<TenancyConfig>,
    /// Slow-writer deadline: once any byte of a frame has arrived, the
    /// whole frame must complete within this window or the connection is
    /// evicted (`stalled`) — the slow-loris guard. `None` disables it
    /// (readers block indefinitely, the pre-deadline behavior).
    pub read_timeout: Option<Duration>,
    /// Idle deadline: the maximum gap between frames while the
    /// connection has no in-flight flush. Beyond it the connection is
    /// evicted (`idle`). A client silently waiting for its own flush to
    /// settle is *not* idle — in-flight work resets the window. `None`
    /// disables the deadline.
    pub max_idle: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            fleet: FleetConfig {
                workers: 2,
                pending_capacity: 64,
                max_replacements: 0,
            },
            runtime: ServeRuntime::DiscreteEvent,
            max_frame: DEFAULT_MAX_FRAME,
            inject: Vec::new(),
            seed: 1,
            wal: None,
            tenancy: None,
            read_timeout: None,
            max_idle: None,
        }
    }
}

/// The analytic worst-case fault-observation window for a duplicated
/// stream of `app`: the [`DetectionBounds`](rtft_rtc::DetectionBounds)
/// permanent-timing latch bound plus one producer period of arrival grace
/// (an `AtTime` injection can land mid-period, before the replica touches
/// a token). Clients assert pushed `Fault` latencies against this.
pub fn detection_bound(app: App) -> TimeNs {
    let model = app.profile().model;
    let cfg = DuplicationConfig::from_model(model).expect("profile models are bounded");
    let model = app.profile().model;
    let bounds = cfg.sizing.detection_bounds(&model);
    bounds.permanent_timing() + model.producer.period + model.producer.jitter
}

/// The analytic worst-case fault-observation window for a sampled-checker
/// stream of `app` at stride `k`, with the same producer-period arrival
/// grace as [`detection_bound`]. Side `0` (the full-rate main) is covered
/// by the overflow and sampled-divergence detectors racing; side `1` (the
/// checker) only by sampled divergence, whose latency grows linearly in
/// `k`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn hetero_detection_bound(app: App, k: u64, replica: usize) -> TimeNs {
    let model = app.profile().model;
    let hmodel = HeteroModel::with_checker_jitter(
        model.producer,
        model.consumer,
        model.replica_out[0],
        model.replica_out[1].jitter,
        k,
    );
    let sizing = HeteroSizingReport::analyze(&hmodel).expect("profile models are bounded");
    let bounds = sizing.bounds(&hmodel);
    let latch = if replica == 0 {
        bounds.permanent_timing()
    } else {
        bounds.sampled_divergence
    };
    latch + model.producer.period + model.producer.jitter
}

/// One open stream's server-side state.
struct StreamState {
    id: u32,
    conn: u32,
    /// Tenant id the stream was admitted under (0 = untenanted server).
    tenant: u64,
    app: App,
    redundancy: u8,
    /// Tokens accepted but not yet admitted into a flush job. Shared
    /// `Arc<[u8]>` buffers from the connection's ingest pool: the same
    /// copy flows into the WAL record and the fleet job.
    buffered: Mutex<Vec<Bytes>>,
    tokens_in: AtomicU64,
    delivered: AtomicU64,
    /// Tokens refused at admission (quota / draining), never accepted.
    rejected: AtomicU64,
    faults: AtomicU64,
    busy: AtomicU64,
    /// Admitted flush jobs not yet settled.
    inflight: AtomicU64,
    closed: AtomicBool,
    /// The stream's connection was evicted for violating a read deadline.
    evicted: AtomicBool,
}

struct Shared {
    cfg: ServerConfig,
    fleet: FleetExecutor,
    /// The tenant directory, when tenancy is configured.
    tenants: Option<TenantManager>,
    /// The durable log, when configured.
    wal: Option<Wal>,
    /// Set by [`Server::hard_drop`]: appends stop reaching the log, so
    /// everything after the drop instant is lost exactly as in a crash.
    wal_frozen: AtomicBool,
    /// Streams rebuilt from the log at startup.
    recovered_streams: AtomicU64,
    /// Undelivered logged tokens resubmitted through the fleet at startup.
    replayed_tokens: AtomicU64,
    /// Torn-tail records dropped by WAL recovery at startup.
    wal_truncated_records: u64,
    /// Recycling arena for ingested token payloads: frames decode into
    /// pooled buffers, settled batches are parked back for reuse.
    payload_pool: PayloadPool,
    registry: MetricsRegistry,
    events: EventSink,
    epoch: Instant,
    cancel: CancelToken,
    /// `false` once shutdown begins: no new streams, flushes answer Busy.
    accepting: AtomicBool,
    next_stream: AtomicU32,
    streams: Mutex<HashMap<u32, Arc<StreamState>>>,
    /// Socket clones for forced unblock at shutdown.
    conns: Mutex<Vec<TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    c_connections: Counter,
    c_streams_opened: Counter,
    c_streams_closed: Counter,
    c_tokens_in: Counter,
    c_outputs: Counter,
    c_faults: Counter,
    c_busy: Counter,
    c_frames_in: Counter,
    c_frames_out: Counter,
    c_bytes_in: Counter,
    c_bytes_out: Counter,
    c_protocol_errors: Counter,
    c_evictions: Counter,
    h_frame_in: Histogram,
    h_frame_out: Histogram,
    h_flush_batch: Histogram,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The WAL to append to, unless the server was hard-dropped (a
    /// frozen log models the crash: later events never hit the disk).
    fn wal(&self) -> Option<&Wal> {
        if self.wal_frozen.load(Ordering::SeqCst) {
            None
        } else {
            self.wal.as_ref()
        }
    }

    fn event(&self, name: &'static str, node: Option<usize>, value: u64) {
        self.events.push(EventRecord {
            at_ns: self.now_ns(),
            clock: ClockDomain::Wall,
            name,
            node,
            channel: None,
            value,
        });
    }

    /// Writes one frame through a connection's shared writer, updating the
    /// outbound counters. Write errors mean the peer is gone; callers
    /// treat that as the end of the exchange.
    fn send(&self, writer: &Mutex<TcpStream>, frame: &Frame) -> Result<(), ServeError> {
        let mut w = writer.lock().unwrap();
        let n = crate::wire::write_frame(&mut *w, frame)?;
        self.c_frames_out.inc();
        self.c_bytes_out.add(n as u64);
        self.h_frame_out.record(n as u64);
        Ok(())
    }

    fn stats_frame(&self, st: &StreamState) -> Frame {
        let load = self.fleet.load();
        Frame::Stats {
            stream: st.id,
            tokens_in: st.tokens_in.load(Ordering::SeqCst),
            delivered: st.delivered.load(Ordering::SeqCst),
            faults: st.faults.load(Ordering::SeqCst),
            busy: st.busy.load(Ordering::SeqCst),
            queued: load.queued as u32,
            inflight: load.inflight as u32,
            outstanding: load.outstanding as u32,
        }
    }
}

/// A running streaming server. Dropping the handle does **not** stop the
/// server; call [`Server::shutdown`] for a graceful drain.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral loopback port), spawns
    /// the acceptor and the fleet, and returns the running server.
    ///
    /// With a WAL configured, startup first recovers the log: the torn
    /// tail (if any) is truncated, every logged stream is rebuilt at its
    /// last delivered sequence number, and undelivered token tails are
    /// resubmitted through the fleet before the listener opens.
    pub fn start(addr: impl ToSocketAddrs, cfg: ServerConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let mut wal = None;
        let mut wal_truncated_records = 0;
        let mut rebuilt: Vec<Arc<StreamState>> = Vec::new();
        let mut next_stream: u32 = 0;
        if let Some(wal_cfg) = cfg.wal.clone() {
            let (w, recovery) = Wal::open(wal_cfg)?;
            wal_truncated_records = recovery.truncated_records;
            rebuilt = rebuild_streams(&recovery.records);
            next_stream = rebuilt.iter().map(|st| st.id + 1).max().unwrap_or(0);
            wal = Some(w);
        }

        // Tenancy: build the sharded directory and re-attach every tenant
        // the recovered streams were logged under, with their original
        // ids, so admission and reports line up across the restart. The
        // WAL does not log tenant names; recovered tenants come back
        // under synthetic `recovered-{id}` names with the default policy.
        let tenants = cfg.tenancy.as_ref().map(|t| TenantManager::new(t.shards));
        if let (Some(mgr), Some(tcfg)) = (&tenants, &cfg.tenancy) {
            let mut seen = std::collections::BTreeSet::new();
            for st in &rebuilt {
                if st.tenant != 0 && seen.insert(st.tenant) {
                    let _ = mgr.attach_with_id(
                        TenantId(st.tenant),
                        &format!("recovered-{}", st.tenant),
                        tcfg.default,
                    );
                }
            }
        }

        let registry = MetricsRegistry::new();
        let shared = Arc::new(Shared {
            payload_pool: PayloadPool::with_metrics(&registry),
            fleet: FleetExecutor::new(cfg.fleet.clone()),
            tenants,
            cfg,
            wal,
            wal_frozen: AtomicBool::new(false),
            recovered_streams: AtomicU64::new(rebuilt.len() as u64),
            replayed_tokens: AtomicU64::new(0),
            wal_truncated_records,
            events: EventSink::new(EVENT_CAPACITY),
            epoch: Instant::now(),
            cancel: CancelToken::new(),
            accepting: AtomicBool::new(true),
            next_stream: AtomicU32::new(next_stream),
            streams: Mutex::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            c_connections: registry.counter("serve.connections"),
            c_streams_opened: registry.counter("serve.streams.opened"),
            c_streams_closed: registry.counter("serve.streams.closed"),
            c_tokens_in: registry.counter("serve.tokens.in"),
            c_outputs: registry.counter("serve.outputs"),
            c_faults: registry.counter("serve.faults"),
            c_busy: registry.counter("serve.busy"),
            c_frames_in: registry.counter("serve.frames.in"),
            c_frames_out: registry.counter("serve.frames.out"),
            c_bytes_in: registry.counter("serve.bytes.in"),
            c_bytes_out: registry.counter("serve.bytes.out"),
            c_protocol_errors: registry.counter("serve.protocol.errors"),
            c_evictions: registry.counter("serve.evictions"),
            h_frame_in: registry.histogram("serve.frame.bytes.in"),
            h_frame_out: registry.histogram("serve.frame.bytes.out"),
            h_flush_batch: registry.histogram("serve.flush.batch"),
            registry,
        });

        // Re-home the recovered streams and resubmit their undelivered
        // tails: each tail becomes an ordinary flush job whose settle
        // logs its outputs back into the WAL. No client is attached
        // (conn == u32::MAX); outputs are durable, not pushed.
        for st in rebuilt {
            shared.event(
                "serve.stream.recovered",
                Some(st.id as usize),
                st.tokens_in.load(Ordering::SeqCst),
            );
            shared
                .streams
                .lock()
                .unwrap()
                .insert(st.id, Arc::clone(&st));
            // Move the tail out instead of cloning it; a rejected tail is
            // restored below, so refusal still loses nothing.
            let batch: Vec<Bytes> = std::mem::take(&mut *st.buffered.lock().unwrap());
            if batch.is_empty() {
                continue;
            }
            let n = batch.len() as u64;
            let spec = build_spec(&shared.cfg, st.id, st.app, st.redundancy, &batch);
            let notify = recovery_notifier(&shared, &st);
            if let Admission::Admitted(_) = shared.fleet.submit_with(spec, Some(notify)) {
                st.inflight.fetch_add(1, Ordering::SeqCst);
                if let Some(mgr) = &shared.tenants {
                    // Recovery resubmission bypasses quota and rate
                    // checks — the tokens were already admitted (and made
                    // durable) in the previous life.
                    mgr.admit_replay(TenantId(st.tenant));
                }
                shared.replayed_tokens.fetch_add(n, Ordering::SeqCst);
                shared.event("serve.stream.replayed", Some(st.id as usize), n);
            } else {
                // A rejected tail stays buffered and is reported
                // undelivered.
                restore_front(&st, batch);
            }
        }

        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(accept_shared, listener))
            .map_err(ServeError::Io)?;

        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            addr,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fleet executor behind the server (live load inspection).
    pub fn fleet(&self) -> &FleetExecutor {
        &self.shared.fleet
    }

    /// The server's metrics registry (connection/stream/frame counters,
    /// frame-size histograms).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.shared.registry
    }

    /// The tenant directory, when the server runs with
    /// [`ServerConfig::tenancy`].
    pub fn tenants(&self) -> Option<&TenantManager> {
        self.shared.tenants.as_ref()
    }

    /// Attaches a tenant ahead of its first connection (required for
    /// every tenant when [`TenancyConfig::auto_attach`] is off).
    ///
    /// # Panics
    ///
    /// If the server was started without [`ServerConfig::tenancy`].
    pub fn attach_tenant(&self, name: &str, config: TenantConfig) -> Result<TenantId, AttachError> {
        self.shared
            .tenants
            .as_ref()
            .expect("tenancy not enabled")
            .attach(name, config)
    }

    /// Drains and detaches a tenant at runtime: admission refuses with
    /// `Busy{tenant-draining}` from this instant, in-flight jobs run to
    /// completion, and the call returns the tenant's final report once
    /// the drain empties. Every other tenant is untouched.
    ///
    /// Returns [`TenantError::Unknown`] when the id is not attached (or
    /// tenancy is disabled).
    pub fn detach_tenant(&self, id: TenantId) -> Result<TenantReport, TenantError> {
        let mgr = self
            .shared
            .tenants
            .as_ref()
            .ok_or(TenantError::Unknown(id))?;
        mgr.begin_detach(id)?;
        loop {
            match mgr.finish_detach(id) {
                Ok(()) => break,
                Err(TenantError::StillBusy { .. }) => std::thread::sleep(DRAIN_POLL),
                Err(e) => return Err(e),
            }
        }
        mgr.tenant_report(id).ok_or(TenantError::Unknown(id))
    }

    /// The server lifecycle event log as JSONL.
    pub fn events_jsonl(&self) -> String {
        rtft_obs::export::events_to_jsonl(&self.shared.events)
    }

    /// Stops accepting new streams and new flushes: `OpenStream` and
    /// `Flush` answer `Busy{shutting-down}` from here on. Already-admitted
    /// jobs keep running and their outputs keep flowing.
    pub fn begin_shutdown(&self) {
        self.shared.accepting.store(false, Ordering::SeqCst);
        self.shared.event("serve.shutdown.begin", None, 0);
    }

    /// Graceful drain: refuses new work, waits for every admitted flush to
    /// settle (all notifiers fire — every accepted token is delivered or
    /// reported), then stops the acceptor and readers and returns the
    /// final report. The serve registry is folded into the fleet
    /// supervisor's registry, so the report's fleet view carries both.
    pub fn shutdown(mut self) -> ServeReport {
        self.begin_shutdown();
        // Drain: join a clone so the supervisor stays reachable after.
        let fleet = self.shared.fleet.clone().join();
        if let Some(wal) = self.shared.wal() {
            let _ = wal.sync();
            self.shared.registry.absorb(wal.registry());
        }
        self.shared
            .fleet
            .supervisor()
            .registry()
            .absorb(&self.shared.registry);
        self.shared.cancel.cancel();
        for sock in self.shared.conns.lock().unwrap().drain(..) {
            let _ = sock.shutdown(Shutdown::Both);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handlers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.shared.handlers.lock().unwrap());
        for h in handlers {
            let _ = h.join();
        }
        self.shared.event("serve.shutdown.done", None, 0);

        let mut streams: Vec<StreamAccount> = {
            let guard = self.shared.streams.lock().unwrap();
            guard
                .values()
                .map(|st| {
                    let tokens_in = st.tokens_in.load(Ordering::SeqCst);
                    let delivered = st.delivered.load(Ordering::SeqCst);
                    StreamAccount {
                        id: st.id,
                        tenant: st.tenant,
                        app: st.app.label(),
                        redundancy: st.redundancy,
                        tokens_in,
                        delivered,
                        undelivered: tokens_in.saturating_sub(delivered),
                        rejected: st.rejected.load(Ordering::SeqCst),
                        faults: st.faults.load(Ordering::SeqCst),
                        busy: st.busy.load(Ordering::SeqCst),
                        closed: st.closed.load(Ordering::SeqCst),
                        evicted: st.evicted.load(Ordering::SeqCst),
                    }
                })
                .collect()
        };
        streams.sort_by_key(|s| s.id);
        ServeReport {
            streams,
            connections: self.shared.c_connections.get(),
            frames_in: self.shared.c_frames_in.get(),
            frames_out: self.shared.c_frames_out.get(),
            bytes_in: self.shared.c_bytes_in.get(),
            bytes_out: self.shared.c_bytes_out.get(),
            recovered_streams: self.shared.recovered_streams.load(Ordering::SeqCst),
            replayed_tokens: self.shared.replayed_tokens.load(Ordering::SeqCst),
            wal_truncated_records: self.shared.wal_truncated_records,
            evictions: self.shared.c_evictions.get(),
            tenants: self.shared.tenants.as_ref().map(|m| m.report()),
            fleet,
        }
    }

    /// Crash simulation: kill the server **without** draining. The WAL is
    /// frozen first — anything not yet appended when the drop begins
    /// never reaches the disk, exactly as if the process had died — then
    /// the sockets are torn down and the threads joined. No report; the
    /// truth now lives in the log, and a subsequent [`Server::start`] on
    /// the same WAL directory recovers it.
    pub fn hard_drop(mut self) {
        self.shared.wal_frozen.store(true, Ordering::SeqCst);
        self.shared.accepting.store(false, Ordering::SeqCst);
        self.shared.event("serve.hard_drop", None, 0);
        self.shared.cancel.cancel();
        for sock in self.shared.conns.lock().unwrap().drain(..) {
            let _ = sock.shutdown(Shutdown::Both);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handlers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.shared.handlers.lock().unwrap());
        for h in handlers {
            let _ = h.join();
        }
    }
}

/// Folds the recovered log into per-stream state: every logged token
/// counts as accepted, `delivered` resumes at the highest logged output
/// sequence, and the undelivered tail goes back into the flush buffer.
fn rebuild_streams(records: &[(u64, WalRecord)]) -> Vec<Arc<StreamState>> {
    struct Rebuilt {
        tenant: u64,
        app: App,
        redundancy: u8,
        payloads: Vec<Bytes>,
        delivered: u64,
        closed: bool,
    }
    let mut map: std::collections::BTreeMap<u32, Rebuilt> = std::collections::BTreeMap::new();
    for (_, rec) in records {
        match rec {
            WalRecord::StreamOpen {
                stream,
                tenant,
                app,
                redundancy,
            } => {
                let app = *App::ALL.get(*app as usize).unwrap_or(&App::ALL[0]);
                map.insert(
                    *stream,
                    Rebuilt {
                        tenant: *tenant,
                        app,
                        redundancy: *redundancy,
                        payloads: Vec::new(),
                        delivered: 0,
                        closed: false,
                    },
                );
            }
            WalRecord::Tokens { stream, payloads } => {
                if let Some(r) = map.get_mut(stream) {
                    r.payloads.extend(payloads.iter().cloned());
                }
            }
            WalRecord::Outputs {
                stream,
                first_seq,
                digests,
            } => {
                if let Some(r) = map.get_mut(stream) {
                    r.delivered = r.delivered.max(first_seq + digests.len() as u64);
                }
            }
            WalRecord::StreamClose { stream } => {
                if let Some(r) = map.get_mut(stream) {
                    r.closed = true;
                }
            }
        }
    }
    map.into_iter()
        .map(|(id, r)| {
            let tokens_in = r.payloads.len() as u64;
            let delivered = r.delivered.min(tokens_in);
            let tail = r.payloads[delivered as usize..].to_vec();
            Arc::new(StreamState {
                id,
                conn: u32::MAX,
                tenant: r.tenant,
                app: r.app,
                redundancy: r.redundancy,
                buffered: Mutex::new(tail),
                tokens_in: AtomicU64::new(tokens_in),
                delivered: AtomicU64::new(delivered),
                rejected: AtomicU64::new(0),
                faults: AtomicU64::new(0),
                busy: AtomicU64::new(0),
                inflight: AtomicU64::new(0),
                closed: AtomicBool::new(r.closed),
                evicted: AtomicBool::new(false),
            })
        })
        .collect()
}

/// The notifier for a replayed recovery job: like [`settle_notifier`] but
/// with no client connection — delivered outputs are logged to the WAL
/// (so the *next* recovery resumes past them) and counted, not pushed.
fn recovery_notifier(shared: &Arc<Shared>, st: &Arc<StreamState>) -> JobNotifier {
    let shared = Arc::clone(shared);
    let st = Arc::clone(st);
    Arc::new(move |record, result| {
        if let Some(result) = result {
            let digests: Vec<u64> = result.arrival_log.iter().map(|&(_, d)| d).collect();
            let prev = st
                .delivered
                .fetch_add(digests.len() as u64, Ordering::SeqCst);
            if let Some(wal) = shared.wal() {
                let _ = wal.append(&WalRecord::Outputs {
                    stream: st.id,
                    first_seq: prev,
                    digests: digests.clone(),
                });
            }
            shared.c_outputs.add(digests.len() as u64);
            for _ in &record.faulty_replicas {
                st.faults.fetch_add(1, Ordering::SeqCst);
                shared.c_faults.inc();
            }
        }
        if let Some(mgr) = &shared.tenants {
            mgr.on_settle(TenantId(st.tenant), record, result);
        }
        st.inflight.fetch_sub(1, Ordering::SeqCst);
    })
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    let mut next_conn: u32 = 0;
    loop {
        if shared.cancel.is_cancelled() {
            return;
        }
        match listener.accept() {
            Ok((sock, _)) => {
                let conn_id = next_conn;
                next_conn += 1;
                shared.c_connections.inc();
                shared.event("serve.conn.opened", Some(conn_id as usize), 0);
                if let Ok(clone) = sock.try_clone() {
                    shared.conns.lock().unwrap().push(clone);
                }
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name(format!("serve-conn-{conn_id}"))
                    .spawn(move || {
                        handle_connection(&conn_shared, sock, conn_id);
                        conn_shared.event("serve.conn.closed", Some(conn_id as usize), 0);
                    });
                if let Ok(handle) = handle {
                    shared.handlers.lock().unwrap().push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => return,
        }
    }
}

/// Runs one connection's read loop to completion. Any protocol violation
/// or I/O failure ends the connection; buffered stream state survives (it
/// is reported as undelivered at shutdown).
fn handle_connection(shared: &Arc<Shared>, sock: TcpStream, conn_id: u32) {
    let mut reader = match sock.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    if shared.cfg.read_timeout.is_some() || shared.cfg.max_idle.is_some() {
        // The socket timeout is only the *poll* granularity of the
        // deadline reader — the actual deadlines are enforced against
        // monotonic clocks in `read_exact_deadline`.
        let _ = reader.set_read_timeout(Some(deadline_poll(&shared.cfg)));
    }
    let writer = Arc::new(Mutex::new(sock));
    match drive_connection(shared, &mut reader, &writer, conn_id) {
        Ok(()) | Err(ServeError::ConnectionClosed) => {}
        Err(ServeError::Protocol(_)) => {
            shared.c_protocol_errors.inc();
            shared.event("serve.protocol.error", Some(conn_id as usize), 0);
        }
        Err(ServeError::Evicted(reason)) => evict_connection(shared, conn_id, reason),
        Err(_) => {}
    }
    // Actively shut the connection down: the clone registered for
    // shutdown-time unblocking would otherwise keep the TCP stream open
    // (and the peer blocked) after this handler exits.
    let _ = writer.lock().unwrap().shutdown(Shutdown::Both);
}

fn drive_connection(
    shared: &Arc<Shared>,
    reader: &mut TcpStream,
    writer: &Arc<Mutex<TcpStream>>,
    conn_id: u32,
) -> Result<(), ServeError> {
    // First frame must be a version-matched Hello. Under tenancy, its
    // `client` string names the tenant every stream on this connection
    // belongs to.
    // Reused across every frame on the connection: the wire body lands
    // in `scratch` (grown once to the largest frame seen) and token
    // payloads decode into pooled buffers.
    let mut scratch: Vec<u8> = Vec::new();
    let tenant: Option<TenantId> = match next_frame(shared, reader, conn_id, &mut scratch)? {
        Frame::Hello { version, client } if version == PROTOCOL_VERSION => {
            let tenant = match &shared.tenants {
                Some(mgr) => Some(resolve_tenant(shared, mgr, &client)?),
                None => None,
            };
            shared.send(writer, &Frame::Accepted { id: conn_id })?;
            tenant
        }
        Frame::Hello { version, .. } => {
            return Err(ProtocolError::VersionMismatch {
                offered: version,
                supported: PROTOCOL_VERSION,
            }
            .into());
        }
        other => {
            return Err(ProtocolError::UnexpectedFrame {
                expected: "Hello",
                got: other.name(),
            }
            .into());
        }
    };

    loop {
        let frame = match next_frame(shared, reader, conn_id, &mut scratch) {
            Ok(f) => f,
            Err(ServeError::ConnectionClosed) => return Ok(()),
            Err(e) => return Err(e),
        };
        match frame {
            Frame::OpenStream { app, redundancy } => {
                handle_open(shared, writer, conn_id, tenant, app, redundancy)?
            }
            Frame::Tokens { stream, payloads } => {
                let st = lookup(shared, conn_id, stream)?;
                handle_tokens(shared, writer, &st, payloads)?;
            }
            Frame::Flush { stream } => {
                let st = lookup(shared, conn_id, stream)?;
                handle_flush(shared, writer, &st)?;
            }
            Frame::Close { stream } => {
                let st = lookup(shared, conn_id, stream)?;
                handle_close(shared, writer, &st)?;
            }
            other => {
                return Err(ProtocolError::UnexpectedFrame {
                    expected: "OpenStream|Tokens|Flush|Close",
                    got: other.name(),
                }
                .into());
            }
        }
    }
}

fn next_frame(
    shared: &Shared,
    reader: &mut TcpStream,
    conn_id: u32,
    scratch: &mut Vec<u8>,
) -> Result<Frame, ServeError> {
    let deadlines = shared.cfg.read_timeout.is_some() || shared.cfg.max_idle.is_some();
    let (frame, n) = if deadlines {
        read_frame_deadline(shared, reader, conn_id, scratch)?
    } else {
        read_frame_pooled(reader, shared.cfg.max_frame, &shared.payload_pool, scratch)?
    };
    shared.c_frames_in.inc();
    shared.c_bytes_in.add(n as u64);
    shared.h_frame_in.record(n as u64);
    Ok(frame)
}

/// Socket poll interval for deadline-enforced reads: a fraction of the
/// tightest configured deadline, clamped so eviction latency stays small
/// without spinning.
fn deadline_poll(cfg: &ServerConfig) -> Duration {
    let tightest = match (cfg.read_timeout, cfg.max_idle) {
        (Some(a), Some(b)) => a.min(b),
        (Some(a), None) | (None, Some(a)) => a,
        (None, None) => Duration::from_millis(50),
    };
    (tightest / 4).clamp(Duration::from_millis(2), Duration::from_millis(50))
}

/// `true` while any stream of `conn_id` has an admitted, unsettled flush
/// — the connection is waiting on the server, not the other way round.
fn conn_has_inflight(shared: &Shared, conn_id: u32) -> bool {
    shared
        .streams
        .lock()
        .unwrap()
        .values()
        .any(|st| st.conn == conn_id && st.inflight.load(Ordering::SeqCst) > 0)
}

/// Reads exactly `buf.len()` bytes under the connection's read deadlines.
///
/// `frame_start` is the instant the current frame's first byte arrived
/// (`None` while waiting between frames). The idle deadline applies only
/// before that first byte; once a frame has started, the *whole frame*
/// must complete within `read_timeout` regardless of inter-byte pacing —
/// a slow-loris writer trickling one byte per poll cannot reset it.
///
/// Hand-rolled instead of `read_exact` because a socket timeout makes
/// `read_exact` fail mid-frame and discard the bytes it already consumed;
/// this loop keeps its position across `WouldBlock`/`TimedOut` polls.
fn read_exact_deadline(
    shared: &Shared,
    sock: &mut TcpStream,
    conn_id: u32,
    buf: &mut [u8],
    frame_start: &mut Option<Instant>,
    idle_since: &mut Instant,
) -> Result<(), ServeError> {
    let mut got = 0usize;
    while got < buf.len() {
        if shared.cancel.is_cancelled() {
            return Err(ServeError::ConnectionClosed);
        }
        match sock.read(&mut buf[got..]) {
            Ok(0) => return Err(ServeError::ConnectionClosed),
            Ok(n) => {
                got += n;
                frame_start.get_or_insert_with(Instant::now);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                match (*frame_start, shared.cfg.read_timeout) {
                    (Some(start), Some(limit)) if start.elapsed() >= limit => {
                        return Err(ServeError::Evicted(EvictReason::Stalled));
                    }
                    _ => {}
                }
                if frame_start.is_none() {
                    if let Some(limit) = shared.cfg.max_idle {
                        if conn_has_inflight(shared, conn_id) {
                            // A client silently waiting for its own flush
                            // to settle is not idle; restart the window.
                            *idle_since = Instant::now();
                        } else if idle_since.elapsed() >= limit {
                            return Err(ServeError::Evicted(EvictReason::Idle));
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// [`read_frame`] with [`ServerConfig::read_timeout`] /
/// [`ServerConfig::max_idle`] enforcement (mirrors its grammar checks).
fn read_frame_deadline(
    shared: &Shared,
    sock: &mut TcpStream,
    conn_id: u32,
    scratch: &mut Vec<u8>,
) -> Result<(Frame, usize), ServeError> {
    let mut idle_since = Instant::now();
    let mut frame_start: Option<Instant> = None;
    let mut len_buf = [0u8; 4];
    read_exact_deadline(
        shared,
        sock,
        conn_id,
        &mut len_buf,
        &mut frame_start,
        &mut idle_since,
    )?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(ProtocolError::BadPayload("zero-length frame").into());
    }
    if len > shared.cfg.max_frame {
        return Err(ProtocolError::Oversized {
            len,
            max: shared.cfg.max_frame,
        }
        .into());
    }
    scratch.resize(len as usize, 0);
    read_exact_deadline(
        shared,
        sock,
        conn_id,
        scratch,
        &mut frame_start,
        &mut idle_since,
    )?;
    Ok((
        Frame::decode_pooled(scratch, &shared.payload_pool)?,
        4 + len as usize,
    ))
}

/// Closes the books on a connection the server is ejecting for a read
/// deadline violation. Lossless by construction: evicted streams keep
/// every accepted token (reported `undelivered` at shutdown) and only
/// the tenant's queue quota for still-buffered tokens is released — they
/// will never flush, exactly as in [`handle_close`].
fn evict_connection(shared: &Arc<Shared>, conn_id: u32, reason: EvictReason) {
    shared.c_evictions.inc();
    shared
        .registry
        .counter_named(format!("serve.evictions.{}", reason.label()))
        .inc();
    shared.event(
        match reason {
            EvictReason::Idle => "serve.conn.evicted.idle",
            EvictReason::Stalled => "serve.conn.evicted.stalled",
        },
        Some(conn_id as usize),
        0,
    );
    let streams: Vec<Arc<StreamState>> = shared
        .streams
        .lock()
        .unwrap()
        .values()
        .filter(|st| st.conn == conn_id && !st.closed.load(Ordering::SeqCst))
        .map(Arc::clone)
        .collect();
    for st in streams {
        st.evicted.store(true, Ordering::SeqCst);
        shared.event(
            "serve.stream.evicted",
            Some(st.id as usize),
            st.tokens_in.load(Ordering::SeqCst),
        );
        if let Some(mgr) = &shared.tenants {
            let leftover = st.buffered.lock().unwrap().len() as u64;
            mgr.release_buffered(TenantId(st.tenant), leftover);
        }
    }
}

/// Maps a `Hello` client name onto a tenant id: the attached tenant of
/// that name, or a fresh auto-attached one when policy allows.
fn resolve_tenant(
    shared: &Shared,
    mgr: &TenantManager,
    client: &str,
) -> Result<TenantId, ServeError> {
    if let Some(id) = mgr.resolve(client) {
        return Ok(id);
    }
    let tcfg = shared
        .cfg
        .tenancy
        .as_ref()
        .expect("a manager implies a tenancy config");
    if !tcfg.auto_attach {
        return Err(ProtocolError::BadPayload("unknown tenant").into());
    }
    match mgr.attach(client, tcfg.default) {
        Ok(id) => Ok(id),
        // Two connections raced the first attach of this name: one won,
        // the other adopts the winner's tenant.
        Err(AttachError::NameTaken(id)) | Err(AttachError::IdTaken(id)) => Ok(id),
    }
}

fn lookup(shared: &Shared, conn_id: u32, stream: u32) -> Result<Arc<StreamState>, ServeError> {
    let guard = shared.streams.lock().unwrap();
    match guard.get(&stream) {
        Some(st) if st.conn == conn_id => Ok(Arc::clone(st)),
        Some(_) => Err(ProtocolError::BadPayload("stream belongs to another connection").into()),
        None => Err(ProtocolError::BadPayload("unknown stream id").into()),
    }
}

fn handle_open(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    conn_id: u32,
    tenant: Option<TenantId>,
    app: u8,
    redundancy: u8,
) -> Result<(), ServeError> {
    if !shared.accepting.load(Ordering::SeqCst) {
        let load = shared.fleet.load();
        shared.c_busy.inc();
        shared.send(
            writer,
            &Frame::Busy {
                stream: u32::MAX,
                reason: BusyReason::ShuttingDown,
                pending: load.outstanding as u32,
                capacity: load.capacity as u32,
            },
        )?;
        return Ok(());
    }
    // A tenant that began draining after the handshake refuses new
    // streams — retryable (the name can re-attach), so Busy, not error.
    if let (Some(mgr), Some(tid)) = (&shared.tenants, tenant) {
        let active = mgr
            .get(tid)
            .is_some_and(|t| t.state() == TenantState::Active);
        if !active {
            shared.c_busy.inc();
            shared.send(
                writer,
                &Frame::Busy {
                    stream: u32::MAX,
                    reason: BusyReason::TenantDraining,
                    pending: 0,
                    capacity: 0,
                },
            )?;
            return Ok(());
        }
    }
    let app = *App::ALL
        .get(app as usize)
        .ok_or(ProtocolError::BadPayload("app index out of range"))?;
    if !(redundancy == 2 || redundancy == 3 || hetero_stride(redundancy).is_some()) {
        return Err(
            ProtocolError::BadPayload("redundancy must be 2, 3, or a hetero stride byte").into(),
        );
    }
    let id = shared.next_stream.fetch_add(1, Ordering::SeqCst);
    let tenant_id = tenant.map_or(0, |t| t.0);
    let st = Arc::new(StreamState {
        id,
        conn: conn_id,
        tenant: tenant_id,
        app,
        redundancy,
        buffered: Mutex::new(Vec::new()),
        tokens_in: AtomicU64::new(0),
        delivered: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        faults: AtomicU64::new(0),
        busy: AtomicU64::new(0),
        inflight: AtomicU64::new(0),
        closed: AtomicBool::new(false),
        evicted: AtomicBool::new(false),
    });
    // Log the open before acknowledging it, so a crash right after the
    // client saw `Accepted` still recovers the stream's existence.
    if let Some(wal) = shared.wal() {
        let app_index = App::ALL.iter().position(|a| *a == app).unwrap_or(0) as u8;
        wal.append(&WalRecord::StreamOpen {
            stream: id,
            tenant: tenant_id,
            app: app_index,
            redundancy,
        })?;
    }
    if let (Some(mgr), Some(tid)) = (&shared.tenants, tenant) {
        mgr.on_stream_opened(tid, id as u64);
    }
    shared.streams.lock().unwrap().insert(id, st);
    shared.c_streams_opened.inc();
    shared.event("serve.stream.opened", Some(id as usize), redundancy as u64);
    shared.send(writer, &Frame::Accepted { id })
}

/// Puts a taken-but-refused batch back at the *front* of the stream's
/// buffer: tokens that raced in while the submission was being refused
/// arrived later and must stay behind it. Cheap — the entries are
/// `Arc<[u8]>` handles, no payload bytes move.
fn restore_front(st: &StreamState, batch: Vec<Bytes>) {
    let mut buf = st.buffered.lock().unwrap();
    let tail = std::mem::replace(&mut *buf, batch);
    buf.extend(tail);
}

fn handle_tokens(
    shared: &Shared,
    writer: &Arc<Mutex<TcpStream>>,
    st: &StreamState,
    payloads: Vec<Bytes>,
) -> Result<(), ServeError> {
    let n = payloads.len() as u64;
    // Tenancy gates acceptance *before* anything is billed or buffered:
    // a refused batch was never accepted — the client still holds it, it
    // is absent from `tokens_in`, and it counts under `rejected`.
    if let Some(mgr) = &shared.tenants {
        if let Err(reject) = mgr.admit_tokens(TenantId(st.tenant), n) {
            st.rejected.fetch_add(n, Ordering::SeqCst);
            return refuse(shared, writer, st, reject);
        }
    }
    st.tokens_in.fetch_add(n, Ordering::SeqCst);
    shared.c_tokens_in.add(n);
    shared
        .registry
        .counter_named(format!("serve.app.{}.tokens", st.app.label()))
        .add(n);
    if let Some(wal) = shared.wal() {
        // Log before buffering: a batch only becomes flushable once it
        // is durable, so an Outputs record can never reference tokens
        // the log does not hold. The group-committed append returning is
        // the durability point the `Durable` ack reports. The record
        // borrows the same payload buffers the stream then buffers —
        // nothing is cloned on the way to the log.
        let rec = WalRecord::Tokens {
            stream: st.id,
            payloads,
        };
        let seq = wal.append(&rec)?;
        let WalRecord::Tokens { payloads, .. } = rec else {
            unreachable!("rec constructed as Tokens above");
        };
        st.buffered.lock().unwrap().extend(payloads);
        shared.send(
            writer,
            &Frame::Durable {
                stream: st.id,
                tokens: n as u32,
                seq,
            },
        )?;
    } else {
        st.buffered.lock().unwrap().extend(payloads);
    }
    Ok(())
}

fn handle_flush(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    st: &Arc<StreamState>,
) -> Result<(), ServeError> {
    // Move the batch out instead of cloning it under the lock; every
    // refusal path below restores it, so backpressure still loses
    // nothing. Tokens that race in while the submission is in flight
    // append to the (now empty) buffer and sort after the batch.
    let batch: Vec<Bytes> = std::mem::take(&mut *st.buffered.lock().unwrap());
    if batch.is_empty() {
        return shared.send(writer, &shared.stats_frame(st));
    }
    let n = batch.len() as u64;
    if !shared.accepting.load(Ordering::SeqCst) {
        restore_front(st, batch);
        return refuse(shared, writer, st, RejectReason::ShuttingDown.into());
    }
    // Tenant admission (lifecycle, in-flight cap, token rate) runs before
    // the executor ever sees the job. A refusal is lossless: the batch
    // goes back to the buffer and nothing was billed.
    if let Some(mgr) = &shared.tenants {
        if let Err(reject) = mgr.admit_flush(TenantId(st.tenant), n, shared.now_ns()) {
            restore_front(st, batch);
            return refuse(shared, writer, st, reject);
        }
    }
    let spec = build_spec(&shared.cfg, st.id, st.app, st.redundancy, &batch);
    // The settle notifier owns the batch: on settle the buffers are
    // parked back into the payload pool for the next ingest to reuse.
    let batch_slot = Arc::new(Mutex::new(batch));
    let notify = settle_notifier(shared, writer, st, Arc::clone(&batch_slot));
    match shared.fleet.submit_with(spec, Some(notify)) {
        Admission::Admitted(_) => {
            st.inflight.fetch_add(1, Ordering::SeqCst);
            shared.h_flush_batch.record(n);
            shared.event("serve.stream.flushed", Some(st.id as usize), n);
            Ok(())
        }
        Admission::Rejected(reason) => {
            // Give the tenant back its in-flight slot, buffered tokens,
            // and rate tokens: executor backpressure must not consume
            // tenant budget. The notifier never ran, so the batch is
            // still in its slot — reclaim and restore it.
            restore_front(st, std::mem::take(&mut *batch_slot.lock().unwrap()));
            if let Some(mgr) = &shared.tenants {
                mgr.cancel_flush(TenantId(st.tenant), n);
            }
            refuse(shared, writer, st, reason.into())
        }
    }
}

/// Answers an admission refusal with an explicit `Busy` frame —
/// backpressure, not loss: whatever the client already streamed stays
/// buffered, and a refused batch stays in the client's hands.
///
/// The mapping onto the wire vocabulary is 1:1 and lossless; the
/// `pending` / `capacity` pair is reason-scoped (see [`crate::wire`]).
fn refuse(
    shared: &Shared,
    writer: &Arc<Mutex<TcpStream>>,
    st: &StreamState,
    reason: TenantReject,
) -> Result<(), ServeError> {
    st.busy.fetch_add(1, Ordering::SeqCst);
    shared.c_busy.inc();
    shared.event("serve.stream.busy", Some(st.id as usize), 0);
    let (reason, pending, capacity) = match reason {
        TenantReject::Fleet(RejectReason::QueueFull { pending, capacity }) => {
            (BusyReason::QueueFull, pending as u32, capacity as u32)
        }
        TenantReject::Fleet(RejectReason::ShuttingDown) => {
            let load = shared.fleet.load();
            (
                BusyReason::ShuttingDown,
                load.outstanding as u32,
                load.capacity as u32,
            )
        }
        TenantReject::Fleet(RejectReason::QuotaExceeded { used, quota }) => (
            BusyReason::QuotaExceeded,
            used.min(u32::MAX as u64) as u32,
            quota.min(u32::MAX as u64) as u32,
        ),
        TenantReject::Fleet(RejectReason::RateLimited { retry_after_ns }) => (
            BusyReason::RateLimited,
            retry_after_ns.div_ceil(1_000_000).min(u32::MAX as u64) as u32,
            0,
        ),
        TenantReject::Draining => (BusyReason::TenantDraining, 0, 0),
    };
    shared.send(
        writer,
        &Frame::Busy {
            stream: st.id,
            reason,
            pending,
            capacity,
        },
    )
}

/// The notifier a flush job settles through: pushes outputs, fault
/// latches (with detection latency where the health model knows the
/// injection instant), and the terminal `Stats`. Runs on a pool worker
/// *before* the job's outstanding slot is released, so a fleet drain
/// implies every frame below was written.
fn settle_notifier(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    st: &Arc<StreamState>,
    batch_slot: Arc<Mutex<Vec<Bytes>>>,
) -> JobNotifier {
    let shared = Arc::clone(shared);
    let writer = Arc::clone(writer);
    let st = Arc::clone(st);
    Arc::new(move |record, result| {
        // The flush batch is done with: park the buffers for reuse by
        // the next ingest. (The job's spec may still hold clones for a
        // moment; `park` defers reclamation until they drop.)
        for b in batch_slot.lock().unwrap().drain(..) {
            shared.payload_pool.park(b);
        }
        if let Some(result) = result {
            // Log the delivered digests (with their cumulative position)
            // before pushing them: the Output frames are the client's
            // acknowledgement, and recovery must never resume past a
            // token the log does not show delivered.
            let prev = st
                .delivered
                .fetch_add(result.arrival_log.len() as u64, Ordering::SeqCst);
            if let Some(wal) = shared.wal() {
                let digests: Vec<u64> = result.arrival_log.iter().map(|&(_, d)| d).collect();
                let _ = wal.append(&WalRecord::Outputs {
                    stream: st.id,
                    first_seq: prev,
                    digests,
                });
            }
            for (seq, &(at_ns, digest)) in result.arrival_log.iter().enumerate() {
                let _ = shared.send(
                    &writer,
                    &Frame::Output {
                        stream: st.id,
                        seq: seq as u64,
                        at_ns,
                        digest,
                    },
                );
            }
            shared.c_outputs.add(result.arrival_log.len() as u64);
            for &replica in &record.faulty_replicas {
                let (kind, latency) = result
                    .health
                    .as_ref()
                    .and_then(|h| h.replica(replica))
                    .map(|rh| {
                        let latency = match (rh.first_detected_at_ns, rh.fault_injected_at_ns) {
                            (Some(d), Some(i)) => d.saturating_sub(i),
                            _ => 0,
                        };
                        (site_kind(rh.first_site), latency)
                    })
                    .unwrap_or((site_kind(None), 0));
                st.faults.fetch_add(1, Ordering::SeqCst);
                shared.c_faults.inc();
                shared.event("serve.stream.fault", Some(st.id as usize), replica as u64);
                let _ = shared.send(
                    &writer,
                    &Frame::Fault {
                        stream: st.id,
                        replica: replica as u32,
                        kind,
                        detection_latency_ns: latency,
                    },
                );
            }
        }
        if let Some(mgr) = &shared.tenants {
            mgr.on_settle(TenantId(st.tenant), record, result);
        }
        st.inflight.fetch_sub(1, Ordering::SeqCst);
        let _ = shared.send(&writer, &shared.stats_frame(&st));
    })
}

fn handle_close(
    shared: &Shared,
    writer: &Arc<Mutex<TcpStream>>,
    st: &StreamState,
) -> Result<(), ServeError> {
    // Drain this stream's in-flight flushes so the final Stats accounts
    // for every admitted token.
    while st.inflight.load(Ordering::SeqCst) > 0 && !shared.cancel.is_cancelled() {
        std::thread::sleep(DRAIN_POLL);
    }
    st.closed.store(true, Ordering::SeqCst);
    // Tokens still buffered at close will never flush; give their queue
    // quota back to the tenant (they stay in the stream's books as
    // accepted-but-undelivered).
    if let Some(mgr) = &shared.tenants {
        let leftover = st.buffered.lock().unwrap().len() as u64;
        mgr.release_buffered(TenantId(st.tenant), leftover);
    }
    if let Some(wal) = shared.wal() {
        wal.append(&WalRecord::StreamClose { stream: st.id })?;
    }
    shared.c_streams_closed.inc();
    shared.event("serve.stream.closed", Some(st.id as usize), 0);
    shared.send(writer, &shared.stats_frame(st))
}

/// Builds the fleet job for one flush batch: the stream's app profile
/// under its redundancy, fed by the client's actual payload bytes.
///
/// Deterministic in `(cfg.seed, stream, app, redundancy, batch)` alone —
/// `replay_verify` relies on this to rebuild the exact job a logged
/// flush ran and compare outputs bit-for-bit.
pub(crate) fn build_spec(
    cfg: &ServerConfig,
    stream: u32,
    app: App,
    redundancy: u8,
    batch: &[Bytes],
) -> JobSpec {
    let profile = app.profile();
    let model = profile.model;
    let n = batch.len() as u64;
    // `Bytes` is `Arc<[u8]>`: the job shares the ingested buffers, no
    // payload bytes are copied into the spec.
    let payloads: Vec<Payload> = batch.iter().map(|b| Payload::from(b.clone())).collect();
    let payload: PayloadGenerator =
        Arc::new(move |i| payloads[(i as usize) % payloads.len()].clone());
    let seed = cfg
        .seed
        .wrapping_add((stream as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let service = model.producer.period / SERVICE_DIVISOR;
    let offset = service + model.producer.jitter + TimeNs::from_ms(1);
    let injections: Vec<(usize, TimeNs)> = cfg
        .inject
        .iter()
        .filter(|inj| inj.stream == stream)
        .map(|inj| (inj.replica, inj.at))
        .collect();

    let template = if redundancy == 2 {
        let mut cfg = DuplicationConfig::from_model(model)
            .expect("profile models are bounded")
            .with_token_count(n)
            .with_seeds(seed ^ 0xA5A5, seed ^ 0x5A5A)
            .with_payload(payload);
        for &(replica, at) in &injections {
            if replica < 2 {
                cfg = cfg.with_fault(replica, FaultPlan::fail_stop_at(at));
            }
        }
        let factory = JitterStageReplica {
            service,
            out_model: [
                model.replica_out[0].with_delay(offset),
                model.replica_out[1].with_delay(offset),
            ],
            seeds: [seed ^ 0x11, seed ^ 0x22],
        };
        JobTemplate::Duplicated {
            cfg,
            factory: Arc::new(factory),
        }
    } else if let Some(k) = hetero_stride(redundancy) {
        let hmodel = HeteroModel::with_checker_jitter(
            model.producer,
            model.consumer,
            model.replica_out[0],
            model.replica_out[1].jitter,
            k,
        );
        let sizing = HeteroSizingReport::analyze(&hmodel).expect("profile models are bounded");
        let mut faults = [FaultPlan::healthy(), FaultPlan::healthy()];
        for &(replica, at) in &injections {
            if replica < 2 {
                faults[replica] = FaultPlan::fail_stop_at(at);
            }
        }
        let factory = HeteroStageReplica {
            service,
            out_models: [hmodel.main, hmodel.checker],
            offset,
            seed_base: seed ^ 0x44,
        };
        JobTemplate::Hetero {
            model: hmodel,
            sizing,
            token_count: n,
            seeds: (seed ^ 0xA5A5, seed ^ 0x5A5A),
            payload,
            factory: Arc::new(factory),
            faults,
        }
    } else {
        let mid_jitter = TimeNs::from_ns(
            (model.replica_out[0].jitter.as_ns() + model.replica_out[1].jitter.as_ns()) / 2,
        );
        let nmodel = NModularModel {
            producer: model.producer,
            consumer: model.consumer,
            replicas: vec![
                model.replica_out[0],
                model.replica_out[1],
                PjdModel::new(model.producer.period, mid_jitter, TimeNs::ZERO),
            ],
        };
        let sizing = NSizingReport::analyze(&nmodel).expect("profile models are bounded");
        let mut faults = vec![FaultPlan::healthy(); 3];
        for &(replica, at) in &injections {
            if replica < 3 {
                faults[replica] = FaultPlan::fail_stop_at(at);
            }
        }
        let factory = NJitterStageReplica {
            service,
            out_models: nmodel.replicas.clone(),
            offset,
            seed_base: seed ^ 0x33,
        };
        JobTemplate::NModularVoting {
            model: nmodel,
            sizing,
            token_count: n,
            seeds: (seed ^ 0xA5A5, seed ^ 0x5A5A),
            payload,
            factory: Arc::new(factory),
            faults,
        }
    };

    // Sampled-divergence detection latency grows linearly in the stride,
    // so hetero streams get extra virtual-time headroom; plain replica
    // counts keep the historical horizon exactly.
    let horizon_slack = hetero_stride(redundancy).map_or(0, |k| 8 * k);
    let runtime = match cfg.runtime {
        ServeRuntime::DiscreteEvent => JobRuntime::DiscreteEvent {
            horizon: model.producer.period * (n + 60 + horizon_slack)
                + model.consumer.delay
                + TimeNs::from_secs(5),
        },
        ServeRuntime::Threaded {
            deadline,
            quiescence_grace,
        } => JobRuntime::Threaded {
            deadline,
            quiescence_grace,
        },
    };

    JobSpec {
        name: format!("serve/{}/{}", app.label(), stream),
        template,
        relative_deadline: Duration::from_secs(120),
        runtime,
    }
}
