//! A synchronous loopback client for the `RTFT/1` protocol.
//!
//! [`Client`] drives one connection: open streams, push token batches,
//! flush them through the server's fault-tolerant pipeline, and collect
//! the pushed `Output` / `Fault` / `Stats` frames. Several streams can be
//! multiplexed on one connection; frames that belong to a stream other
//! than the one a call is waiting on are buffered and handed to that
//! stream's next collect.
//!
//! The client is what the integration tests, the CI smoke example and the
//! throughput bench talk through — it is the reference implementation of
//! the protocol's client side.

use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use rtft_apps::networks::App;
use rtft_kpn::{Payload, SplitMix64};

use crate::error::{ProtocolError, ServeError};
use crate::wire::{
    read_frame, write_frame, BusyReason, Frame, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};

/// A `Busy` refusal, decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusyInfo {
    /// Why the server refused.
    pub reason: BusyReason,
    /// Outstanding fleet jobs at refusal time.
    pub pending: u32,
    /// The fleet's outstanding-job capacity.
    pub capacity: u32,
}

/// One delivered selector output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputEvent {
    /// Zero-based sequence number within the flush.
    pub seq: u64,
    /// Delivery timestamp (virtual ns under DES).
    pub at_ns: u64,
    /// FNV-1a digest of the delivered payload.
    pub digest: u64,
}

/// One pushed fault latch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Latched replica index.
    pub replica: u32,
    /// Detection-site kind byte ([`crate::wire::kind_label`]).
    pub kind: u8,
    /// Latch time minus injection time.
    pub detection_latency_ns: u64,
}

/// Per-stream accounting from a `Stats` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Tokens the server has accepted on the stream.
    pub tokens_in: u64,
    /// Tokens delivered back as `Output` frames.
    pub delivered: u64,
    /// Fault frames pushed for the stream.
    pub faults: u64,
    /// Busy refusals the stream has seen.
    pub busy: u64,
    /// Fleet pool queue depth at snapshot time.
    pub queued: u32,
    /// Fleet runs executing at snapshot time.
    pub inflight: u32,
    /// Admitted-but-unfinished fleet jobs at snapshot time.
    pub outstanding: u32,
}

/// A `Durable` acknowledgement: the server's write-ahead log holds the
/// batch, so it survives a server crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableAck {
    /// Tokens the acknowledged batch carried.
    pub tokens: u32,
    /// WAL sequence number of the batch's log record.
    pub seq: u64,
}

/// Everything one flush (or close) exchange produced.
#[derive(Debug, Clone, Default)]
pub struct FlushOutcome {
    /// Selector outputs, in delivery order.
    pub outputs: Vec<OutputEvent>,
    /// Fault latches pushed during the flush.
    pub faults: Vec<FaultEvent>,
    /// Durability acknowledgements read during the exchange (WAL-enabled
    /// servers only).
    pub durable: Vec<DurableAck>,
    /// The refusal, if the flush was refused.
    pub busy: Option<BusyInfo>,
    /// The terminal stats snapshot (absent only on refusal).
    pub stats: Option<StreamStats>,
}

impl FlushOutcome {
    /// `true` if the batch was admitted (no `Busy` refusal).
    pub fn admitted(&self) -> bool {
        self.busy.is_none()
    }
}

/// Client-side retry policy for refused flushes: bounded exponential
/// backoff with seeded jitter.
///
/// The policy drives [`Client::send_flush_with_retry`]. Retries are
/// **lossless by protocol design**: a refused flush leaves the batch
/// buffered server-side, so a retry re-sends only the 9-byte `Flush`
/// frame — token payloads cross the wire exactly once, and an `Accepted`
/// batch is never re-sent.
///
/// Which refusals are retryable:
/// - `QueueFull` — fleet backpressure; the batch stays buffered.
/// - `QuotaExceeded` — another flush will free buffered quota.
/// - `RateLimited` — retry after the server's hint; the wait is
///   `max(backoff, hint)`, so the hint is always honored even when it
///   exceeds [`RetryPolicy::cap`] (the cap bounds only the policy's own
///   exponential term).
/// - `ShuttingDown` / `TenantDraining` — **not** retryable: the refusal
///   is terminal for this server life / tenant life, so the policy gives
///   up immediately and surfaces the `Busy`.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Exponential growth factor per retry.
    pub multiplier: u32,
    /// Upper bound on the exponential term (not on a `RateLimited` hint).
    pub cap: Duration,
    /// Seed for the jitter stream; jitter is deterministic in
    /// `(seed, stream, retry index)`.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(2),
            multiplier: 2,
            cap: Duration::from_millis(250),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry `retry` (zero-based) of `stream`, given the
    /// server's retry-after hint in milliseconds (0 = no hint): the
    /// capped exponential term or the hint, whichever is larger, plus up
    /// to 50% seeded jitter to decorrelate simultaneous retriers.
    pub fn wait_before(&self, stream: u32, retry: u32, hint_ms: u64) -> Duration {
        let mut backoff = self.base;
        for _ in 0..retry {
            backoff = backoff.saturating_mul(self.multiplier.max(1)).min(self.cap);
        }
        let wait = backoff.max(Duration::from_millis(hint_ms));
        let mut rng = SplitMix64::seed_from_u64(self.seed ^ ((stream as u64) << 32) ^ retry as u64);
        let jitter_ns = rng.next_inclusive((wait.as_nanos() as u64) / 2);
        wait + Duration::from_nanos(jitter_ns)
    }
}

/// What [`Client::send_flush_with_retry`] produced across all attempts.
#[derive(Debug, Clone, Default)]
pub struct RetriedFlush {
    /// The final attempt's outcome, with `durable` acknowledgements
    /// accumulated across every attempt. `outcome.busy` is `Some` only
    /// when the policy gave up (attempts exhausted or a non-retryable
    /// refusal).
    pub outcome: FlushOutcome,
    /// Attempts made (1 = admitted first try).
    pub attempts: u32,
    /// Refusals that were retried (`attempts - 1` unless the last
    /// attempt was itself refused).
    pub retries: u32,
    /// Total time slept between attempts.
    pub waited: Duration,
}

/// The server's answer to an acknowledged token batch
/// ([`Client::send_tokens_acked`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokensAck {
    /// Accepted and durable in the write-ahead log.
    Durable(DurableAck),
    /// Refused at admission (queue quota, draining tenant): the client
    /// still holds the batch, nothing was accepted or billed.
    Refused(BusyInfo),
}

/// Result of [`Client::open_stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenOutcome {
    /// The server accepted and assigned this stream id.
    Stream(u32),
    /// The server is shutting down and refused the stream.
    Busy(BusyInfo),
}

impl OpenOutcome {
    /// The stream id, panicking on refusal (test convenience).
    pub fn expect_stream(self) -> u32 {
        match self {
            OpenOutcome::Stream(id) => id,
            OpenOutcome::Busy(info) => panic!("stream refused: {:?}", info),
        }
    }
}

/// One `RTFT/1` connection.
#[derive(Debug)]
pub struct Client {
    sock: TcpStream,
    max_frame: u32,
    /// Server-push frames read while waiting for a different stream.
    pending: VecDeque<Frame>,
}

impl Client {
    /// Connects, performs the `Hello` handshake, and returns the ready
    /// client. `name` is a diagnostic label echoed in server logs.
    pub fn connect(addr: impl ToSocketAddrs, name: &str) -> Result<Client, ServeError> {
        let mut sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true).ok();
        write_frame(
            &mut sock,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                client: name.to_string(),
            },
        )?;
        let (frame, _) = read_frame(&mut sock, DEFAULT_MAX_FRAME)?;
        match frame {
            Frame::Accepted { .. } => Ok(Client {
                sock,
                max_frame: DEFAULT_MAX_FRAME,
                pending: VecDeque::new(),
            }),
            other => Err(ProtocolError::UnexpectedFrame {
                expected: "Accepted",
                got: other.name(),
            }
            .into()),
        }
    }

    /// Opens a fault-tolerant stream for `app`. `redundancy` selects the
    /// structure: `2` = duplicated timing selector, `3` = tri-modular
    /// value voting, or a [`crate::hetero_redundancy`] byte for the
    /// sampled-checker structure at a power-of-two stride.
    pub fn open_stream(&mut self, app: App, redundancy: u8) -> Result<OpenOutcome, ServeError> {
        let app = App::ALL
            .iter()
            .position(|a| *a == app)
            .expect("App::ALL contains every variant") as u8;
        write_frame(&mut self.sock, &Frame::OpenStream { app, redundancy })?;
        loop {
            match self.next_frame()? {
                Frame::Accepted { id } => return Ok(OpenOutcome::Stream(id)),
                Frame::Busy {
                    stream: u32::MAX,
                    reason,
                    pending,
                    capacity,
                } => {
                    return Ok(OpenOutcome::Busy(BusyInfo {
                        reason,
                        pending,
                        capacity,
                    }))
                }
                other => self.pending.push_back(other),
            }
        }
    }

    /// Sends a batch of raw token payloads to `stream`. The server
    /// buffers them until the next flush; nothing is pushed back yet.
    /// (Against a WAL-enabled server the `Durable` ack arrives later and
    /// is surfaced by the next collect; use
    /// [`Client::send_tokens_durable`] to wait for it here.)
    ///
    /// Payloads are *borrowed* — `&[Vec<u8>]`, `&[&[u8]]`, anything
    /// slice-shaped — and written with gather I/O; the send path never
    /// copies or allocates per payload.
    pub fn send_tokens(
        &mut self,
        stream: u32,
        payloads: &[impl AsRef<[u8]>],
    ) -> Result<(), ServeError> {
        crate::wire::write_tokens(&mut self.sock, stream, payloads)?;
        Ok(())
    }

    /// Sends a batch of raw token payloads to `stream` and blocks until
    /// the server's `Durable` acknowledgement: on return the batch is in
    /// the server's write-ahead log and survives a server crash. Only
    /// valid against a WAL-enabled server — without one, no `Durable`
    /// frame ever arrives and this would block until the next push.
    pub fn send_tokens_durable(
        &mut self,
        stream: u32,
        payloads: &[impl AsRef<[u8]>],
    ) -> Result<DurableAck, ServeError> {
        crate::wire::write_tokens(&mut self.sock, stream, payloads)?;
        // Scan anything already buffered first, then the socket.
        let mut scanned: Vec<Frame> = Vec::new();
        loop {
            let frame = if let Some(f) = self.pending.pop_front() {
                f
            } else {
                self.next_frame()?
            };
            match frame {
                Frame::Durable {
                    stream: s,
                    tokens,
                    seq,
                } if s == stream => {
                    for f in scanned.into_iter().rev() {
                        self.pending.push_front(f);
                    }
                    return Ok(DurableAck { tokens, seq });
                }
                other => scanned.push(other),
            }
        }
    }

    /// Blocks until a `Busy` frame for `stream` arrives and returns it,
    /// buffering every other frame. This is how a refusal answered to a
    /// `Tokens` frame (tenant queue quota, draining tenant) is consumed:
    /// unlike a flush refusal it arrives outside any collect exchange, so
    /// a later flush or close would otherwise swallow it as its own.
    pub fn recv_busy(&mut self, stream: u32) -> Result<BusyInfo, ServeError> {
        let mut requeue = VecDeque::new();
        loop {
            let frame = if let Some(f) = self.pending.pop_front() {
                f
            } else {
                self.next_frame()?
            };
            match frame {
                Frame::Busy {
                    stream: s,
                    reason,
                    pending,
                    capacity,
                } if s == stream => {
                    requeue.extend(self.pending.drain(..));
                    self.pending = requeue;
                    return Ok(BusyInfo {
                        reason,
                        pending,
                        capacity,
                    });
                }
                other => requeue.push_back(other),
            }
        }
    }

    /// Flushes `stream`'s buffered tokens through its pipeline and
    /// collects everything the run pushes back, up to the terminal
    /// `Stats` — or a `Busy` refusal, after which the tokens remain
    /// buffered server-side and the flush can simply be retried.
    pub fn flush(&mut self, stream: u32) -> Result<FlushOutcome, ServeError> {
        write_frame(&mut self.sock, &Frame::Flush { stream })?;
        self.collect(stream)
    }

    /// Flushes `stream` under `policy`: on a retryable `Busy` refusal
    /// (`QueueFull`, `QuotaExceeded`, `RateLimited`) the client sleeps
    /// the policy's backoff — honoring a `RateLimited` retry-after hint —
    /// and re-sends **only** the `Flush` frame; the refused batch stayed
    /// buffered server-side, so no token ever crosses the wire twice.
    /// Returns when an attempt is admitted (its outputs/faults/stats in
    /// `outcome`), the refusal is non-retryable (`ShuttingDown`,
    /// `TenantDraining`), or attempts run out — in the latter two cases
    /// `outcome.busy` carries the last refusal.
    pub fn send_flush_with_retry(
        &mut self,
        stream: u32,
        policy: &RetryPolicy,
    ) -> Result<RetriedFlush, ServeError> {
        let mut result = RetriedFlush::default();
        let mut durable: Vec<DurableAck> = Vec::new();
        loop {
            let mut outcome = self.flush(stream)?;
            result.attempts += 1;
            durable.append(&mut outcome.durable);
            let retryable = match &outcome.busy {
                None => {
                    // Admitted: every output below is from this attempt;
                    // earlier refused attempts delivered nothing.
                    outcome.durable = durable;
                    result.outcome = outcome;
                    return Ok(result);
                }
                Some(info) => matches!(
                    info.reason,
                    BusyReason::QueueFull | BusyReason::QuotaExceeded | BusyReason::RateLimited
                ),
            };
            if !retryable || result.attempts >= policy.max_attempts.max(1) {
                outcome.durable = durable;
                result.outcome = outcome;
                return Ok(result);
            }
            let busy = outcome.busy.expect("refused attempt carries Busy");
            // RateLimited refusals ship the retry-after hint as whole
            // milliseconds in `pending` (see crate::wire).
            let hint_ms = match busy.reason {
                BusyReason::RateLimited => busy.pending as u64,
                _ => 0,
            };
            let wait = policy.wait_before(stream, result.retries, hint_ms);
            result.retries += 1;
            result.waited += wait;
            std::thread::sleep(wait);
        }
    }

    /// Sends a token batch and blocks for the server's answer: `Durable`
    /// (accepted and logged) or `Busy` (refused at admission — the
    /// client still holds the batch). Only valid against a WAL-enabled
    /// server: without one an *accepted* batch is never acknowledged and
    /// this would block until the next push. Frames for other exchanges
    /// are buffered, as everywhere else.
    pub fn send_tokens_acked(
        &mut self,
        stream: u32,
        payloads: &[impl AsRef<[u8]>],
    ) -> Result<TokensAck, ServeError> {
        crate::wire::write_tokens(&mut self.sock, stream, payloads)?;
        let mut scanned: Vec<Frame> = Vec::new();
        loop {
            let frame = if let Some(f) = self.pending.pop_front() {
                f
            } else {
                self.next_frame()?
            };
            let ack = match frame {
                Frame::Durable {
                    stream: s,
                    tokens,
                    seq,
                } if s == stream => TokensAck::Durable(DurableAck { tokens, seq }),
                Frame::Busy {
                    stream: s,
                    reason,
                    pending,
                    capacity,
                } if s == stream => TokensAck::Refused(BusyInfo {
                    reason,
                    pending,
                    capacity,
                }),
                other => {
                    scanned.push(other);
                    continue;
                }
            };
            for f in scanned.into_iter().rev() {
                self.pending.push_front(f);
            }
            return Ok(ack);
        }
    }

    /// Sets (or clears) the socket's read timeout — lets callers bound
    /// how long a collect can block on a wedged server.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.sock.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Closes `stream`: the server drains its in-flight flushes and
    /// replies with a final `Stats` accounting for every accepted token.
    pub fn close(&mut self, stream: u32) -> Result<FlushOutcome, ServeError> {
        write_frame(&mut self.sock, &Frame::Close { stream })?;
        self.collect(stream)
    }

    /// Reads frames (starting with any buffered ones) until `stream`'s
    /// terminal `Stats` or `Busy`; frames for other streams are buffered.
    fn collect(&mut self, stream: u32) -> Result<FlushOutcome, ServeError> {
        let mut outcome = FlushOutcome::default();
        let mut requeue = VecDeque::new();
        loop {
            let frame = if let Some(f) = self.pending.pop_front() {
                f
            } else {
                self.next_frame()?
            };
            match frame {
                Frame::Output {
                    stream: s,
                    seq,
                    at_ns,
                    digest,
                } if s == stream => outcome.outputs.push(OutputEvent { seq, at_ns, digest }),
                Frame::Fault {
                    stream: s,
                    replica,
                    kind,
                    detection_latency_ns,
                } if s == stream => outcome.faults.push(FaultEvent {
                    replica,
                    kind,
                    detection_latency_ns,
                }),
                Frame::Durable {
                    stream: s,
                    tokens,
                    seq,
                } if s == stream => outcome.durable.push(DurableAck { tokens, seq }),
                Frame::Busy {
                    stream: s,
                    reason,
                    pending,
                    capacity,
                } if s == stream => {
                    outcome.busy = Some(BusyInfo {
                        reason,
                        pending,
                        capacity,
                    });
                    break;
                }
                Frame::Stats {
                    stream: s,
                    tokens_in,
                    delivered,
                    faults,
                    busy,
                    queued,
                    inflight,
                    outstanding,
                } if s == stream => {
                    outcome.stats = Some(StreamStats {
                        tokens_in,
                        delivered,
                        faults,
                        busy,
                        queued,
                        inflight,
                        outstanding,
                    });
                    break;
                }
                other => requeue.push_back(other),
            }
        }
        // Frames for other streams stay queued, in arrival order.
        requeue.extend(self.pending.drain(..));
        self.pending = requeue;
        Ok(outcome)
    }

    fn next_frame(&mut self) -> Result<Frame, ServeError> {
        let (frame, _) = read_frame(&mut self.sock, self.max_frame)?;
        Ok(frame)
    }
}

/// `count` realistic token payloads for `app` — the same seeded workload
/// items (encoded MJPEG frames, PCM blocks, raw video frames) the
/// campaign drivers use, as raw bytes ready for [`Client::send_tokens`].
pub fn workload(app: App, seed: u64, count: usize) -> Vec<Vec<u8>> {
    let gen = app.payload_generator(seed);
    (0..count)
        .map(|n| {
            gen(n as u64)
                .as_bytes()
                .map(|b| b.to_vec())
                .unwrap_or_default()
        })
        .collect()
}

/// The digest the server will report for a token with these payload
/// bytes — lets clients verify `Output` frames end-to-end.
pub fn digest_of(bytes: &[u8]) -> u64 {
    Payload::from(bytes.to_vec()).digest()
}
