//! The tenant directory: sharded lookup, lifecycle transitions, and
//! admission routing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rtft_fleet::{JobRecord, JobRunResult, RejectReason};
use rtft_obs::{Hll, MetricsRegistry};

use crate::report::{TenantDirectoryReport, TenantReport};
use crate::tenant::{Tenant, TenantConfig, TenantId, TenantState};

/// Why an attach was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttachError {
    /// The name is already attached (and not yet detached) under this id.
    NameTaken(TenantId),
    /// An explicit id (recovery re-attach) is already in use.
    IdTaken(TenantId),
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::NameTaken(id) => write!(f, "tenant name already attached as {id}"),
            AttachError::IdTaken(id) => write!(f, "tenant id {id} already in use"),
        }
    }
}

impl std::error::Error for AttachError {}

/// Why a lifecycle or lookup operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantError {
    /// No tenant under that id.
    Unknown(TenantId),
    /// The requested transition is not legal from the current state.
    IllegalTransition {
        /// State the tenant was actually in.
        from: TenantState,
    },
    /// A detach cannot complete while jobs are still in flight.
    StillBusy {
        /// Jobs in flight at the time of the attempt.
        inflight: u64,
    },
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::Unknown(id) => write!(f, "unknown tenant {id}"),
            TenantError::IllegalTransition { from } => {
                write!(f, "illegal transition from {}", from.label())
            }
            TenantError::StillBusy { inflight } => {
                write!(f, "tenant still has {inflight} jobs in flight")
            }
        }
    }
}

impl std::error::Error for TenantError {}

/// A structured admission refusal. Lossless by contract: the caller's
/// buffered tokens are untouched and the operation may be retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantReject {
    /// The tenant is draining (or already detached / still attaching) —
    /// new work is refused until the lifecycle says otherwise.
    Draining,
    /// A fleet-vocabulary refusal: queue quota, in-flight cap, token
    /// rate, executor backpressure, or executor shutdown.
    Fleet(RejectReason),
}

impl From<RejectReason> for TenantReject {
    fn from(r: RejectReason) -> Self {
        TenantReject::Fleet(r)
    }
}

impl std::fmt::Display for TenantReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantReject::Draining => write!(f, "tenant is draining"),
            TenantReject::Fleet(r) => write!(f, "{r}"),
        }
    }
}

impl std::error::Error for TenantReject {}

/// One supervisor shard: a slice of the tenant directory plus the rollup
/// state its tenants fold into. Shards are picked by hashing the tenant
/// id, so two tenants on different shards never contend on the same lock
/// for lookup, admission, or settle-time folding.
#[derive(Debug)]
pub struct Shard {
    tenants: Mutex<HashMap<u64, Arc<Tenant>>>,
    /// Per-shard metrics rollup; settled jobs' registries are absorbed
    /// here (commutative fold, so the merged total is shard-invariant).
    rollup: MetricsRegistry,
    unique_tenants: Hll,
    unique_streams: Hll,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            tenants: Mutex::new(HashMap::new()),
            rollup: MetricsRegistry::new(),
            unique_tenants: Hll::new(),
            unique_streams: Hll::new(),
        }
    }

    /// The shard's metrics rollup (absorbed job registries).
    pub fn rollup(&self) -> &MetricsRegistry {
        &self.rollup
    }

    /// Distinct tenants this shard has attached.
    pub fn unique_tenants(&self) -> &Hll {
        &self.unique_tenants
    }

    /// Distinct streams opened by this shard's tenants.
    pub fn unique_streams(&self) -> &Hll {
        &self.unique_streams
    }

    fn get(&self, id: TenantId) -> Option<Arc<Tenant>> {
        self.tenants.lock().unwrap().get(&id.0).cloned()
    }
}

/// SplitMix64 finalizer — spreads dense sequential tenant ids uniformly
/// over shards.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The tenant directory and admission front door.
///
/// See the [crate docs](crate) for the full picture. Everything here is
/// `&self` and thread-safe; the manager is typically shared in an `Arc`
/// between a server's connection threads and its settle notifiers.
#[derive(Debug)]
pub struct TenantManager {
    shards: Box<[Shard]>,
    names: Mutex<HashMap<String, TenantId>>,
    next_id: AtomicU64,
}

impl TenantManager {
    /// A manager with `shards` supervisor shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> TenantManager {
        let n = shards.max(1);
        TenantManager {
            shards: (0..n).map(|_| Shard::new()).collect(),
            names: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Number of supervisor shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a tenant id lives on.
    pub fn shard_of(&self, id: TenantId) -> &Shard {
        &self.shards[(mix(id.0) % self.shards.len() as u64) as usize]
    }

    /// Attach a tenant under `name` with `config`; returns its fresh id.
    ///
    /// The tenant passes through `Attaching` and lands `Active`. A name
    /// that is currently attached (any state but `Detached`) is refused;
    /// re-attaching a detached name yields a new id and a new lifecycle.
    pub fn attach(&self, name: &str, config: TenantConfig) -> Result<TenantId, AttachError> {
        let mut names = self.names.lock().unwrap();
        if let Some(&existing) = names.get(name) {
            let live = self
                .shard_of(existing)
                .get(existing)
                .is_some_and(|t| t.state() != TenantState::Detached);
            if live {
                return Err(AttachError::NameTaken(existing));
            }
        }
        let id = TenantId(self.next_id.fetch_add(1, Ordering::AcqRel));
        names.insert(name.to_string(), id);
        drop(names);
        self.install(id, name, config);
        Ok(id)
    }

    /// Attach a tenant under an explicit id — the durable-log recovery
    /// path, which must re-create tenants with the ids streams were
    /// logged under. Bumps the id allocator past `id`.
    pub fn attach_with_id(
        &self,
        id: TenantId,
        name: &str,
        config: TenantConfig,
    ) -> Result<TenantId, AttachError> {
        if self.shard_of(id).get(id).is_some() {
            return Err(AttachError::IdTaken(id));
        }
        // Keep the allocator ahead of every explicit id.
        let _ = self
            .next_id
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                Some(v.max(id.0 + 1))
            });
        self.names.lock().unwrap().insert(name.to_string(), id);
        self.install(id, name, config);
        Ok(id)
    }

    fn install(&self, id: TenantId, name: &str, config: TenantConfig) {
        let tenant = Arc::new(Tenant::new(id, name.to_string(), config));
        let activated = tenant.transition(TenantState::Attaching, TenantState::Active);
        debug_assert!(activated, "fresh tenant must activate");
        let shard = self.shard_of(id);
        shard.unique_tenants.insert_u64(id.0);
        shard.tenants.lock().unwrap().insert(id.0, tenant);
    }

    /// Look up a tenant id by the name it attached under.
    pub fn resolve(&self, name: &str) -> Option<TenantId> {
        self.names.lock().unwrap().get(name).copied()
    }

    /// The tenant under `id`, if attached (any state).
    pub fn get(&self, id: TenantId) -> Option<Arc<Tenant>> {
        self.shard_of(id).get(id)
    }

    /// Replace a tenant's policy at runtime; applies on the next
    /// admission.
    pub fn update(&self, id: TenantId, config: TenantConfig) -> Result<(), TenantError> {
        let tenant = self.get(id).ok_or(TenantError::Unknown(id))?;
        tenant.set_config(config);
        Ok(())
    }

    /// Begin detaching: `Active → Draining`. From then on every
    /// admission for the tenant answers [`TenantReject::Draining`];
    /// in-flight jobs run to completion.
    pub fn begin_detach(&self, id: TenantId) -> Result<(), TenantError> {
        let tenant = self.get(id).ok_or(TenantError::Unknown(id))?;
        if tenant.transition(TenantState::Active, TenantState::Draining) {
            Ok(())
        } else {
            Err(TenantError::IllegalTransition {
                from: tenant.state(),
            })
        }
    }

    /// Complete a detach: `Draining → Detached`. Fails with
    /// [`TenantError::StillBusy`] while jobs are in flight — poll until
    /// the drain empties.
    pub fn finish_detach(&self, id: TenantId) -> Result<(), TenantError> {
        let tenant = self.get(id).ok_or(TenantError::Unknown(id))?;
        let inflight = tenant.inflight();
        if inflight > 0 {
            return Err(TenantError::StillBusy { inflight });
        }
        if tenant.transition(TenantState::Draining, TenantState::Detached) {
            Ok(())
        } else {
            Err(TenantError::IllegalTransition {
                from: tenant.state(),
            })
        }
    }

    /// Admission for buffering `tokens` ingested tokens (queue quota).
    pub fn admit_tokens(&self, id: TenantId, tokens: u64) -> Result<(), TenantReject> {
        let tenant = self
            .get(id)
            .ok_or(TenantReject::Fleet(RejectReason::ShuttingDown))?;
        tenant.admit_tokens(tokens)
    }

    /// Admission for flushing `tokens` buffered tokens into one fleet job
    /// at instant `now_ns`: lifecycle, in-flight cap, token rate — all
    /// checked *before* the executor sees the job.
    pub fn admit_flush(&self, id: TenantId, tokens: u64, now_ns: u64) -> Result<(), TenantReject> {
        let tenant = self
            .get(id)
            .ok_or(TenantReject::Fleet(RejectReason::ShuttingDown))?;
        tenant.admit_flush(tokens, now_ns)
    }

    /// Undo an [`admit_flush`](Self::admit_flush) the executor refused:
    /// returns the in-flight slot, the buffered tokens, and the rate
    /// tokens, so executor backpressure stays lossless for the tenant.
    pub fn cancel_flush(&self, id: TenantId, tokens: u64) {
        if let Some(tenant) = self.get(id) {
            tenant.cancel_flush(tokens);
        }
    }

    /// Bill a replayed (recovery) job as in-flight without quota or rate
    /// checks.
    pub fn admit_replay(&self, id: TenantId) {
        if let Some(tenant) = self.get(id) {
            tenant.admit_replay();
        }
    }

    /// Note a stream opening under `id` (feeds the unique-streams
    /// sketch).
    pub fn on_stream_opened(&self, id: TenantId, stream: u64) {
        self.shard_of(id).unique_streams.insert_u64(stream);
    }

    /// Release buffered tokens that will never flush (close/shutdown with
    /// an undelivered tail).
    pub fn release_buffered(&self, id: TenantId, tokens: u64) {
        if let Some(tenant) = self.get(id) {
            tenant.release_buffered(tokens);
        }
    }

    /// Fold a settled job into its tenant and the tenant's shard rollup.
    /// Call exactly once per settled job (the executor's notifier fires
    /// exactly once).
    pub fn on_settle(&self, id: TenantId, record: &JobRecord, result: Option<&JobRunResult>) {
        let Some(tenant) = self.get(id) else { return };
        tenant.on_settle(record, result);
        if let Some(result) = result {
            self.shard_of(id).rollup.absorb(&result.registry);
        }
    }

    /// A point-in-time report for one tenant, if attached (any state).
    pub fn tenant_report(&self, id: TenantId) -> Option<TenantReport> {
        self.get(id).map(|t| TenantReport::snapshot(&t))
    }

    /// Tenants currently in a given state (cheap scan, report helper).
    pub fn count_in_state(&self, state: TenantState) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.tenants
                    .lock()
                    .unwrap()
                    .values()
                    .filter(|t| t.state() == state)
                    .count()
            })
            .sum()
    }

    /// Build the directory report: every tenant's [`TenantReport`]
    /// sorted by id, the merged shard rollup, and the merged
    /// unique-stream / unique-tenant sketches. Byte-identical at any
    /// shard count: per-tenant state is shard-independent, and every
    /// cross-shard fold (counter add, histogram bucket add, gauge
    /// high-water max, HLL register max) is commutative.
    pub fn report(&self) -> TenantDirectoryReport {
        let mut tenants: Vec<Arc<Tenant>> = Vec::new();
        for shard in self.shards.iter() {
            tenants.extend(shard.tenants.lock().unwrap().values().cloned());
        }
        tenants.sort_by_key(|t| t.id().0);
        let rollup = MetricsRegistry::new();
        let unique_tenants = Hll::new();
        let unique_streams = Hll::new();
        for shard in self.shards.iter() {
            rollup.absorb(&shard.rollup);
            unique_tenants.merge_from(&shard.unique_tenants);
            unique_streams.merge_from(&shard.unique_streams);
        }
        TenantDirectoryReport {
            tenants: tenants.iter().map(|t| TenantReport::snapshot(t)).collect(),
            unique_tenants: unique_tenants.estimate_u64(),
            unique_streams: unique_streams.estimate_u64(),
            rollup,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_walks_forward_only() {
        let mgr = TenantManager::new(2);
        let id = mgr.attach("a", TenantConfig::default()).unwrap();
        assert_eq!(mgr.get(id).unwrap().state(), TenantState::Active);
        // Cannot finish a detach that never began.
        assert!(matches!(
            mgr.finish_detach(id),
            Err(TenantError::IllegalTransition { .. })
        ));
        mgr.begin_detach(id).unwrap();
        // Draining twice is illegal.
        assert!(matches!(
            mgr.begin_detach(id),
            Err(TenantError::IllegalTransition {
                from: TenantState::Draining
            })
        ));
        mgr.finish_detach(id).unwrap();
        assert_eq!(mgr.get(id).unwrap().state(), TenantState::Detached);
    }

    #[test]
    fn names_are_exclusive_while_attached() {
        let mgr = TenantManager::new(1);
        let id = mgr.attach("acme", TenantConfig::default()).unwrap();
        assert_eq!(
            mgr.attach("acme", TenantConfig::default()),
            Err(AttachError::NameTaken(id))
        );
        mgr.begin_detach(id).unwrap();
        mgr.finish_detach(id).unwrap();
        let id2 = mgr.attach("acme", TenantConfig::default()).unwrap();
        assert_ne!(id, id2, "re-attach gets a fresh lifecycle");
        assert_eq!(mgr.resolve("acme"), Some(id2));
    }

    #[test]
    fn quota_is_enforced_and_lossless() {
        let mgr = TenantManager::new(1);
        let id = mgr
            .attach(
                "q",
                TenantConfig {
                    queue_quota: 10,
                    ..TenantConfig::default()
                },
            )
            .unwrap();
        mgr.admit_tokens(id, 8).unwrap();
        let err = mgr.admit_tokens(id, 3).unwrap_err();
        assert!(matches!(
            err,
            TenantReject::Fleet(RejectReason::QuotaExceeded { used: 8, quota: 10 })
        ));
        // The refused batch was not billed.
        assert_eq!(mgr.get(id).unwrap().buffered(), 8);
        mgr.admit_tokens(id, 2).unwrap();
    }

    #[test]
    fn inflight_cap_and_rate_limit_reject_structurally() {
        let mgr = TenantManager::new(1);
        let id = mgr
            .attach(
                "r",
                TenantConfig {
                    max_inflight: 1,
                    rate: Some(crate::TokenRate {
                        tokens_per_sec: 1_000,
                        burst: 4,
                    }),
                    ..TenantConfig::default()
                },
            )
            .unwrap();
        mgr.admit_tokens(id, 16).unwrap();
        mgr.admit_flush(id, 2, 0).unwrap();
        // Second flush trips the in-flight cap first.
        assert!(matches!(
            mgr.admit_flush(id, 2, 0),
            Err(TenantReject::Fleet(RejectReason::QuotaExceeded {
                used: 1,
                quota: 1
            }))
        ));
        mgr.cancel_flush(id, 2);
        // With the slot back, a burst-sized batch drains the bucket...
        mgr.admit_flush(id, 4, 0).unwrap();
        mgr.cancel_flush(id, 0); // free the slot, keep the bucket drained
        assert!(matches!(
            mgr.admit_flush(id, 4, 0),
            Err(TenantReject::Fleet(RejectReason::RateLimited { .. }))
        ));
        // ...and refills deterministically 4 ms later (1000/s × 4 ms = 4).
        mgr.admit_flush(id, 4, 4_000_000).unwrap();
    }

    #[test]
    fn recovery_reattach_keeps_ids_stable() {
        let mgr = TenantManager::new(4);
        mgr.attach_with_id(TenantId(7), "recovered-7", TenantConfig::default())
            .unwrap();
        assert_eq!(
            mgr.attach_with_id(TenantId(7), "dup", TenantConfig::default()),
            Err(AttachError::IdTaken(TenantId(7)))
        );
        // Fresh ids allocate past the recovered one.
        let fresh = mgr.attach("new", TenantConfig::default()).unwrap();
        assert!(fresh.0 > 7);
    }

    #[test]
    fn report_is_sorted_and_shard_invariant() {
        let build = |shards: usize| {
            let mgr = TenantManager::new(shards);
            for i in 0..9u64 {
                let id = mgr
                    .attach(&format!("t{i}"), TenantConfig::default())
                    .unwrap();
                mgr.admit_tokens(id, 10 + i).unwrap();
                mgr.on_stream_opened(id, 100 + i);
            }
            mgr.report().to_json()
        };
        let one = build(1);
        assert_eq!(one, build(2));
        assert_eq!(one, build(4));
    }
}
