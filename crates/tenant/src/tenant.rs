//! One tenant: identity, lifecycle state, policy, and accounting.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use rtft_fleet::{JobRecord, JobRunResult, RejectReason};
use rtft_obs::Histogram;

use crate::manager::TenantReject;
use crate::rate::{RateDecision, TokenBucket};

/// Fleet-wide tenant identifier, assigned at attach time and never
/// reused — a re-attached name gets a fresh id (new lifecycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Lifecycle state. Legal transitions move strictly rightward:
/// `Attaching → Active → Draining → Detached`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantState {
    /// Being attached (recovery rebuild, staged attach); not admitting.
    Attaching,
    /// Serving traffic.
    Active,
    /// Detach requested: in-flight work finishes, new work is refused.
    Draining,
    /// Fully detached; kept for reporting only.
    Detached,
}

impl TenantState {
    /// Stable lowercase label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            TenantState::Attaching => "attaching",
            TenantState::Active => "active",
            TenantState::Draining => "draining",
            TenantState::Detached => "detached",
        }
    }

    fn from_u8(v: u8) -> TenantState {
        match v {
            0 => TenantState::Attaching,
            1 => TenantState::Active,
            2 => TenantState::Draining,
            _ => TenantState::Detached,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            TenantState::Attaching => 0,
            TenantState::Active => 1,
            TenantState::Draining => 2,
            TenantState::Detached => 3,
        }
    }
}

/// Token-rate limit: a bucket of `burst` tokens refilling at
/// `tokens_per_sec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenRate {
    /// Sustained refill rate in tokens per second (0 = burst only).
    pub tokens_per_sec: u64,
    /// Bucket capacity: the largest batch admissible at once.
    pub burst: u64,
}

/// Per-tenant policy. Every field is enforced at admission time and can
/// be changed at runtime with [`TenantManager::update`](crate::TenantManager::update).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Replica count template for jobs this tenant submits.
    pub redundancy: u8,
    /// Token-rate limit on flushed work; `None` = unlimited.
    pub rate: Option<TokenRate>,
    /// Cap on concurrently in-flight jobs (`u64::MAX` = unlimited).
    pub max_inflight: u64,
    /// Cap on buffered (ingested but not yet flushed) tokens
    /// (`u64::MAX` = unlimited).
    pub queue_quota: u64,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            redundancy: 2,
            rate: None,
            max_inflight: 64,
            queue_quota: 65_536,
        }
    }
}

/// A live tenant. Obtained from
/// [`TenantManager::get`](crate::TenantManager::get); all state is
/// internally synchronized, and the accounting fields feed the tenant's
/// [`TenantReport`](crate::TenantReport).
#[derive(Debug)]
pub struct Tenant {
    id: TenantId,
    name: String,
    state: AtomicU8,
    config: Mutex<TenantConfig>,
    bucket: Mutex<TokenBucket>,
    /// Jobs admitted but not yet settled.
    inflight: AtomicU64,
    /// Tokens buffered (ingested, not yet flushed into a job).
    buffered: AtomicU64,
    jobs: AtomicU64,
    tokens_in: AtomicU64,
    delivered: AtomicU64,
    faults: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_rate: AtomicU64,
    rejected_draining: AtomicU64,
    detection_latency_ns: Histogram,
    recovery_ns: Histogram,
}

impl Tenant {
    pub(crate) fn new(id: TenantId, name: String, config: TenantConfig) -> Tenant {
        Tenant {
            id,
            name,
            state: AtomicU8::new(TenantState::Attaching.as_u8()),
            config: Mutex::new(config),
            bucket: Mutex::new(TokenBucket::new()),
            inflight: AtomicU64::new(0),
            buffered: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            tokens_in: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            rejected_rate: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            detection_latency_ns: Histogram::default(),
            recovery_ns: Histogram::default(),
        }
    }

    /// The tenant's fleet-wide id.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The name the tenant attached under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TenantState {
        TenantState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Attempt the transition `from → to`; `false` if the tenant was not
    /// in `from` (state machine refuses skips and reversals).
    pub(crate) fn transition(&self, from: TenantState, to: TenantState) -> bool {
        debug_assert!(to.as_u8() == from.as_u8() + 1, "states only move forward");
        self.state
            .compare_exchange(
                from.as_u8(),
                to.as_u8(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Snapshot of the current policy.
    pub fn config(&self) -> TenantConfig {
        *self.config.lock().unwrap()
    }

    pub(crate) fn set_config(&self, config: TenantConfig) {
        *self.config.lock().unwrap() = config;
    }

    /// Jobs currently in flight.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Acquire)
    }

    /// Tokens currently buffered against the queue quota.
    pub fn buffered(&self) -> u64 {
        self.buffered.load(Ordering::Acquire)
    }

    /// Admission check for buffering `tokens` more tokens (the queue
    /// quota). On success the tokens are billed to the tenant's buffer;
    /// on refusal nothing changes except the matching rejection counter.
    pub(crate) fn admit_tokens(&self, tokens: u64) -> Result<(), TenantReject> {
        if self.state() != TenantState::Active {
            self.rejected_draining.fetch_add(tokens, Ordering::Relaxed);
            return Err(TenantReject::Draining);
        }
        let quota = self.config.lock().unwrap().queue_quota;
        // Reserve optimistically; roll back on overflow so concurrent
        // admits never double-spend the quota.
        let used = self.buffered.fetch_add(tokens, Ordering::AcqRel);
        if used.saturating_add(tokens) > quota {
            self.buffered.fetch_sub(tokens, Ordering::AcqRel);
            self.rejected_quota.fetch_add(tokens, Ordering::Relaxed);
            return Err(TenantReject::Fleet(RejectReason::QuotaExceeded {
                used,
                quota,
            }));
        }
        self.tokens_in.fetch_add(tokens, Ordering::Relaxed);
        Ok(())
    }

    /// Admission check for flushing `tokens` buffered tokens into one
    /// fleet job at instant `now_ns`: lifecycle state, the in-flight-jobs
    /// cap, then the token-rate bucket. On success the tenant is billed
    /// one in-flight job and the buffer is drained by `tokens`; a refusal
    /// is lossless — the caller keeps its buffer and may retry.
    pub(crate) fn admit_flush(&self, tokens: u64, now_ns: u64) -> Result<(), TenantReject> {
        if self.state() != TenantState::Active {
            self.rejected_draining.fetch_add(tokens, Ordering::Relaxed);
            return Err(TenantReject::Draining);
        }
        let config = *self.config.lock().unwrap();
        let used = self.inflight.fetch_add(1, Ordering::AcqRel);
        if used >= config.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.rejected_quota.fetch_add(tokens, Ordering::Relaxed);
            return Err(TenantReject::Fleet(RejectReason::QuotaExceeded {
                used,
                quota: config.max_inflight,
            }));
        }
        if let Some(rate) = config.rate {
            let decision = self.bucket.lock().unwrap().try_take(&rate, tokens, now_ns);
            if let RateDecision::Denied { retry_after_ns } = decision {
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                self.rejected_rate.fetch_add(tokens, Ordering::Relaxed);
                return Err(TenantReject::Fleet(RejectReason::RateLimited {
                    retry_after_ns,
                }));
            }
        }
        // The flushed tokens leave the buffer (they ride in the job now).
        // Saturating: direct fleet-facing callers (chaos) flush without
        // buffering first.
        let _ = self
            .buffered
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                Some(v.saturating_sub(tokens))
            });
        Ok(())
    }

    /// Undo an [`admit_flush`](Self::admit_flush) whose fleet submission
    /// was refused downstream: the in-flight slot, buffer, and rate
    /// tokens all come back, so the tenant is not billed for work the
    /// fleet never ran.
    pub(crate) fn cancel_flush(&self, tokens: u64) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        self.buffered.fetch_add(tokens, Ordering::AcqRel);
        if let Some(rate) = self.config.lock().unwrap().rate {
            self.bucket.lock().unwrap().refund(&rate, tokens);
        }
    }

    /// Record a job that was re-submitted from a durable log during
    /// recovery: it occupies an in-flight slot (so a detach drains it)
    /// but bypasses quota and rate checks — replay is operator work, not
    /// tenant traffic.
    pub(crate) fn admit_replay(&self) {
        self.inflight.fetch_add(1, Ordering::AcqRel);
    }

    /// Fold a settled job into the tenant's accounting.
    pub(crate) fn on_settle(&self, record: &JobRecord, result: Option<&JobRunResult>) {
        // Saturating: a settle for a replayed job admitted before a crash
        // must never underflow a fresh tenant.
        let _ = self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                Some(v.saturating_sub(1))
            });
        self.jobs.fetch_add(1, Ordering::Relaxed);
        self.delivered.fetch_add(record.arrivals, Ordering::Relaxed);
        self.faults
            .fetch_add(record.faulty_replicas.len() as u64, Ordering::Relaxed);
        if record.recovered {
            self.recovery_ns.record(record.completion_ns);
        }
        if let Some(health) = result.and_then(|r| r.health.as_ref()) {
            self.detection_latency_ns
                .merge_from(health.detection_latency());
        }
    }

    /// Release `tokens` buffered tokens without flushing them (stream
    /// closed or server shut down with an undelivered tail).
    pub(crate) fn release_buffered(&self, tokens: u64) {
        let _ = self
            .buffered
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                Some(v.saturating_sub(tokens))
            });
    }

    pub(crate) fn counters(&self) -> TenantCounters {
        TenantCounters {
            jobs: self.jobs.load(Ordering::Acquire),
            tokens_in: self.tokens_in.load(Ordering::Acquire),
            delivered: self.delivered.load(Ordering::Acquire),
            buffered: self.buffered.load(Ordering::Acquire),
            inflight: self.inflight.load(Ordering::Acquire),
            faults: self.faults.load(Ordering::Acquire),
            rejected_quota: self.rejected_quota.load(Ordering::Acquire),
            rejected_rate: self.rejected_rate.load(Ordering::Acquire),
            rejected_draining: self.rejected_draining.load(Ordering::Acquire),
        }
    }

    pub(crate) fn detection_latency_ns(&self) -> &Histogram {
        &self.detection_latency_ns
    }

    pub(crate) fn recovery_ns(&self) -> &Histogram {
        &self.recovery_ns
    }
}

/// Point-in-time counter values, pulled for reports.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TenantCounters {
    pub jobs: u64,
    pub tokens_in: u64,
    pub delivered: u64,
    pub buffered: u64,
    pub inflight: u64,
    pub faults: u64,
    pub rejected_quota: u64,
    pub rejected_rate: u64,
    pub rejected_draining: u64,
}
