//! Deterministic token-bucket rate limiting.
//!
//! The bucket never reads a clock: every operation takes the caller's
//! `now_ns`, so the DES runtime can drive it with virtual time, the
//! threaded runtime with wall time, and tests with hand-picked instants —
//! the same discipline as the rest of the workspace ("zero-timekeeping").
//! All arithmetic is integer (micro-tokens), so two runs fed the same
//! instants make byte-identical decisions.

use crate::tenant::TokenRate;

/// Micro-tokens per token: refill math runs at 10⁻⁶-token granularity so
/// slow rates (a few tokens/second) still accrue something every call.
const MICRO: u64 = 1_000_000;

/// Outcome of [`TokenBucket::try_take`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateDecision {
    /// The batch fit; the tokens were consumed.
    Granted,
    /// The bucket is short. Carries the nanoseconds until the deficit
    /// refills at the configured rate — a retry hint, not a reservation.
    Denied {
        /// Nanoseconds until the refused batch would fit, other traffic
        /// permitting. `u64::MAX` when the rate is zero (never).
        retry_after_ns: u64,
    },
}

/// A deterministic token bucket.
///
/// State is two `u64`s behind no lock — the owner (a
/// [`Tenant`](crate::Tenant)) serializes access. Refill saturates at the
/// configured burst, and the rate itself lives in the tenant's config so
/// runtime updates apply on the next call.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Current level in micro-tokens.
    micro: u64,
    /// Instant of the last refill.
    last_ns: u64,
    /// Whether the bucket has been touched (first call starts full).
    primed: bool,
}

impl Default for TokenBucket {
    fn default() -> Self {
        Self::new()
    }
}

impl TokenBucket {
    /// A bucket that starts full at first use.
    pub fn new() -> Self {
        TokenBucket {
            micro: 0,
            last_ns: 0,
            primed: false,
        }
    }

    fn refill(&mut self, rate: &TokenRate, now_ns: u64) {
        let cap = rate.burst.saturating_mul(MICRO);
        if !self.primed {
            self.primed = true;
            self.micro = cap;
            self.last_ns = now_ns;
            return;
        }
        let elapsed = now_ns.saturating_sub(self.last_ns);
        // micro-tokens accrued = elapsed_ns * tokens_per_sec / 1e9 * 1e6.
        let add = (elapsed as u128 * rate.tokens_per_sec as u128 / 1_000) as u64;
        if add > 0 {
            self.micro = self.micro.saturating_add(add).min(cap);
            self.last_ns = now_ns;
        }
    }

    /// Try to take `tokens` whole tokens at instant `now_ns`.
    pub fn try_take(&mut self, rate: &TokenRate, tokens: u64, now_ns: u64) -> RateDecision {
        self.refill(rate, now_ns);
        let need = tokens.saturating_mul(MICRO);
        if need <= self.micro {
            self.micro -= need;
            return RateDecision::Granted;
        }
        let deficit = need - self.micro;
        let retry_after_ns = if rate.tokens_per_sec == 0 {
            u64::MAX
        } else {
            // ns until the deficit refills: deficit_micro * 1e3 / rate.
            ((deficit as u128 * 1_000).div_ceil(rate.tokens_per_sec as u128)).min(u64::MAX as u128)
                as u64
        };
        RateDecision::Denied { retry_after_ns }
    }

    /// Return `tokens` to the bucket (a downstream layer refused work the
    /// bucket already granted — the refusal must not bill the tenant).
    pub fn refund(&mut self, rate: &TokenRate, tokens: u64) {
        let cap = rate.burst.saturating_mul(MICRO);
        self.micro = self
            .micro
            .saturating_add(tokens.saturating_mul(MICRO))
            .min(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(tokens_per_sec: u64, burst: u64) -> TokenRate {
        TokenRate {
            tokens_per_sec,
            burst,
        }
    }

    #[test]
    fn starts_full_and_denies_past_burst() {
        let mut b = TokenBucket::new();
        let r = rate(100, 10);
        assert_eq!(b.try_take(&r, 10, 0), RateDecision::Granted);
        match b.try_take(&r, 1, 0) {
            RateDecision::Denied { retry_after_ns } => {
                // 1 token at 100/s = 10 ms.
                assert_eq!(retry_after_ns, 10_000_000);
            }
            RateDecision::Granted => panic!("empty bucket granted"),
        }
    }

    #[test]
    fn refills_deterministically() {
        let mut b = TokenBucket::new();
        let r = rate(1_000, 50);
        assert_eq!(b.try_take(&r, 50, 0), RateDecision::Granted);
        // 5 ms at 1000 tokens/s = 5 tokens.
        assert_eq!(b.try_take(&r, 5, 5_000_000), RateDecision::Granted);
        assert!(matches!(
            b.try_take(&r, 1, 5_000_000),
            RateDecision::Denied { .. }
        ));
        // Identical instants replay to identical decisions.
        let mut c = TokenBucket::new();
        assert_eq!(c.try_take(&r, 50, 0), RateDecision::Granted);
        assert_eq!(c.try_take(&r, 5, 5_000_000), RateDecision::Granted);
        assert!(matches!(
            c.try_take(&r, 1, 5_000_000),
            RateDecision::Denied { .. }
        ));
    }

    #[test]
    fn refill_saturates_at_burst() {
        let mut b = TokenBucket::new();
        let r = rate(1_000_000, 8);
        assert_eq!(b.try_take(&r, 8, 0), RateDecision::Granted);
        // An hour later the bucket holds burst, not an hour of rate.
        assert_eq!(b.try_take(&r, 8, 3_600_000_000_000), RateDecision::Granted);
        assert!(matches!(
            b.try_take(&r, 9, 3_600_000_000_000),
            RateDecision::Denied { .. }
        ));
    }

    #[test]
    fn refund_restores_tokens() {
        let mut b = TokenBucket::new();
        let r = rate(10, 4);
        assert_eq!(b.try_take(&r, 4, 0), RateDecision::Granted);
        b.refund(&r, 4);
        assert_eq!(b.try_take(&r, 4, 0), RateDecision::Granted);
    }

    #[test]
    fn zero_rate_never_retries() {
        let mut b = TokenBucket::new();
        let r = rate(0, 2);
        assert_eq!(b.try_take(&r, 2, 0), RateDecision::Granted);
        assert_eq!(
            b.try_take(&r, 1, u64::MAX / 2),
            RateDecision::Denied {
                retry_after_ns: u64::MAX
            }
        );
    }
}
