//! # rtft-tenant — tenant lifecycle for the fault-tolerant fleet
//!
//! The paper's framework supervises a fixed set of replicated task
//! graphs; this crate makes the *tenant* — the principal those graphs
//! run on behalf of — a first-class runtime object (S21 in DESIGN.md).
//! A [`TenantManager`] owns:
//!
//! * **Lifecycle** — tenants attach, serve traffic, drain, and detach at
//!   runtime without restarting the fleet:
//!   [`Attaching`](TenantState::Attaching) →
//!   [`Active`](TenantState::Active) →
//!   [`Draining`](TenantState::Draining) →
//!   [`Detached`](TenantState::Detached). Illegal transitions are
//!   rejected, and a detach cannot complete while the tenant still has
//!   jobs in flight.
//! * **Policy** — a per-tenant [`TenantConfig`]: redundancy template for
//!   the jobs it submits, a deterministic token-bucket
//!   [`TokenRate`] limit, a max-in-flight-jobs cap, and a queue quota on
//!   buffered tokens. All updatable at runtime via
//!   [`TenantManager::update`].
//! * **Sharded supervision** — tenants are hashed across N supervisor
//!   shards, so admission checks and metrics folding stop serializing on
//!   one lock. Each shard folds its tenants' per-job registries into a
//!   per-shard rollup (plus [`Hll`](rtft_obs::Hll) unique-stream /
//!   unique-tenant sketches); [`TenantManager::report`] merges the
//!   shards with commutative operations only, so the report is
//!   **byte-identical at any shard count**.
//! * **Admission** — [`TenantManager::admit_tokens`] (queue quota,
//!   checked before tokens are buffered) and
//!   [`TenantManager::admit_flush`] (state, in-flight cap, token rate —
//!   checked *before* a flush reaches the fleet executor). Refusals are
//!   structured [`TenantReject`] values that carry the fleet's
//!   [`RejectReason`](rtft_fleet::RejectReason) vocabulary, so a server
//!   can map every refusal 1:1 onto a wire code. Refusals are lossless:
//!   nothing the caller buffered is dropped.
//!
//! Accounting per tenant ends up in a [`TenantReport`]: jobs, tokens,
//! faults detected, detection-latency histogram, and time-to-recovery.
//!
//! ```
//! use rtft_tenant::{TenantConfig, TenantManager, TenantState};
//!
//! let mgr = TenantManager::new(4);
//! let id = mgr.attach("acme", TenantConfig::default()).unwrap();
//! assert_eq!(mgr.get(id).unwrap().state(), TenantState::Active);
//! mgr.admit_tokens(id, 16).unwrap();
//! mgr.admit_flush(id, 16, 0).unwrap();
//! mgr.begin_detach(id).unwrap();
//! assert!(mgr.admit_tokens(id, 1).is_err()); // draining refuses new work
//! ```

#![warn(missing_docs)]

mod manager;
mod rate;
mod report;
mod tenant;

pub use manager::{AttachError, Shard, TenantError, TenantManager, TenantReject};
pub use rate::{RateDecision, TokenBucket};
pub use report::{TenantDirectoryReport, TenantReport};
pub use tenant::{Tenant, TenantConfig, TenantId, TenantState, TokenRate};
