//! Per-tenant and directory-level reports.

use rtft_obs::export::registry_to_json;
use rtft_obs::json::{array, JsonObject};
use rtft_obs::{HistogramSnapshot, MetricsRegistry};

use crate::tenant::{Tenant, TenantState};

/// Point-in-time accounting for one tenant.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant's id.
    pub id: u64,
    /// The name it attached under.
    pub name: String,
    /// Lifecycle state at snapshot time.
    pub state: TenantState,
    /// Jobs settled on the tenant's behalf.
    pub jobs: u64,
    /// Tokens admitted past the queue quota.
    pub tokens_in: u64,
    /// Tokens delivered by settled jobs.
    pub delivered: u64,
    /// Tokens buffered (admitted, not yet flushed) right now.
    pub buffered: u64,
    /// Jobs in flight right now.
    pub inflight: u64,
    /// Faulty replicas detected across the tenant's jobs.
    pub faults: u64,
    /// Tokens refused by the queue quota or in-flight cap.
    pub rejected_quota: u64,
    /// Tokens refused by the token-rate limit.
    pub rejected_rate: u64,
    /// Tokens refused because the tenant was draining or detached.
    pub rejected_draining: u64,
    /// Detection latency across the tenant's jobs (DES: virtual ns).
    pub detection_latency_ns: HistogramSnapshot,
    /// Time-to-recovery for jobs that healed through replacement.
    pub recovery_ns: HistogramSnapshot,
}

impl TenantReport {
    pub(crate) fn snapshot(tenant: &Tenant) -> TenantReport {
        let c = tenant.counters();
        TenantReport {
            id: tenant.id().0,
            name: tenant.name().to_string(),
            state: tenant.state(),
            jobs: c.jobs,
            tokens_in: c.tokens_in,
            delivered: c.delivered,
            buffered: c.buffered,
            inflight: c.inflight,
            faults: c.faults,
            rejected_quota: c.rejected_quota,
            rejected_rate: c.rejected_rate,
            rejected_draining: c.rejected_draining,
            detection_latency_ns: tenant.detection_latency_ns().snapshot(),
            recovery_ns: tenant.recovery_ns().snapshot(),
        }
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64_field("id", self.id)
            .str_field("name", &self.name)
            .str_field("state", self.state.label())
            .u64_field("jobs", self.jobs)
            .u64_field("tokens_in", self.tokens_in)
            .u64_field("delivered", self.delivered)
            .u64_field("buffered", self.buffered)
            .u64_field("inflight", self.inflight)
            .u64_field("faults", self.faults)
            .u64_field("rejected_quota", self.rejected_quota)
            .u64_field("rejected_rate", self.rejected_rate)
            .u64_field("rejected_draining", self.rejected_draining)
            .raw_field("detection_latency_ns", &hist(&self.detection_latency_ns))
            .raw_field("recovery_ns", &hist(&self.recovery_ns))
            .finish()
    }
}

fn hist(s: &HistogramSnapshot) -> String {
    JsonObject::new()
        .u64_field("count", s.count)
        .u64_field("max", s.max)
        .u64_field("p50", s.p50)
        .u64_field("p99", s.p99)
        .finish()
}

/// The whole directory: every tenant (sorted by id), the merged shard
/// rollup registry, and the merged distinct-count sketches.
///
/// Serialization is byte-identical at any shard count — tenants are
/// sorted globally and every cross-shard merge is commutative. The shard
/// count itself is deliberately *not* part of the report.
#[derive(Debug, Clone)]
pub struct TenantDirectoryReport {
    /// Per-tenant reports, ascending by id.
    pub tenants: Vec<TenantReport>,
    /// HLL estimate of distinct tenants ever attached.
    pub unique_tenants: u64,
    /// HLL estimate of distinct streams opened across all tenants.
    pub unique_streams: u64,
    /// The merged per-shard rollup (absorbed job registries).
    pub rollup: MetricsRegistry,
}

impl TenantDirectoryReport {
    /// Renders the directory as a JSON object (tenants sorted by id).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64_field("attached", self.tenants.len() as u64)
            .u64_field("unique_tenants", self.unique_tenants)
            .u64_field("unique_streams", self.unique_streams)
            .raw_field("tenants", &array(self.tenants.iter().map(|t| t.to_json())))
            .raw_field("rollup", &registry_to_json(&self.rollup))
            .finish()
    }

    /// The report for one tenant id, if present.
    pub fn tenant(&self, id: u64) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.id == id)
    }
}
