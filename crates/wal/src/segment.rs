//! Segment files: naming, headers, and the recovery scan.
//!
//! A log directory holds `NNNNNNNNNNNNNNNN.wal` files (zero-padded hex
//! segment index). Each starts with a fixed header:
//!
//! ```text
//! +-------------+---------------+--------------------+-------------------+
//! | "RTFTWAL1"  | version (u32) | segment index (u64)| base seq (u64)    |
//! +-------------+---------------+--------------------+-------------------+
//! ```
//!
//! followed by record frames. `base seq` is the sequence number of the
//! first record in the segment, so a log whose oldest segments were
//! pruned still yields correct global sequence numbers.

use crate::record::{decode_frame, WalRecord};
use std::fs;
use std::io::{self, Read};
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"RTFTWAL1";

/// On-disk format version. Bumped to 2 when `StreamOpen` grew the tenant
/// id — v1 segments are refused rather than misparsed.
pub const SEGMENT_VERSION: u32 = 2;

/// Serialized header size.
pub const SEGMENT_HEADER: usize = 8 + 4 + 8 + 8;

/// File name for segment `index`.
pub fn segment_file_name(index: u64) -> String {
    format!("{index:016x}.wal")
}

/// Parse a segment index back out of a file name; `None` for foreign files.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(".wal")?;
    if stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

/// Serialize a segment header.
pub fn encode_header(index: u64, base_seq: u64) -> [u8; SEGMENT_HEADER] {
    let mut out = [0u8; SEGMENT_HEADER];
    out[0..8].copy_from_slice(&SEGMENT_MAGIC);
    out[8..12].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out[12..20].copy_from_slice(&index.to_le_bytes());
    out[20..28].copy_from_slice(&base_seq.to_le_bytes());
    out
}

/// Parse and validate a segment header. `None` = torn or foreign header.
pub fn decode_header(buf: &[u8]) -> Option<(u64, u64)> {
    if buf.len() < SEGMENT_HEADER {
        return None;
    }
    if buf[0..8] != SEGMENT_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().ok()?);
    if version != SEGMENT_VERSION {
        return None;
    }
    let index = u64::from_le_bytes(buf[12..20].try_into().ok()?);
    let base_seq = u64::from_le_bytes(buf[20..28].try_into().ok()?);
    Some((index, base_seq))
}

/// Everything the recovery scan learned about one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Path the segment was read from.
    pub path: PathBuf,
    /// Segment index from the header.
    pub index: u64,
    /// Sequence number of the first record.
    pub base_seq: u64,
    /// Valid records, each with its global sequence number.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte offset of the end of the last valid frame (truncation point).
    pub valid_len: u64,
    /// Bytes past `valid_len` that failed to parse (the torn tail).
    pub torn_bytes: u64,
    /// Torn records dropped: 1 when a partial/corrupt frame was found.
    pub torn_records: u64,
    /// Whether the header itself was unreadable (segment contributes
    /// nothing and should be deleted by recovery).
    pub header_torn: bool,
}

impl SegmentScan {
    /// Sequence number one past the last valid record.
    pub fn next_seq(&self) -> u64 {
        self.base_seq + self.records.len() as u64
    }
}

/// Scan one segment file, tolerating a torn tail.
///
/// `strict` is set for non-final segments: any torn bytes there mean the
/// log is corrupt in the middle, which recovery refuses to paper over.
pub fn scan_segment(path: &Path, strict: bool) -> io::Result<SegmentScan> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;

    let header = decode_header(&bytes);
    let (index, base_seq) = match header {
        Some(h) => h,
        None => {
            if strict {
                return Err(corrupt(path, 0, "unreadable segment header"));
            }
            return Ok(SegmentScan {
                path: path.to_path_buf(),
                index: 0,
                base_seq: 0,
                records: Vec::new(),
                valid_len: 0,
                torn_bytes: bytes.len() as u64,
                torn_records: u64::from(!bytes.is_empty()),
                header_torn: true,
            });
        }
    };

    let mut records = Vec::new();
    let mut at = SEGMENT_HEADER;
    let mut seq = base_seq;
    let mut torn_bytes = 0u64;
    let mut torn_records = 0u64;
    while at < bytes.len() {
        match decode_frame(&bytes[at..]) {
            Ok((rec, used)) => {
                records.push((seq, rec));
                seq += 1;
                at += used;
            }
            Err(()) => {
                if strict {
                    return Err(corrupt(path, at, "bad record frame"));
                }
                torn_bytes = (bytes.len() - at) as u64;
                torn_records = 1;
                break;
            }
        }
    }

    Ok(SegmentScan {
        path: path.to_path_buf(),
        index,
        base_seq,
        records,
        valid_len: at as u64,
        torn_bytes,
        torn_records,
        header_torn: false,
    })
}

/// List the segment files in `dir`, ordered by segment index.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(index) = parse_segment_name(name) {
            out.push((index, entry.path()));
        }
    }
    out.sort_by_key(|(index, _)| *index);
    Ok(out)
}

fn corrupt(path: &Path, at: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {what} at offset {at}", path.display()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for index in [0u64, 1, 0xdead_beef, u64::MAX] {
            let name = segment_file_name(index);
            assert_eq!(parse_segment_name(&name), Some(index));
        }
        assert_eq!(parse_segment_name("garbage.wal"), None);
        assert_eq!(parse_segment_name("0000000000000000.tmp"), None);
        assert_eq!(parse_segment_name("000000000000000z.wal"), None);
    }

    #[test]
    fn headers_round_trip() {
        let h = encode_header(42, 9001);
        assert_eq!(decode_header(&h), Some((42, 9001)));
        assert_eq!(decode_header(&h[..SEGMENT_HEADER - 1]), None);
        let mut bad = h;
        bad[0] ^= 1;
        assert_eq!(decode_header(&bad), None);
    }
}
