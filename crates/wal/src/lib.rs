//! # rtft-wal — durable ingestion log with replay-as-fault-detection
//!
//! The streaming server (`rtft-serve`) accepts tokens over TCP and runs
//! them through a fault-tolerant fleet. Process-level redundancy masks
//! faults *inside* a job, but a crash of the server itself still loses
//! every buffered token. This crate closes that gap with a write-ahead
//! log in the paper's own spirit: because the pipelines are deterministic
//! Kahn networks, the log *is* a fault detector — re-running a logged
//! stream must reproduce the logged output digests bit-for-bit, and any
//! divergence is a detected transient fault in the original run.
//!
//! Three mechanisms, all std-only:
//!
//! * **Checksummed record frames** ([`WalRecord`]) — length-prefixed
//!   bodies guarded by the same streaming FNV-1a digest
//!   ([`rtft_kpn::Digest`]) the selector uses for output equivalence.
//! * **Group commit** — [`Wal::append`] is durable on return, but
//!   concurrent appenders share fsyncs: one leader syncs while followers
//!   park on a condvar, and the batch size per fsync is recorded in the
//!   `wal.commit.batch` histogram.
//! * **Torn-tail recovery** — [`Wal::open`] scans the segments, truncates
//!   the first invalid frame of the final segment (a crash mid-write),
//!   and reports what it dropped; corruption in the *middle* of the log
//!   is refused rather than silently skipped.

#![warn(missing_docs)]

mod record;
mod segment;

pub use record::{WalRecord, FRAME_HEADER, MAX_RECORD};
pub use segment::{segment_file_name, SEGMENT_HEADER, SEGMENT_MAGIC};

use rtft_obs::{Counter, Histogram, MetricsRegistry};
use segment::{encode_header, list_segments, scan_segment, SegmentScan};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Configuration for opening a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Rotate to a new segment once the current one exceeds this size.
    pub segment_bytes: u64,
    /// Keep at most this many *sealed* segments (0 = keep all). Pruned
    /// segments shorten replay history; sequence numbers stay global.
    pub retain_segments: usize,
    /// Issue real fsyncs. Turning this off makes `append` a buffered
    /// write — useful for benchmarking the log structure itself.
    pub fsync: bool,
}

impl WalConfig {
    /// Defaults: 8 MiB segments, keep everything, fsync on.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_bytes: 8 << 20,
            retain_segments: 0,
            fsync: true,
        }
    }

    /// Set the rotation threshold.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(SEGMENT_HEADER as u64 + 1);
        self
    }

    /// Set the sealed-segment retention count (0 = unlimited).
    pub fn with_retention(mut self, segments: usize) -> Self {
        self.retain_segments = segments;
        self
    }

    /// Enable or disable fsync.
    pub fn with_fsync(mut self, on: bool) -> Self {
        self.fsync = on;
        self
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct Recovery {
    /// Every valid record, in sequence order, with global sequence numbers.
    pub records: Vec<(u64, WalRecord)>,
    /// Records dropped by torn-tail truncation (0 or 1 per recovery).
    pub truncated_records: u64,
    /// Bytes physically truncated off the final segment.
    pub truncated_bytes: u64,
    /// Segment files found.
    pub segments: u64,
    /// Wall-clock nanoseconds the scan took.
    pub recovery_ns: u64,
}

/// Summary of a read-only [`read_log`] scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogSummary {
    /// Valid records found.
    pub records: u64,
    /// Segment files scanned.
    pub segments: u64,
    /// Torn records at the tail (not truncated — the scan is read-only).
    pub truncated_records: u64,
    /// Torn bytes at the tail.
    pub truncated_bytes: u64,
}

struct WalState {
    file: Arc<File>,
    seg_index: u64,
    seg_len: u64,
    /// Global logical bytes written since open (commit targets).
    written: u64,
    /// Prefix of `written` known durable on disk.
    durable: u64,
    /// A leader is currently inside `sync_data`.
    syncing: bool,
    /// Appends since the last fsync began (group-commit batch size).
    batch_pending: u64,
    next_seq: u64,
    sealed: Vec<(u64, PathBuf)>,
}

struct WalInner {
    cfg: WalConfig,
    state: Mutex<WalState>,
    committed: Condvar,
    registry: MetricsRegistry,
    c_appends: Counter,
    c_append_bytes: Counter,
    c_fsyncs: Counter,
    c_rotations: Counter,
    c_pruned: Counter,
    h_batch: Histogram,
}

/// A durable append-only log. Cheap to clone; all clones share one file
/// and one group-commit queue.
#[derive(Clone)]
pub struct Wal {
    inner: Arc<WalInner>,
}

impl Wal {
    /// Open (or create) the log in `cfg.dir`, recovering existing
    /// segments. The torn tail of the final segment, if any, is
    /// physically truncated so the next append lands on a valid frame
    /// boundary.
    pub fn open(cfg: WalConfig) -> io::Result<(Wal, Recovery)> {
        let started = Instant::now();
        fs::create_dir_all(&cfg.dir)?;

        let mut scans = scan_dir(&cfg.dir)?;
        let mut truncated_records = 0u64;
        let mut truncated_bytes = 0u64;

        // A final segment whose *header* never hit the disk contributes
        // nothing; remove it and fall back to the previous segment.
        if scans.last().is_some_and(|s| s.header_torn) {
            let torn = scans.pop().expect("non-empty");
            truncated_records += torn.torn_records;
            truncated_bytes += torn.torn_bytes;
            fs::remove_file(&torn.path)?;
        }

        let segments = scans.len() as u64;
        let (active, next_seq) = match scans.last() {
            Some(last) => {
                truncated_records += last.torn_records;
                truncated_bytes += last.torn_bytes;
                if last.torn_bytes > 0 {
                    let f = OpenOptions::new().write(true).open(&last.path)?;
                    f.set_len(last.valid_len)?;
                    if cfg.fsync {
                        f.sync_data()?;
                    }
                }
                let file = OpenOptions::new().append(true).open(&last.path)?;
                ((last.index, file, last.valid_len), last.next_seq())
            }
            None => {
                let next_seq = 0;
                let (file, len) = create_segment(&cfg, 0, next_seq)?;
                ((0, file, len), next_seq)
            }
        };

        let mut records = Vec::new();
        let mut sealed = Vec::new();
        for scan in &mut scans {
            if scan.index != active.0 {
                sealed.push((scan.index, scan.path.clone()));
            }
            records.append(&mut scan.records);
        }

        let registry = MetricsRegistry::new();
        let inner = WalInner {
            c_appends: registry.counter("wal.appends"),
            c_append_bytes: registry.counter("wal.append.bytes"),
            c_fsyncs: registry.counter("wal.fsyncs"),
            c_rotations: registry.counter("wal.rotations"),
            c_pruned: registry.counter("wal.segments.pruned"),
            h_batch: registry.histogram("wal.commit.batch"),
            state: Mutex::new(WalState {
                file: Arc::new(active.1),
                seg_index: active.0,
                seg_len: active.2,
                written: 0,
                durable: 0,
                syncing: false,
                batch_pending: 0,
                next_seq,
                sealed,
            }),
            committed: Condvar::new(),
            registry,
            cfg,
        };
        let recovery_ns = started.elapsed().as_nanos() as u64;
        inner.registry.gauge("wal.recovery.ns").set(recovery_ns);
        inner
            .registry
            .counter("wal.recovery.records")
            .add(records.len() as u64);
        inner
            .registry
            .counter("wal.recovery.truncated.records")
            .add(truncated_records);
        inner
            .registry
            .counter("wal.recovery.truncated.bytes")
            .add(truncated_bytes);

        Ok((
            Wal {
                inner: Arc::new(inner),
            },
            Recovery {
                records,
                truncated_records,
                truncated_bytes,
                segments: segments.max(1),
                recovery_ns,
            },
        ))
    }

    /// Append one record durably. Returns its global sequence number.
    /// When the call returns, the record survives a crash (modulo
    /// `fsync: false`).
    pub fn append(&self, rec: &WalRecord) -> io::Result<u64> {
        let (seq, target) = self.write_frames(std::slice::from_ref(rec))?;
        self.commit(target)?;
        Ok(seq)
    }

    /// Append a batch of records with a single durability point. Returns
    /// the sequence number of the first record.
    pub fn append_batch(&self, recs: &[WalRecord]) -> io::Result<u64> {
        if recs.is_empty() {
            return Ok(self.next_seq());
        }
        let (first_seq, target) = self.write_frames(recs)?;
        self.commit(target)?;
        Ok(first_seq)
    }

    /// Force everything appended so far onto disk.
    pub fn sync(&self) -> io::Result<()> {
        let target = self.lock().written;
        self.commit(target)
    }

    /// The sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.lock().next_seq
    }

    /// The log's metrics: `wal.appends`, `wal.fsyncs`, `wal.append.bytes`,
    /// `wal.commit.batch` (histogram), `wal.rotations`,
    /// `wal.segments.pruned`, `wal.recovery.*`.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// Directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.inner.cfg.dir
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WalState> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Write the frames under the state lock; returns (first seq, commit
    /// target). Durability happens in `commit`.
    fn write_frames(&self, recs: &[WalRecord]) -> io::Result<(u64, u64)> {
        let mut buf = Vec::new();
        for rec in recs {
            buf.extend_from_slice(&rec.encode_frame());
        }

        let mut st = self.lock();
        if st.seg_len >= self.inner.cfg.segment_bytes {
            self.rotate(&mut st)?;
        }
        (&*st.file).write_all(&buf)?;
        st.seg_len += buf.len() as u64;
        st.written += buf.len() as u64;
        st.batch_pending += recs.len() as u64;
        let first_seq = st.next_seq;
        st.next_seq += recs.len() as u64;
        let target = st.written;
        drop(st);

        self.inner.c_appends.add(recs.len() as u64);
        self.inner.c_append_bytes.add(buf.len() as u64);
        Ok((first_seq, target))
    }

    /// Group commit: wait until at least `target` logical bytes are
    /// durable. The first waiter to find no sync in flight becomes the
    /// leader and fsyncs on behalf of everyone queued behind it.
    fn commit(&self, target: u64) -> io::Result<()> {
        let mut st = self.lock();
        loop {
            if st.durable >= target {
                return Ok(());
            }
            if st.syncing {
                st = self
                    .inner
                    .committed
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                continue;
            }
            st.syncing = true;
            let to = st.written;
            let batch = std::mem::take(&mut st.batch_pending);
            let file = Arc::clone(&st.file);
            drop(st);

            let res = if self.inner.cfg.fsync {
                file.sync_data()
            } else {
                Ok(())
            };

            st = self.lock();
            st.syncing = false;
            match res {
                Ok(()) => {
                    st.durable = st.durable.max(to);
                    self.inner.c_fsyncs.inc();
                    self.inner.h_batch.record(batch);
                    self.inner.committed.notify_all();
                }
                Err(e) => {
                    // Give the batch back so a retry re-counts it.
                    st.batch_pending += batch;
                    self.inner.committed.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Seal the current segment and start the next one. Called with the
    /// state lock held; the old file is fully synced first so rotation
    /// never leaves an unsynced sealed segment behind.
    fn rotate(&self, st: &mut WalState) -> io::Result<()> {
        if self.inner.cfg.fsync {
            st.file.sync_data()?;
        }
        st.durable = st.durable.max(st.written);

        let old_index = st.seg_index;
        let old_path = self.inner.cfg.dir.join(segment_file_name(old_index));
        let new_index = old_index + 1;
        let (file, len) = create_segment(&self.inner.cfg, new_index, st.next_seq)?;
        st.file = Arc::new(file);
        st.seg_index = new_index;
        st.seg_len = len;
        st.sealed.push((old_index, old_path));
        self.inner.c_rotations.inc();
        self.inner.committed.notify_all();

        let retain = self.inner.cfg.retain_segments;
        if retain > 0 {
            while st.sealed.len() > retain {
                let (_, path) = st.sealed.remove(0);
                fs::remove_file(&path)?;
                self.inner.c_pruned.inc();
            }
        }
        Ok(())
    }
}

/// Read every record in a quiesced log directory without modifying it.
///
/// Used by replay verification: unlike [`Wal::open`] this never
/// truncates, so a suspect log can be examined in place while the
/// original server still owns it.
pub fn read_log(dir: &Path) -> io::Result<(Vec<(u64, WalRecord)>, LogSummary)> {
    let mut scans = scan_dir(dir)?;
    let mut records = Vec::new();
    let mut summary = LogSummary {
        records: 0,
        segments: scans.len() as u64,
        truncated_records: 0,
        truncated_bytes: 0,
    };
    for scan in &mut scans {
        summary.truncated_records += scan.torn_records;
        summary.truncated_bytes += scan.torn_bytes;
        records.append(&mut scan.records);
    }
    summary.records = records.len() as u64;
    Ok((records, summary))
}

/// Scan all segments in order; every segment but the last is strict.
fn scan_dir(dir: &Path) -> io::Result<Vec<SegmentScan>> {
    let listed = list_segments(dir)?;
    let last = listed.len().saturating_sub(1);
    let mut scans = Vec::with_capacity(listed.len());
    for (pos, (_, path)) in listed.iter().enumerate() {
        scans.push(scan_segment(path, pos != last)?);
    }
    Ok(scans)
}

fn create_segment(cfg: &WalConfig, index: u64, base_seq: u64) -> io::Result<(File, u64)> {
    let path = cfg.dir.join(segment_file_name(index));
    let mut file = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(&path)?;
    let header = encode_header(index, base_seq);
    file.write_all(&header)?;
    if cfg.fsync {
        file.sync_all()?;
        // Make the new directory entry itself durable.
        if let Ok(d) = File::open(&cfg.dir) {
            let _ = d.sync_all();
        }
    }
    Ok((file, header.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("rtft-wal-{}-{tag}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            TempDir(dir)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn tokens(stream: u32, n: usize) -> WalRecord {
        WalRecord::Tokens {
            stream,
            payloads: (0..n)
                .map(|i| rtft_kpn::Bytes::from(vec![i as u8; i % 7 + 1]))
                .collect(),
        }
    }

    #[test]
    fn append_then_reopen_recovers_everything() {
        let dir = TempDir::new("roundtrip");
        let cfg = WalConfig::new(dir.path()).with_fsync(false);
        let (wal, rec) = Wal::open(cfg.clone()).expect("open");
        assert!(rec.records.is_empty());
        let mut written = Vec::new();
        for i in 0..20u32 {
            let r = tokens(i, i as usize % 5);
            let seq = wal.append(&r).expect("append");
            assert_eq!(seq, i as u64);
            written.push((seq, r));
        }
        wal.sync().expect("sync");
        drop(wal);

        let (wal, rec) = Wal::open(cfg).expect("reopen");
        assert_eq!(rec.records, written);
        assert_eq!(rec.truncated_records, 0);
        assert_eq!(wal.next_seq(), 20);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_appendable() {
        let dir = TempDir::new("torn");
        let cfg = WalConfig::new(dir.path()).with_fsync(false);
        let (wal, _) = Wal::open(cfg.clone()).expect("open");
        for i in 0..5u32 {
            wal.append(&tokens(i, 3)).expect("append");
        }
        drop(wal);

        // Simulate a crash mid-write: garbage after the last valid frame.
        let seg = dir.path().join(segment_file_name(0));
        let mut f = OpenOptions::new().append(true).open(&seg).expect("seg");
        f.write_all(&[0xAB; 29]).expect("garbage");
        drop(f);

        let (wal, rec) = Wal::open(cfg.clone()).expect("recover");
        assert_eq!(rec.records.len(), 5);
        assert_eq!(rec.truncated_records, 1);
        assert_eq!(rec.truncated_bytes, 29);
        // The truncation is physical: a fresh append continues the log.
        assert_eq!(wal.append(&tokens(9, 1)).expect("append"), 5);
        drop(wal);

        let (_, rec) = Wal::open(cfg).expect("reopen");
        assert_eq!(rec.records.len(), 6);
        assert_eq!(rec.truncated_records, 0);
    }

    #[test]
    fn rotation_preserves_global_sequence_numbers() {
        let dir = TempDir::new("rotate");
        let cfg = WalConfig::new(dir.path())
            .with_fsync(false)
            .with_segment_bytes(256);
        let (wal, _) = Wal::open(cfg.clone()).expect("open");
        for i in 0..40u32 {
            wal.append(&tokens(i, 4)).expect("append");
        }
        assert!(wal.registry().counter("wal.rotations").get() >= 2);
        drop(wal);

        let (_, rec) = Wal::open(cfg).expect("reopen");
        assert!(
            rec.segments >= 3,
            "expected several segments, got {}",
            rec.segments
        );
        let seqs: Vec<u64> = rec.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (0..40).collect::<Vec<u64>>());
    }

    #[test]
    fn retention_prunes_oldest_sealed_segments() {
        let dir = TempDir::new("retain");
        let cfg = WalConfig::new(dir.path())
            .with_fsync(false)
            .with_segment_bytes(256)
            .with_retention(2);
        let (wal, _) = Wal::open(cfg.clone()).expect("open");
        for i in 0..60u32 {
            wal.append(&tokens(i, 4)).expect("append");
        }
        assert!(wal.registry().counter("wal.segments.pruned").get() >= 1);
        drop(wal);

        let (_, rec) = Wal::open(cfg).expect("reopen");
        assert!(
            rec.segments <= 3,
            "retention bound violated: {}",
            rec.segments
        );
        // Sequence numbers survive pruning: the tail is intact and global.
        let last = rec.records.last().expect("records").0;
        assert_eq!(last, 59);
        let first = rec.records.first().expect("records").0;
        assert!(first > 0, "oldest records should have been pruned");
        let seqs: Vec<u64> = rec.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (first..=last).collect::<Vec<u64>>());
    }

    #[test]
    fn concurrent_appends_all_become_durable() {
        let dir = TempDir::new("group");
        let cfg = WalConfig::new(dir.path()).with_segment_bytes(4096);
        let (wal, _) = Wal::open(cfg.clone()).expect("open");
        let threads: Vec<_> = (0..4u32)
            .map(|t| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for i in 0..25u32 {
                        wal.append(&tokens(t, (i % 3 + 1) as usize))
                            .expect("append");
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().expect("join");
        }
        let appends = wal.registry().counter("wal.appends").get();
        let fsyncs = wal.registry().counter("wal.fsyncs").get();
        assert_eq!(appends, 100);
        assert!(fsyncs >= 1);
        assert_eq!(wal.registry().histogram("wal.commit.batch").sum(), 100);
        drop(wal);

        let (_, rec) = Wal::open(cfg).expect("reopen");
        assert_eq!(rec.records.len(), 100);
    }

    #[test]
    fn append_batch_is_one_durability_point() {
        let dir = TempDir::new("batch");
        let cfg = WalConfig::new(dir.path());
        let (wal, _) = Wal::open(cfg.clone()).expect("open");
        let recs: Vec<WalRecord> = (0..10u32).map(|i| tokens(i, 2)).collect();
        let first = wal.append_batch(&recs).expect("batch");
        assert_eq!(first, 0);
        assert_eq!(wal.next_seq(), 10);
        assert_eq!(wal.registry().counter("wal.fsyncs").get(), 1);
        drop(wal);
        let (_, rec) = Wal::open(cfg).expect("reopen");
        assert_eq!(rec.records.len(), 10);
    }

    #[test]
    fn read_log_matches_recovery_without_truncating() {
        let dir = TempDir::new("readlog");
        let cfg = WalConfig::new(dir.path()).with_fsync(false);
        let (wal, _) = Wal::open(cfg).expect("open");
        for i in 0..8u32 {
            wal.append(&tokens(i, 2)).expect("append");
        }
        drop(wal);
        let seg = dir.path().join(segment_file_name(0));
        let valid_len = fs::metadata(&seg).expect("meta").len();
        let mut f = OpenOptions::new().append(true).open(&seg).expect("seg");
        f.write_all(&[0x11; 7]).expect("garbage");
        drop(f);

        let (records, summary) = read_log(dir.path()).expect("read");
        assert_eq!(records.len(), 8);
        assert_eq!(summary.truncated_records, 1);
        assert_eq!(summary.truncated_bytes, 7);
        // Read-only: the torn bytes are still there afterwards.
        assert_eq!(fs::metadata(&seg).expect("meta").len(), valid_len + 7);
    }

    #[test]
    fn empty_directory_opens_fresh() {
        let dir = TempDir::new("fresh");
        let (wal, rec) = Wal::open(WalConfig::new(dir.path())).expect("open");
        assert!(rec.records.is_empty());
        assert_eq!(rec.segments, 1);
        assert_eq!(wal.next_seq(), 0);
    }
}
