//! The WAL record vocabulary and its on-disk framing.
//!
//! Every record is written as one *frame*:
//!
//! ```text
//! +----------------+------------------+------------------+
//! | body len (u32) | checksum (u64)   | body (len bytes) |
//! +----------------+------------------+------------------+
//! ```
//!
//! all little-endian. The checksum is the streaming FNV-1a word-at-a-time
//! digest ([`rtft_kpn::Digest`]) over the body — the same function the
//! selector uses for output-equivalence checks, so a replayed stream and a
//! recorded stream are compared in exactly the currency the detector
//! already speaks. A frame whose length field, checksum, or body fails to
//! parse marks the torn tail of a segment: everything before it is valid,
//! everything from it on is discarded by recovery.

use rtft_kpn::{Bytes, Digest};

/// Frame header size: body length (u32) + body checksum (u64).
pub const FRAME_HEADER: usize = 12;

/// Upper bound on a single record body. A length field above this is
/// treated as corruption rather than an instruction to allocate.
pub const MAX_RECORD: usize = 1 << 26;

const TAG_STREAM_OPEN: u8 = 0x01;
const TAG_TOKENS: u8 = 0x02;
const TAG_OUTPUTS: u8 = 0x03;
const TAG_STREAM_CLOSE: u8 = 0x04;

/// One durable event on the ingestion path.
///
/// The record stream for a single server stream is
/// `StreamOpen (Tokens* Outputs*)* StreamClose?` — tokens are logged
/// before they are acknowledged, output digests are logged as each flush
/// settles, so replaying the log deterministically reproduces the
/// delivered prefix and re-derives the undelivered tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A stream was accepted: its id, the pipeline it runs, and the
    /// tenant it belongs to.
    StreamOpen {
        /// Server-assigned stream id.
        stream: u32,
        /// Application pipeline selector (the wire `app` byte).
        app: u8,
        /// Replica count the stream was opened with.
        redundancy: u8,
        /// Tenant the stream was admitted under (0 = untenanted server),
        /// so recovery can re-attach tenants before rebuilding streams.
        tenant: u64,
    },
    /// A batch of ingested token payloads, logged before acknowledgement.
    Tokens {
        /// Stream the tokens belong to.
        stream: u32,
        /// Raw payload bytes, one entry per token, in ingestion order.
        /// Shared `Arc<[u8]>` buffers: the server logs the same ingested
        /// copy it buffers and feeds to the fleet, no clone per token.
        payloads: Vec<Bytes>,
    },
    /// Output digests recorded as a flush settled.
    Outputs {
        /// Stream the outputs belong to.
        stream: u32,
        /// Cumulative index of the first digest (tokens delivered before
        /// this flush).
        first_seq: u64,
        /// Output digest per delivered token, in delivery order.
        digests: Vec<u64>,
    },
    /// The stream was closed cleanly.
    StreamClose {
        /// Stream that closed.
        stream: u32,
    },
}

impl WalRecord {
    /// Serialize the record body (tag + payload, no frame header).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::StreamOpen {
                stream,
                app,
                redundancy,
                tenant,
            } => {
                out.push(TAG_STREAM_OPEN);
                put_u32(&mut out, *stream);
                out.push(*app);
                out.push(*redundancy);
                put_u64(&mut out, *tenant);
            }
            WalRecord::Tokens { stream, payloads } => {
                out.push(TAG_TOKENS);
                put_u32(&mut out, *stream);
                put_u32(&mut out, payloads.len() as u32);
                for p in payloads {
                    put_u32(&mut out, p.len() as u32);
                    out.extend_from_slice(p);
                }
            }
            WalRecord::Outputs {
                stream,
                first_seq,
                digests,
            } => {
                out.push(TAG_OUTPUTS);
                put_u32(&mut out, *stream);
                put_u64(&mut out, *first_seq);
                put_u32(&mut out, digests.len() as u32);
                for d in digests {
                    put_u64(&mut out, *d);
                }
            }
            WalRecord::StreamClose { stream } => {
                out.push(TAG_STREAM_CLOSE);
                put_u32(&mut out, *stream);
            }
        }
        out
    }

    /// Parse a record body. `None` means the body is malformed — the
    /// caller treats the enclosing frame as the torn tail.
    pub fn decode_body(body: &[u8]) -> Option<WalRecord> {
        let mut at = 0usize;
        let tag = get_u8(body, &mut at)?;
        let rec = match tag {
            TAG_STREAM_OPEN => WalRecord::StreamOpen {
                stream: get_u32(body, &mut at)?,
                app: get_u8(body, &mut at)?,
                redundancy: get_u8(body, &mut at)?,
                tenant: get_u64(body, &mut at)?,
            },
            TAG_TOKENS => {
                let stream = get_u32(body, &mut at)?;
                let count = get_u32(body, &mut at)? as usize;
                if count > body.len() {
                    return None;
                }
                let mut payloads = Vec::with_capacity(count);
                for _ in 0..count {
                    let len = get_u32(body, &mut at)? as usize;
                    payloads.push(Bytes::from(get_bytes(body, &mut at, len)?));
                }
                WalRecord::Tokens { stream, payloads }
            }
            TAG_OUTPUTS => {
                let stream = get_u32(body, &mut at)?;
                let first_seq = get_u64(body, &mut at)?;
                let count = get_u32(body, &mut at)? as usize;
                if count.checked_mul(8)? > body.len() {
                    return None;
                }
                let mut digests = Vec::with_capacity(count);
                for _ in 0..count {
                    digests.push(get_u64(body, &mut at)?);
                }
                WalRecord::Outputs {
                    stream,
                    first_seq,
                    digests,
                }
            }
            TAG_STREAM_CLOSE => WalRecord::StreamClose {
                stream: get_u32(body, &mut at)?,
            },
            _ => return None,
        };
        if at != body.len() {
            return None; // trailing garbage inside a checksummed body
        }
        Some(rec)
    }

    /// Serialize the full frame: header + body.
    pub fn encode_frame(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut d = Digest::new();
        d.update(&body);
        let checksum = d.finish();
        let mut out = Vec::with_capacity(FRAME_HEADER + body.len());
        put_u32(&mut out, body.len() as u32);
        put_u64(&mut out, checksum);
        out.extend_from_slice(&body);
        out
    }
}

/// Attempt to parse one frame at the start of `buf`.
///
/// `Ok((record, frame_len))` on success; `Err(())` when the bytes do not
/// form a complete, checksum-valid, decodable frame — i.e. the torn tail.
pub fn decode_frame(buf: &[u8]) -> Result<(WalRecord, usize), ()> {
    if buf.len() < FRAME_HEADER {
        return Err(());
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if len == 0 || len > MAX_RECORD {
        return Err(());
    }
    let stored = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let total = FRAME_HEADER + len;
    if buf.len() < total {
        return Err(());
    }
    let body = &buf[FRAME_HEADER..total];
    let mut d = Digest::new();
    d.update(body);
    if d.finish() != stored {
        return Err(());
    }
    match WalRecord::decode_body(body) {
        Some(rec) => Ok((rec, total)),
        None => Err(()),
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u8(buf: &[u8], at: &mut usize) -> Option<u8> {
    let b = *buf.get(*at)?;
    *at += 1;
    Some(b)
}

fn get_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    let v = u32::from_le_bytes(buf.get(*at..end)?.try_into().ok()?);
    *at = end;
    Some(v)
}

fn get_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let end = at.checked_add(8)?;
    let v = u64::from_le_bytes(buf.get(*at..end)?.try_into().ok()?);
    *at = end;
    Some(v)
}

fn get_bytes<'a>(buf: &'a [u8], at: &mut usize, len: usize) -> Option<&'a [u8]> {
    let end = at.checked_add(len)?;
    let s = buf.get(*at..end)?;
    *at = end;
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::StreamOpen {
                stream: 7,
                app: 2,
                redundancy: 3,
                tenant: 0x0123_4567_89ab_cdef,
            },
            WalRecord::Tokens {
                stream: 7,
                payloads: vec![
                    Bytes::from(vec![]),
                    Bytes::from(vec![1, 2, 3]),
                    Bytes::from((0..64).collect::<Vec<u8>>()),
                ],
            },
            WalRecord::Outputs {
                stream: 7,
                first_seq: 41,
                digests: vec![0xdead_beef, 0, u64::MAX],
            },
            WalRecord::StreamClose { stream: 7 },
        ]
    }

    #[test]
    fn frames_round_trip() {
        for rec in samples() {
            let frame = rec.encode_frame();
            let (back, used) = decode_frame(&frame).expect("frame decodes");
            assert_eq!(back, rec);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        for rec in samples() {
            let frame = rec.encode_frame();
            for cut in 0..frame.len() {
                assert!(
                    decode_frame(&frame[..cut]).is_err(),
                    "prefix of {cut} bytes must not decode"
                );
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let rec = WalRecord::Tokens {
            stream: 3,
            payloads: vec![Bytes::from(vec![9; 17]), Bytes::from(vec![4; 5])],
        };
        let frame = rec.encode_frame();
        for byte in 0..frame.len() {
            let mut bad = frame.clone();
            bad[byte] ^= 0x10;
            match decode_frame(&bad) {
                Err(()) => {}
                Ok((back, _)) => {
                    // A flip in the length field can only "succeed" by
                    // reading a different checksummed frame — impossible
                    // here, so any Ok must equal the original (it never
                    // does; keep the assert for the counterexample).
                    assert_eq!(
                        back, rec,
                        "bit flip at byte {byte} yielded a different record"
                    );
                    panic!("bit flip at byte {byte} went undetected");
                }
            }
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut body = vec![0x7f];
        body.extend_from_slice(&5u32.to_le_bytes());
        assert!(WalRecord::decode_body(&body).is_none());
    }

    #[test]
    fn trailing_bytes_in_body_are_rejected() {
        let mut body = WalRecord::StreamClose { stream: 1 }.encode_body();
        body.push(0);
        assert!(WalRecord::decode_body(&body).is_none());
    }
}
