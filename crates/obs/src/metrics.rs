//! Atomic metric primitives and the registry that names them.
//!
//! Everything here is wait-free on the hot path: a counter increment is one
//! `fetch_add(Relaxed)`, a gauge update two atomic ops, a histogram record
//! three. Handles are `Arc`-backed and resolved **once** (at construction /
//! instrumentation time), so the instrumented inner loops never touch the
//! registry's lock — the same discipline the paper applies to its
//! counter-only fault detection: no timekeeping, no allocation, no
//! synchronisation on the observed path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh unregistered counter (registered ones come from
    /// [`MetricsRegistry::counter`]).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest value plus its high-water mark.
///
/// The watermark is what Table 2 calls "Max. Observed fill": queue
/// occupancy gauges keep the peak alongside the instantaneous value.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<GaugeInner>,
}

#[derive(Debug, Default)]
struct GaugeInner {
    current: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// A fresh unregistered gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the current value, updating the high-water mark.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.current.store(v, Ordering::Relaxed);
        self.value.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.current.load(Ordering::Relaxed)
    }

    /// High-water mark since construction.
    pub fn max(&self) -> u64 {
        self.value.max.load(Ordering::Relaxed)
    }

    /// Folds another gauge into this one: the current value is overwritten
    /// (last writer wins) and the high-water marks are combined. Used by
    /// [`MetricsRegistry::absorb`] for fleet-level aggregation.
    pub fn merge_from(&self, other: &Gauge) {
        if Arc::ptr_eq(&self.value, &other.value) {
            return;
        }
        self.value.current.store(
            other.value.current.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.value
            .max
            .fetch_max(other.value.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Number of buckets in a [`Histogram`]: one per power of two of `u64`,
/// plus a dedicated zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-layout log₂-bucket histogram.
///
/// Bucket 0 holds the value `0`; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. Quantile queries therefore return an estimate that is
/// exact to within one power of two — plenty for detection-latency and
/// queue-occupancy distributions, at the cost of 65 atomics and no
/// allocation ever.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

/// Bucket index of `v`: 0 for 0, else `floor(log2 v) + 1`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Upper bound (inclusive representative) of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A fresh unregistered histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Mean of all observations (0 if empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Quantile estimate for `q ∈ [0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `q·count` (the exact max for
    /// the last occupied bucket). Returns `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let mut last_occupied = 0usize;
        for (i, b) in self.inner.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                last_occupied = i;
                seen += n;
                if seen >= rank {
                    // Clamp the top bucket's estimate to the true max.
                    return Some(bucket_upper(i).min(self.max()));
                }
            }
        }
        Some(bucket_upper(last_occupied).min(self.max()))
    }

    /// Folds another histogram's distribution into this one: buckets,
    /// count and sum add; the maxima combine. Quantile estimates of the
    /// merged histogram are exactly those of recording both input streams
    /// into one histogram (the log₂ layout is mergeable bucket-by-bucket).
    /// Used by [`MetricsRegistry::absorb`] for fleet-level aggregation.
    pub fn merge_from(&self, other: &Histogram) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        for (mine, theirs) in self.inner.buckets.iter().zip(other.inner.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.inner
            .count
            .fetch_add(other.inner.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.inner
            .sum
            .fetch_add(other.inner.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.inner
            .max
            .fetch_max(other.inner.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// An immutable copy of the distribution's summary statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50).unwrap_or(0),
            p90: self.quantile(0.90).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        }
    }
}

/// Summary statistics captured from a [`Histogram`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Exact maximum observation.
    pub max: u64,
    /// Median estimate (log-bucket upper bound).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean of the captured distribution (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A named registry of metrics.
///
/// Names are interned `&'static str`s: instrumentation sites name their
/// metrics with string literals and resolve the handle once. Repeated
/// lookups return clones of the same underlying atomic, so a registry can
/// be shared between the engine, the channels and the exporters.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
    /// Dynamic-name gauges (per-channel occupancy uses runtime names).
    named_gauges: BTreeMap<String, Gauge>,
    /// Dynamic-name counters (per-tenant serve traffic uses runtime names).
    named_counters: BTreeMap<String, Counter>,
    /// Dynamic-name histograms (per-segment WAL commit batches and other
    /// runtime-keyed distributions).
    named_histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.inner
            .lock()
            .unwrap()
            .counters
            .entry(name)
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.inner
            .lock()
            .unwrap()
            .gauges
            .entry(name)
            .or_default()
            .clone()
    }

    /// A counter under a runtime-constructed name (per-tenant traffic:
    /// `"serve.app.<name>.tokens"`), created on first use.
    pub fn counter_named(&self, name: impl Into<String>) -> Counter {
        self.inner
            .lock()
            .unwrap()
            .named_counters
            .entry(name.into())
            .or_default()
            .clone()
    }

    /// A gauge under a runtime-constructed name (per-channel occupancy:
    /// `"kpn.channel.<name>.fill"`), created on first use.
    pub fn gauge_named(&self, name: impl Into<String>) -> Gauge {
        self.inner
            .lock()
            .unwrap()
            .named_gauges
            .entry(name.into())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(name)
            .or_default()
            .clone()
    }

    /// A histogram under a runtime-constructed name (per-stream WAL replay
    /// sizes: `"wal.stream.<id>.replay"`), created on first use.
    pub fn histogram_named(&self, name: impl Into<String>) -> Histogram {
        self.inner
            .lock()
            .unwrap()
            .named_histograms
            .entry(name.into())
            .or_default()
            .clone()
    }

    /// Folds another registry's metrics into this one, creating metrics on
    /// first sight: counters add, histograms merge bucket-wise, gauges keep
    /// the combined high-water mark. Each source registry should be
    /// absorbed **once** (counters would double-add otherwise) — the fleet
    /// supervisor absorbs every completed job's registry exactly once.
    ///
    /// Ordered-absorb determinism: counters and histograms are commutative
    /// (pure additions / max-combines), so any absorb order yields the
    /// same values; a gauge's *current* value is last-writer-wins, so
    /// absorbing per-run registries **in run order** reproduces exactly
    /// the state sequential execution over one shared registry would have
    /// left. The parallel campaign drivers rely on this: they gather
    /// per-run registries in scenario-index order and absorb them
    /// sequentially, making campaign reports byte-identical at any worker
    /// count.
    ///
    /// Lock discipline: `other`'s handles are collected under its lock,
    /// the lock is dropped, then `self` is updated — the two registry
    /// locks are never held together, so `a.absorb(&b)` can race with
    /// `b.absorb(&a)` without deadlocking. Absorbing a registry into
    /// itself is a no-op.
    pub fn absorb(&self, other: &MetricsRegistry) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        let (counters, gauges, histograms, named_gauges, named_counters, named_histograms) = {
            let g = other.inner.lock().unwrap();
            (
                g.counters
                    .iter()
                    .map(|(k, v)| (*k, v.get()))
                    .collect::<Vec<_>>(),
                g.gauges
                    .iter()
                    .map(|(k, v)| (*k, v.clone()))
                    .collect::<Vec<_>>(),
                g.histograms
                    .iter()
                    .map(|(k, v)| (*k, v.clone()))
                    .collect::<Vec<_>>(),
                g.named_gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>(),
                g.named_counters
                    .iter()
                    .map(|(k, v)| (k.clone(), v.get()))
                    .collect::<Vec<_>>(),
                g.named_histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        for (name, value) in counters {
            self.counter(name).add(value);
        }
        for (name, value) in named_counters {
            self.counter_named(name).add(value);
        }
        for (name, gauge) in gauges {
            self.gauge(name).merge_from(&gauge);
        }
        for (name, histogram) in histograms {
            self.histogram(name).merge_from(&histogram);
        }
        for (name, gauge) in named_gauges {
            self.gauge_named(name).merge_from(&gauge);
        }
        for (name, histogram) in named_histograms {
            self.histogram_named(name).merge_from(&histogram);
        }
    }

    /// All counters as `(name, value)`, sorted by name; runtime-named
    /// counters follow the static ones.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let g = self.inner.lock().unwrap();
        g.counters
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .chain(g.named_counters.iter().map(|(k, v)| (k.clone(), v.get())))
            .collect()
    }

    /// All gauges as `(name, current, max)`, sorted by name; runtime-named
    /// gauges follow the static ones.
    pub fn gauge_values(&self) -> Vec<(String, u64, u64)> {
        let g = self.inner.lock().unwrap();
        g.gauges
            .iter()
            .map(|(k, v)| (k.to_string(), v.get(), v.max()))
            .chain(
                g.named_gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), v.get(), v.max())),
            )
            .collect()
    }

    /// All histograms as `(name, snapshot)`, sorted by name; runtime-named
    /// histograms follow the static ones.
    pub fn histogram_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        let g = self.inner.lock().unwrap();
        g.histograms
            .iter()
            .map(|(k, v)| (k.to_string(), v.snapshot()))
            .chain(
                g.named_histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), v.snapshot())),
            )
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Clones share the value.
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 43);
    }

    #[test]
    fn gauge_tracks_watermark() {
        let g = Gauge::new();
        g.set(3);
        g.set(9);
        g.set(5);
        assert_eq!(g.get(), 5);
        assert_eq!(g.max(), 9);
    }

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn registry_interns_by_name() {
        let r = MetricsRegistry::new();
        r.counter("x").inc();
        r.counter("x").inc();
        assert_eq!(r.counter("x").get(), 2);
        assert_eq!(r.counter_values(), vec![("x".to_string(), 2)]);
    }

    #[test]
    fn histogram_empty_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot().p50, 0);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for v in [0u64, 1, 7, 100] {
            a.record(v);
            combined.record(v);
        }
        for v in [3u64, 9_000, 9_000] {
            b.record(v);
            combined.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), combined.snapshot());
        // Self-merge is a no-op, not a doubling.
        let before = a.snapshot();
        a.merge_from(&a.clone());
        assert_eq!(a.snapshot(), before);
    }

    #[test]
    fn registry_absorb_aggregates_all_kinds() {
        let fleet = MetricsRegistry::new();
        fleet.counter("jobs").add(1);

        let job = MetricsRegistry::new();
        job.counter("jobs").add(2);
        job.gauge("fill").set(9);
        job.histogram("lat").record(40);
        job.gauge_named("chan.a.fill").set(5);
        job.counter_named("serve.app.mjpeg.tokens").add(7);
        job.histogram_named("wal.stream.0.replay").record(12);

        fleet.absorb(&job);
        assert_eq!(fleet.counter("jobs").get(), 3);
        assert_eq!(fleet.gauge("fill").max(), 9);
        assert_eq!(fleet.histogram("lat").count(), 1);
        assert_eq!(fleet.gauge_named("chan.a.fill").get(), 5);
        assert_eq!(fleet.counter_named("serve.app.mjpeg.tokens").get(), 7);
        assert_eq!(fleet.histogram_named("wal.stream.0.replay").count(), 1);
        assert!(fleet
            .histogram_snapshots()
            .iter()
            .any(|(name, snap)| name == "wal.stream.0.replay" && snap.count == 1));
        assert!(fleet
            .counter_values()
            .contains(&("serve.app.mjpeg.tokens".to_string(), 7)));

        // Absorbing into itself changes nothing.
        fleet.absorb(&fleet.clone());
        assert_eq!(fleet.counter("jobs").get(), 3);
    }

    #[test]
    fn ordered_absorb_reproduces_sequential_recording() {
        // The parallel campaign contract: per-run registries absorbed in
        // run order leave the aggregate in exactly the state sequential
        // recording into one shared registry would have.
        let sequential = MetricsRegistry::new();
        let per_run: Vec<MetricsRegistry> = (0..4u64)
            .map(|run| {
                let r = MetricsRegistry::new();
                for reg in [&sequential, &r] {
                    reg.counter("runs").inc();
                    reg.histogram("lat").record(run * 100 + 7);
                    reg.gauge("fill").set(10 - run); // decreasing: max ≠ last
                }
                r
            })
            .collect();

        let gathered = MetricsRegistry::new();
        for r in &per_run {
            gathered.absorb(r);
        }
        assert_eq!(gathered.counter_values(), sequential.counter_values());
        assert_eq!(gathered.gauge_values(), sequential.gauge_values());
        let snaps = |r: &MetricsRegistry| {
            r.histogram_snapshots()
                .into_iter()
                .map(|(n, s)| (n, s.count, s.sum, s.max, s.p50, s.p99))
                .collect::<Vec<_>>()
        };
        assert_eq!(snaps(&gathered), snaps(&sequential));
        // Gauge current is last-writer-wins: run order preserved it.
        assert_eq!(gathered.gauge("fill").get(), 7);
        assert_eq!(gathered.gauge("fill").max(), 10);
    }
}
